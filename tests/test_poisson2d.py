"""2-D Poisson solver: analytic checks and MIV side-gating map."""

import numpy as np
import pytest

from repro.errors import MeshError, SimulationError
from repro.materials import SILICON, SILICON_DIOXIDE
from repro.tcad.poisson2d import Grid2D, Poisson2D


def test_grid_spacing():
    grid = Grid2D(10e-9, 5e-9, 11, 6)
    assert grid.dx == pytest.approx(1e-9)
    assert grid.dy == pytest.approx(1e-9)


def test_grid_rejects_degenerate():
    with pytest.raises(MeshError):
        Grid2D(0.0, 1e-9, 5, 5)
    with pytest.raises(MeshError):
        Grid2D(1e-9, 1e-9, 2, 5)


def test_grid_index_bounds():
    grid = Grid2D(1e-9, 1e-9, 4, 4)
    with pytest.raises(MeshError):
        grid.index(4, 0)


def test_parallel_plate_linear_potential():
    # Two full-width electrodes at top and bottom: potential is linear.
    grid = Grid2D(10e-9, 10e-9, 11, 11)
    solver = Poisson2D(grid)
    solver.set_permittivity_box(0, 0, 10e-9, 10e-9,
                                SILICON_DIOXIDE.permittivity)
    solver.add_electrode(0, 0, 10e-9, 0, 0.0)
    solver.add_electrode(0, 10e-9, 10e-9, 10e-9, 1.0)
    psi = solver.solve()
    expected = np.linspace(0, 1, 11)
    for j in range(11):
        assert psi[j, 5] == pytest.approx(expected[j], abs=1e-9)


def test_laplace_solution_is_bounded_by_electrodes():
    grid = Grid2D(20e-9, 20e-9, 15, 15)
    solver = Poisson2D(grid)
    solver.add_electrode(0, 0, 2e-9, 2e-9, 0.0)
    solver.add_electrode(18e-9, 18e-9, 20e-9, 20e-9, 1.0)
    psi = solver.solve()
    assert psi.min() >= -1e-9
    assert psi.max() <= 1.0 + 1e-9


def test_no_electrode_raises():
    solver = Poisson2D(Grid2D(1e-8, 1e-8, 5, 5))
    with pytest.raises(SimulationError):
        solver.solve()


def test_empty_electrode_box_raises():
    solver = Poisson2D(Grid2D(1e-8, 1e-8, 5, 5))
    with pytest.raises(SimulationError):
        solver.add_electrode(3.1e-9, 3.1e-9, 3.2e-9, 3.2e-9, 1.0)


def test_fixed_charge_raises_potential():
    grid = Grid2D(10e-9, 10e-9, 11, 11)
    base = Poisson2D(grid)
    base.add_electrode(0, 0, 10e-9, 0, 0.0)
    base.add_electrode(0, 10e-9, 10e-9, 10e-9, 0.0)
    psi0 = base.solve()

    charged = Poisson2D(grid)
    charged.add_electrode(0, 0, 10e-9, 0, 0.0)
    charged.add_electrode(0, 10e-9, 10e-9, 10e-9, 0.0)
    charged.set_charge_box(4e-9, 4e-9, 6e-9, 6e-9, 1e6)  # positive charge
    psi1 = charged.solve()
    assert psi1[5, 5] > psi0[5, 5]


def test_miv_side_gating_penetrates_liner():
    """The MIS action of Figure 2(a): an MIV at 1 V next to grounded film
    raises the potential in the adjacent silicon."""
    # x: 1 nm liner then 20 nm film; MIV electrode on the left face.
    grid = Grid2D(21e-9, 7e-9, 22, 8)
    solver = Poisson2D(grid)
    solver.set_permittivity_box(0, 0, 1e-9, 7e-9,
                                SILICON_DIOXIDE.permittivity)
    solver.set_permittivity_box(1e-9, 0, 21e-9, 7e-9, SILICON.permittivity)
    solver.add_electrode(0, 0, 0, 7e-9, 1.0)            # MIV face
    solver.add_electrode(21e-9, 0, 21e-9, 7e-9, 0.0)    # far contact
    psi = solver.solve()
    mid = psi.shape[0] // 2
    near_liner = psi[mid, 2]
    far = psi[mid, -2]
    assert near_liner > 0.5
    assert near_liner > far
    field = solver.field_magnitude(psi)
    # Strongest field near the liner (gradient smears the 1 nm drop
    # across neighbouring cells, so well above the bulk-average value).
    assert field.max() > 5e7
