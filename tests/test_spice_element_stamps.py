"""Direct verification of element stamps against their definitions."""

import numpy as np
import pytest

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.spice.elements.base import Stamper
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.resistor import Resistor
from repro.tcad.device import Polarity


def make_stamper(nodes, branches=None):
    node_index = {n: i for i, n in enumerate(nodes)}
    branch_index = branches or {}
    n = len(nodes) + len(branch_index)
    return Stamper(node_index, branch_index, n)


def test_resistor_stamp_matrix():
    stamper = make_stamper(["a", "b"])
    Resistor("R1", "a", "b", 2e3).stamp_static(stamper, {}, 0.0)
    g = 5e-4
    expected = np.array([[g, -g], [-g, g]])
    assert np.allclose(stamper.matrix, expected)
    assert np.allclose(stamper.rhs, 0.0)


def test_resistor_stamp_to_ground_drops_ground_row():
    stamper = make_stamper(["a"])
    Resistor("R1", "a", "0", 1e3).stamp_static(stamper, {}, 0.0)
    assert stamper.matrix[0, 0] == pytest.approx(1e-3)


def test_resistor_current_helper():
    r = Resistor("R1", "a", "b", 1e3)
    assert r.current({"a": 1.0, "b": 0.25}) == pytest.approx(0.75e-3)


def test_capacitor_charge_and_jacobian():
    stamper = make_stamper(["a", "b"])
    cap = Capacitor("C1", "a", "b", 2e-15)
    q = np.zeros(2)
    c = np.zeros((2, 2))
    cap.stamp_dynamic(stamper, {"a": 0.8, "b": 0.3}, q, c)
    assert q[0] == pytest.approx(2e-15 * 0.5)
    assert q[1] == pytest.approx(-2e-15 * 0.5)
    assert np.allclose(c, np.array([[2e-15, -2e-15], [-2e-15, 2e-15]]))


def test_mosfet_stamp_consistency():
    """The stamped companion must reproduce I(v) at the linearisation
    point: A v - z contributions equal the true drain current."""
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    fet = Mosfet("M1", "d", "g", "s", model)
    voltages = {"d": 0.7, "g": 0.9, "s": 0.1}
    stamper = make_stamper(["d", "g", "s"])
    fet.stamp_static(stamper, voltages, 0.0)

    v = np.array([voltages["d"], voltages["g"], voltages["s"]])
    # KCL residual at the drain row: sum(A[0,:] v) - z[0] = I_D.
    i_lin = float(stamper.matrix[0] @ v - stamper.rhs[0])
    i_true = model.ids(voltages["g"] - voltages["s"],
                       voltages["d"] - voltages["s"])
    assert i_lin == pytest.approx(i_true, rel=1e-6)
    # Source row carries the opposite current; gate row carries none.
    i_src = float(stamper.matrix[2] @ v - stamper.rhs[2])
    assert i_src == pytest.approx(-i_true, rel=1e-6)
    i_gate = float(stamper.matrix[1] @ v - stamper.rhs[1])
    assert i_gate == pytest.approx(0.0, abs=1e-18)


def test_mosfet_stamp_gm_matches_model():
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    fet = Mosfet("M1", "d", "g", "s", model)
    voltages = {"d": 1.0, "g": 0.8, "s": 0.0}
    stamper = make_stamper(["d", "g", "s"])
    fet.stamp_static(stamper, voltages, 0.0)
    # A[d, g] is gm.
    d = 1e-4
    gm_ref = (model.ids(0.8 + d, 1.0) - model.ids(0.8 - d, 1.0)) / (2 * d)
    assert stamper.matrix[0, 1] == pytest.approx(gm_ref, rel=1e-6)


def test_mosfet_charge_stamp_conserves():
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    fet = Mosfet("M1", "d", "g", "s", model)
    stamper = make_stamper(["d", "g", "s"])
    q = np.zeros(3)
    c = np.zeros((3, 3))
    fet.stamp_dynamic(stamper, {"d": 0.6, "g": 0.9, "s": 0.0}, q, c)
    # Total stamped charge sums to zero (conservative model).
    assert q.sum() == pytest.approx(0.0, abs=1e-24)
    # Capacitance matrix rows sum to zero (charge depends on voltage
    # differences only).
    assert np.allclose(c.sum(axis=1), 0.0, atol=1e-18)


def test_mosfet_pmos_stamp_signs():
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.PMOS)
    fet = Mosfet("M1", "d", "g", "s", model)
    voltages = {"d": 0.0, "g": 0.0, "s": 1.0}  # PMOS fully on
    stamper = make_stamper(["d", "g", "s"])
    fet.stamp_static(stamper, voltages, 0.0)
    v = np.array([0.0, 0.0, 1.0])
    i_lin = float(stamper.matrix[0] @ v - stamper.rhs[0])
    assert i_lin < 0  # current flows out of the drain
