"""Advisory file locks: conflicts, timeouts, release semantics."""

import pytest

from repro.engine.locks import (
    DEFAULT_LOCK_TIMEOUT,
    FileLock,
    HAVE_LOCKS,
    LOCK_TIMEOUT_ENV,
    resolve_lock_timeout,
)
from repro.errors import CacheLockTimeout, ReproError

needs_locks = pytest.mark.skipif(
    not HAVE_LOCKS, reason="platform has no advisory file locks")


def test_resolve_lock_timeout(monkeypatch):
    monkeypatch.delenv(LOCK_TIMEOUT_ENV, raising=False)
    assert resolve_lock_timeout() == DEFAULT_LOCK_TIMEOUT
    assert resolve_lock_timeout(2.0) == 2.0
    monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0.5")
    assert resolve_lock_timeout() == 0.5
    monkeypatch.setenv(LOCK_TIMEOUT_ENV, "abc")
    with pytest.raises(ReproError):
        resolve_lock_timeout()
    monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0")
    with pytest.raises(ReproError):
        resolve_lock_timeout()


def test_try_acquire_and_release(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    assert not lock.held
    assert lock.try_acquire()
    assert lock.held
    # re-acquiring an already-held lock is a cheap no-op
    assert lock.try_acquire()
    lock.release()
    assert not lock.held
    lock.release()  # idempotent


@needs_locks
def test_second_holder_is_rejected(tmp_path):
    first = FileLock(tmp_path / "a.lock")
    second = FileLock(tmp_path / "a.lock")
    assert first.try_acquire()
    assert not second.try_acquire()
    first.release()
    assert second.try_acquire()
    second.release()


@needs_locks
def test_blocking_acquire_times_out(tmp_path):
    holder = FileLock(tmp_path / "a.lock")
    assert holder.try_acquire()
    contender = FileLock(tmp_path / "a.lock", timeout=0.15)
    with pytest.raises(CacheLockTimeout):
        contender.acquire()
    holder.release()
    contender.acquire()
    assert contender.held
    contender.release()


@needs_locks
def test_context_manager(tmp_path):
    other = FileLock(tmp_path / "a.lock")
    with FileLock(tmp_path / "a.lock") as lock:
        assert lock.held
        assert not other.try_acquire()
    assert other.try_acquire()
    other.release()


def test_sentinel_file_persists_after_release(tmp_path):
    # the inode must stay stable: unlink/recreate would open a race
    # where two processes hold "the same" lock on different inodes
    lock = FileLock(tmp_path / "a.lock")
    lock.try_acquire()
    lock.release()
    assert (tmp_path / "a.lock").is_file()


def test_lock_creates_parent_dirs(tmp_path):
    lock = FileLock(tmp_path / "deep" / "nested" / "a.lock")
    assert lock.try_acquire()
    lock.release()
