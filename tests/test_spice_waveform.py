"""Waveform algebra and measurements."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.waveform import Waveform


def ramp():
    t = np.linspace(0.0, 1.0, 11)
    return Waveform(t, t.copy(), "ramp")


def test_validation():
    with pytest.raises(SimulationError):
        Waveform(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
    with pytest.raises(SimulationError):
        Waveform(np.array([0.0, 1.0]), np.array([1.0]))
    with pytest.raises(SimulationError):
        Waveform(np.array([0.0]), np.array([1.0]))


def test_value_interpolation():
    wf = ramp()
    assert float(wf.value(0.55)) == pytest.approx(0.55)


def test_duration():
    assert ramp().duration == pytest.approx(1.0)


def test_crossings_rise():
    wf = ramp()
    assert wf.crossings(0.5, "rise") == [pytest.approx(0.5)]
    assert wf.crossings(0.5, "fall") == []


def test_crossings_both_directions():
    t = np.array([0.0, 1.0, 2.0])
    v = np.array([0.0, 1.0, 0.0])
    wf = Waveform(t, v)
    crossings = wf.crossings(0.5)
    assert len(crossings) == 2
    assert crossings[0] == pytest.approx(0.5)
    assert crossings[1] == pytest.approx(1.5)


def test_first_crossing_after():
    t = np.array([0.0, 1.0, 2.0, 3.0])
    v = np.array([0.0, 1.0, 0.0, 1.0])
    wf = Waveform(t, v)
    assert wf.first_crossing_after(1.0, 0.5, "rise") == pytest.approx(2.5)
    with pytest.raises(SimulationError):
        wf.first_crossing_after(3.0, 0.5)


def test_bad_direction_rejected():
    with pytest.raises(SimulationError):
        ramp().crossings(0.5, "sideways")


def test_transition_time():
    wf = ramp()
    assert wf.transition_time(0.1, 0.9, "rise") == pytest.approx(0.8)


def test_transition_time_fall():
    t = np.linspace(0.0, 1.0, 11)
    wf = Waveform(t, 1.0 - t)
    assert wf.transition_time(0.1, 0.9, "fall") == pytest.approx(0.8)


def test_integral_and_mean():
    wf = ramp()
    assert wf.integral() == pytest.approx(0.5)
    assert wf.mean() == pytest.approx(0.5)


def test_min_max():
    wf = ramp()
    assert wf.minimum() == 0.0
    assert wf.maximum() == 1.0


def test_window():
    wf = ramp()
    sub = wf.window(0.25, 0.75)
    assert sub.t[0] == pytest.approx(0.25)
    assert sub.t[-1] == pytest.approx(0.75)
    assert sub.mean() == pytest.approx(0.5)


def test_window_validation():
    with pytest.raises(SimulationError):
        ramp().window(0.5, 0.4)
    with pytest.raises(SimulationError):
        ramp().window(-1.0, 0.5)


def test_scaled_and_shifted():
    wf = ramp().scaled(2.0).shifted(1.0)
    assert float(wf.value(0.5)) == pytest.approx(2.0)


def test_addition_same_axis():
    total = ramp() + ramp()
    assert float(total.value(0.5)) == pytest.approx(1.0)


def test_addition_different_axis_resamples():
    other = Waveform(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
    total = ramp() + other
    assert float(total.value(0.5)) == pytest.approx(1.5)
