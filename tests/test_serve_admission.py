"""Admission control, quotas and tenancy (deterministic, no sockets)."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionRejected, InvalidRequest, QuotaExceeded
from repro.serve.admission import (
    AdmissionController,
    ServiceTimeEstimator,
    TokenBucket,
)
from repro.serve.tenants import (
    DEFAULT_TENANT,
    TenantRegistry,
    validate_tenant_name,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestServiceTimeEstimator:
    def test_first_observation_replaces_the_prior(self):
        estimator = ServiceTimeEstimator(initial=5.0)
        estimator.observe(1.0)
        assert estimator.estimate == 1.0

    def test_ewma_smooths_later_observations(self):
        estimator = ServiceTimeEstimator(alpha=0.5)
        estimator.observe(2.0)
        estimator.observe(4.0)
        assert estimator.estimate == pytest.approx(3.0)

    def test_retry_after_scales_with_depth_and_workers(self):
        estimator = ServiceTimeEstimator()
        estimator.observe(2.0)
        assert estimator.retry_after(depth=4, workers=2) == 4
        assert estimator.retry_after(depth=4, workers=4) == 2

    def test_retry_after_is_clamped(self):
        estimator = ServiceTimeEstimator()
        estimator.observe(0.001)
        assert estimator.retry_after(depth=1, workers=8) == 1
        estimator.observe(10_000.0)
        estimator.observe(10_000.0)
        assert estimator.retry_after(depth=100, workers=1) == 3600


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_take(2.0)
        clock.advance(0.5)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == 3.0

    def test_wait_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_take()
        assert bucket.wait_time(1.0) == pytest.approx(0.5)
        assert TokenBucket(1.0, 1.0, clock=clock).wait_time() == 0.0


class TestAdmissionController:
    def make(self, limit=2, workers=1):
        clock = FakeClock()
        return AdmissionController(limit, workers, clock=clock), clock

    def test_admits_until_the_limit(self):
        controller, _ = self.make(limit=2)
        controller.admit()
        controller.admit()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit()
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after >= 1

    def test_release_frees_a_slot_and_feeds_the_estimator(self):
        controller, clock = self.make(limit=1)
        ticket = controller.admit()
        clock.advance(3.0)
        service_s = controller.release(ticket)
        assert service_s == pytest.approx(3.0)
        assert controller.estimator.estimate == pytest.approx(3.0)
        controller.admit()  # slot is free again

    def test_release_is_idempotent(self):
        controller, _ = self.make(limit=1)
        ticket = controller.admit()
        controller.release(ticket)
        controller.release(ticket)
        assert controller.inflight == 0

    def test_consecutive_sheds_reset_on_admission(self):
        controller, _ = self.make(limit=1)
        ticket = controller.admit()
        for _ in range(3):
            with pytest.raises(AdmissionRejected):
                controller.admit()
        assert controller.consecutive_sheds == 3
        controller.release(ticket)
        controller.admit()
        assert controller.consecutive_sheds == 0

    def test_snapshot_counters(self):
        controller, _ = self.make(limit=1)
        controller.admit()
        with pytest.raises(AdmissionRejected):
            controller.admit()
        snap = controller.snapshot()
        assert snap["admitted_total"] == 1
        assert snap["shed_total"] == 1
        assert snap["inflight"] == 1


class TestTenants:
    def test_name_validation(self):
        assert validate_tenant_name("") == DEFAULT_TENANT
        assert validate_tenant_name(" alice-1 ") == "alice-1"
        for bad in ("../up", "a b", "x" * 65, "é"):
            with pytest.raises(InvalidRequest):
                validate_tenant_name(bad)

    def test_namespaces_are_isolated_directories(self, tmp_path):
        registry = TenantRegistry(str(tmp_path), rps=10, burst=10)
        alice = registry.get("alice")
        bob = registry.get("bob")
        assert alice.cache_dir != bob.cache_dir
        assert alice.cache_dir.startswith(str(tmp_path))
        import os
        assert os.path.isdir(alice.cache_dir)
        assert registry.get("alice") is alice

    def test_quota_is_per_tenant(self, tmp_path):
        clock = FakeClock()
        registry = TenantRegistry(str(tmp_path), rps=1.0, burst=1.0,
                                  clock=clock)
        registry.charge("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            registry.charge("alice")
        assert excinfo.value.retry_after >= 1
        registry.charge("bob")  # unaffected by alice's exhaustion

    def test_quota_refills(self, tmp_path):
        clock = FakeClock()
        registry = TenantRegistry(str(tmp_path), rps=1.0, burst=1.0,
                                  clock=clock)
        registry.charge("alice")
        clock.advance(1.0)
        registry.charge("alice")

    def test_snapshot(self, tmp_path):
        clock = FakeClock()
        registry = TenantRegistry(str(tmp_path), rps=1.0, burst=1.0,
                                  clock=clock)
        registry.charge("alice")
        with pytest.raises(QuotaExceeded):
            registry.charge("alice")
        snap = registry.snapshot()
        assert snap["alice"]["requests_total"] == 2
        assert snap["alice"]["rejected_total"] == 1
