"""Wire-level chaos: the proxy's five faults against the real client.

Each fault targets one layer of the client's defence:

* ``drop``/``delay`` — budgets and retries (the run must not hang);
* ``truncate`` — the short-read detector in the HTTP layer;
* ``corrupt`` — the digest check (length-preserving bit flips);
* ``error500`` — breaker trips on bursts.

The closing test is the contract the whole tier exists for: a flow
run through heavy chaos produces byte-identical artifacts to a clean
run — the network can only make things slower, never wrong.
"""

import pytest

from repro.cachesrv import CacheServer
from repro.engine.cache import ArtifactCache
from repro.engine.remote import RemoteCache
from repro.engine.stages import StageDef
from repro.errors import ConfigError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.netchaos import FAULT_KINDS, ChaosProxy, NetFaultPlan


def _stage():
    codec = dict(encode=lambda art: {"value": art["value"]},
                 decode=lambda data: {"value": data["value"]})
    return StageDef(name="toy", version=1,
                    compute=lambda payload, deps: None, **codec)


@pytest.fixture()
def server(tmp_path):
    srv = CacheServer(tmp_path / "remote-store").serve_in_thread()
    yield srv
    srv.close()


def _proxy(server, **plan_kwargs):
    plan = NetFaultPlan(**plan_kwargs)
    return ChaosProxy(server.url, plan).serve_in_thread()


class TestFaultPlan:
    def test_parse_spec(self):
        plan = NetFaultPlan.parse("drop=0.2, corrupt=0.1, seed=7")
        assert plan.probabilities["drop"] == 0.2
        assert plan.probabilities["corrupt"] == 0.1
        assert plan.probabilities["error500"] == 0.0
        assert plan.seed == 7

    @pytest.mark.parametrize("spec", [
        "drop=1.5",           # not a probability
        "drop",               # no value
        "explode=0.5",        # unknown fault
        "delay_s=0",          # must be positive
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(ConfigError):
            NetFaultPlan.parse(spec)

    def test_draws_are_deterministic_given_seed(self):
        kwargs = dict(drop=0.3, corrupt=0.3, error500=0.2)
        plan_a = NetFaultPlan(seed=42, **kwargs)
        plan_b = NetFaultPlan(seed=42, **kwargs)
        draws_a = [plan_a.draw() for _ in range(50)]
        draws_b = [plan_b.draw() for _ in range(50)]
        assert draws_a == draws_b  # same seed, same traffic → same faults
        assert any(kind in draws_a for kind in FAULT_KINDS)
        plan_c = NetFaultPlan(seed=43, **kwargs)
        assert [plan_c.draw() for _ in range(50)] != draws_a


class TestFaultsAgainstClient:
    def _remote(self, proxy, **kwargs):
        kwargs.setdefault("timeout", 0.5)
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("breaker",
                          CircuitBreaker(failure_threshold=50,
                                         reset_timeout=0.1))
        return RemoteCache(proxy.url, **kwargs)

    def test_corrupt_wire_bytes_are_refetched(self, server):
        # corrupt=1.0: EVERY response is bit-flipped, so both the
        # fetch and its clean refetch fail verification and the client
        # reports a miss — never a mangled artifact.
        ArtifactCache(cache_dir=server.store.root.parent / "w",
                      remote=RemoteCache(server.url, timeout=0.5,
                                         retries=0)).put(
            "k1", _stage(), {"value": 4.2})
        proxy = _proxy(server, corrupt=1.0, seed=1)
        try:
            remote = self._remote(proxy)
            assert remote.fetch("toy", "k1") is None
            assert remote.integrity_failures == 2
        finally:
            proxy.close()
        # Two consecutive mismatches condemn the entry: the client
        # cannot tell persistent wire corruption from rot at rest, so
        # it quarantines server-side — a deliberate trade of one good
        # entry for never parsing a poisoned one.
        assert server.store.get("toy", "k1") is None
        assert list((server.store.root / ".quarantine").iterdir())

    def test_truncated_body_is_detected_not_parsed(self, server):
        ArtifactCache(cache_dir=server.store.root.parent / "w",
                      remote=RemoteCache(server.url, timeout=0.5,
                                         retries=0)).put(
            "k1", _stage(), {"value": 1.0})
        proxy = _proxy(server, truncate=1.0, seed=2)
        try:
            remote = self._remote(proxy, retries=1)
            assert remote.fetch("toy", "k1") is None
            assert remote.hits == 0
        finally:
            proxy.close()

    def test_error500_burst_trips_breaker(self, server):
        proxy = _proxy(server, error500=1.0, seed=3)
        try:
            breaker = CircuitBreaker(failure_threshold=3,
                                     reset_timeout=60.0)
            remote = self._remote(proxy, retries=0, breaker=breaker)
            for _ in range(4):
                remote.fetch("toy", "k")
            assert breaker.state == "open"
            assert remote.degraded
            assert remote.refused >= 1
        finally:
            proxy.close()

    def test_drop_costs_a_retry_not_a_hang(self, server):
        proxy = _proxy(server, drop=1.0, seed=4)
        try:
            remote = self._remote(proxy, retries=1)
            assert remote.fetch("toy", "k") is None
            assert remote.errors == 1
        finally:
            proxy.close()

    def test_mixed_chaos_flow_stays_correct(self, server, tmp_path):
        """Heavy chaos: every artifact read back equals what was put."""
        stage = _stage()
        direct = ArtifactCache(
            cache_dir=tmp_path / "seed",
            remote=RemoteCache(server.url, timeout=0.5, retries=0))
        expected = {}
        for i in range(12):
            expected[f"k{i}"] = {"value": float(i)}
            direct.put(f"k{i}", stage, expected[f"k{i}"])
        assert direct.remote.stores == 12

        proxy = _proxy(server, drop=0.15, truncate=0.15, corrupt=0.15,
                       error500=0.15, seed=20260808)
        try:
            reader = ArtifactCache(cache_dir=tmp_path / "cold",
                                   remote=self._remote(proxy))
            for key, want in expected.items():
                hit, layer = reader.get(key, stage)
                # chaos may turn a hit into a miss — never into a
                # wrong value
                assert hit is None or hit == want, key
            assert reader.hits_remote >= 1
        finally:
            proxy.close()
