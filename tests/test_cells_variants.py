"""Implementation variants and extracted model sets."""

import pytest

from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity


def test_variant_device_mapping():
    assert DeviceVariant.TWO_D.n_channel_count is ChannelCount.TRADITIONAL
    assert DeviceVariant.MIV_1CH.n_channel_count is ChannelCount.ONE
    assert DeviceVariant.MIV_2CH.n_channel_count is ChannelCount.TWO
    assert DeviceVariant.MIV_4CH.n_channel_count is ChannelCount.FOUR


def test_bottom_layer_always_traditional():
    for variant in DeviceVariant:
        assert variant.p_channel_count is ChannelCount.TRADITIONAL


def test_uses_miv_gate():
    assert not DeviceVariant.TWO_D.uses_miv_gate
    assert DeviceVariant.MIV_2CH.uses_miv_gate


def test_figure5_labels():
    assert [v.value for v in DeviceVariant] == ["2D", "1-ch", "2-ch", "4-ch"]


def test_model_set_polarities(model_set_2d):
    assert model_set_2d.nmos.polarity is Polarity.NMOS
    assert model_set_2d.pmos.polarity is Polarity.PMOS


def test_model_set_cached():
    a = extracted_model_set(DeviceVariant.TWO_D)
    b = extracted_model_set(DeviceVariant.TWO_D)
    assert a is b


def test_pmos_shared_across_variants(model_set_2d, model_set_2ch):
    # Same traditional PMOS physics: identical Ion.
    i_2d = float(model_set_2d.pmos.ids_magnitude(1.0, 1.0))
    i_2ch = float(model_set_2ch.pmos.ids_magnitude(1.0, 1.0))
    assert i_2ch == pytest.approx(i_2d, rel=1e-6)


def test_nmos_differs_across_variants(model_set_2d, model_set_2ch):
    i_2d = float(model_set_2d.nmos.ids_magnitude(1.0, 1.0))
    i_2ch = float(model_set_2ch.nmos.ids_magnitude(1.0, 1.0))
    assert i_2ch > i_2d  # the 2-channel MIV-transistor drives harder


def test_wrong_polarity_rejected(model_set_2d):
    from repro.cells.variants import ModelSet
    with pytest.raises(ValueError):
        ModelSet(variant=DeviceVariant.TWO_D, nmos=model_set_2d.pmos,
                 pmos=model_set_2d.pmos)
