"""Material library and record types."""

import pytest

from repro.constants import EPS_0
from repro.errors import MaterialError
from repro.materials import (
    COPPER,
    SILICON,
    SILICON_DIOXIDE,
    SILICON_NITRIDE,
    Conductor,
    DopantType,
    Insulator,
    Semiconductor,
    get_material,
    uniform_doping,
)


def test_library_lookup():
    assert get_material("Si") is SILICON
    assert get_material("SiO2") is SILICON_DIOXIDE
    assert get_material("Si3N4") is SILICON_NITRIDE
    assert get_material("Cu") is COPPER


def test_unknown_material_raises():
    with pytest.raises(MaterialError):
        get_material("GaAs")


def test_silicon_permittivity():
    assert SILICON.permittivity == pytest.approx(11.7 * EPS_0)


def test_oxide_permittivity():
    assert SILICON_DIOXIDE.eps_r == pytest.approx(3.9)


def test_nitride_higher_k_than_oxide():
    assert SILICON_NITRIDE.eps_r > SILICON_DIOXIDE.eps_r


def test_silicon_intrinsic_density_reasonable():
    ni = SILICON.intrinsic_density(300.0)
    assert 3e15 < ni < 3e16


def test_oxide_capacitance_per_area_1nm():
    # Table I gate liner: 1 nm SiO2 -> ~3.45e-2 F/m^2.
    cox = SILICON_DIOXIDE.capacitance_per_area(1e-9)
    assert cox == pytest.approx(3.45e-2, rel=0.01)


def test_capacitance_rejects_bad_thickness():
    with pytest.raises(MaterialError):
        SILICON_DIOXIDE.capacitance_per_area(0.0)


def test_copper_wire_resistance():
    # 1 um long, 24 nm x 48 nm cross-section.
    r = COPPER.wire_resistance(1e-6, 24e-9, 48e-9)
    assert r == pytest.approx(COPPER.resistivity * 1e-6 / (24e-9 * 48e-9))
    assert 5 < r < 30


def test_wire_resistance_rejects_degenerate_geometry():
    with pytest.raises(MaterialError):
        COPPER.wire_resistance(0.0, 1e-9, 1e-9)


def test_invalid_permittivity_rejected():
    with pytest.raises(MaterialError):
        Insulator(name="bad", eps_r=-1.0)


def test_invalid_semiconductor_rejected():
    with pytest.raises(MaterialError):
        Semiconductor(name="bad", eps_r=11.7, bandgap=-1.0)


def test_invalid_conductor_rejected():
    with pytest.raises(MaterialError):
        Conductor(name="bad", eps_r=1.0, resistivity=0.0)


def test_uniform_doping_matches_table1():
    profile = uniform_doping(DopantType.DONOR, 1e19)
    assert profile.net_doping(0.0) == pytest.approx(1e25)
    assert profile.net_doping(5e-9) == pytest.approx(1e25)


def test_acceptor_doping_is_negative_net():
    profile = uniform_doping(DopantType.ACCEPTOR, 1e19)
    assert profile.net_doping(0.0) == pytest.approx(-1e25)


def test_doping_signs():
    assert DopantType.DONOR.sign == 1
    assert DopantType.ACCEPTOR.sign == -1


def test_negative_concentration_rejected():
    with pytest.raises(MaterialError):
        uniform_doping(DopantType.DONOR, -1.0)
