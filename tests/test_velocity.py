"""Mobility and velocity-saturation models."""

import pytest

from repro.tcad.velocity import (
    ELECTRON_MOBILITY,
    HOLE_MOBILITY,
    MobilityModel,
    narrow_width_factor,
)


def test_low_field_limit():
    model = MobilityModel(mu_low=0.06)
    assert model.effective_mobility(0.0) == pytest.approx(0.06)


def test_mobility_decreases_with_charge():
    model = ELECTRON_MOBILITY
    mus = [model.effective_mobility(q) for q in (0.0, 0.005, 0.01, 0.02)]
    assert all(m2 < m1 for m1, m2 in zip(mus, mus[1:]))


def test_effective_field_from_charge():
    model = ELECTRON_MOBILITY
    # E = Q / (2 eps_si).
    assert model.effective_field(2.07e-10 * 1e8) == pytest.approx(1e8, rel=0.01)


def test_negative_charge_clamped():
    assert ELECTRON_MOBILITY.effective_field(-1.0) == 0.0


def test_saturation_field_scales_inverse_mobility():
    model = ELECTRON_MOBILITY
    esat_low = model.saturation_field(0.0)
    esat_high = model.saturation_field(0.02)
    assert esat_high > esat_low  # degraded mobility -> higher Esat


def test_electrons_faster_than_holes():
    assert ELECTRON_MOBILITY.mu_low > HOLE_MOBILITY.mu_low
    assert ELECTRON_MOBILITY.v_sat > HOLE_MOBILITY.v_sat


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MobilityModel(mu_low=0.0)
    with pytest.raises(ValueError):
        MobilityModel(mu_low=0.06, v_sat=-1.0)


def test_narrow_width_factor_wide_limit():
    assert narrow_width_factor(1e-6) == pytest.approx(1.0, abs=0.02)


def test_narrow_width_factor_monotone():
    widths = [192e-9, 96e-9, 48e-9]
    factors = [narrow_width_factor(w) for w in widths]
    assert factors[0] > factors[1] > factors[2]
    assert all(0.0 < f <= 1.0 for f in factors)


def test_narrow_width_48nm_strongly_degraded():
    # The 4-channel fingers: markedly worse than the 192 nm channel.
    ratio = narrow_width_factor(48e-9) / narrow_width_factor(192e-9)
    assert ratio < 0.92


def test_narrow_width_rejects_bad_width():
    with pytest.raises(ValueError):
        narrow_width_factor(0.0)


def test_narrow_width_fraction_capped():
    # Extremely narrow channel: factor stays positive.
    assert narrow_width_factor(1e-9) > 0.0
