"""Controlled sources (VCVS / VCCS)."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, Resistor, dc_source, solve_dc
from repro.spice.elements.controlled import Vccs, Vcvs


def test_vcvs_amplifies():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 0.25))
    c.add(Resistor("Rin", "in", "0", 1e6))
    c.add(Vcvs("E1", "out", "0", "in", "0", gain=4.0))
    c.add(Resistor("RL", "out", "0", 1e3))
    op = solve_dc(c)
    assert op.voltage("out") == pytest.approx(1.0, rel=1e-9)


def test_vcvs_negative_gain():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 0.5))
    c.add(Resistor("Rin", "in", "0", 1e6))
    c.add(Vcvs("E1", "out", "0", "in", "0", gain=-2.0))
    c.add(Resistor("RL", "out", "0", 1e3))
    assert solve_dc(c).voltage("out") == pytest.approx(-1.0, rel=1e-9)


def test_vcvs_drives_load_stiffly():
    # Ideal VCVS output is independent of the load.
    for load in (10.0, 1e6):
        c = Circuit()
        c.add(dc_source("V1", "in", "0", 0.5))
        c.add(Resistor("Rin", "in", "0", 1e6))
        c.add(Vcvs("E1", "out", "0", "in", "0", gain=2.0))
        c.add(Resistor("RL", "out", "0", load))
        assert solve_dc(c).voltage("out") == pytest.approx(1.0, rel=1e-9)


def test_vccs_injects_current():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("Rin", "in", "0", 1e6))
    # gm = 1 mS from ground into out: i = gm * v(in) = 1 mA out of 'out'.
    c.add(Vccs("G1", "out", "0", "in", "0", transconductance=1e-3))
    c.add(Resistor("RL", "out", "0", 1e3))
    op = solve_dc(c)
    # current flows out+ -> out-, pulling 'out' negative through RL
    assert op.voltage("out") == pytest.approx(-1.0, rel=1e-9)


def test_vccs_as_resistor():
    # A VCCS controlled by its own terminals is a conductance.
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "b", 1e3))
    c.add(Vccs("G1", "b", "0", "b", "0", transconductance=1e-3))
    op = solve_dc(c)
    assert op.voltage("b") == pytest.approx(0.5, rel=1e-6)


def test_zero_gain_rejected():
    with pytest.raises(NetlistError):
        Vcvs("E1", "a", "0", "b", "0", gain=0.0)
    with pytest.raises(NetlistError):
        Vccs("G1", "a", "0", "b", "0", transconductance=0.0)
