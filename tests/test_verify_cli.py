"""CLI and suite-runner front end (``python -m repro.verify``)."""

from __future__ import annotations

import json

import pytest

from repro.verify.cli import build_parser, main
from repro.verify.suites import SUITES, run_suite


def test_parser_defaults():
    options = build_parser().parse_args([])
    assert options.suite == "fast"
    assert not options.update_goldens
    assert not options.allow_widen
    assert options.report is None


def test_parser_rejects_unknown_suite(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--suite", "everything"])
    assert "invalid choice" in capsys.readouterr().err


def test_allow_widen_requires_update_goldens(capsys):
    assert main(["--allow-widen"]) == 2
    assert "--update-goldens" in capsys.readouterr().err


def test_invariants_suite_end_to_end(tmp_path, capsys):
    report_path = tmp_path / "verify_report.json"
    code = main(["--suite", "invariants",
                 "--report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "invariant.dd1d.continuity" in out
    document = json.loads(report_path.read_text())
    assert document["suite"] == "invariants"
    assert document["passed"] is True
    assert document["counts"]["fail"] == 0
    names = {c["name"] for c in document["checks"]}
    assert "invariant.compact.charge_conservation" in names


def test_quiet_mode_prints_one_line(capsys):
    code = main(["--suite", "invariants", "--quiet"])
    out = capsys.readouterr().out.strip().splitlines()
    assert code == 0
    assert len(out) == 1
    assert "PASS" in out[0]


def test_run_suite_rejects_unknown_name():
    from repro.errors import ReproError
    with pytest.raises(ReproError, match="unknown suite"):
        run_suite("everything")


def test_suite_names_cover_cli_choices():
    assert set(SUITES) == {"fast", "all", "goldens", "mms",
                           "invariants", "gates", "parity"}


def test_failing_check_sets_exit_code(tmp_path, monkeypatch, capsys):
    """A failed golden diff must fail the process (exit 1)."""
    from repro.verify import suites as suites_mod
    from repro.verify.report import CheckResult, STATUS_FAIL

    def fake_golden_checks(store=None, engine=None, pipeline=True):
        return [CheckResult(name="golden.broken", status=STATUS_FAIL,
                            detail="forced")]
    monkeypatch.setattr(suites_mod, "golden_checks",
                        fake_golden_checks)
    code = main(["--suite", "goldens",
                 "--goldens", str(tmp_path)])
    assert code == 1
    assert "golden.broken" in capsys.readouterr().out
