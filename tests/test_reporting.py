"""Tables, figures and paper reference data."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.extraction.results import ExtractionReport
from repro.reporting.figures import fig4_curves, fig5_series, render_csv
from repro.reporting.paper import (
    FIG5_REFERENCE,
    PAPER_REFERENCE,
    TABLE3_REFERENCE,
)
from repro.reporting.tables import render_table1, render_table2, render_table3


def test_table1_rows():
    text = render_table1()
    assert "t_Si [nm]\tSilicon Thickness\t7" in text
    assert "L_G [nm]\tLength of Gate\t24" in text
    assert "n_src [cm^-3]" in text


def test_table2_rows():
    text = render_table2()
    assert "LEVEL\tSpice model selector\t70" in text
    assert "SOIMOD" in text
    assert "TNOM" in text


def test_table3_render(extracted_nmos, extracted_pmos):
    report = ExtractionReport([extracted_nmos, extracted_pmos])
    text = render_table3(report)
    assert "IDVG" in text and "CV" in text


def test_fig4_panels(extracted_nmos):
    panels = fig4_curves(extracted_nmos)
    assert {"idvg_lin", "idvg_sat", "cv"} <= set(panels)
    idvd_panels = [k for k in panels if k.startswith("idvd@")]
    assert len(idvd_panels) == 4
    for panel in panels.values():
        assert panel["x"].shape == panel["tcad"].shape
        assert np.all(np.isfinite(panel["spice"]))


def test_fig4_spice_tracks_tcad(extracted_nmos):
    panels = fig4_curves(extracted_nmos)
    sat = panels["idvg_sat"]
    # On-current within 20% — the Figure 4 overlay quality.
    assert sat["spice"][-1] == pytest.approx(sat["tcad"][-1], rel=0.2)


def test_fig5_series_structure():
    from repro.cells.variants import DeviceVariant
    from repro.ppa.runner import CellPPA
    from repro.ppa.comparison import PpaComparison
    rows = [CellPPA("INV1X1", v, 1e-11, 1e-6, 1e-14, 2e-14)
            for v in DeviceVariant]
    comp = PpaComparison.from_results(rows)
    series = fig5_series(comp, "delay", scale=1e12)
    assert series["cells"] == ["INV1X1"]
    assert series["2D"] == [pytest.approx(10.0)]


def test_render_csv():
    text = render_csv({"x": [1, 2], "y": [3.5, 4.5]})
    lines = text.splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1,3.5"


def test_render_csv_x_key_reorder():
    text = render_csv({"y": [1], "x": [2]}, x_key="x")
    assert text.splitlines()[0] == "x,y"
    with pytest.raises(SimulationError):
        render_csv({"y": [1]}, x_key="zz")


def test_render_csv_validates_lengths():
    with pytest.raises(SimulationError):
        render_csv({"a": [1, 2], "b": [1]})


def test_paper_reference_complete():
    assert set(TABLE3_REFERENCE) == {"IDVG", "IDVD", "CV"}
    for region in TABLE3_REFERENCE.values():
        assert set(region) == {"FOUR", "TWO", "ONE", "TRADITIONAL"}
    assert set(FIG5_REFERENCE) == {"delay", "power", "area"}
    assert PAPER_REFERENCE["text"]["extraction_error_bound_percent"] == 10.0


def test_paper_table3_all_below_bound():
    for region in TABLE3_REFERENCE.values():
        for device in region.values():
            for value in device.values():
                assert value < 10.0
