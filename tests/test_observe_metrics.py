"""Unit tests for the deterministic metrics registry."""

import pytest

from repro.errors import ReproError
from repro.observe import (
    EVALUATION_BUCKETS,
    ITERATION_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc(2.5)
    assert registry.counter("a").value == 3.5
    assert registry.snapshot()["a"] == {"type": "counter", "value": 3.5}


def test_gauge_last_value_wins():
    registry = MetricsRegistry()
    registry.gauge("g").set(1.0)
    registry.gauge("g").set(0.25)
    assert registry.snapshot()["g"] == {"type": "gauge", "value": 0.25}


def test_histogram_buckets_are_deterministic():
    # bucket placement depends only on the fixed edges, never the data
    histogram = Histogram("h", edges=(1, 2, 5))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
        histogram.observe(value)
    # bisect_left on upper bounds: bucket i holds values in (edge_{i-1},
    # edge_i]; the trailing bucket is the overflow
    assert histogram.counts == [2, 2, 1, 1]
    assert histogram.count == 6
    assert histogram.min == 0.5
    assert histogram.max == 100.0
    assert histogram.mean == pytest.approx(108.0 / 6)


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ReproError):
        Histogram("bad", edges=(5, 1))
    with pytest.raises(ReproError):
        Histogram("bad", edges=(1, 1, 2))


def test_histogram_edge_identity_enforced():
    registry = MetricsRegistry()
    registry.histogram("h", ITERATION_BUCKETS)
    with pytest.raises(ReproError):
        registry.histogram("h", EVALUATION_BUCKETS)


def test_snapshot_is_sorted_and_json_round_trips():
    import json
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc()
    registry.histogram("m", (1, 2)).observe(1)
    snapshot = registry.snapshot()
    # deterministic order: sorted within each instrument kind
    by_kind = {}
    for name, data in snapshot.items():
        by_kind.setdefault(data["type"], []).append(name)
    for names in by_kind.values():
        assert names == sorted(names)
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_merge_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry, n in ((a, 2), (b, 3)):
        registry.counter("c").inc(n)
        h = registry.histogram("h", (1, 10))
        for _ in range(n):
            h.observe(n)
        registry.gauge("g").set(n)
    a.merge(b.snapshot())
    assert a.counter("c").value == 5
    merged = a.histogram("h", (1, 10))
    assert merged.count == 5
    assert merged.total == 2 * 2 + 3 * 3
    assert merged.min == 2 and merged.max == 3
    # gauges take the incoming (more recent) value
    assert a.gauge("g").value == 3


def test_merge_is_order_independent_for_additive_instruments():
    def registry_with(values):
        registry = MetricsRegistry()
        for v in values:
            registry.counter("c").inc(v)
            registry.histogram("h", (1, 5, 25)).observe(v)
        return registry

    parts = [registry_with([1, 2]), registry_with([7]), registry_with([3, 30])]
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for part in parts:
        forward.merge(part.snapshot())
    for part in reversed(parts):
        backward.merge(part.snapshot())
    f, b = forward.snapshot(), backward.snapshot()
    assert f["c"] == b["c"]
    assert f["h"] == b["h"]


def test_merge_rejects_edge_mismatch():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", (1, 2)).observe(1)
    b.histogram("h", (1, 3)).observe(1)
    with pytest.raises(ReproError):
        a.merge(b.snapshot())
