"""Run journals: durable appends, torn-tail recovery, state replay,
pins, active markers and the graceful-shutdown primitives."""

import json
import os
import signal

import pytest

from repro.engine.durability import (
    DEFAULT_SHUTDOWN_GRACE,
    EXIT_INTERRUPTED,
    CancellationToken,
    GracefulShutdown,
    JournalState,
    RunJournal,
    SHUTDOWN_GRACE_ENV,
    active_pins,
    clear_active,
    expire_runs,
    list_runs,
    load_run,
    mark_active,
    new_run_id,
    replay_journal,
    resolve_shutdown_grace,
    run_dir,
    write_pins,
)
from repro.errors import ReproError


def test_run_ids_are_unique_and_sortable():
    ids = {new_run_id() for _ in range(32)}
    assert len(ids) == 32
    for run_id in ids:
        assert "/" not in run_id and not run_id.startswith(".")


def test_run_dir_rejects_traversal(tmp_path):
    with pytest.raises(ReproError):
        run_dir(tmp_path, "../escape")
    with pytest.raises(ReproError):
        run_dir(tmp_path, "")
    with pytest.raises(ReproError):
        run_dir(tmp_path, ".hidden")


def test_journal_append_replay_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    records = [{"type": "begin", "run_id": "r1", "flow": {"cells": []}},
               {"type": "task", "id": "a", "status": "done", "key": "k1"},
               {"type": "end", "status": "completed"}]
    for record in records:
        journal.append(record)
    journal.close()
    assert replay_journal(journal.path) == records


def test_replay_discards_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(path)
    journal.append({"type": "begin", "run_id": "r1"})
    journal.append({"type": "task", "id": "a", "status": "done"})
    journal.close()
    # simulate a crash mid-append: torn partial line at the end
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "task", "id": "b", "sta')
    records = replay_journal(path)
    assert len(records) == 2
    assert records[-1]["id"] == "a"


def test_replay_stops_at_non_dict_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text('{"type": "begin", "run_id": "r"}\n[1, 2]\n'
                    '{"type": "end"}\n', encoding="utf-8")
    records = replay_journal(path)
    assert len(records) == 1


def test_replay_missing_file_is_empty(tmp_path):
    assert replay_journal(tmp_path / "nope.jsonl") == []


def test_journal_state_last_record_wins():
    state = JournalState.from_records([
        {"type": "begin", "run_id": "r1", "flow": {"cells": ["INV1X1"]}},
        {"type": "task", "id": "a", "status": "failed", "key": "k1"},
        {"type": "resume"},
        {"type": "task", "id": "a", "status": "done", "key": "k1"},
        {"type": "task", "id": "b", "status": "done", "key": "k2"},
        {"type": "end", "status": "completed"},
    ])
    assert state.begun
    assert state.run_id == "r1"
    assert state.resumes == 1
    assert state.status == "completed"
    assert set(state.done()) == {"a", "b"}
    assert state.keys("done") == {"k1", "k2"}


def test_load_run_requires_begin_record(tmp_path):
    journal = RunJournal.for_run(tmp_path, "r1")
    journal.append({"type": "task", "id": "a", "status": "done"})
    journal.close()
    with pytest.raises(ReproError, match="begin"):
        load_run(tmp_path, "r1")
    with pytest.raises(ReproError, match="no journal"):
        load_run(tmp_path, "never-started")


def test_list_runs_summarises_journals(tmp_path):
    for run_id, status in (("r1", "completed"), ("r2", "interrupted")):
        journal = RunJournal.for_run(tmp_path, run_id)
        journal.append({"type": "begin", "run_id": run_id, "flow": {}})
        journal.append({"type": "task", "id": "a", "status": "done",
                        "key": "k"})
        journal.append({"type": "end", "status": status})
        journal.close()
    mark_active(run_dir(tmp_path, "r2"))
    runs = {r["run_id"]: r for r in list_runs(tmp_path)}
    assert runs["r1"]["status"] == "completed"
    assert not runs["r1"]["active"]
    assert runs["r2"]["status"] == "interrupted"
    assert runs["r2"]["active"]
    assert runs["r1"]["tasks_done"] == 1


def test_active_pins_honour_ttl(tmp_path):
    directory = run_dir(tmp_path, "r1")
    mark_active(directory)
    write_pins(directory, {"k1", "k2"})
    assert active_pins(tmp_path) == {"k1", "k2"}
    # an ancient marker stops pinning
    old = directory / "ACTIVE"
    os.utime(old, (1.0, 1.0))
    assert active_pins(tmp_path) == set()
    # clearing drops the pins immediately
    mark_active(directory)
    clear_active(directory)
    assert active_pins(tmp_path) == set()


def test_expire_runs_keeps_active_and_recent(tmp_path):
    stale = run_dir(tmp_path, "stale")
    live = run_dir(tmp_path, "live")
    for directory in (stale, live):
        journal = RunJournal(directory / RunJournal.FILENAME)
        journal.append({"type": "begin", "run_id": directory.name})
        journal.close()
    os.utime(stale, (1.0, 1.0))
    assert expire_runs(tmp_path) == 1
    assert not stale.exists()
    assert live.exists()
    # an ACTIVE marker protects even an ancient run
    mark_active(live)
    os.utime(live, (1.0, 1.0))
    assert expire_runs(tmp_path) == 0


def test_resolve_shutdown_grace(monkeypatch):
    monkeypatch.delenv(SHUTDOWN_GRACE_ENV, raising=False)
    assert resolve_shutdown_grace() == DEFAULT_SHUTDOWN_GRACE
    assert resolve_shutdown_grace(1.5) == 1.5
    monkeypatch.setenv(SHUTDOWN_GRACE_ENV, "2.5")
    assert resolve_shutdown_grace() == 2.5
    monkeypatch.setenv(SHUTDOWN_GRACE_ENV, "nope")
    with pytest.raises(ReproError):
        resolve_shutdown_grace()
    monkeypatch.setenv(SHUTDOWN_GRACE_ENV, "-1")
    with pytest.raises(ReproError):
        resolve_shutdown_grace()


def test_cancellation_token_reason():
    token = CancellationToken(grace=0.1)
    assert not token.is_set()
    assert token.reason == "cancelled"
    token.request(signal.SIGTERM)
    assert token.is_set()
    assert token.reason == "SIGTERM"
    # idempotent: the first signal wins
    token.request(signal.SIGINT)
    assert token.reason == "SIGTERM"


def test_graceful_shutdown_scope_installs_and_restores():
    previous = signal.getsignal(signal.SIGTERM)
    with GracefulShutdown(grace=0.1) as scope:
        assert scope.installed
        assert signal.getsignal(signal.SIGTERM) is not previous
        scope._handle(signal.SIGTERM, None)
        assert scope.token.is_set()
        # a second signal escalates
        with pytest.raises(KeyboardInterrupt):
            scope._handle(signal.SIGTERM, None)
    assert signal.getsignal(signal.SIGTERM) is previous


def test_exit_interrupted_is_ex_tempfail():
    assert EXIT_INTERRUPTED == 75


def test_journal_records_are_single_lines(tmp_path):
    journal = RunJournal(tmp_path / "j.jsonl")
    journal.append({"type": "task", "id": "a", "note": "multi\nline"})
    journal.close()
    lines = (tmp_path / "j.jsonl").read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["note"] == "multi\nline"
