"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.compact.subthreshold import effective_overdrive, soft_plus
from repro.geometry.primitives import Rect
from repro.spice.elements.vsource import PulseSpec
from repro.spice.waveform import Waveform
from repro.tcad.device import Polarity

voltages = st.floats(min_value=-1.2, max_value=1.2, allow_nan=False)
pos_voltages = st.floats(min_value=0.0, max_value=1.2, allow_nan=False)

_MODEL = BsimSoi4Lite(params=default_parameters(), polarity=Polarity.NMOS)


@given(vgs=pos_voltages, vds=pos_voltages)
@settings(max_examples=60, deadline=None)
def test_ids_nonnegative_forward(vgs, vds):
    # -1e-20 A tolerance: the smooth Vdseff clamp can leave a numerical
    # zero of either sign at vds = 0.
    assert _MODEL.ids(vgs, vds) >= -1e-20


@given(vgs=voltages, vds=voltages)
@settings(max_examples=60, deadline=None)
def test_source_drain_exchange_antisymmetry(vgs, vds):
    """I(vgs, vds) = -I(vgd, -vds) — the fundamental symmetry."""
    forward = _MODEL.ids(vgs, vds)
    exchanged = _MODEL.ids(vgs - vds, -vds)
    assert np.isclose(forward, -exchanged, rtol=1e-9, atol=1e-21)


@given(vgs1=pos_voltages, vgs2=pos_voltages, vds=pos_voltages)
@settings(max_examples=60, deadline=None)
# vds << eps * Vdsat: the textbook Vdseff form cancelled to zero here,
# collapsing the higher-vgs current onto the leakage floor (fixed by
# the conjugate branch in compact.current.effective_vds).
@example(vgs1=0.5, vgs2=0.875, vds=1.5e-17)
def test_ids_monotone_in_vgs(vgs1, vgs2, vds):
    lo, hi = sorted((vgs1, vgs2))
    assert _MODEL.ids(hi, vds) >= _MODEL.ids(lo, vds) - 1e-21


@given(vgs=pos_voltages, vds1=pos_voltages, vds2=pos_voltages)
@settings(max_examples=60, deadline=None)
def test_ids_monotone_in_vds(vgs, vds1, vds2):
    lo, hi = sorted((vds1, vds2))
    assert _MODEL.ids(vgs, hi) >= _MODEL.ids(vgs, lo) - 1e-21


@given(vgs=voltages, vds=voltages)
@settings(max_examples=60, deadline=None)
def test_charges_conserve(vgs, vds):
    qg, qd, qs = _MODEL.charges(vgs, vds)
    assert abs(qg + qd + qs) < 1e-24


@given(x=st.floats(min_value=-50, max_value=50),
       scale=st.floats(min_value=1e-3, max_value=10.0))
@settings(max_examples=80, deadline=None)
def test_soft_plus_bounds(x, scale):
    """soft_plus is positive and above max(x, 0) by at most scale*ln2."""
    value = float(soft_plus(np.array(x), scale))
    assert value > 0.0
    assert value >= max(x, 0.0) - 1e-12
    assert value <= max(x, 0.0) + scale * np.log(2.0) + 1e-9


@given(vth=st.floats(min_value=0.1, max_value=0.6),
       n=st.floats(min_value=1.0, max_value=2.0),
       v1=voltages, v2=voltages)
@settings(max_examples=80, deadline=None)
def test_overdrive_monotone(vth, n, v1, v2):
    lo, hi = sorted((v1, v2))
    o_lo = float(effective_overdrive(lo, vth, n, 0.0257))
    o_hi = float(effective_overdrive(hi, vth, n, 0.0257))
    assert o_hi >= o_lo


@given(x0=st.floats(-1e-6, 1e-6), y0=st.floats(-1e-6, 1e-6),
       w=st.floats(1e-9, 1e-6), h=st.floats(1e-9, 1e-6),
       margin=st.floats(0.0, 1e-7))
@settings(max_examples=60, deadline=None)
def test_rect_expansion_grows_area(x0, y0, w, h, margin):
    rect = Rect(x0, y0, x0 + w, y0 + h)
    grown = rect.expanded(margin)
    assert grown.area >= rect.area
    assert grown.contains(rect)


@given(level=st.floats(0.05, 0.95))
@settings(max_examples=40, deadline=None)
def test_waveform_crossing_consistency(level):
    """Every detected crossing interpolates back to the level."""
    t = np.linspace(0.0, 1.0, 50)
    v = 0.5 + 0.5 * np.sin(8 * t)
    wf = Waveform(t, v)
    for crossing in wf.crossings(level):
        assert float(wf.value(crossing)) == np.float64(
            np.clip(level, v.min(), v.max())) or abs(
            float(wf.value(crossing)) - level) < 5e-3


@given(delay=st.floats(0.0, 1e-9), rise=st.floats(1e-12, 1e-10),
       width=st.floats(1e-10, 1e-9))
@settings(max_examples=60, deadline=None)
def test_pulse_bounded_by_levels(delay, rise, width):
    spec = PulseSpec(v1=0.0, v2=1.0, delay=delay, rise=rise, fall=rise,
                     width=width, period=2 * (width + 2 * rise) + 1e-10)
    for t in np.linspace(0.0, 5e-9, 97):
        value = spec.value(float(t))
        assert -1e-12 <= value <= 1.0 + 1e-12


@given(st.lists(st.floats(-1.0, 1.0), min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_waveform_mean_bounded(values):
    t = np.arange(len(values), dtype=float)
    wf = Waveform(t, np.array(values))
    assert min(values) - 1e-12 <= wf.mean() <= max(values) + 1e-12
