"""Unit tests for the span tracer, its exports and the observe= plumbing."""

import json
import os

import pytest

from repro import observe
from repro.observe import (
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Tracer,
    activate,
    chrome_trace,
    configure,
    get_tracer,
    maybe_activate,
    reset,
    resolve_tracer,
    summary_table,
)


@pytest.fixture(autouse=True)
def clean_tracer_state(monkeypatch):
    """Isolate each test from the env and the process-global tracer."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    reset()
    yield
    reset()


# ----------------------------------------------------------------------
# span recording and nesting
# ----------------------------------------------------------------------
def test_spans_nest_via_contextvars():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    by_name = {s["name"]: s for s in tracer.spans}
    # children record before parents (exit order), parents keep links
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0.0


def test_span_attributes_and_events():
    tracer = Tracer()
    with tracer.span("solve", device="NMOS") as span:
        span.set(iterations=7)
        tracer.event("checkpoint", step=3)
    record = tracer.spans[0]
    assert record["args"] == {"device": "NMOS", "iterations": 7}
    assert tracer.events[0]["name"] == "checkpoint"
    assert tracer.events[0]["parent"] == record["id"]


def test_span_records_exception_type():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    assert tracer.spans[0]["args"]["error"] == "ValueError"


def test_span_ids_carry_pid():
    tracer = Tracer()
    with tracer.span("s"):
        pass
    assert tracer.spans[0]["id"].startswith(f"{os.getpid()}-")


# ----------------------------------------------------------------------
# disabled mode
# ----------------------------------------------------------------------
def test_disabled_tracer_is_noop_singleton():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    # shared singletons: no per-call allocation on the disabled path
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
    assert NULL_TRACER.counter("a") is NULL_TRACER.histogram("b")
    with NULL_TRACER.span("a") as span:
        span.set(x=1)
    NULL_TRACER.counter("c").inc()
    NULL_TRACER.event("e")


# ----------------------------------------------------------------------
# resolution: env var, configure(), activate, observe=
# ----------------------------------------------------------------------
def test_env_var_enables_tracing(monkeypatch):
    monkeypatch.setenv(TRACE_ENV, "1")
    reset()
    assert isinstance(get_tracer(), Tracer)
    assert get_tracer() is get_tracer()


def test_env_var_value_is_export_dir(monkeypatch, tmp_path):
    monkeypatch.setenv(TRACE_ENV, str(tmp_path / "traces"))
    reset()
    tracer = get_tracer()
    assert isinstance(tracer, Tracer)
    assert tracer.out_dir == tmp_path / "traces"


def test_env_var_false_values_disable(monkeypatch):
    for value in ("0", "false", "off", "no"):
        monkeypatch.setenv(TRACE_ENV, value)
        reset()
        assert get_tracer() is NULL_TRACER


def test_configure_and_reset():
    tracer = configure(enabled=True)
    assert get_tracer() is tracer
    assert configure(enabled=False) is NULL_TRACER
    reset()
    assert get_tracer() is NULL_TRACER


def test_activate_scopes_to_context():
    tracer = Tracer()
    with activate(tracer):
        assert get_tracer() is tracer
        inner = Tracer()
        with activate(inner):
            assert get_tracer() is inner
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_maybe_activate_none_inherits():
    ambient = Tracer()
    with activate(ambient):
        with maybe_activate(None) as tracer:
            assert tracer is ambient
        with maybe_activate(True) as tracer:
            assert isinstance(tracer, Tracer) and tracer is not ambient
        with maybe_activate(False) as tracer:
            assert tracer is NULL_TRACER
        assert get_tracer() is ambient


def test_resolve_tracer_accepts_all_spellings(tmp_path):
    assert resolve_tracer(False) is NULL_TRACER
    assert isinstance(resolve_tracer(True), Tracer)
    path_tracer = resolve_tracer(tmp_path / "out")
    assert path_tracer.out_dir == tmp_path / "out"
    existing = Tracer()
    assert resolve_tracer(existing) is existing
    assert resolve_tracer(NULL_TRACER) is NULL_TRACER
    with pytest.raises(TypeError):
        resolve_tracer(42)


# ----------------------------------------------------------------------
# cross-process merge
# ----------------------------------------------------------------------
def test_merge_records_reroots_worker_spans():
    parent = Tracer()
    worker = Tracer()
    worker._pid = os.getpid() + 1  # simulate a different process
    with worker.span("task"):
        with worker.span("step"):
            pass
    worker.counter("work").inc(3)

    with parent.span("engine.run") as run_span:
        parent.merge_records(worker.export_records())

    by_name = {s["name"]: s for s in parent.spans}
    assert by_name["task"]["parent"] == run_span.span_id
    assert by_name["step"]["parent"] == by_name["task"]["id"]
    assert parent.metrics.counter("work").value == 3


def test_merge_records_explicit_parent():
    parent = Tracer()
    worker = Tracer()
    with worker.span("task"):
        pass
    parent.merge_records(worker.export_records(), parent_id="root-1")
    assert parent.spans[0]["parent"] == "root-1"


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
def _traced_tracer():
    tracer = Tracer()
    with tracer.span("outer", kind="demo"):
        with tracer.span("inner"):
            pass
        tracer.event("tick", n=1)
    tracer.counter("solves").inc(4)
    tracer.gauge("rate").set(0.5)
    tracer.histogram("iters", (1, 5, 10)).observe(3)
    return tracer


def test_chrome_trace_is_valid_and_complete(tmp_path):
    tracer = _traced_tracer()
    data = json.loads(json.dumps(chrome_trace(tracer)))
    events = data["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"X", "i", "M"} <= phases
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    for event in complete:
        assert event["dur"] >= 0
        assert isinstance(event["ts"], (int, float))
    path = tracer.write_chrome_trace(tmp_path / "trace.json")
    assert json.loads(path.read_text())["traceEvents"]


def test_jsonl_export_is_one_object_per_line(tmp_path):
    tracer = _traced_tracer()
    path = tracer.write_jsonl(tmp_path / "events.jsonl")
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    kinds = {r["kind"] for r in records}
    assert {"span", "event", "metric"} <= kinds


def test_summary_table_lists_spans_and_metrics():
    summary = summary_table(_traced_tracer())
    for needle in ("outer", "inner", "solves", "rate", "iters"):
        assert needle in summary


def test_export_all_writes_three_files(tmp_path):
    tracer = _traced_tracer()
    tracer.out_dir = tmp_path / "exports"
    written = tracer.export_all()
    assert sorted(p.name for p in written) == \
        ["events.jsonl", "summary.txt", "trace.json"]
    for path in written:
        assert path.exists() and path.stat().st_size > 0


def test_observe_module_reexports_everything():
    for name in observe.__all__:
        assert hasattr(observe, name), name


def test_instrumented_hot_path_records_under_active_tracer():
    # one cheap real solve: the 1-D Poisson instrumentation must appear
    from repro.tcad.poisson1d import Poisson1D, StackSpec

    solver = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    tracer = Tracer()
    with activate(tracer):
        solver.solve(v_gate=0.5)
    snapshot = tracer.metrics.snapshot()
    assert snapshot["tcad.poisson1d.solves"]["value"] == 1
    assert snapshot["tcad.poisson1d.iterations"]["value"] >= 1
    assert snapshot["tcad.poisson1d.iterations_per_solve"]["count"] == 1
    # and with no tracer active, the same solve records nothing
    solver.solve(v_gate=0.5)
    assert snapshot == tracer.metrics.snapshot()
