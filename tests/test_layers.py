"""M3D layer stack (Figure 1)."""

import pytest

from repro.errors import ReproError
from repro.geometry.layers import Layer, LayerRole, LayerStack, build_m3d_stack
from repro.geometry.process import DEFAULT_PROCESS
from repro.materials import SILICON, SILICON_DIOXIDE


@pytest.fixture(scope="module")
def stack():
    return build_m3d_stack(DEFAULT_PROCESS)


def test_two_active_layers(stack):
    actives = [l for l in stack.layers if l.role is LayerRole.ACTIVE]
    assert len(actives) == 2
    assert {l.tier for l in actives} == {0, 1}


def test_active_thickness_is_film_thickness(stack):
    assert stack.find("top_active").thickness == pytest.approx(7e-9)
    assert stack.find("bottom_active").thickness == pytest.approx(7e-9)


def test_box_layers_use_table1_thickness(stack):
    assert stack.find("top_box").thickness == pytest.approx(100e-9)
    assert stack.find("bottom_box").material is SILICON_DIOXIDE


def test_layers_ordered_bottom_to_top(stack):
    assert stack.z_of("bottom_active") < stack.z_of("top_active")
    assert stack.z_of("m1") < stack.z_of("m2")


def test_tier_partition(stack):
    bottom = stack.tier_layers(0)
    top = stack.tier_layers(1)
    assert len(bottom) + len(top) == len(stack.layers)
    assert all(l.tier == 0 for l in bottom)


def test_miv_span_positive_and_submicron(stack):
    span = stack.miv_span()
    assert 0 < span < 1e-6


def test_total_thickness(stack):
    assert stack.total_thickness == pytest.approx(
        sum(l.thickness for l in stack.layers))


def test_unknown_layer_raises(stack):
    with pytest.raises(ReproError):
        stack.find("nonexistent")
    with pytest.raises(ReproError):
        stack.z_of("nonexistent")


def test_duplicate_layer_names_rejected():
    layer = Layer("x", LayerRole.BOX, SILICON_DIOXIDE, 1e-9, 0)
    with pytest.raises(ReproError):
        LayerStack((layer, layer))


def test_bad_layer_parameters_rejected():
    with pytest.raises(ReproError):
        Layer("x", LayerRole.BOX, SILICON_DIOXIDE, 0.0, 0)
    with pytest.raises(ReproError):
        Layer("x", LayerRole.ACTIVE, SILICON, 1e-9, 2)
