"""Shared fixtures.

Expensive artefacts (TCAD characterisation, extraction, cell transients)
are session-scoped and shared across test modules; everything else is
cheap enough to build per test.
"""

from __future__ import annotations

import pytest

pytest_plugins = ("repro.verify.plugin",)

from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.engine import reset_default_engine
from repro.engine.cache import CACHE_DIR_ENV
from repro.extraction.flow import ExtractionFlow
from repro.extraction.targets import cached_targets
from repro.geometry.process import DEFAULT_PROCESS
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant


@pytest.fixture(scope="session", autouse=True)
def _hermetic_engine_cache(tmp_path_factory):
    """Point the engine's disk store at a per-session directory.

    Keeps the suite hermetic: no artefacts are read from (or written
    to) the user-level ``~/.cache/repro`` store, while the disk layer
    itself still gets exercised.
    """
    import os
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("engine-cache"))
    reset_default_engine()
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
    reset_default_engine()


@pytest.fixture(scope="session")
def process():
    """The paper's Table I process."""
    return DEFAULT_PROCESS


@pytest.fixture(scope="session")
def nmos_traditional():
    """Traditional 2-D FDSOI NMOS device design."""
    return design_for_variant(ChannelCount.TRADITIONAL, Polarity.NMOS)


@pytest.fixture(scope="session")
def pmos_traditional():
    """Traditional 2-D FDSOI PMOS device design."""
    return design_for_variant(ChannelCount.TRADITIONAL, Polarity.PMOS)


@pytest.fixture(scope="session")
def nmos_targets():
    """TCAD characterisation of the traditional NMOS (cached)."""
    return cached_targets(ChannelCount.TRADITIONAL, Polarity.NMOS)


@pytest.fixture(scope="session")
def pmos_targets():
    """TCAD characterisation of the traditional PMOS (cached)."""
    return cached_targets(ChannelCount.TRADITIONAL, Polarity.PMOS)


@pytest.fixture(scope="session")
def extracted_nmos(nmos_targets):
    """Extraction result for the traditional NMOS."""
    return ExtractionFlow().run(nmos_targets)


@pytest.fixture(scope="session")
def extracted_pmos(pmos_targets):
    """Extraction result for the traditional PMOS."""
    return ExtractionFlow().run(pmos_targets)


@pytest.fixture(scope="session")
def model_set_2d():
    """Extracted (nmos, pmos) models of the 2-D baseline."""
    return extracted_model_set(DeviceVariant.TWO_D)


@pytest.fixture(scope="session")
def model_set_2ch():
    """Extracted (nmos, pmos) models of the 2-channel variant."""
    return extracted_model_set(DeviceVariant.MIV_2CH)


@pytest.fixture(scope="session")
def model_sets():
    """Extracted model sets for every variant, built lazily by name."""
    cache = {}

    def get(variant: DeviceVariant):
        if variant not in cache:
            cache[variant] = extracted_model_set(variant)
        return cache[variant]

    return get
