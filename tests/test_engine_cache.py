"""The two-layer artifact cache: memory identity, disk round-trips,
version invalidation and directory resolution."""

import json

import pytest

from repro.engine.cache import CACHE_DIR_ENV, ArtifactCache, resolve_cache_dir
from repro.engine.stages import StageDef


def _stage(version=1, persistent=True):
    codec = dict(encode=lambda art: {"value": art["value"]},
                 decode=lambda data: {"value": data["value"]})
    return StageDef(name="toy", version=version,
                    compute=lambda payload, deps: None,
                    **(codec if persistent else {}))


def test_memory_layer_returns_identical_object(tmp_path):
    cache = ArtifactCache(cache_dir=tmp_path)
    artifact = {"value": 42.0}
    cache.put("k1", _stage(), artifact)
    hit, layer = cache.get("k1", _stage())
    assert hit is artifact
    assert layer == "memory"


def test_disk_layer_roundtrips_across_instances(tmp_path):
    stage = _stage()
    ArtifactCache(cache_dir=tmp_path).put("k1", stage, {"value": 0.1})
    fresh = ArtifactCache(cache_dir=tmp_path)
    hit, layer = fresh.get("k1", stage)
    assert layer == "disk"
    assert hit == {"value": 0.1}
    # and it is now memory-resident
    again, layer2 = fresh.get("k1", stage)
    assert layer2 == "memory"
    assert again is hit


def test_stage_version_bump_invalidates_disk_artifacts(tmp_path):
    ArtifactCache(cache_dir=tmp_path).put("k1", _stage(version=1),
                                          {"value": 1.0})
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1",
                                                       _stage(version=2))
    assert hit is None and layer is None


def test_corrupt_disk_entry_is_a_miss_not_an_error(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    path = tmp_path / "toy" / "k1.json"
    path.write_text("{not json", encoding="utf-8")
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1", stage)
    assert hit is None and layer is None


def test_non_persistent_stage_stays_in_memory_only(tmp_path):
    stage = _stage(persistent=False)
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    assert not (tmp_path / "toy").exists()
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1", stage)
    assert hit is None


def test_disk_store_is_valid_json_with_metadata(tmp_path):
    stage = _stage()
    ArtifactCache(cache_dir=tmp_path).put("deadbeef", stage, {"value": 2.5})
    record = json.loads((tmp_path / "toy" / "deadbeef.json").read_text())
    assert record["stage"] == "toy"
    assert record["version"] == 1
    assert record["key"] == "deadbeef"
    assert record["artifact"] == {"value": 2.5}


def test_stats_counters(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.get("missing", stage)
    cache.put("k1", stage, {"value": 1.0})
    cache.get("k1", stage)
    assert cache.stats() == {"hits_memory": 1, "hits_disk": 0, "misses": 1}


def test_cache_dir_resolution(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    assert resolve_cache_dir() == tmp_path / "env"
    assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"
    monkeypatch.setenv(CACHE_DIR_ENV, "")
    assert resolve_cache_dir() is None
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert resolve_cache_dir().name == "repro"


def test_empty_env_disables_disk_layer(monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, "")
    cache = ArtifactCache()
    assert cache.cache_dir is None
    stage = _stage()
    cache.put("k1", stage, {"value": 1.0})  # must not raise
    hit, layer = cache.get("k1", stage)
    assert layer == "memory"


def test_clear_memory_keeps_disk(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    cache.clear_memory()
    hit, layer = cache.get("k1", stage)
    assert layer == "disk"
    assert hit == {"value": 1.0}
