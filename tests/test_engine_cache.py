"""The two-layer artifact cache: memory identity, disk round-trips,
version invalidation and directory resolution."""

import json

import pytest

from repro.engine.cache import CACHE_DIR_ENV, ArtifactCache, resolve_cache_dir
from repro.engine.stages import StageDef


def _stage(version=1, persistent=True):
    codec = dict(encode=lambda art: {"value": art["value"]},
                 decode=lambda data: {"value": data["value"]})
    return StageDef(name="toy", version=version,
                    compute=lambda payload, deps: None,
                    **(codec if persistent else {}))


def test_memory_layer_returns_identical_object(tmp_path):
    cache = ArtifactCache(cache_dir=tmp_path)
    artifact = {"value": 42.0}
    cache.put("k1", _stage(), artifact)
    hit, layer = cache.get("k1", _stage())
    assert hit is artifact
    assert layer == "memory"


def test_disk_layer_roundtrips_across_instances(tmp_path):
    stage = _stage()
    ArtifactCache(cache_dir=tmp_path).put("k1", stage, {"value": 0.1})
    fresh = ArtifactCache(cache_dir=tmp_path)
    hit, layer = fresh.get("k1", stage)
    assert layer == "disk"
    assert hit == {"value": 0.1}
    # and it is now memory-resident
    again, layer2 = fresh.get("k1", stage)
    assert layer2 == "memory"
    assert again is hit


def test_stage_version_bump_invalidates_disk_artifacts(tmp_path):
    ArtifactCache(cache_dir=tmp_path).put("k1", _stage(version=1),
                                          {"value": 1.0})
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1",
                                                       _stage(version=2))
    assert hit is None and layer is None


def test_corrupt_disk_entry_is_a_miss_not_an_error(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    path = tmp_path / "toy" / "k1.json"
    path.write_text("{not json", encoding="utf-8")
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1", stage)
    assert hit is None and layer is None


def _write_entry(tmp_path, key="k1", **overrides):
    stage = _stage()
    ArtifactCache(cache_dir=tmp_path).put(key, stage, {"value": 1.0})
    path = tmp_path / "toy" / f"{key}.json"
    if overrides:
        record = json.loads(path.read_text())
        record.update(overrides)
        path.write_text(json.dumps(record), encoding="utf-8")
    return path


@pytest.mark.parametrize("mangle", [
    lambda p: p.write_text("{\"format\": 1, \"stage\":", encoding="utf-8"),
    lambda p: p.write_text("[1, 2, 3]", encoding="utf-8"),
    lambda p: p.write_text(json.dumps(
        json.loads(p.read_text()) | {"format": 999}), encoding="utf-8"),
    lambda p: p.write_text(json.dumps(
        json.loads(p.read_text()) | {"stage": "other"}), encoding="utf-8"),
    lambda p: p.write_text(json.dumps(
        {k: v for k, v in json.loads(p.read_text()).items()
         if k != "artifact"}), encoding="utf-8"),
    lambda p: p.write_text(json.dumps(
        json.loads(p.read_text()) | {"artifact": {"wrong": 1}}),
        encoding="utf-8"),
], ids=["truncated-json", "non-dict", "wrong-format", "wrong-stage",
        "missing-artifact", "undecodable-body"])
def test_corruption_matrix_quarantines_entry(tmp_path, mangle):
    stage = _stage()
    path = _write_entry(tmp_path)
    mangle(path)
    cache = ArtifactCache(cache_dir=tmp_path)
    hit, layer = cache.get("k1", stage)
    assert hit is None and layer is None
    # Quarantined: the bad file is gone, so a second lookup is a clean
    # miss that does not re-count corruption.
    assert not path.exists()
    assert cache.corrupt == 1
    again, _ = cache.get("k1", stage)
    assert again is None
    assert cache.corrupt == 1
    assert cache.misses == 2


def test_unreadable_entry_is_miss_without_quarantine_crash(tmp_path):
    import os as _os
    stage = _stage()
    path = _write_entry(tmp_path)
    _os.chmod(path, 0o000)
    try:
        if _os.access(path, _os.R_OK):   # running as root: chmod no-op
            pytest.skip("cannot make file unreadable in this environment")
        cache = ArtifactCache(cache_dir=tmp_path)
        hit, layer = cache.get("k1", stage)
        assert hit is None and layer is None
    finally:
        _os.chmod(path, 0o644)


def test_stale_version_entry_is_quarantined_once(tmp_path):
    path = _write_entry(tmp_path)
    cache = ArtifactCache(cache_dir=tmp_path)
    hit, layer = cache.get("k1", _stage(version=2))
    assert hit is None and layer is None
    assert not path.exists()
    assert cache.corrupt == 1


def test_put_write_error_degrades_to_memory_only(tmp_path, monkeypatch):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path / "store")

    def boom(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.engine.cache.tempfile.mkstemp", boom)
    cache.put("k1", stage, {"value": 1.0})   # must not raise
    assert cache.write_errors == 1
    hit, layer = cache.get("k1", stage)
    assert layer == "memory" and hit == {"value": 1.0}
    monkeypatch.undo()
    # Disk writes stay disabled for the rest of the run...
    cache.put("k2", stage, {"value": 2.0})
    assert not (tmp_path / "store" / "toy" / "k2.json").exists()
    assert cache.write_errors == 1
    # ...but a fresh cache (fresh run) writes again.
    fresh = ArtifactCache(cache_dir=tmp_path / "store")
    fresh.put("k3", stage, {"value": 3.0})
    assert (tmp_path / "store" / "toy" / "k3.json").exists()


def test_non_persistent_stage_stays_in_memory_only(tmp_path):
    stage = _stage(persistent=False)
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    assert not (tmp_path / "toy").exists()
    hit, layer = ArtifactCache(cache_dir=tmp_path).get("k1", stage)
    assert hit is None


def test_disk_store_is_valid_json_with_metadata(tmp_path):
    stage = _stage()
    ArtifactCache(cache_dir=tmp_path).put("deadbeef", stage, {"value": 2.5})
    record = json.loads((tmp_path / "toy" / "deadbeef.json").read_text())
    assert record["stage"] == "toy"
    assert record["version"] == 1
    assert record["key"] == "deadbeef"
    assert record["artifact"] == {"value": 2.5}


def test_stats_counters(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.get("missing", stage)
    cache.put("k1", stage, {"value": 1.0})
    cache.get("k1", stage)
    stats = cache.stats()
    core = {k: stats[k] for k in ("hits_memory", "hits_disk", "misses",
                                  "corrupt", "write_errors")}
    assert core == {"hits_memory": 1, "hits_disk": 0, "misses": 1,
                    "corrupt": 0, "write_errors": 0}
    # durability counters all start at zero
    assert stats["evicted"] == 0
    assert stats["quarantine_expired"] == 0
    assert stats["lock_timeouts"] == 0
    assert stats["flight_timeouts"] == 0


def test_cache_dir_resolution(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    assert resolve_cache_dir() == tmp_path / "env"
    assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"
    monkeypatch.setenv(CACHE_DIR_ENV, "")
    assert resolve_cache_dir() is None
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert resolve_cache_dir().name == "repro"


def test_empty_env_disables_disk_layer(monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, "")
    cache = ArtifactCache()
    assert cache.cache_dir is None
    stage = _stage()
    cache.put("k1", stage, {"value": 1.0})  # must not raise
    hit, layer = cache.get("k1", stage)
    assert layer == "memory"


def test_clear_memory_keeps_disk(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    cache.clear_memory()
    hit, layer = cache.get("k1", stage)
    assert layer == "disk"
    assert hit == {"value": 1.0}
