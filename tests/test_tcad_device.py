"""Device designs: variant physics enters here."""

import pytest

from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant


@pytest.fixture(scope="module")
def devices():
    return {v: design_for_variant(v, Polarity.NMOS) for v in ChannelCount}


def test_polarity_signs():
    assert Polarity.NMOS.sign == 1
    assert Polarity.PMOS.sign == -1


def test_all_variants_same_electrical_width(devices):
    for device in devices.values():
        assert device.width == pytest.approx(192e-9)
        assert device.l_gate == pytest.approx(24e-9)


def test_nmos_current_sign(devices):
    dev = devices[ChannelCount.TRADITIONAL]
    assert dev.ids(1.0, 1.0) > 0


def test_pmos_current_sign():
    dev = design_for_variant(ChannelCount.TRADITIONAL, Polarity.PMOS)
    assert dev.ids(-1.0, -1.0) < 0


def test_pmos_mirrors_nmos_shape():
    pdev = design_for_variant(ChannelCount.TRADITIONAL, Polarity.PMOS)
    assert pdev.ids_magnitude(1.0, 1.0) == pytest.approx(
        abs(pdev.ids(-1.0, -1.0)), rel=1e-9)


def test_pmos_weaker_than_nmos(devices):
    ndev = devices[ChannelCount.TRADITIONAL]
    pdev = design_for_variant(ChannelCount.TRADITIONAL, Polarity.PMOS)
    assert pdev.ids_magnitude(1.0, 1.0) < ndev.ids_magnitude(1.0, 1.0)


def test_variant_drive_ordering(devices):
    """The calibrated TCAD drive ordering the PPA trends rest on:
    1-ch and 2-ch slightly stronger than traditional, 4-ch weaker."""
    base = devices[ChannelCount.TRADITIONAL].ids_magnitude(1.0, 1.0)
    one = devices[ChannelCount.ONE].ids_magnitude(1.0, 1.0) / base
    two = devices[ChannelCount.TWO].ids_magnitude(1.0, 1.0) / base
    four = devices[ChannelCount.FOUR].ids_magnitude(1.0, 1.0) / base
    assert 1.02 < one < 1.12
    assert 1.02 < two < 1.12
    assert 0.85 < four < 0.99


def test_only_four_channel_stretches_length(devices):
    for variant, device in devices.items():
        if variant is ChannelCount.FOUR:
            assert device.engine.l_eff_factor > 1.0
        else:
            assert device.engine.l_eff_factor == 1.0


def test_miv_variants_have_lower_flatband(devices):
    base_fb = devices[ChannelCount.TRADITIONAL].engine.poisson.stack.flatband
    for variant in (ChannelCount.ONE, ChannelCount.TWO, ChannelCount.FOUR):
        assert devices[variant].engine.poisson.stack.flatband < base_fb


def test_narrow_channels_have_lower_mobility(devices):
    mu = {v: d.engine.mobility.mu_low for v, d in devices.items()}
    assert mu[ChannelCount.FOUR] < mu[ChannelCount.TWO] < \
        mu[ChannelCount.ONE] == mu[ChannelCount.TRADITIONAL]


def test_gate_capacitance_positive_and_ordered(devices):
    for device in devices.values():
        assert device.gate_capacitance(1.0) > device.gate_capacitance(0.0) > 0


def test_four_channel_extra_sd_resistance(devices):
    assert (devices[ChannelCount.FOUR].sd_resistance >
            devices[ChannelCount.TRADITIONAL].sd_resistance)


def test_describe_keys(devices):
    info = devices[ChannelCount.TWO].describe()
    for key in ("width_nm", "l_gate_nm", "l_eff_nm", "sd_resistance_ohm",
                "n_channels"):
        assert key in info
    assert info["n_channels"] == 2.0


def test_miv_fringe_cap_scales_with_faces(devices):
    c1 = devices[ChannelCount.ONE].miv_fringe_cap
    c2 = devices[ChannelCount.TWO].miv_fringe_cap
    c4 = devices[ChannelCount.FOUR].miv_fringe_cap
    assert devices[ChannelCount.TRADITIONAL].miv_fringe_cap == 0.0
    assert c2 == pytest.approx(2 * c1)
    assert c4 == pytest.approx(4 * c1)
