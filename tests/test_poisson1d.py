"""Vertical Poisson solver: analytic limits and device behaviour."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.materials import SILICON_DIOXIDE
from repro.tcad.poisson1d import Poisson1D, StackSpec


@pytest.fixture(scope="module")
def solver():
    return Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9,
                               flatband=0.0))


def test_flat_potential_at_zero_bias_is_near_zero(solver):
    sol = solver.solve(0.0)
    # Undoped film, zero flatband: potential stays within tens of mV.
    assert np.max(np.abs(sol.psi)) < 0.1


def test_boundary_conditions(solver):
    sol = solver.solve(0.7)
    assert sol.psi[0] == pytest.approx(0.7)
    assert sol.psi[-1] == pytest.approx(0.0)


def test_inversion_charge_increases_with_gate_voltage(solver):
    charges = [solver.inversion_charge(v) for v in (0.2, 0.5, 0.8, 1.1)]
    assert all(q2 > q1 for q1, q2 in zip(charges, charges[1:]))


def test_subthreshold_charge_is_exponential(solver):
    # In weak inversion, Q doubles every vt*ln2 of gate voltage.
    q1 = solver.inversion_charge(0.05)
    q2 = solver.inversion_charge(0.05 + solver.vt * np.log(10))
    assert q2 / q1 == pytest.approx(10.0, rel=0.1)


def test_strong_inversion_slope_approaches_cox(solver):
    # dQ/dVg -> Cox (series with inversion-layer cap, so slightly less).
    cox = solver.oxide_capacitance()
    q1 = solver.inversion_charge(1.0)
    q2 = solver.inversion_charge(1.05)
    slope = (q2 - q1) / 0.05
    assert 0.5 * cox < slope < cox


def test_channel_potential_reduces_charge(solver):
    q0 = solver.inversion_charge(0.8, 0.0)
    q1 = solver.inversion_charge(0.8, 0.3)
    assert q1 < q0


def test_gate_capacitance_limits(solver):
    cox = solver.oxide_capacitance()
    c_strong = solver.gate_capacitance(1.1)
    c_weak = solver.gate_capacitance(-0.3)
    assert c_strong > 0.5 * cox
    assert c_strong < cox * 1.01
    # Fully-depleted film in weak inversion: series Cox + film + BOX cap
    # is far below Cox.
    assert c_weak < 0.2 * cox


def test_oxide_capacitance_value(solver):
    expected = SILICON_DIOXIDE.permittivity / 1e-9
    assert solver.oxide_capacitance() == pytest.approx(expected)


def test_flatband_shifts_charge_onset():
    shifted = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9,
                                  flatband=0.2))
    base = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9,
                               flatband=0.0))
    # Same charge at vg and vg + flatband.
    assert shifted.inversion_charge(0.7) == pytest.approx(
        base.inversion_charge(0.5), rel=1e-3)


def test_warm_start_converges_faster(solver):
    cold = solver.solve(0.9)
    warm = solver.solve(0.91, psi0=cold.psi)
    assert warm.iterations <= cold.iterations


def test_thinner_oxide_gives_more_charge():
    thin = Poisson1D(StackSpec(t_ox=0.8e-9, t_si=7e-9, t_box=100e-9))
    thick = Poisson1D(StackSpec(t_ox=1.2e-9, t_si=7e-9, t_box=100e-9))
    assert thin.inversion_charge(0.9) > thick.inversion_charge(0.9)


def test_surface_potential_tracks_gate_in_depletion(solver):
    s1 = solver.solve(0.1).surface_potential
    s2 = solver.solve(0.3).surface_potential
    assert s2 > s1


def test_back_bias_influences_charge(solver):
    # Positive back-plane bias helps the (n-type) channel: more charge.
    q0 = solver.solve(0.4, 0.0, v_back=0.0).q_inv
    q1 = solver.solve(0.4, 0.0, v_back=1.0).q_inv
    assert q1 > q0


def test_convergence_error_carries_diagnostics():
    bad = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    bad.MAX_ITERATIONS = 1
    with pytest.raises(ConvergenceError) as err:
        bad.solve(1.0)
    assert err.value.iterations == 1
