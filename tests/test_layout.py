"""Layout rules, row geometry, cell areas and the Figure 5(c) claims."""

import pytest

from repro.cells.library import all_cells, get_cell
from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.cell_layout import CellAreaModel
from repro.layout.device_footprint import row_geometry
from repro.layout.report import build_area_report
from repro.layout.rules import DesignRules


@pytest.fixture(scope="module")
def rules():
    return DesignRules()


@pytest.fixture(scope="module")
def model():
    return CellAreaModel()


@pytest.fixture(scope="module")
def report():
    return build_area_report()


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def test_rule_values(rules):
    assert rules.m1_track == pytest.approx(48e-9)
    assert rules.gate_column == pytest.approx(44e-9)
    assert rules.miv_outer == pytest.approx(27e-9)
    assert rules.miv_keepout_side == pytest.approx(75e-9)
    assert rules.transistor_pitch == pytest.approx(92e-9)


def test_row_width_formula(rules):
    assert rules.row_width(1) == pytest.approx(48e-9 + 92e-9)
    assert rules.row_width(3) == pytest.approx(48e-9 + 3 * 92e-9)
    with pytest.raises(LayoutError):
        rules.row_width(0)


# ---------------------------------------------------------------------------
# row geometry
# ---------------------------------------------------------------------------
def test_top_heights_ordering():
    heights = {v: row_geometry(v).top_height for v in DeviceVariant}
    assert heights[DeviceVariant.TWO_D] > heights[DeviceVariant.MIV_1CH] > \
        heights[DeviceVariant.MIV_2CH] > heights[DeviceVariant.MIV_4CH]


def test_bottom_height_same_for_all():
    bottoms = {row_geometry(v).bottom_height for v in DeviceVariant}
    assert len(bottoms) == 1


def test_four_channel_pitch_penalty():
    assert (row_geometry(DeviceVariant.MIV_4CH).top_pitch >
            row_geometry(DeviceVariant.TWO_D).top_pitch)


def test_two_d_top_height_includes_keepout():
    geo = row_geometry(DeviceVariant.TWO_D)
    # 192 active + 75 keep-out + 48 rail.
    assert geo.top_height == pytest.approx(315e-9)


# ---------------------------------------------------------------------------
# cell areas
# ---------------------------------------------------------------------------
def test_inverter_area_baseline(model):
    result = model.layout(get_cell("INV1X1"), DeviceVariant.TWO_D)
    assert result.width == pytest.approx(140e-9)
    assert result.height == pytest.approx(315e-9)
    assert result.cell_area == pytest.approx(140e-9 * 315e-9)


def test_area_grows_with_transistor_count(model):
    inv = model.layout(get_cell("INV1X1"), DeviceVariant.TWO_D)
    nand3 = model.layout(get_cell("NAND3X1"), DeviceVariant.TWO_D)
    assert nand3.cell_area > inv.cell_area


def test_substrate_area_is_sum_of_layers(model):
    result = model.layout(get_cell("NOR2X1"), DeviceVariant.MIV_2CH)
    assert result.substrate_area == pytest.approx(
        result.top_area + result.bottom_area)


def test_reduction_metric_validation(model):
    with pytest.raises(LayoutError):
        model.reduction_vs_2d(get_cell("INV1X1"), DeviceVariant.MIV_1CH,
                              metric="volume")


# ---------------------------------------------------------------------------
# Figure 5(c) claims
# ---------------------------------------------------------------------------
def test_every_miv_variant_reduces_cell_area(report):
    for cell in all_cells():
        for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                        DeviceVariant.MIV_4CH):
            assert report.reduction(cell.name, variant) > 0.0


def test_average_reductions_match_paper_shape(report):
    """Paper: 9% / 18% / 12% average; we check ordering and bands."""
    one = report.average_reduction(DeviceVariant.MIV_1CH)
    two = report.average_reduction(DeviceVariant.MIV_2CH)
    four = report.average_reduction(DeviceVariant.MIV_4CH)
    assert two == max(one, two, four)       # 2-ch saves the most
    assert one == min(one, two, four)       # 1-ch saves the least
    assert 0.05 < one < 0.12
    assert 0.12 < two < 0.20
    assert 0.08 < four < 0.17


def test_top_layer_reduction_approaches_31_percent(report):
    """The paper's 'total substrate area up to 31%' with independent
    placement: our top-layer bound for 4-ch lands in that region."""
    best = report.best_reduction(DeviceVariant.MIV_4CH, metric="top")
    assert 0.25 < best < 0.35


def test_area_report_render(report):
    text = report.render()
    assert "INV1X1" in text
    assert "avg reduction" in text


def test_area_units(report):
    area = report.area_um2("INV1X1", DeviceVariant.TWO_D)
    assert 0.01 < area < 0.1  # um^2 scale for a 7nm-class inverter


def test_reduction_unknown_metric(report):
    with pytest.raises(LayoutError):
        report.reduction("INV1X1", DeviceVariant.MIV_1CH, metric="bogus")
