"""Sensitization analysis used by the stimulus planner."""

import pytest

from repro.cells.library import get_cell
from repro.cells.logic import (
    first_sensitizing_assignment,
    is_inverting_path,
    sensitizing_assignments,
)
from repro.errors import CellLibraryError


def test_nand2_sensitization():
    cell = get_cell("NAND2X1")
    options = sensitizing_assignments(cell, "a")
    assert options == [{"b": True}]


def test_nor2_sensitization():
    cell = get_cell("NOR2X1")
    assert sensitizing_assignments(cell, "a") == [{"b": False}]


def test_inverter_always_sensitized():
    cell = get_cell("INV1X1")
    assert sensitizing_assignments(cell, "a") == [{}]


def test_xor_sensitized_under_all_assignments():
    cell = get_cell("XOR2X1")
    options = sensitizing_assignments(cell, "a")
    assert len(options) == 2  # b = 0 and b = 1 both toggle the output


def test_mux_select_needs_different_data():
    cell = get_cell("MUX2X1")
    options = sensitizing_assignments(cell, "s")
    for assignment in options:
        assert assignment["a"] != assignment["b"]


def test_mux_data_input_needs_selection():
    cell = get_cell("MUX2X1")
    for assignment in sensitizing_assignments(cell, "a"):
        assert assignment["s"] is True


def test_first_assignment_deterministic():
    cell = get_cell("NAND3X1")
    assert first_sensitizing_assignment(cell, "a") == {"b": True, "c": True}


def test_unknown_input_raises():
    with pytest.raises(CellLibraryError):
        sensitizing_assignments(get_cell("INV1X1"), "z")


def test_inverting_path_detection():
    nand = get_cell("NAND2X1")
    assert is_inverting_path(nand, "a", {"b": True})
    and2 = get_cell("AND2X1")
    assert not is_inverting_path(and2, "a", {"b": True})


def test_aoi_sensitization_of_c():
    cell = get_cell("AOI2X1")
    # c toggles output whenever (a and b) is false.
    options = sensitizing_assignments(cell, "c")
    assert {"a": False, "b": False} in options
    assert {"a": True, "b": True} not in options
