"""Delay / power measurement helpers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice import measure
from repro.spice.waveform import Waveform


def edge(t_cross, rise=True, t_span=4e-9, width=1e-11):
    """A single full-swing edge crossing 0.5 at t_cross."""
    t = np.array([0.0, t_cross - width, t_cross + width, t_span])
    v = np.array([0.0, 0.0, 1.0, 1.0]) if rise else \
        np.array([1.0, 1.0, 0.0, 0.0])
    return Waveform(t, v)


def test_single_delay_pairing():
    inp = edge(1e-9, rise=True)
    out = edge(1.05e-9, rise=False)
    delays = measure.propagation_delays(inp, out, 1.0)
    assert len(delays) == 1
    assert delays[0].delay == pytest.approx(0.05e-9, rel=1e-6)
    assert delays[0].in_direction == "rise"
    assert delays[0].out_direction == "fall"


def test_settle_skips_early_edges():
    inp = edge(1e-9)
    out = edge(1.05e-9, rise=False)
    assert measure.propagation_delays(inp, out, 1.0, settle=2e-9) == []


def test_average_delay_over_both_edges():
    t = np.array([0.0, 0.99e-9, 1.01e-9, 2.99e-9, 3.01e-9, 4e-9])
    vin = Waveform(t, np.array([0, 0, 1, 1, 0, 0]))
    vout = Waveform(t + 0.04e-9, np.array([1, 1, 0, 0, 1, 1]))
    avg = measure.average_propagation_delay(vin, vout, 1.0)
    assert avg == pytest.approx(0.04e-9, rel=0.05)


def test_no_pairs_raises():
    inp = edge(1e-9)
    flat = Waveform(np.array([0.0, 4e-9]), np.array([0.0, 0.0]))
    with pytest.raises(SimulationError):
        measure.average_propagation_delay(inp, flat, 1.0)


def test_output_after_next_input_edge_not_paired():
    # Output responds only after the second input edge: the first input
    # edge must not claim it.
    t_in = np.array([0.0, 0.99e-9, 1.01e-9, 1.99e-9, 2.01e-9, 4e-9])
    vin = Waveform(t_in, np.array([0, 0, 1, 1, 0, 0]))
    out = edge(2.05e-9, rise=True)
    delays = measure.propagation_delays(vin, out, 1.0)
    assert len(delays) == 1
    assert delays[0].t_in == pytest.approx(2.0e-9, rel=1e-3)


def test_average_power_constant_current():
    t = np.linspace(0.0, 1e-9, 11)
    current = Waveform(t, np.full_like(t, -1e-3))  # 1 mA drawn
    assert measure.average_power(current, 1.0) == pytest.approx(1e-3)


def test_average_power_window():
    t = np.linspace(0.0, 2e-9, 21)
    i = np.where(t < 1e-9, -1e-3, 0.0)
    wf = Waveform(t, i)
    p = measure.average_power(wf, 1.0, 0.0, 1e-9)
    assert p == pytest.approx(1e-3, rel=0.08)


def test_average_power_validation():
    t = np.linspace(0.0, 1e-9, 5)
    wf = Waveform(t, np.zeros_like(t))
    with pytest.raises(SimulationError):
        measure.average_power(wf, 0.0)


def test_energy():
    t = np.linspace(0.0, 1e-9, 11)
    wf = Waveform(t, np.full_like(t, -1e-3))
    e = measure.energy(wf, 1.0, 0.0, 1e-9)
    assert e == pytest.approx(1e-12)


def test_power_delay_product():
    assert measure.power_delay_product(1e-6, 1e-11) == pytest.approx(1e-17)
    with pytest.raises(SimulationError):
        measure.power_delay_product(-1.0, 1.0)
