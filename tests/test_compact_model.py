"""BsimSoi4Lite facade: DC, capacitance, charges, batching, polarity."""

import numpy as np
import pytest

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.errors import SimulationError
from repro.tcad.device import Polarity


@pytest.fixture(scope="module")
def nmos():
    return BsimSoi4Lite(params=default_parameters(), polarity=Polarity.NMOS)


@pytest.fixture(scope="module")
def pmos():
    return BsimSoi4Lite(params=default_parameters(), polarity=Polarity.PMOS)


def test_cox_from_tox(nmos):
    assert nmos.cox == pytest.approx(3.45e-2, rel=0.01)


def test_ids_monotone_in_vgs(nmos):
    vgs = np.linspace(0.0, 1.0, 11)
    ids = nmos.ids_magnitude(vgs, 1.0)
    assert np.all(np.diff(ids) > 0)


def test_ids_monotone_in_vds(nmos):
    vds = np.linspace(0.05, 1.0, 11)
    ids = nmos.ids_magnitude(0.8, vds)
    assert np.all(np.diff(ids) > 0)


def test_on_off_ratio(nmos):
    info = nmos.describe()
    assert info["ion"] / info["ioff"] > 1e4


def test_nmos_signs(nmos):
    assert nmos.ids(1.0, 1.0) > 0
    assert nmos.ids(1.0, -0.5) < 0  # reverse conduction


def test_pmos_signs(pmos):
    assert pmos.ids(-1.0, -1.0) < 0
    assert pmos.ids(0.0, -1.0) == pytest.approx(
        -pmos.ids_magnitude(0.0, 1.0), rel=1e-9)


def test_pmos_mirror_symmetry(nmos, pmos):
    assert pmos.ids(-0.8, -0.6) == pytest.approx(-nmos.ids(0.8, 0.6),
                                                 rel=1e-12)


def test_reverse_mode_source_drain_exchange(nmos):
    # I(vgs, -vds) = -I(vgs + vds, vds).
    assert nmos.ids(0.5, -0.4) == pytest.approx(-nmos.ids(0.9, 0.4),
                                                rel=1e-9)


def test_ids_batch_matches_scalar(nmos):
    vgs = np.array([0.3, 0.8, 1.0, 0.5])
    vds = np.array([1.0, 0.5, -0.3, 0.0])
    batch = nmos.ids_batch(vgs, vds)
    for i in range(4):
        assert batch[i] == pytest.approx(nmos.ids(float(vgs[i]),
                                                  float(vds[i])), rel=1e-9)


def test_ids_batch_pmos(pmos):
    vgs = np.array([-0.3, -0.8, -1.0])
    vds = np.array([-1.0, -0.5, 0.2])
    batch = pmos.ids_batch(vgs, vds)
    for i in range(3):
        assert batch[i] == pytest.approx(pmos.ids(float(vgs[i]),
                                                  float(vds[i])), rel=1e-9)


def test_cgg_monotone_rise(nmos):
    vg = np.linspace(-0.2, 1.2, 29)
    c = nmos.cgg(vg)
    assert np.all(np.diff(c) >= -1e-21)
    assert c[-1] > c[0] > 0


def test_charges_sum_to_zero(nmos):
    qg, qd, qs = nmos.charges(0.8, 0.5)
    assert qg + qd + qs == pytest.approx(0.0, abs=1e-25)


def test_charges_sum_to_zero_pmos(pmos):
    qg, qd, qs = pmos.charges(-0.8, -0.5)
    assert qg + qd + qs == pytest.approx(0.0, abs=1e-25)


def test_gate_charge_increases_with_vgs(nmos):
    qg1 = nmos.charges(0.2, 0.0)[0]
    qg2 = nmos.charges(1.0, 0.0)[0]
    assert qg2 > qg1


def test_charges_batch_matches_scalar(nmos):
    vgs = np.array([0.2, 0.6, 1.0])
    vds = np.array([0.0, 0.4, 1.0])
    qg_b, qd_b, qs_b = nmos.charges_batch(vgs, vds)
    for i in range(3):
        qg, qd, qs = nmos.charges(float(vgs[i]), float(vds[i]))
        assert qg_b[i] == pytest.approx(qg, rel=1e-12)
        assert qd_b[i] == pytest.approx(qd, rel=1e-12)
        assert qs_b[i] == pytest.approx(qs, rel=1e-12)


def test_with_params_functional(nmos):
    raised = nmos.with_params({"VTH0": 0.6})
    assert raised.p("VTH0") == pytest.approx(0.6)
    assert nmos.p("VTH0") != 0.6
    # higher threshold -> lower current
    assert raised.ids_magnitude(1.0, 1.0) < nmos.ids_magnitude(1.0, 1.0)


def test_vth_dibl(nmos):
    assert float(nmos.vth(1.0)) < float(nmos.vth(0.05))


def test_invalid_geometry_rejected():
    with pytest.raises(SimulationError):
        BsimSoi4Lite(params=default_parameters(), width=0.0)


def test_cgg_consistent_with_dqg_dvgs(nmos):
    """Cgg(v) must equal dQg/dVgs at vds = 0 (model self-consistency)."""
    v, dv = 0.7, 1e-5
    qg1 = nmos.charges(v + dv, 0.0)[0]
    qg0 = nmos.charges(v - dv, 0.0)[0]
    assert (qg1 - qg0) / (2 * dv) == pytest.approx(float(nmos.cgg(v)),
                                                   rel=1e-3)
