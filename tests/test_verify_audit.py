"""Regression tests from the verification-subsystem solver audit.

Two code paths were audited for latent order/edge dependence:

* ``spice.transient.build_time_grid`` — the near-duplicate filter used
  to drop the *later* point of a too-close pair, which silently dropped
  ``t_stop`` itself whenever a refined breakpoint-window point landed
  within ``fine/1000`` below it (found by construction, fixed by
  dropping the earlier point instead);
* ``tcad.dd1d`` warm-started ``sweep()`` — bias-order dependence is
  bounded by the Gummel tolerance (~1e-8 relative at finite bias) and
  pinned here so a regression that couples sweep order into the answer
  gets caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spice.transient import EDGE_REFINE, build_time_grid
from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar


# ----------------------------------------------------------------------
# build_time_grid: named times must survive the near-duplicate filter
# ----------------------------------------------------------------------
def test_grid_keeps_t_stop_despite_nearby_refined_point():
    """Regression: a refined window point just below t_stop used to
    evict t_stop itself, ending the waveform early."""
    dt, t_stop = 1e-10, 1e-9
    fine = dt / EDGE_REFINE
    breakpoint_ = t_stop - 3 * fine - fine * 1e-4
    grid = build_time_grid(t_stop, dt, [breakpoint_])
    assert grid[-1] == t_stop
    assert np.any(grid == breakpoint_)


def test_grid_keeps_breakpoints_near_coarse_points():
    dt, t_stop = 1e-10, 1e-9
    fine = dt / EDGE_REFINE
    breakpoint_ = 3 * dt + fine * 1e-4  # just after a coarse point
    grid = build_time_grid(t_stop, dt, [breakpoint_])
    assert np.any(grid == breakpoint_)


def test_grid_always_starts_at_zero():
    dt, t_stop = 1e-10, 1e-9
    fine = dt / EDGE_REFINE
    # A breakpoint window starting at a near-zero instant must not
    # evict t = 0 (the DC operating point anchor).
    grid = build_time_grid(t_stop, dt, [fine * 1e-4])
    assert grid[0] == 0.0


def test_grid_has_no_tiny_steps():
    dt, t_stop = 1e-10, 1e-9
    fine = dt / EDGE_REFINE
    breakpoints = [1.23e-10, 1.23e-10 + fine * 1e-4,
                   t_stop - fine * 1e-4]
    grid = build_time_grid(t_stop, dt, breakpoints)
    assert np.diff(grid).min() > fine * 1e-3
    assert grid[0] == 0.0 and grid[-1] == t_stop


def test_transient_waveform_reaches_t_stop():
    """End-to-end: the recorded waveform's final sample sits exactly
    at t_stop even with an adversarial source corner."""
    from repro.spice import Circuit, Resistor, pwl_source, transient
    from repro.spice.elements.capacitor import Capacitor
    dt, t_stop = 1e-10, 1e-9
    fine = dt / EDGE_REFINE
    corner = t_stop - 3 * fine - fine * 1e-4
    circuit = Circuit()
    circuit.add(pwl_source("V1", "in", "0",
                           [(0.0, 0.0), (corner, 1.0), (t_stop, 1.0)]))
    circuit.add(Resistor("R1", "in", "out", 1e3))
    circuit.add(Capacitor("C1", "out", "0", 1e-13))
    wave = transient(circuit, t_stop=t_stop, dt=dt).waveform("out")
    assert wave.t[-1] == pytest.approx(t_stop, abs=0.0)


# ----------------------------------------------------------------------
# dd1d sweep: warm-start must not couple bias order into the answer
# ----------------------------------------------------------------------
BIASES = (0.01, 0.05, 0.1, 0.2)


def test_sweep_order_independent_within_gummel_tolerance():
    ascending = [s.current for s in
                 DriftDiffusion1D(uniform_bar()).sweep(list(BIASES))]
    descending = [s.current for s in
                  DriftDiffusion1D(uniform_bar()).sweep(
                      list(BIASES)[::-1])][::-1]
    cold = [DriftDiffusion1D(uniform_bar()).solve(b).current
            for b in BIASES]
    for up, down, ref in zip(ascending, descending, cold):
        assert up == pytest.approx(ref, rel=1e-6)
        assert down == pytest.approx(ref, rel=1e-6)


def test_sweep_equilibrium_point_stays_at_noise_level():
    """A warm start from a biased solution must not leave a spurious
    finite current at the 0 V point (absolute check — the relative
    error against a ~1e-19 A noise floor is meaningless)."""
    down = DriftDiffusion1D(uniform_bar()).sweep([0.2, 0.1, 0.0])
    assert abs(down[-1].current) < 1e-15


def test_sweep_matches_documented_golden_order():
    """The dd1d golden is recorded from an ascending sweep; pin the
    equivalence of that sweep to cold per-point solves so the golden
    stays start-strategy-agnostic."""
    from repro.verify.snapshots import DD_BIASES
    swept = DriftDiffusion1D(uniform_bar()).sweep(list(DD_BIASES))
    for bias, solution in zip(DD_BIASES, swept):
        cold = DriftDiffusion1D(uniform_bar()).solve(bias)
        if bias == 0.0:
            assert abs(solution.current - cold.current) < 1e-15
        else:
            assert solution.current == pytest.approx(cold.current,
                                                     rel=1e-6)
