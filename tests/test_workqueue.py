"""The filesystem work queue: leases, heartbeats, takeover, draining.

Fast in-process checks cover the lease protocol (claim conflicts,
heartbeat staleness, the bounded stampede for wedged peers, live-peer
publishes surfacing as ``peer`` results).  The ``chaos``-marked tests
run real ``python -m repro.flows --backend workqueue`` subprocesses:
two peers drain one graph cooperatively, and a SIGKILLed peer's leases
are taken over so the survivor completes the graph.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.engine import Engine, Task, register_stage, unregister_stage
from repro.engine.backends.workqueue import (
    DEFAULT_LEASE_TTL,
    QUEUE_DIRNAME,
    WorkQueueBackend,
    _Lease,
    heartbeat_age,
    resolve_lease_ttl,
)
from repro.engine.cache import ArtifactCache
from repro.engine.durability import load_run, run_dir
from repro.engine.locks import FileLock
from repro.engine.manifest import RunManifest, STATUS_COMPLETED
from repro.engine.stages import get_stage
from repro.errors import ReproError
from repro.flows.durable import MANIFEST_FILENAME
from repro.resilience import chaos

pytestmark = pytest.mark.engine


def _add(payload, deps):
    return payload["value"] + sum(deps.values())


@pytest.fixture(autouse=True)
def _stages():
    register_stage("wq_add", version=1, compute=_add,
                   encode=lambda a: a, decode=lambda d: d, replace=True)
    yield
    unregister_stage("wq_add")


def _lease_dir(cache_dir) -> Path:
    path = Path(cache_dir) / QUEUE_DIRNAME / "leases"
    path.mkdir(parents=True, exist_ok=True)
    return path


# ----------------------------------------------------------------------
# lease protocol
# ----------------------------------------------------------------------
def test_resolve_lease_ttl(monkeypatch):
    assert resolve_lease_ttl() == DEFAULT_LEASE_TTL
    assert resolve_lease_ttl(2.5) == 2.5
    monkeypatch.setenv("REPRO_LEASE_TTL", "7")
    assert resolve_lease_ttl() == 7.0
    monkeypatch.setenv("REPRO_LEASE_TTL", "soon")
    with pytest.raises(ReproError, match="REPRO_LEASE_TTL"):
        resolve_lease_ttl()
    monkeypatch.setenv("REPRO_LEASE_TTL", "-1")
    with pytest.raises(ReproError, match="positive"):
        resolve_lease_ttl()


def test_lease_claim_conflicts_and_heartbeats(tmp_path):
    lease_dir = _lease_dir(tmp_path)
    first = _Lease(lease_dir, "k1", "me", ttl=0.2)
    assert first.try_acquire()
    try:
        # A second claimant (even in-process: flock state is per open
        # file description) must fail while the lease is held.
        second = _Lease(lease_dir, "k1", "rival", ttl=0.2)
        assert not second.try_acquire()
        age = heartbeat_age(lease_dir, "k1")
        assert age is not None and age < 1.0
        # The refresher keeps the heartbeat young.
        time.sleep(0.3)
        assert heartbeat_age(lease_dir, "k1") < 0.2
    finally:
        first.release()
    assert heartbeat_age(lease_dir, "k1") is None  # beat removed
    third = _Lease(lease_dir, "k1", "late", ttl=0.2)
    assert third.try_acquire()
    third.release()


def test_heartbeat_age_none_without_beat(tmp_path):
    assert heartbeat_age(_lease_dir(tmp_path), "ghost") is None


def test_stale_heartbeat_triggers_bounded_stampede(tmp_path):
    """A held lease with an old heartbeat = wedged-alive peer: the
    backend computes anyway (and counts the override)."""
    backend = WorkQueueBackend(lease_ttl=0.2)
    engine = Engine(backend=backend, cache_dir=tmp_path)
    task = Task(id="a", stage="wq_add", payload={"value": 5})
    key = engine.task_keys([task])["a"]
    lease_dir = _lease_dir(tmp_path)
    blocker = FileLock(lease_dir / f"{key}.lock")
    assert blocker.try_acquire()
    try:
        with open(lease_dir / f"{key}.json", "w", encoding="utf-8") as f:
            json.dump({"owner": "wedged", "pid": 0,
                       "t": time.time() - 60.0}, f)
        run = engine.run([task])
    finally:
        blocker.release()
    assert run["a"] == 5
    assert backend.stale_overrides >= 1


def test_live_peer_publish_surfaces_as_peer_result(tmp_path):
    """While a live peer holds the lease (fresh heartbeat), we wait;
    when its artefact lands in the shared store we adopt it."""
    backend = WorkQueueBackend(lease_ttl=30.0)
    engine = Engine(backend=backend, cache_dir=tmp_path)
    task = Task(id="a", stage="wq_add", payload={"value": 9})
    key = engine.task_keys([task])["a"]
    lease_dir = _lease_dir(tmp_path)
    peer_lease = _Lease(lease_dir, key, "peer", ttl=30.0)
    assert peer_lease.try_acquire()

    def publish():
        time.sleep(0.3)
        # The peer publishes through its own cache handle, then
        # releases — exactly what a real peer invocation does.
        ArtifactCache(cache_dir=tmp_path).put(
            key, get_stage("wq_add"), 9)
        peer_lease.release()

    thread = threading.Thread(target=publish)
    thread.start()
    try:
        run = engine.run([task])
    finally:
        thread.join()
    assert run["a"] == 9
    record = run.manifest.records[0]
    assert record.worker == "peer"
    assert record.cache_hit


def test_two_engines_drain_one_graph_in_process(tmp_path):
    """Sequential peers over one store: the second run adopts every
    artefact the first published."""
    tasks = [Task(id=f"t{i}", stage="wq_add", payload={"value": i})
             for i in range(4)]
    first = Engine(backend="workqueue", cache_dir=tmp_path).run(tasks)
    assert first.ok
    second = Engine(backend="workqueue", cache_dir=tmp_path).run(tasks)
    assert second.ok
    assert second.artifacts == first.artifacts
    assert second.manifest.hit_rate() == 1.0


# ----------------------------------------------------------------------
# real multi-process chaos
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.slow
def test_concurrent_workqueue_peers_complete(tmp_path):
    """Two simultaneous --backend workqueue invocations over one cache:
    both exit 0, zero quarantined entries, both journals complete."""
    env = chaos.repro_env(tmp_path)
    argvs = [chaos.flow_argv(run_id=f"wq-conc-{i}", backend="workqueue")
             for i in (1, 2)]
    outcomes = chaos.run_concurrent_flows(argvs, env, stagger_s=0.1)
    for outcome in outcomes:
        assert outcome.returncode == 0, outcome.stderr
    assert ArtifactCache(cache_dir=tmp_path).quarantined() == []
    for i in (1, 2):
        state = load_run(tmp_path, f"wq-conc-{i}")
        assert state.status == "completed"
    manifests = [RunManifest.load(run_dir(tmp_path, f"wq-conc-{i}")
                                  / MANIFEST_FILENAME) for i in (1, 2)]
    assert all(m.backend == "workqueue" for m in manifests)
    # Work was shared, not duplicated: across both runs each key was
    # computed once (the other peer saw a peer/cache record).
    computed = [r.key for m in manifests for r in m.records
                if r.cache == "miss"]
    assert len(computed) == len(set(computed))


@pytest.mark.chaos
@pytest.mark.slow
def test_sigkill_peer_lease_takeover_completes_graph(tmp_path):
    """SIGKILL one work-queue peer mid-run; flock dies with it, so a
    fresh peer takes over its leases and finishes the graph with the
    serial baseline's exact fingerprints."""
    env = chaos.repro_env(tmp_path)
    victim = chaos.spawn_flow(
        chaos.flow_argv(run_id="wq-victim", backend="workqueue"), env)
    assert chaos.wait_for_journal(tmp_path, "wq-victim", min_tasks=2,
                                  proc=victim), "victim never reached task 2"
    os.kill(victim.pid, 9)
    outcome = chaos.finish(victim)
    assert outcome.killed

    survivor = chaos.run_flow(
        chaos.flow_argv(run_id="wq-survivor", backend="workqueue"), env)
    assert survivor.returncode == 0, survivor.stderr
    state = load_run(tmp_path, "wq-survivor")
    assert state.status == "completed"
    assert ArtifactCache(cache_dir=tmp_path).quarantined() == []

    # Serial baseline in a fresh cache: identical task fingerprints.
    serial_env = chaos.repro_env(tmp_path / "serial-cache")
    baseline = chaos.run_flow(
        chaos.flow_argv(run_id="wq-serial", workers=1), serial_env)
    assert baseline.returncode == 0, baseline.stderr
    base_state = load_run(tmp_path / "serial-cache", "wq-serial")
    assert {(tid, rec["key"]) for tid, rec in state.done().items()} == \
        {(tid, rec["key"]) for tid, rec in base_state.done().items()}
    manifest = RunManifest.load(
        run_dir(tmp_path, "wq-survivor") / MANIFEST_FILENAME)
    assert manifest.status == STATUS_COMPLETED
    assert manifest.backend == "workqueue"
