"""The remote cache server: storage, integrity gate, quarantine.

``repro.cachesrv`` is deliberately dumb — it stores bodies under
``(stage, key)``, remembers the digest each body was published with,
and refuses publishes whose claimed digest does not match the bytes.
All retry/breaker/verification *policy* lives in the client
(:mod:`repro.engine.remote`); these tests pin the server's storage
contract the client's fault model is built on.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cachesrv import (
    DIGEST_HEADER,
    QUARANTINE_DIRNAME,
    CacheServer,
    CacheStore,
    body_digest,
)


@pytest.fixture()
def server(tmp_path):
    srv = CacheServer(tmp_path / "store").serve_in_thread()
    yield srv
    srv.close()


def _request(url, method="GET", body=None, headers=None):
    request = urllib.request.Request(url, data=body, method=method,
                                     headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, response.read(), dict(
                response.headers.items())
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers.items())


def _put(server, stage, key, body):
    return _request(f"{server.url}/artifacts/{stage}/{key}", "PUT",
                    body=body, headers={DIGEST_HEADER: body_digest(body)})


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = CacheStore(tmp_path)
        body = b'{"artifact": 1}'
        store.put("tcad", "abc123", body, body_digest(body))
        got = store.get("tcad", "abc123")
        assert got == (body, body_digest(body))

    def test_miss_is_none(self, tmp_path):
        assert CacheStore(tmp_path).get("tcad", "nope") is None

    def test_quarantine_moves_entry_aside(self, tmp_path):
        store = CacheStore(tmp_path)
        body = b"payload"
        store.put("tcad", "abc", body, body_digest(body))
        assert store.quarantine("tcad", "abc") is True
        assert store.get("tcad", "abc") is None
        quarantined = list((tmp_path / QUARANTINE_DIRNAME).iterdir())
        assert len(quarantined) == 1
        assert not store.quarantine("tcad", "abc")  # already gone

    def test_stats_skip_quarantine(self, tmp_path):
        store = CacheStore(tmp_path)
        for key in ("k1", "k2"):
            store.put("s", key, b"12345", body_digest(b"12345"))
        store.quarantine("s", "k1")
        entries, size = store.stats()
        assert entries == 1
        assert size == 5


class TestHTTP:
    def test_put_get_roundtrip(self, server):
        body = json.dumps({"stage": "s", "key": "k",
                           "artifact": {"v": 1}}).encode()
        status, reply, _ = _put(server, "s", "k", body)
        assert status == 200
        assert json.loads(reply)["stored"] is True
        status, got, headers = _request(f"{server.url}/artifacts/s/k")
        assert status == 200
        assert got == body
        assert headers[DIGEST_HEADER] == body_digest(body)

    def test_get_miss_is_404(self, server):
        status, _, _ = _request(f"{server.url}/artifacts/s/missing")
        assert status == 404

    def test_put_without_digest_is_400(self, server):
        status, _, _ = _request(f"{server.url}/artifacts/s/k", "PUT",
                                body=b"data")
        assert status == 400

    def test_put_with_wrong_digest_is_422(self, server):
        status, _, _ = _request(
            f"{server.url}/artifacts/s/k", "PUT", body=b"data",
            headers={DIGEST_HEADER: body_digest(b"other")})
        assert status == 422
        # the lying publish must not have landed
        status, _, _ = _request(f"{server.url}/artifacts/s/k")
        assert status == 404

    def test_delete_quarantines(self, server):
        _put(server, "s", "k", b"entry")
        status, reply, _ = _request(f"{server.url}/artifacts/s/k",
                                    "DELETE")
        assert status == 200
        assert json.loads(reply)["quarantined"] is True
        status, _, _ = _request(f"{server.url}/artifacts/s/k")
        assert status == 404
        status, reply, _ = _request(f"{server.url}/artifacts/s/k",
                                    "DELETE")
        assert status == 404

    @pytest.mark.parametrize("path", [
        "/artifacts/../k",             # traversal out of the root
        "/artifacts/.quarantine/k",    # internal dot-directory
        "/artifacts/s",                # no key
        "/artifacts/s/k/extra",        # too deep
        "/artifacts/bad*stage/k",
    ])
    def test_malformed_artifact_paths_are_400(self, server, path):
        for method in ("GET", "PUT", "DELETE"):
            status, _, _ = _request(server.url + path, method,
                                    body=b"" if method == "PUT" else None)
            assert status == 400, (method, path)

    def test_unknown_route_is_404(self, server):
        status, _, _ = _request(f"{server.url}/other")
        assert status == 404

    def test_healthz_reports_inventory(self, server):
        _put(server, "s", "k", b"12345")
        status, reply, _ = _request(f"{server.url}/healthz")
        assert status == 200
        health = json.loads(reply)
        assert health["status"] == "ok"
        assert health["entries"] == 1
        assert health["bytes"] == 5
