"""Unit tests of the golden store, tolerance classes and report."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.verify.goldens import GoldenStore, _jsonable
from repro.verify.report import (
    CheckResult,
    STATUS_FAIL,
    STATUS_PASS,
    STATUS_SKIP,
    VerifyReport,
)
from repro.verify.tolerances import TOLERANCE_CLASSES, tolerance_class


# ----------------------------------------------------------------------
# tolerance classes
# ----------------------------------------------------------------------
def test_tolerance_classes_ordered_by_rank():
    ranks = [tolerance_class(n).rank for n in
             ("exact", "tight", "numeric", "calibrated", "loose")]
    assert ranks == sorted(ranks)
    assert len(set(ranks)) == len(ranks)


def test_tolerance_widening_detection():
    assert tolerance_class("loose").is_wider_than(
        tolerance_class("tight"))
    assert not tolerance_class("tight").is_wider_than(
        tolerance_class("loose"))
    assert not tolerance_class("numeric").is_wider_than(
        tolerance_class("numeric"))


def test_tolerance_accepts():
    tight = tolerance_class("tight")
    assert tight.accepts(1.0, 1.0 + 1e-12)
    assert not tight.accepts(1.0, 1.0 + 1e-6)
    exact = tolerance_class("exact")
    assert exact.accepts(3.5, 3.5)
    assert not exact.accepts(3.5, np.nextafter(3.5, 4.0))


def test_unknown_tolerance_class_raises():
    with pytest.raises(ReproError, match="tolerance"):
        tolerance_class("fuzzy")


def test_every_class_accepts_identical_values():
    for name in TOLERANCE_CLASSES:
        tol = tolerance_class(name)
        assert tol.accepts(0.0, 0.0)
        assert tol.accepts(-2.5e-9, -2.5e-9)


# ----------------------------------------------------------------------
# golden store
# ----------------------------------------------------------------------
@pytest.fixture
def store(tmp_path):
    return GoldenStore(root=tmp_path, update=True)


def test_update_then_diff_roundtrip(store):
    measured = {"scalar": 1.25, "array": np.array([1.0, 2.0, 4.0])}
    diff = store.check("demo", measured, default_tolerance="tight")
    assert diff.passed
    again = store.diff("demo", measured)
    assert again.passed and len(again.quantities) == 2


def test_diff_reports_per_quantity_relative_error(store):
    store.update_golden("demo", {"a": 2.0, "b": 4.0},
                        default_tolerance="numeric")
    diff = store.diff("demo", {"a": 2.0, "b": 4.0 * (1 + 1e-3)})
    assert not diff.passed
    failing = {q.name: q for q in diff.failures}
    assert set(failing) == {"b"}
    assert failing["b"].max_relative_error == pytest.approx(1e-3,
                                                            rel=1e-6)
    assert "b" in diff.render()


def test_diff_catches_missing_and_unexpected_keys(store):
    store.update_golden("demo", {"kept": 1.0, "gone": 2.0})
    diff = store.diff("demo", {"kept": 1.0, "new": 3.0})
    assert not diff.passed
    assert diff.missing == ["gone"]
    assert diff.unexpected == ["new"]


def test_diff_catches_shape_mismatch(store):
    store.update_golden("demo", {"arr": [1.0, 2.0]})
    diff = store.diff("demo", {"arr": [1.0, 2.0, 3.0]})
    assert not diff.passed
    assert "shape mismatch" in diff.failures[0].note


def test_regeneration_is_byte_identical(store):
    measured = {"x": np.float64(1.0) / 3.0,
                "grid": np.linspace(0.0, 1.0, 7)}
    first = store.update_golden("demo", measured).read_bytes()
    second = store.update_golden("demo", measured).read_bytes()
    assert first == second


def test_update_refuses_tolerance_widening(tmp_path):
    store = GoldenStore(root=tmp_path, update=True)
    store.update_golden("demo", {"x": 1.0}, default_tolerance="tight")
    with pytest.raises(ReproError, match="widen"):
        store.update_golden("demo", {"x": 1.0},
                            default_tolerance="loose")
    # Per-quantity widening is refused too.
    with pytest.raises(ReproError, match="widen"):
        store.update_golden("demo", {"x": 1.0},
                            tolerances={"x": "numeric"},
                            default_tolerance="tight")


def test_update_allows_widening_with_flag(tmp_path):
    store = GoldenStore(root=tmp_path, update=True, allow_widen=True)
    store.update_golden("demo", {"x": 1.0}, default_tolerance="tight")
    store.update_golden("demo", {"x": 1.0}, default_tolerance="loose")
    assert json.loads(store.path("demo").read_text())[
        "default_tolerance"] == "loose"


def test_tightening_never_needs_the_flag(tmp_path):
    store = GoldenStore(root=tmp_path, update=True)
    store.update_golden("demo", {"x": 1.0}, default_tolerance="loose")
    store.update_golden("demo", {"x": 1.0}, default_tolerance="tight")


def test_check_without_golden_raises_in_diff_mode(tmp_path):
    store = GoldenStore(root=tmp_path, update=False)
    with pytest.raises(ReproError, match="--update-goldens"):
        store.check("absent", {"x": 1.0})


def test_schema_mismatch_rejected(tmp_path):
    path = tmp_path / "demo.json"
    path.write_text(json.dumps({"schema": 99, "quantities": {}}))
    with pytest.raises(ReproError, match="schema"):
        GoldenStore(root=tmp_path).load("demo")


def test_jsonable_rejects_exotic_types():
    with pytest.raises(ReproError, match="scalars"):
        _jsonable(object())


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def test_report_counts_and_verdict(tmp_path):
    report = VerifyReport(suite="unit")
    report.add(CheckResult(name="a", status=STATUS_PASS))
    report.add(CheckResult(name="b", status=STATUS_SKIP))
    assert report.passed
    report.add(CheckResult(name="c", status=STATUS_FAIL,
                           detail="boom"))
    assert not report.passed
    assert report.counts == {"pass": 1, "fail": 1, "skip": 1}
    assert [c.name for c in report.failures] == ["c"]

    path = report.write(tmp_path / "verify_report.json")
    document = json.loads(path.read_text())
    assert document["suite"] == "unit"
    assert document["passed"] is False
    assert len(document["checks"]) == 3
    rendered = report.render()
    assert "FAIL" in rendered and "boom" in rendered
