"""Physical-constants sanity."""

import math

import pytest

from repro import constants


def test_thermal_voltage_at_room_temperature():
    assert constants.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)


def test_thermal_voltage_at_tnom():
    # TNOM = 25 C = 298.15 K (Table II).
    assert constants.thermal_voltage() == pytest.approx(0.025693, rel=1e-3)


def test_thermal_voltage_scales_linearly():
    assert constants.thermal_voltage(600.0) == pytest.approx(
        2.0 * constants.thermal_voltage(300.0))


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(ValueError):
        constants.thermal_voltage(0.0)
    with pytest.raises(ValueError):
        constants.thermal_voltage(-10.0)


def test_silicon_bandgap_at_300k():
    assert constants.silicon_bandgap(300.0) == pytest.approx(1.12, abs=0.01)


def test_silicon_bandgap_decreases_with_temperature():
    assert (constants.silicon_bandgap(400.0) <
            constants.silicon_bandgap(300.0))


def test_silicon_bandgap_at_zero_kelvin():
    assert constants.silicon_bandgap(0.0) == pytest.approx(1.17)


def test_intrinsic_density_at_300k_is_textbook():
    ni = constants.silicon_intrinsic_density(300.0)
    # ~1e10 cm^-3 = 1e16 m^-3 within a factor ~2 of the textbook value.
    assert 3e15 < ni < 3e16


def test_intrinsic_density_strongly_increases_with_temperature():
    ratio = (constants.silicon_intrinsic_density(350.0) /
             constants.silicon_intrinsic_density(300.0))
    assert ratio > 10


def test_intrinsic_density_rejects_bad_temperature():
    with pytest.raises(ValueError):
        constants.silicon_intrinsic_density(-1.0)


def test_fundamental_constants_values():
    assert constants.Q == pytest.approx(1.602e-19, rel=1e-3)
    assert constants.K_B == pytest.approx(1.381e-23, rel=1e-3)
    assert constants.EPS_0 == pytest.approx(8.854e-12, rel=1e-3)


def test_intrinsic_density_consistent_with_bandgap():
    # n_i^2 = Nc Nv exp(-Eg/kT) at 300 K.
    ni = constants.silicon_intrinsic_density(300.0)
    vt = constants.thermal_voltage(300.0)
    eg = constants.silicon_bandgap(300.0)
    expected = math.sqrt(constants.NC_SI_300 * constants.NV_SI_300) * \
        math.exp(-eg / (2 * vt))
    assert ni == pytest.approx(expected, rel=1e-6)
