"""End-to-end flow smoke test (single cell to keep runtime bounded)."""

import pytest

from repro.cells.variants import DeviceVariant
from repro.flows.full_flow import FullFlowResult, run_full_flow


@pytest.fixture(scope="module")
def flow_result():
    return run_full_flow(cells=["INV1X1"])


def test_flow_bundles_all_artefacts(flow_result):
    assert flow_result.extraction.max_error() < 10.0
    assert flow_result.ppa.cell_names == ["INV1X1"]
    assert "INV1X1" in flow_result.areas.layouts


def test_flow_extraction_covers_all_devices(flow_result):
    # 4 variants x 2 polarities.
    assert len(flow_result.extraction.devices) == 8


def test_flow_ppa_has_all_variants(flow_result):
    for variant in DeviceVariant:
        assert flow_result.ppa.value("INV1X1", variant, "delay") > 0


def test_headline_keys(flow_result):
    headline = flow_result.headline()
    assert headline["max_extraction_error_percent"] < 10.0
    assert headline["area_reduction_2ch_percent"] > 10.0
    assert isinstance(flow_result, FullFlowResult)


def test_inverter_trends(flow_result):
    delay_2ch = flow_result.ppa.change_percent(
        "INV1X1", DeviceVariant.MIV_2CH, "delay")
    area_2ch = flow_result.ppa.change_percent(
        "INV1X1", DeviceVariant.MIV_2CH, "area")
    assert delay_2ch < 0
    assert area_2ch < -10
