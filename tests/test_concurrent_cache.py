"""Two concurrent invocations sharing one cache directory.

The multi-process safety contract: advisory bucket locks keep entry
publishes atomic (no torn/quarantined files), and cross-process
single-flight bounds duplicate computation when both invocations want
the same keys.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.engine.cache import ArtifactCache

# Each worker registers the same toy stage, runs the same 12-task
# graph against the shared store, and reports its cache stats.
WORKER = """
import json, sys, time

from repro.engine import Engine, Task, register_stage

COMPUTED = []

def compute(payload, deps):
    time.sleep(0.05)  # widen the race window
    COMPUTED.append(payload["value"])
    return payload["value"] * 2

register_stage("toy_conc", version=1, compute=compute,
               encode=lambda a: a, decode=lambda d: d, replace=True)

cache_dir, out_path = sys.argv[1], sys.argv[2]
tasks = [Task(id=f"t{i}", stage="toy_conc", payload={"value": i})
         for i in range(12)]
engine = Engine(backend="serial", cache_dir=cache_dir)
run = engine.run(tasks)
stats = engine.cache.stats()
stats["results"] = {t.id: run[t.id] for t in tasks}
stats["computed"] = len(COMPUTED)
with open(out_path, "w", encoding="utf-8") as handle:
    json.dump(stats, handle)
"""


@pytest.mark.chaos
@pytest.mark.slow
def test_concurrent_invocations_share_cache_safely(tmp_path):
    cache_dir = tmp_path / "cache"
    src_dir = Path(repro.__file__).resolve().parent.parent
    procs = []
    for i in range(2):
        out = tmp_path / f"stats-{i}.json"
        procs.append((subprocess.Popen(
            [sys.executable, "-c", WORKER, str(cache_dir), str(out)],
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin",
                 "REPRO_CACHE_DIR": str(cache_dir)},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE), out))
    stats = []
    for proc, out in procs:
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr.decode()
        stats.append(json.loads(out.read_text(encoding="utf-8")))

    # both invocations computed correct results
    expected = {f"t{i}": i * 2 for i in range(12)}
    for s in stats:
        assert s["results"] == expected

    # no entry was torn or quarantined by the concurrent publishes
    cache = ArtifactCache(cache_dir=cache_dir)
    assert cache.quarantined() == []
    for s in stats:
        assert s["corrupt"] == 0
        assert s["write_errors"] == 0

    # every published entry parses and round-trips
    entries = sorted((cache_dir / "toy_conc").glob("*.json"))
    assert len(entries) == 12
    for path in entries:
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["stage"] == "toy_conc"

    # single-flight bounds duplicate work: 12 distinct keys, so at
    # most one stampede-window duplicate each across both runs
    total_computed = sum(s["computed"] for s in stats)
    assert 12 <= total_computed <= 24
    # every task not computed locally was served by the shared store
    for s in stats:
        served = s["hits_memory"] + s["hits_disk"]
        assert s["computed"] + served >= 12
