"""SPICE-level truth-table verification of the whole library."""

import pytest

from repro.cells.library import CELL_NAMES, get_cell
from repro.cells.variants import DeviceVariant
from repro.cells.verification import (
    HIGH_THRESHOLD,
    LOW_THRESHOLD,
    verify_cell,
    verify_library,
)


@pytest.mark.parametrize("name", CELL_NAMES)
def test_cell_truth_table_in_spice_2d(name, model_set_2d):
    """Every cell's transistor netlist computes its boolean function."""
    report = verify_cell(get_cell(name), model_set_2d)
    assert report.passed, [
        (row.inputs, row.expected, row.measured_voltage)
        for row in report.failures]
    assert len(report.rows) == 2 ** len(get_cell(name).inputs)


@pytest.mark.parametrize("name", ["INV1X1", "NAND3X1", "XOR2X1", "MUX2X1"])
def test_cell_truth_table_in_spice_2ch(name, model_set_2ch):
    """Spot-check the MIV-transistor implementation too."""
    report = verify_cell(get_cell(name), model_set_2ch)
    assert report.passed


@pytest.mark.slow
@pytest.mark.parametrize("variant", [DeviceVariant.MIV_1CH,
                                     DeviceVariant.MIV_2CH,
                                     DeviceVariant.MIV_4CH],
                         ids=lambda v: v.value)
@pytest.mark.parametrize("name", CELL_NAMES)
def test_cell_truth_table_full_matrix(name, variant, model_sets):
    """The complete 14 cells x 4 variants functional matrix.

    The 2-D column runs unmarked above; the three MIV columns ride
    behind ``slow``.  Every implementation must realise its oracle
    with full noise margins — a variant-specific netlisting bug
    (e.g. a MIV stacking error on one polarity) fails exactly one
    column of this matrix, which is the diagnostic we want.
    """
    spec = get_cell(name)
    report = verify_cell(spec, model_sets(variant))
    assert report.passed, [
        (row.inputs, row.expected, row.measured_voltage)
        for row in report.failures]
    assert len(report.rows) == 2 ** len(spec.inputs)
    assert report.variant is variant


def test_noise_margins_are_healthy(model_set_2d):
    """Static CMOS at 1 fA-scale leakage: rails within a few mV."""
    report = verify_cell(get_cell("NAND2X1"), model_set_2d)
    assert report.worst_high() > 0.98
    assert report.worst_low() < 0.02


def test_report_metadata(model_set_2d):
    report = verify_cell(get_cell("INV1X1"), model_set_2d)
    assert report.cell_name == "INV1X1"
    assert report.variant is DeviceVariant.TWO_D
    assert report.rows[0].inputs == (False,)
    assert report.rows[0].expected is True


def test_verify_library_subset(model_set_2d):
    reports = verify_library(DeviceVariant.TWO_D,
                             cells=[get_cell("INV1X1"),
                                    get_cell("NOR2X1")])
    assert set(reports) == {"INV1X1", "NOR2X1"}
    assert all(r.passed for r in reports.values())


def test_thresholds_sane():
    assert 0.0 < LOW_THRESHOLD < HIGH_THRESHOLD < 1.0
