"""PPA harness: measurement plumbing and a single-cell integration run.

The full 14-cell sweep lives in the benchmarks; here the inverter (and a
NAND) exercise the whole delay/power/area path.
"""

import pytest

from repro.cells.library import get_cell
from repro.engine import default_engine
from repro.cells.variants import DeviceVariant
from repro.errors import SimulationError
from repro.ppa.area import cell_area, substrate_area
from repro.ppa.comparison import PpaComparison
from repro.ppa.delay import measure_cell_delay
from repro.ppa.power import measure_cell_power
from repro.ppa.runner import CellPPA, PpaRunner, simulate_cell


@pytest.fixture(scope="module")
def inv_runs_2d():
    return simulate_cell(get_cell("INV1X1"), DeviceVariant.TWO_D)


@pytest.fixture(scope="module")
def inv_runs_2ch():
    return simulate_cell(get_cell("INV1X1"), DeviceVariant.MIV_2CH)


def test_inverter_delay_magnitude(inv_runs_2d):
    netlist, results = inv_runs_2d
    delay = measure_cell_delay(netlist, results)
    assert 2e-12 < delay < 50e-12  # ps-scale at 1 fF load


def test_inverter_power_magnitude(inv_runs_2d):
    netlist, results = inv_runs_2d
    power = measure_cell_power(netlist, results)
    assert 1e-7 < power < 5e-6  # sub-uW to uW at 1 V, ~GHz activity


def test_output_switches_full_swing(inv_runs_2d):
    netlist, results = inv_runs_2d
    _, result = results["a"]
    out = result.waveform("out")
    assert out.maximum() > 0.95
    assert out.minimum() < 0.05


def test_2ch_inverter_faster_than_2d(inv_runs_2d, inv_runs_2ch):
    d_2d = measure_cell_delay(*inv_runs_2d)
    d_2ch = measure_cell_delay(*inv_runs_2ch)
    assert d_2ch < d_2d  # the headline Figure 5(a) direction


def test_area_metrics_positive():
    spec = get_cell("INV1X1")
    for variant in DeviceVariant:
        assert cell_area(spec, variant) > 0
        assert substrate_area(spec, variant) > cell_area(spec, variant) / 2


def test_cell_ppa_pdp():
    ppa = CellPPA(cell_name="X", variant=DeviceVariant.TWO_D,
                  delay=1e-11, power=1e-6, area=1e-14, substrate=2e-14)
    assert ppa.pdp == pytest.approx(1e-17)


def test_runner_caches(inv_runs_2d):
    runner = PpaRunner(engine=default_engine())
    first = runner.evaluate("INV1X1", DeviceVariant.TWO_D)
    second = runner.evaluate("INV1X1", DeviceVariant.TWO_D)
    assert first is second


def test_comparison_requires_results():
    with pytest.raises(SimulationError):
        PpaComparison.from_results([])


def test_comparison_percent_changes():
    base = CellPPA("C", DeviceVariant.TWO_D, delay=10e-12, power=1e-6,
                   area=2e-14, substrate=4e-14)
    faster = CellPPA("C", DeviceVariant.MIV_2CH, delay=9e-12, power=1e-6,
                     area=1.7e-14, substrate=3.4e-14)
    comp = PpaComparison.from_results([base, faster])
    assert comp.change_percent("C", DeviceVariant.MIV_2CH,
                               "delay") == pytest.approx(-10.0)
    assert comp.change_percent("C", DeviceVariant.MIV_2CH,
                               "area") == pytest.approx(-15.0)
    assert comp.average_change_percent(DeviceVariant.MIV_2CH,
                                       "delay") == pytest.approx(-10.0)


def test_comparison_missing_entries_raise():
    base = CellPPA("C", DeviceVariant.TWO_D, 1e-11, 1e-6, 1e-14, 2e-14)
    comp = PpaComparison.from_results([base])
    with pytest.raises(SimulationError):
        comp.value("C", DeviceVariant.MIV_1CH, "delay")
    with pytest.raises(SimulationError):
        comp.value("C", DeviceVariant.TWO_D, "bogus")
    with pytest.raises(SimulationError):
        comp.change_percent("D", DeviceVariant.TWO_D, "delay")


def test_comparison_render():
    rows = [CellPPA("C", v, 1e-11, 1e-6, 1e-14, 2e-14)
            for v in DeviceVariant]
    comp = PpaComparison.from_results(rows)
    text = comp.render_metric("delay", scale=1e12, unit="ps")
    assert "C" in text
    assert "avg vs 2D" in text


def test_extreme_change():
    rows = [CellPPA("A", DeviceVariant.TWO_D, 10e-12, 1e-6, 1e-14, 2e-14),
            CellPPA("A", DeviceVariant.MIV_4CH, 11e-12, 1e-6, 1e-14, 2e-14),
            CellPPA("B", DeviceVariant.TWO_D, 10e-12, 1e-6, 1e-14, 2e-14),
            CellPPA("B", DeviceVariant.MIV_4CH, 9e-12, 1e-6, 1e-14, 2e-14)]
    comp = PpaComparison.from_results(rows)
    assert comp.extreme_change_percent(
        DeviceVariant.MIV_4CH, "delay", best=True) == pytest.approx(-10.0)
    assert comp.extreme_change_percent(
        DeviceVariant.MIV_4CH, "delay", best=False) == pytest.approx(10.0)
