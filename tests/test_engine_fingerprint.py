"""Content fingerprints: stability, sensitivity, canonical forms."""

import numpy as np
import pytest

from repro.engine.fingerprint import (
    canonicalize,
    combine_fingerprints,
    fingerprint,
)
from repro.errors import ReproError
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.tcad.device import Polarity
from repro.tcad.simulator import SweepSpec


def test_dict_key_order_is_irrelevant():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


def test_float_sensitivity_to_last_ulp():
    value = 0.1
    bumped = np.nextafter(value, 1.0)
    assert fingerprint(value) != fingerprint(float(bumped))


def test_int_and_float_distinguished_from_strings():
    assert fingerprint(1) != fingerprint("1")


def test_enum_canonical_form():
    assert canonicalize(Polarity.NMOS) == {"__enum__": "Polarity.NMOS"}
    assert fingerprint(Polarity.NMOS) != fingerprint(Polarity.PMOS)


def test_dataclass_includes_every_field():
    base = fingerprint(DEFAULT_PROCESS)
    assert fingerprint(ProcessParameters()) == base
    assert fingerprint(DEFAULT_PROCESS.with_updates(t_si=8e-9)) != base


def test_dataclass_class_name_is_part_of_identity():
    assert canonicalize(SweepSpec())["__dataclass__"] == "SweepSpec"


def test_numpy_array_matches_list_of_floats():
    assert fingerprint(np.array([1.0, 2.0])) == fingerprint([1.0, 2.0])


def test_numpy_scalars_canonicalize():
    assert fingerprint(np.float64(3.5)) == fingerprint(3.5)


def test_nested_containers_and_none():
    a = {"x": [1, (2, 3)], "y": None}
    b = {"y": None, "x": [1, [2, 3]]}
    assert fingerprint(a) == fingerprint(b)


def test_nan_is_fingerprintable_and_stable():
    assert fingerprint(float("nan")) == fingerprint(float("nan"))
    assert fingerprint(float("nan")) != fingerprint(0.0)


def test_unsupported_type_raises():
    with pytest.raises(ReproError):
        fingerprint(object())


def test_combine_fingerprints_is_order_sensitive():
    assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
    assert combine_fingerprints("ab") != combine_fingerprints("a", "b")
