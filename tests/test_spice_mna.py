"""MNA assembler internals and the source-stepping scaffolding."""

import numpy as np
import pytest

from repro.errors import SingularMatrixError
from repro.spice import Circuit, Resistor, dc_source
from repro.spice.mna import GMIN, MnaAssembler, scale_sources


@pytest.fixture(autouse=True)
def _default_kernels(monkeypatch):
    monkeypatch.delenv("REPRO_SOLVER_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_SPARSE_THRESHOLD", raising=False)


def divider():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "mid", 1e3))
    c.add(Resistor("R2", "mid", "0", 1e3))
    return c


def test_unknown_count_and_indices():
    assembler = MnaAssembler(divider())
    assert assembler.n_nodes == 2
    assert assembler.n_unknowns == 3
    assert assembler.branch_index == {"V1": 2}


def test_static_assembly_structure():
    c = divider()
    assembler = MnaAssembler(c)
    x = np.zeros(assembler.n_unknowns)
    stamper = assembler.assemble_static(x, time=0.0)
    g = 1e-3
    in_row = assembler.node_index["in"]
    mid_row = assembler.node_index["mid"]
    # 'in' touches R1 plus GMIN; 'mid' touches R1 + R2 + GMIN.
    assert stamper.matrix[in_row, in_row] == pytest.approx(g + GMIN)
    assert stamper.matrix[mid_row, mid_row] == pytest.approx(2 * g + GMIN)
    assert stamper.matrix[in_row, mid_row] == pytest.approx(-g)
    # Source rows.
    branch = assembler.branch_index["V1"]
    assert stamper.matrix[branch, in_row] == 1.0
    assert stamper.rhs[branch] == pytest.approx(1.0)


def test_solution_vector_roundtrip():
    assembler = MnaAssembler(divider())
    x = np.array([1.0, 0.5, -5e-4])
    voltages = assembler.voltages_from(x)
    assert voltages == {"in": 1.0, "mid": 0.5}
    assert assembler.branch_current(x, "V1") == pytest.approx(-5e-4)


def test_solve_linear_reports_singularity():
    with pytest.raises(SingularMatrixError) as err:
        MnaAssembler.solve_linear(np.zeros((2, 2)), np.zeros(2))
    assert "singular" in str(err.value).lower()


def test_scale_sources_context_restores():
    c = divider()
    source = c.element("V1")
    with scale_sources(c, 0.5):
        assert source.value(0.0) == pytest.approx(0.5)
    assert source.value(0.0) == pytest.approx(1.0)


def test_scale_sources_handles_waveforms():
    from repro.spice import pulse_source
    c = Circuit()
    c.add(pulse_source("VP", "a", "0", v1=0.2, v2=1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    original = c.element("VP").waveform
    with scale_sources(c, 0.0):
        assert c.element("VP").value(0.0) == 0.0
    assert c.element("VP").waveform is original


def test_dynamic_assembly_empty_for_resistive_circuit():
    assembler = MnaAssembler(divider())
    charge, cap = assembler.assemble_dynamic(
        np.zeros(assembler.n_unknowns))
    assert np.all(charge == 0.0)
    assert np.all(cap == 0.0)


# ----------------------------------------------------------------------
# kernel selection and the sparse path
# ----------------------------------------------------------------------
def test_small_circuits_stay_on_the_dense_oracle():
    # 3 unknowns < default threshold: the dense fallback keeps every
    # standard cell on bit-identical legacy arithmetic.
    assert MnaAssembler(divider()).kernel == "dense"
    assert MnaAssembler(divider(), kernel="dense").kernel == "dense"


def test_threshold_one_forces_the_sparse_path():
    assembler = MnaAssembler(divider(), kernel="sparse",
                             sparse_threshold=1)
    assert assembler.kernel == "sparse"


def test_sparse_assembly_matches_dense_assembly():
    dense = MnaAssembler(divider(), kernel="dense")
    sparse = MnaAssembler(divider(), kernel="sparse", sparse_threshold=1)
    x = np.array([0.3, 0.1, -2e-4])
    a = dense.assemble_static(x, time=0.0)
    b = sparse.assemble_static(x, time=0.0)
    np.testing.assert_allclose(b.matrix, a.matrix, rtol=0, atol=1e-30)
    np.testing.assert_allclose(b.rhs, a.rhs, rtol=0, atol=1e-30)


def test_sparse_solve_system_matches_dense():
    sparse = MnaAssembler(divider(), kernel="sparse", sparse_threshold=1)
    x = np.zeros(sparse.n_unknowns)
    stamper = sparse.assemble_static(x, time=0.0)
    got = sparse.solve_system(stamper.matrix, stamper.rhs)
    expected = np.linalg.solve(stamper.matrix, stamper.rhs)
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-15)


@pytest.mark.parametrize("kernel", ["dense", "sparse"])
def test_singular_systems_share_one_diagnosis(kernel):
    """Satellite contract: both kernels raise SingularMatrixError with
    code ``spice.singular_matrix`` and the same diagnosis text."""
    assembler = MnaAssembler(divider(), kernel=kernel,
                             sparse_threshold=1)
    with pytest.raises(SingularMatrixError) as err:
        assembler.solve_system(np.zeros((3, 3)), np.zeros(3))
    assert err.value.code == "spice.singular_matrix"
    assert "floating" in str(err.value)


def test_sparse_recovers_after_a_singular_system():
    """A singular solve must not poison the factor cache."""
    assembler = MnaAssembler(divider(), kernel="sparse",
                             sparse_threshold=1)
    with pytest.raises(SingularMatrixError):
        assembler.solve_system(np.zeros((3, 3)), np.zeros(3))
    matrix = np.diag([2.0, 4.0, 8.0])
    got = assembler.solve_system(matrix, np.ones(3))
    np.testing.assert_allclose(got, [0.5, 0.25, 0.125])
