"""MNA assembler internals and the source-stepping scaffolding."""

import numpy as np
import pytest

from repro.errors import SingularMatrixError
from repro.spice import Circuit, Resistor, dc_source
from repro.spice.mna import GMIN, MnaAssembler, scale_sources


def divider():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "mid", 1e3))
    c.add(Resistor("R2", "mid", "0", 1e3))
    return c


def test_unknown_count_and_indices():
    assembler = MnaAssembler(divider())
    assert assembler.n_nodes == 2
    assert assembler.n_unknowns == 3
    assert assembler.branch_index == {"V1": 2}


def test_static_assembly_structure():
    c = divider()
    assembler = MnaAssembler(c)
    x = np.zeros(assembler.n_unknowns)
    stamper = assembler.assemble_static(x, time=0.0)
    g = 1e-3
    in_row = assembler.node_index["in"]
    mid_row = assembler.node_index["mid"]
    # 'in' touches R1 plus GMIN; 'mid' touches R1 + R2 + GMIN.
    assert stamper.matrix[in_row, in_row] == pytest.approx(g + GMIN)
    assert stamper.matrix[mid_row, mid_row] == pytest.approx(2 * g + GMIN)
    assert stamper.matrix[in_row, mid_row] == pytest.approx(-g)
    # Source rows.
    branch = assembler.branch_index["V1"]
    assert stamper.matrix[branch, in_row] == 1.0
    assert stamper.rhs[branch] == pytest.approx(1.0)


def test_solution_vector_roundtrip():
    assembler = MnaAssembler(divider())
    x = np.array([1.0, 0.5, -5e-4])
    voltages = assembler.voltages_from(x)
    assert voltages == {"in": 1.0, "mid": 0.5}
    assert assembler.branch_current(x, "V1") == pytest.approx(-5e-4)


def test_solve_linear_reports_singularity():
    with pytest.raises(SingularMatrixError) as err:
        MnaAssembler.solve_linear(np.zeros((2, 2)), np.zeros(2))
    assert "singular" in str(err.value).lower()


def test_scale_sources_context_restores():
    c = divider()
    source = c.element("V1")
    with scale_sources(c, 0.5):
        assert source.value(0.0) == pytest.approx(0.5)
    assert source.value(0.0) == pytest.approx(1.0)


def test_scale_sources_handles_waveforms():
    from repro.spice import pulse_source
    c = Circuit()
    c.add(pulse_source("VP", "a", "0", v1=0.2, v2=1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    original = c.element("VP").waveform
    with scale_sources(c, 0.0):
        assert c.element("VP").value(0.0) == 0.0
    assert c.element("VP").waveform is original


def test_dynamic_assembly_empty_for_resistive_circuit():
    assembler = MnaAssembler(divider())
    charge, cap = assembler.assemble_dynamic(
        np.zeros(assembler.n_unknowns))
    assert np.all(charge == 0.0)
    assert np.all(cap == 0.0)
