"""Property-based tests riding with the verification subsystem:
units round-trips, fingerprint stability/distinctness, and compact-
model I-V continuity across operating-region boundaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.engine.fingerprint import canonicalize, fingerprint
from repro.tcad.device import Polarity

finite = st.floats(min_value=1e-30, max_value=1e30,
                   allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# units round-trips
# ----------------------------------------------------------------------
@given(x=finite)
@settings(max_examples=80, deadline=None)
def test_nm_roundtrip(x):
    assert units.to_nm(units.nm(x)) == pytest.approx(x, rel=1e-12)
    assert units.nm(units.to_nm(x)) == pytest.approx(x, rel=1e-12)


@given(x=finite)
@settings(max_examples=80, deadline=None)
def test_per_cm3_roundtrip(x):
    assert units.to_per_cm3(units.per_cm3(x)) == \
        pytest.approx(x, rel=1e-12)


@given(x=finite)
@settings(max_examples=80, deadline=None)
def test_scale_helpers_are_linear(x):
    for helper, scale in ((units.um, units.UM), (units.fF, units.FF),
                          (units.ps, units.PS), (units.ns, units.NS)):
        assert helper(x) == x * scale
        assert helper(2.0 * x) == pytest.approx(2.0 * helper(x),
                                                rel=1e-12)


@given(x=st.floats(min_value=1e-14, max_value=1e9,
                   allow_nan=False, allow_infinity=False))
@settings(max_examples=80, deadline=None)
def test_eng_format_always_parses_back(x):
    text = units.eng_format(x, digits=6)
    suffixes = {"f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
                "m": 1e-3, "k": 1e3, "M": 1e6, "G": 1e9}
    if text and text[-1] in suffixes:
        value = float(text[:-1]) * suffixes[text[-1]]
    else:
        value = float(text)
    assert value == pytest.approx(x, rel=2e-5)


# ----------------------------------------------------------------------
# fingerprint: stability and distinctness
# ----------------------------------------------------------------------
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12))
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4)),
    max_leaves=12)


@given(mapping=st.dictionaries(st.text(max_size=8), json_scalars,
                               min_size=2, max_size=6))
@settings(max_examples=80, deadline=None)
def test_fingerprint_ignores_dict_insertion_order(mapping):
    reversed_order = dict(reversed(list(mapping.items())))
    assert fingerprint(mapping) == fingerprint(reversed_order)


@given(value=json_values)
@settings(max_examples=80, deadline=None)
def test_fingerprint_is_deterministic(value):
    assert fingerprint(value) == fingerprint(value)
    # Canonical form must be JSON-stable, not merely hash-stable.
    assert canonicalize(value) == canonicalize(value)


@given(mapping=st.dictionaries(st.text(max_size=8),
                               st.integers(-1000, 1000),
                               min_size=1, max_size=6),
       delta=st.integers(1, 7))
@settings(max_examples=80, deadline=None)
def test_fingerprint_distinguishes_value_changes(mapping, delta):
    key = sorted(mapping)[0]
    changed = dict(mapping)
    changed[key] = mapping[key] + delta
    assert fingerprint(changed) != fingerprint(mapping)


@given(x=st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False))
@settings(max_examples=80, deadline=None)
def test_fingerprint_distinguishes_one_ulp(x):
    bumped = math.nextafter(x, math.inf)
    assert fingerprint({"x": bumped}) != fingerprint({"x": x})


def test_fingerprint_numpy_matches_python_floats():
    values = [0.0, 1.0, -2.5, 1e-30]
    assert fingerprint(np.array(values)) == fingerprint(values)
    assert fingerprint(np.float64(2.5)) == fingerprint(2.5)


# ----------------------------------------------------------------------
# compact model: I-V continuity across region boundaries
# ----------------------------------------------------------------------
_MODEL = BsimSoi4Lite(params=default_parameters(),
                      polarity=Polarity.NMOS)
#: Largest plausible transconductance/conductance scale [A/V] — the
#: model drives ~1e-4 A from ~1 V, so 1e-2 A/V bounds any secant slope
#: away from a discontinuity by a wide margin.
_G_MAX = 1e-2

op_voltages = st.floats(min_value=0.0, max_value=1.2,
                        allow_nan=False)
steps = st.floats(min_value=1e-12, max_value=1e-7, allow_nan=False)


@given(vgs=op_voltages, vds=op_voltages, h=steps)
@settings(max_examples=120, deadline=None)
def test_ids_continuous_in_vds(vgs, vds, h):
    """No jump at the linear/saturation hand-off (or anywhere else):
    the secant slope over a vanishing interval stays bounded."""
    lo = _MODEL.ids_magnitude(vgs, vds)
    hi = _MODEL.ids_magnitude(vgs, vds + h)
    assert abs(hi - lo) <= _G_MAX * h + 1e-18


@given(vgs=op_voltages, vds=op_voltages, h=steps)
@settings(max_examples=120, deadline=None)
def test_ids_continuous_in_vgs(vgs, vds, h):
    """No jump at the subthreshold/strong-inversion hand-off."""
    lo = _MODEL.ids_magnitude(vgs, vds)
    hi = _MODEL.ids_magnitude(vgs + h, vds)
    assert abs(hi - lo) <= _G_MAX * h + 1e-18


@given(vgs=op_voltages, h=steps)
@settings(max_examples=80, deadline=None)
def test_cgg_continuous_in_vgs(vgs, h):
    """C-V must be smooth through depletion/inversion (C ~ 1e-15 F,
    dC/dV ~ 1e-14 F/V at most)."""
    lo = float(_MODEL.cgg(np.array([vgs]))[0])
    hi = float(_MODEL.cgg(np.array([vgs + h]))[0])
    assert abs(hi - lo) <= 1e-13 * h + 1e-24


def test_ids_continuous_at_exact_vdsat():
    """Dense sweep through the saturation knee: adjacent 0.1 mV steps
    never jump by more than the bounded-slope budget."""
    vds = np.linspace(0.0, 1.2, 12001)
    ids = _MODEL.ids_magnitude(np.full_like(vds, 0.9), vds)
    jumps = np.abs(np.diff(ids))
    assert float(jumps.max()) <= _G_MAX * (vds[1] - vds[0])
