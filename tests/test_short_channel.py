"""Characteristic-length short-channel model."""

import math

import pytest

from repro.tcad.short_channel import ShortChannelModel


@pytest.fixture(scope="module")
def model():
    return ShortChannelModel(t_si=7e-9, t_ox=1e-9)


def test_natural_length_value(model):
    # sqrt(eps_si/eps_ox * t_si * t_ox) = sqrt(3 * 7) nm ~ 4.58 nm.
    assert model.natural_length == pytest.approx(4.58e-9, rel=0.01)


def test_decay_at_paper_gate_length(model):
    decay = model.decay(24e-9)
    assert decay == pytest.approx(math.exp(-24 / (2 * 4.58)), rel=0.02)
    assert 0.05 < decay < 0.12


def test_dibl_decreases_with_length(model):
    assert model.dibl(48e-9) < model.dibl(24e-9) < model.dibl(12e-9)


def test_dibl_magnitude_reasonable(model):
    # tens of mV/V at L = 24 nm for this film/oxide.
    sigma = model.dibl(24e-9)
    assert 0.01 < sigma < 0.1


def test_vth_rolloff_positive_and_small(model):
    rolloff = model.vth_rolloff(24e-9)
    assert 0.0 < rolloff < 0.05


def test_swing_degradation_above_unity(model):
    assert model.swing_degradation(24e-9) > 1.0
    assert model.swing_degradation(100e-9) == pytest.approx(1.0, abs=0.01)


def test_long_channel_limit(model):
    assert model.dibl(1e-6) == pytest.approx(0.0, abs=1e-12)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        ShortChannelModel(t_si=0.0, t_ox=1e-9)
    with pytest.raises(ValueError):
        ShortChannelModel(t_si=7e-9, t_ox=1e-9).decay(0.0)


def test_thinner_film_improves_control():
    thin = ShortChannelModel(t_si=5e-9, t_ox=1e-9)
    thick = ShortChannelModel(t_si=10e-9, t_ox=1e-9)
    assert thin.dibl(24e-9) < thick.dibl(24e-9)
