"""Solver rescue ladders: Newton gmin/source continuation, transient
timestep rejection, and TCAD bias continuation — driven by the
deterministic fault injector."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.observe import Tracer, activate
from repro.resilience import FaultInjector, clear_faults, install
from repro.spice import Circuit, Resistor, dc_source, pulse_source, transient
from repro.spice.dcop import solve_dc
from repro.spice.mna import MnaAssembler
from repro.spice.newton import newton_solve
from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar


@pytest.fixture(autouse=True)
def _no_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clear_faults()
    yield
    clear_faults()


def _divider():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "b", 1e3))
    c.add(Resistor("R2", "b", "0", 1e3))
    return c


# ----------------------------------------------------------------------
# Newton rescue ladder
# ----------------------------------------------------------------------
def test_injected_primary_failure_engages_rescue_bit_identical():
    """A non-fatal convergence fault skips the damped rungs; the gmin
    rescue must still land on the same solution bits (the system is
    linear, so every converging path ends at the same linear solve)."""
    assembler = MnaAssembler(_divider())
    x0 = np.zeros(assembler.n_unknowns)
    reference = newton_solve(assembler, x0, 0.0)

    install(FaultInjector.parse("convergence:newton:first=1"))
    tracer = Tracer()
    with activate(tracer):
        rescued = newton_solve(assembler, x0, 0.0)
    assert np.array_equal(rescued, reference)
    assert tracer.counter("spice.newton.rescues").value == 1
    assert tracer.counter("spice.newton.rescues.gmin").value == 1


def test_fatal_fault_fails_the_whole_solve():
    assembler = MnaAssembler(_divider())
    install(FaultInjector.parse(
        "convergence:newton:fatal=1,message=forced dc failure"))
    with pytest.raises(ConvergenceError, match="forced dc failure"):
        newton_solve(assembler, np.zeros(assembler.n_unknowns), 0.0)


def test_fault_free_solves_draw_nothing():
    """Without an injector the solve takes the unmodified fast path."""
    assembler = MnaAssembler(_divider())
    a = newton_solve(assembler, np.zeros(assembler.n_unknowns), 0.0)
    b = newton_solve(assembler, np.zeros(assembler.n_unknowns), 0.0)
    assert np.array_equal(a, b)
    op = solve_dc(_divider())
    assert op.voltage("b") == pytest.approx(0.5, abs=1e-6)


def _sabotage(times: int):
    """extra_system that zeroes the matrix for its first ``times`` calls,
    making the linearised system exactly singular."""
    count = {"left": times}

    def wrecker(x, stamper) -> None:
        if count["left"] > 0:
            count["left"] -= 1
            stamper.matrix[:, :] = 0.0
    return wrecker


@pytest.mark.parametrize("kernel,threshold", [("dense", None),
                                              ("sparse", 1)])
def test_singular_damped_rung_falls_through_to_next_rung(kernel,
                                                         threshold):
    """A singular system on the first damped rung is treated like
    non-convergence: the second rung solves the (now healthy) system
    and the result matches the clean solve bitwise."""
    assembler = MnaAssembler(_divider(), kernel=kernel,
                             sparse_threshold=threshold)
    x0 = np.zeros(assembler.n_unknowns)
    reference = newton_solve(assembler, x0, 0.0)

    tracer = Tracer()
    with activate(tracer):
        recovered = newton_solve(assembler, x0, 0.0,
                                 extra_system=_sabotage(1))
    assert np.array_equal(recovered, reference)
    assert tracer.counter("spice.newton.singular_systems").value == 1
    assert tracer.counter("spice.newton.rescues").value == 0


@pytest.mark.parametrize("kernel,threshold", [("dense", None),
                                              ("sparse", 1)])
def test_singular_damped_rungs_engage_gmin_rescue(kernel, threshold):
    """Both damped rungs hit singular systems: the gmin rescue must
    engage (the rescue's own solves see the healthy system again)."""
    assembler = MnaAssembler(_divider(), kernel=kernel,
                             sparse_threshold=threshold)
    x0 = np.zeros(assembler.n_unknowns)
    reference = newton_solve(assembler, x0, 0.0)

    tracer = Tracer()
    with activate(tracer):
        rescued = newton_solve(assembler, x0, 0.0,
                               extra_system=_sabotage(2))
    assert np.array_equal(rescued, reference)
    assert tracer.counter("spice.newton.singular_systems").value == 2
    assert tracer.counter("spice.newton.rescues.gmin").value == 1


@pytest.mark.parametrize("kernel,threshold", [("dense", None),
                                              ("sparse", 1)])
def test_hard_singular_system_raises_the_structural_diagnosis(kernel,
                                                              threshold):
    """When every rung sees a singular system the solver re-raises
    SingularMatrixError (code spice.singular_matrix), not a generic
    non-convergence."""
    from repro.errors import SingularMatrixError
    assembler = MnaAssembler(_divider(), kernel=kernel,
                             sparse_threshold=threshold)
    with pytest.raises(SingularMatrixError) as err:
        newton_solve(assembler, np.zeros(assembler.n_unknowns), 0.0,
                     extra_system=_sabotage(10 ** 6))
    assert err.value.code == "spice.singular_matrix"


# ----------------------------------------------------------------------
# transient timestep rejection
# ----------------------------------------------------------------------
def _rc_pulse():
    from repro.spice.elements.capacitor import Capacitor
    c = Circuit()
    c.add(pulse_source("V1", "in", "0", v1=0.0, v2=1.0, delay=1e-10,
                       rise=2e-11, fall=2e-11, width=4e-10))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Capacitor("C1", "out", "0", 1e-13))
    return c


def test_timestep_rejection_recovers_from_fatal_faults():
    reference = transient(_rc_pulse(), t_stop=1e-9, dt=5e-11)

    # The first 3 timestep solves fail fatally (site transient.newton
    # leaves the t=0 DC operating point untouched); halved sub-steps
    # must carry the waveform through.
    install(FaultInjector.parse("convergence:transient.newton:first=3"
                                ",fatal=1"))
    tracer = Tracer()
    with activate(tracer):
        rescued = transient(_rc_pulse(), t_stop=1e-9, dt=5e-11)
    clear_faults()

    assert np.array_equal(rescued.times, reference.times)
    assert tracer.counter("spice.transient.rejected_steps").value >= 1
    # Sub-stepped integration differs in the last bits but must stay a
    # faithful waveform.
    ref = reference.waveform("out").v
    got = rescued.waveform("out").v
    assert np.max(np.abs(got - ref)) < 1e-3


def test_fault_free_transient_is_deterministic():
    a = transient(_rc_pulse(), t_stop=1e-9, dt=5e-11)
    b = transient(_rc_pulse(), t_stop=1e-9, dt=5e-11)
    assert np.array_equal(a.waveform("out").v,
                          b.waveform("out").v)


def test_unrecoverable_transient_still_raises():
    # Every timestep solve fails fatally: once h reaches h/2**7 the
    # integrator must give up loudly, not loop forever.
    install(FaultInjector.parse("convergence:transient.newton:fatal=1"))
    with pytest.raises(ConvergenceError):
        transient(_rc_pulse(), t_stop=1e-9, dt=5e-11)


# ----------------------------------------------------------------------
# TCAD bias continuation
# ----------------------------------------------------------------------
def test_dd1d_rescue_matches_direct_solve():
    solver = DriftDiffusion1D(uniform_bar())
    direct = solver.solve(0.05)

    install(FaultInjector.parse("convergence:dd1d:first=1"))
    tracer = Tracer()
    with activate(tracer):
        rescued = solver.solve(0.05)
    clear_faults()

    assert rescued.current == pytest.approx(direct.current, rel=1e-6)
    assert np.allclose(rescued.psi, direct.psi, atol=1e-9)
    assert tracer.counter("tcad.dd1d.rescues").value == 1


def test_dd1d_fatal_fault_raises():
    solver = DriftDiffusion1D(uniform_bar())
    install(FaultInjector.parse("convergence:dd1d:fatal=1"))
    with pytest.raises(ConvergenceError, match="dd1d"):
        solver.solve(0.05)


def test_dd1d_sweep_warm_starts_and_stays_monotone():
    solver = DriftDiffusion1D(uniform_bar())
    solutions = solver.sweep([0.01, 0.03, 0.06, 0.1])
    currents = [s.current for s in solutions]
    assert all(b > a for a, b in zip(currents, currents[1:]))
    # warm-started sweep agrees with independent cold solves
    cold = solver.solve(0.1)
    assert solutions[-1].current == pytest.approx(cold.current, rel=1e-6)
