"""Ring-oscillator extension study."""

import pytest

from repro.analysis.ring_oscillator import (
    build_ring_oscillator,
    measure_ring_frequency,
)
from repro.cells.variants import DeviceVariant
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def ro_2d():
    return measure_ring_frequency(DeviceVariant.TWO_D)


@pytest.fixture(scope="module")
def ro_2ch():
    return measure_ring_frequency(DeviceVariant.MIV_2CH)


def test_ring_build_validation():
    with pytest.raises(SimulationError):
        build_ring_oscillator(DeviceVariant.TWO_D, n_stages=4)
    with pytest.raises(SimulationError):
        build_ring_oscillator(DeviceVariant.TWO_D, n_stages=1)


def test_ring_circuit_structure():
    circuit = build_ring_oscillator(DeviceVariant.TWO_D, n_stages=5)
    fets = [e for e in circuit if e.name.startswith("M")]
    assert len(fets) == 10
    circuit.validate()


def test_ring_oscillates_ghz_range(ro_2d):
    assert 1e9 < ro_2d.frequency < 1e11
    assert ro_2d.n_stages == 5


def test_stage_delay_consistent_with_period(ro_2d):
    assert ro_2d.stage_delay == pytest.approx(
        ro_2d.period / (2 * ro_2d.n_stages))


def test_stage_delay_ps_scale(ro_2d):
    # 1 fF-loaded inverters: a few ps per stage.
    assert 2e-12 < ro_2d.stage_delay < 20e-12


def test_ring_frequencies_same_regime(ro_2d, ro_2ch):
    """Both rings oscillate in the same GHz regime.

    The ring's self-generated (slow) slews interact with the MIV
    variants' asymmetric (n-only) threshold shift, so the per-variant
    ordering differs from the driven-edge Figure 5(a) deltas — see the
    module docstring and EXPERIMENTS.md.  The invariant we hold is that
    the frequencies stay within ~35% of each other.
    """
    ratio = ro_2ch.frequency / ro_2d.frequency
    assert 0.65 < ratio < 1.5


def test_4ch_ring_not_fastest(ro_2d):
    """The weakest-drive (4-channel) device never wins the ring race."""
    from repro.analysis.ring_oscillator import measure_ring_frequency
    ro_4ch = measure_ring_frequency(DeviceVariant.MIV_4CH)
    assert ro_4ch.frequency <= ro_2d.frequency * 1.02


def test_full_swing_oscillation(ro_2d):
    wf = ro_2d.result.waveform("n0")
    half = ro_2d.result.times[-1] / 2
    steady = wf.window(half, ro_2d.result.times[-1])
    assert steady.maximum() > 0.9
    assert steady.minimum() < 0.1
