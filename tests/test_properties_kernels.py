"""Property tests of the fast solver kernels.

* The batched dd1d sweep is a per-point cold solve: its result for a
  bias must not depend on where the point sits in the sweep, nor on
  how the sweep is partitioned into batches.
* The sparse MNA solver is just a linear solver: on any
  well-conditioned system it must agree with ``np.linalg.solve``, and
  its pattern/factor caches must invalidate exactly when the matrix
  structure/values change.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe import Tracer, activate
from repro.spice.mna import _SparseLinearSolver
from repro.tcad.dd1d import Bar1D, DriftDiffusion1D

pytestmark = pytest.mark.filterwarnings(
    "ignore::scipy.sparse.SparseEfficiencyWarning")


def _small_bar() -> Bar1D:
    """A coarse bar: property tests trade mesh resolution for examples."""
    return Bar1D(length=48e-9, area=192e-9 * 7e-9,
                 doping=lambda _x: 1e25, n_nodes=31, mobility=0.01)


_SOLVER = DriftDiffusion1D(_small_bar())
_BIAS_POOL = [0.0, 0.02, 0.05, 0.08, 0.12, 0.2]


def _currents(solutions):
    return np.array([s.current for s in solutions])


# ----------------------------------------------------------------------
# batched dd1d: ordering and partition independence
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(order=st.permutations(list(range(len(_BIAS_POOL)))))
def test_dd1d_batched_is_bias_order_independent(order):
    reference = _currents(_SOLVER.sweep(_BIAS_POOL, kernel="batched"))
    permuted = _currents(
        _SOLVER.sweep([_BIAS_POOL[i] for i in order], kernel="batched"))
    np.testing.assert_allclose(permuted, reference[order],
                               rtol=1e-9, atol=1e-18)


@settings(max_examples=25, deadline=None)
@given(split=st.integers(min_value=0, max_value=len(_BIAS_POOL)))
def test_dd1d_batched_is_partition_independent(split):
    reference = _currents(_SOLVER.sweep(_BIAS_POOL, kernel="batched"))
    pieces = (_SOLVER.sweep(_BIAS_POOL[:split], kernel="batched") +
              _SOLVER.sweep(_BIAS_POOL[split:], kernel="batched"))
    np.testing.assert_allclose(_currents(pieces), reference,
                               rtol=1e-9, atol=1e-18)


@settings(max_examples=20, deadline=None)
@given(biases=st.lists(
    st.floats(min_value=0.0, max_value=0.25, allow_nan=False),
    min_size=1, max_size=5))
def test_dd1d_batched_matches_loop_for_random_sweeps(biases):
    batched = _currents(_SOLVER.sweep(biases, kernel="batched"))
    loop = _currents(_SOLVER.sweep(biases, kernel="loop"))
    np.testing.assert_allclose(batched, loop, rtol=1e-6, atol=1e-15)


# ----------------------------------------------------------------------
# sparse MNA linear algebra
# ----------------------------------------------------------------------
def _well_conditioned(draw_values, n):
    """Diagonally dominant system: random entries + n * I."""
    matrix = np.array(draw_values).reshape(n, n)
    return matrix + n * np.max(np.abs(matrix) + 1.0) * np.eye(n)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), n=st.integers(min_value=2, max_value=12))
def test_sparse_solver_matches_dense_reference(data, n):
    values = data.draw(st.lists(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        min_size=n * n, max_size=n * n))
    rhs = np.array(data.draw(st.lists(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        min_size=n, max_size=n)))
    matrix = _well_conditioned(values, n)
    got = _SparseLinearSolver().solve(matrix, rhs)
    expected = np.linalg.solve(matrix, rhs)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), n=st.integers(min_value=3, max_value=10))
def test_sparse_solver_survives_value_and_pattern_changes(data, n):
    """One solver instance fed a sequence of systems: cached answers
    must stay correct through value changes and structure changes."""
    solver = _SparseLinearSolver()
    base = _well_conditioned([0.0] * (n * n), n)
    rhs = np.arange(1.0, n + 1.0)
    steps = data.draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=n - 1),
                  st.integers(min_value=0, max_value=n - 1),
                  st.floats(min_value=-5.0, max_value=5.0,
                            allow_nan=False)),
        min_size=1, max_size=6))
    matrix = base.copy()
    for row, col, value in steps:
        matrix[row, col] += value
        np.testing.assert_allclose(
            solver.solve(matrix, rhs), np.linalg.solve(matrix, rhs),
            rtol=1e-9, atol=1e-12)


def test_sparse_cache_counters_follow_the_contract():
    """Same data -> factor reuse; new values -> refactorisation; new
    off-pattern nonzero -> pattern rebuild (and a correct solve)."""
    solver = _SparseLinearSolver()
    n = 6
    matrix = np.diag(np.full(n, 4.0)) + np.diag(np.ones(n - 1), 1)
    rhs = np.ones(n)
    tracer = Tracer()
    with activate(tracer):
        solver.solve(matrix, rhs)
        assert tracer.counter("spice.mna.pattern_rebuilds").value == 1
        assert tracer.counter("spice.mna.factorizations").value == 1

        solver.solve(matrix, rhs)
        assert tracer.counter("spice.mna.factor_reuse").value == 1
        assert tracer.counter("spice.mna.factorizations").value == 1

        matrix[0, 0] = 5.0  # in-pattern value change
        solver.solve(matrix, rhs)
        assert tracer.counter("spice.mna.factorizations").value == 2
        assert tracer.counter("spice.mna.pattern_rebuilds").value == 1

        matrix[n - 1, 0] = 1.0  # new coupling outside the pattern
        got = solver.solve(matrix, rhs)
        assert tracer.counter("spice.mna.pattern_rebuilds").value == 2
    np.testing.assert_allclose(got, np.linalg.solve(matrix, rhs),
                               rtol=1e-9, atol=1e-12)


def test_sparse_cache_handles_size_change():
    solver = _SparseLinearSolver()
    for n in (4, 7, 4):
        matrix = np.diag(np.full(n, 3.0))
        got = solver.solve(matrix, np.ones(n))
        np.testing.assert_allclose(got, np.full(n, 1.0 / 3.0))
