"""Error metrics."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.extraction.error import (
    log_residuals,
    mixed_current_residuals,
    region_error_percent,
    relative_errors,
)


def test_perfect_fit_zero_error():
    ref = np.array([1.0, 2.0, 3.0])
    assert region_error_percent(ref, ref) == 0.0


def test_uniform_ten_percent_error():
    ref = np.array([1.0, 2.0, 3.0])
    sim = ref * 1.1
    assert region_error_percent(sim, ref) == pytest.approx(10.0, rel=1e-6)


def test_floor_prevents_blowup_at_zero():
    ref = np.array([0.0, 1.0])
    sim = np.array([0.01, 1.0])
    errors = relative_errors(sim, ref)
    # the zero point uses 2% of max as denominator: 0.01/0.02 = 0.5
    assert errors[0] == pytest.approx(0.5)


def test_relative_errors_shape_mismatch():
    with pytest.raises(ExtractionError):
        relative_errors(np.zeros(3), np.zeros(4))


def test_zero_reference_rejected():
    with pytest.raises(ExtractionError):
        relative_errors(np.ones(3), np.zeros(3))


def test_log_residuals_decades():
    res = log_residuals(np.array([1e-6]), np.array([1e-8]))
    assert res[0] == pytest.approx(2.0)


def test_log_residuals_floored():
    res = log_residuals(np.array([0.0]), np.array([1e-14]))
    assert np.isfinite(res[0])


def test_mixed_residuals_concatenates():
    ref = np.array([1.0, 2.0])
    sim = np.array([1.1, 2.2])
    res = mixed_current_residuals(sim, ref, log_weight=0.5)
    assert res.size == 4


def test_mixed_residuals_weighting():
    ref = np.array([1.0])
    sim = np.array([10.0])
    res0 = mixed_current_residuals(sim, ref, log_weight=0.0)
    res1 = mixed_current_residuals(sim, ref, log_weight=1.0)
    assert res0[1] == 0.0
    assert res1[1] == pytest.approx(1.0)
