"""The task-graph executor: scheduling, content addressing, manifests."""

import pytest

from repro.engine import (
    Engine,
    Task,
    default_engine,
    register_stage,
    reset_default_engine,
    resolve_worker_count,
    set_default_engine,
    unregister_stage,
)
from repro.errors import ReproError


def _add(payload, deps):
    return payload["value"] + sum(deps.values())


def _fail(payload, deps):
    raise RuntimeError("boom")


@pytest.fixture(autouse=True)
def _toy_stages():
    register_stage("toy_add", version=1, compute=_add,
                   encode=lambda a: a, decode=lambda d: d, replace=True)
    register_stage("toy_fail", version=1, compute=_fail, replace=True)
    yield
    unregister_stage("toy_add")
    unregister_stage("toy_fail")


def _engine(tmp_path, workers=1):
    backend = "serial" if workers == 1 else f"pool:{workers}"
    return Engine(backend=backend, cache_dir=tmp_path)


def test_single_task(tmp_path):
    run = _engine(tmp_path).run(
        [Task(id="a", stage="toy_add", payload={"value": 2})])
    assert run["a"] == 2


def test_dependencies_feed_dependents(tmp_path):
    tasks = [
        Task(id="a", stage="toy_add", payload={"value": 1}),
        Task(id="b", stage="toy_add", payload={"value": 10}, deps=("a",)),
        Task(id="c", stage="toy_add", payload={"value": 100}, deps=("a", "b")),
    ]
    run = _engine(tmp_path).run(tasks)
    assert run["a"] == 1
    assert run["b"] == 11
    assert run["c"] == 112


def test_declaration_order_is_irrelevant(tmp_path):
    tasks = [
        Task(id="c", stage="toy_add", payload={"value": 100}, deps=("a", "b")),
        Task(id="b", stage="toy_add", payload={"value": 10}, deps=("a",)),
        Task(id="a", stage="toy_add", payload={"value": 1}),
    ]
    assert _engine(tmp_path).run(tasks)["c"] == 112


def test_cycle_detection(tmp_path):
    tasks = [
        Task(id="a", stage="toy_add", payload={"value": 1}, deps=("b",)),
        Task(id="b", stage="toy_add", payload={"value": 2}, deps=("a",)),
    ]
    with pytest.raises(ReproError, match="cycle"):
        _engine(tmp_path).run(tasks)


def test_unknown_dependency_rejected(tmp_path):
    with pytest.raises(ReproError, match="unknown dependency"):
        _engine(tmp_path).run(
            [Task(id="a", stage="toy_add", payload={"value": 1},
                  deps=("ghost",))])


def test_duplicate_task_id_rejected(tmp_path):
    tasks = [Task(id="a", stage="toy_add", payload={"value": 1}),
             Task(id="a", stage="toy_add", payload={"value": 2})]
    with pytest.raises(ReproError, match="duplicate"):
        _engine(tmp_path).run(tasks)


def test_unknown_stage_rejected(tmp_path):
    with pytest.raises(ReproError, match="unknown engine stage"):
        _engine(tmp_path).run([Task(id="a", stage="nope", payload=None)])


def test_compute_errors_propagate(tmp_path):
    with pytest.raises(RuntimeError, match="boom"):
        _engine(tmp_path).run([Task(id="a", stage="toy_fail", payload=None)])


def test_same_content_different_ids_share_one_computation(tmp_path):
    engine = _engine(tmp_path)
    tasks = [Task(id="first", stage="toy_add", payload={"value": 7}),
             Task(id="second", stage="toy_add", payload={"value": 7})]
    run = engine.run(tasks)
    assert run["first"] == run["second"] == 7
    computed = [r for r in run.manifest.records if r.cache == "miss"]
    assert len(computed) == 1


def test_second_run_hits_memory_cache(tmp_path):
    engine = _engine(tmp_path)
    task = Task(id="a", stage="toy_add", payload={"value": 3})
    first = engine.run([task])
    second = engine.run([task])
    assert first.manifest.hit_rate() == 0.0
    assert second.manifest.hit_rate() == 1.0
    assert second.manifest.records[0].cache == "memory"


def test_fresh_engine_hits_disk_cache(tmp_path):
    task = Task(id="a", stage="toy_add", payload={"value": 3})
    _engine(tmp_path).run([task])
    run = _engine(tmp_path).run([task])
    assert run.manifest.records[0].cache == "disk"
    assert run["a"] == 3


def test_payload_change_changes_key(tmp_path):
    engine = _engine(tmp_path)
    engine.run([Task(id="a", stage="toy_add", payload={"value": 3})])
    run = engine.run([Task(id="a", stage="toy_add", payload={"value": 4})])
    assert run.manifest.records[0].cache == "miss"
    assert run["a"] == 4


def test_dependency_key_change_invalidates_dependent(tmp_path):
    engine = _engine(tmp_path)
    keys1 = engine.task_keys([
        Task(id="a", stage="toy_add", payload={"value": 1}),
        Task(id="b", stage="toy_add", payload={"value": 10}, deps=("a",)),
    ])
    keys2 = engine.task_keys([
        Task(id="a", stage="toy_add", payload={"value": 2}),
        Task(id="b", stage="toy_add", payload={"value": 10}, deps=("a",)),
    ])
    assert keys1["b"] != keys2["b"]


def test_parallel_run_matches_serial(tmp_path):
    tasks = [Task(id=f"t{i}", stage="toy_add", payload={"value": i})
             for i in range(6)]
    tasks.append(Task(id="sum", stage="toy_add", payload={"value": 0},
                      deps=tuple(f"t{i}" for i in range(6))))
    serial = Engine(backend="serial", cache_dir=tmp_path / "s").run(tasks)
    parallel = Engine(backend="pool:4", cache_dir=tmp_path / "p").run(tasks)
    assert serial.artifacts == parallel.artifacts
    assert parallel.manifest.max_workers == 4


def test_manifest_records_every_task(tmp_path):
    tasks = [Task(id="a", stage="toy_add", payload={"value": 1}),
             Task(id="b", stage="toy_add", payload={"value": 2}, deps=("a",))]
    run = _engine(tmp_path).run(tasks)
    assert {r.task_id for r in run.manifest.records} == {"a", "b"}
    assert all(r.wall_time >= 0 for r in run.manifest.records)
    assert run.manifest.summary()["stages"]["toy_add"]["tasks"] == 2


def test_manifest_roundtrip_and_save(tmp_path):
    from repro.engine import RunManifest
    run = _engine(tmp_path).run(
        [Task(id="a", stage="toy_add", payload={"value": 1})])
    path = tmp_path / "manifest.json"
    run.manifest.save(path)
    restored = RunManifest.from_dict(
        __import__("json").loads(path.read_text()))
    assert restored.records[0].task_id == "a"
    assert restored.max_workers == run.manifest.max_workers
    assert "engine run" in run.manifest.render()


def test_worker_count_resolution(monkeypatch):
    assert resolve_worker_count(3) == 3
    monkeypatch.setenv("REPRO_MAX_WORKERS", "5")
    assert resolve_worker_count() == 5
    monkeypatch.delenv("REPRO_MAX_WORKERS")
    assert resolve_worker_count() >= 1
    with pytest.raises(ReproError):
        resolve_worker_count(0)


def test_default_engine_swap_and_reset():
    original = default_engine()
    replacement = Engine(backend="serial", use_disk=False)
    previous = set_default_engine(replacement)
    try:
        assert default_engine() is replacement
    finally:
        set_default_engine(previous)
    assert default_engine() is original
    reset_default_engine()
    assert default_engine() is not original
    set_default_engine(original)
