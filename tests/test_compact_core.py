"""Compact-model building blocks: threshold, subthreshold, mobility,
current and capacitance submodules."""

import numpy as np
import pytest

from repro.compact import capacitance as cap_mod
from repro.compact import current as cur_mod
from repro.compact import mobility as mob_mod
from repro.compact.subthreshold import (
    effective_overdrive,
    ideality_factor,
    overdrive_derivative,
    soft_plus,
)
from repro.compact.threshold import ThresholdModel

VT = 0.02569


# ---------------------------------------------------------------------------
# threshold
# ---------------------------------------------------------------------------
def test_long_channel_vth_is_vth0():
    model = ThresholdModel(l_gate=1e-6, t_si=7e-9, t_ox=1e-9)
    assert float(model.vth(0.4, 1.0, 0.8, 0.0, 0.0)) == pytest.approx(
        0.4, abs=1e-6)


def test_short_channel_rolloff_reduces_vth():
    model = ThresholdModel(l_gate=24e-9, t_si=7e-9, t_ox=1e-9)
    short = float(model.vth(0.4, 1.0, 0.8, 0.0, 0.0))
    assert short < 0.4


def test_dibl_term_linear_in_vds():
    model = ThresholdModel(l_gate=24e-9, t_si=7e-9, t_ox=1e-9)
    v0 = float(model.vth(0.4, 0.0, 1.0, 0.05, 0.0))
    v1 = float(model.vth(0.4, 0.0, 1.0, 0.05, 1.0))
    assert v0 - v1 == pytest.approx(0.05)


def test_dvt1_sharpens_rolloff():
    model = ThresholdModel(l_gate=24e-9, t_si=7e-9, t_ox=1e-9)
    weak = model.sce_shift(1.0, 2.0)
    strong = model.sce_shift(1.0, 0.5)
    assert strong > weak


def test_threshold_rejects_bad_geometry():
    with pytest.raises(ValueError):
        ThresholdModel(l_gate=0.0, t_si=7e-9, t_ox=1e-9)


# ---------------------------------------------------------------------------
# subthreshold / overdrive
# ---------------------------------------------------------------------------
def test_ideality_floor_is_one():
    assert float(ideality_factor(0.0, 0.0, 0.0345, 0.0)) == 1.0


def test_ideality_increases_with_cdsc():
    n = float(ideality_factor(0.00345, 0.0, 0.0345, 0.0))
    assert n == pytest.approx(1.1)


def test_cdscd_adds_drain_dependence():
    n0 = float(ideality_factor(0.0, 0.0345, 0.0345, 0.0))
    n1 = float(ideality_factor(0.0, 0.0345, 0.0345, 1.0))
    assert n1 == pytest.approx(n0 + 1.0)


def test_soft_plus_limits():
    assert float(soft_plus(np.array(10.0), 1.0)) == pytest.approx(10.0,
                                                                  abs=1e-4)
    assert float(soft_plus(np.array(-50.0), 1.0)) == pytest.approx(0.0,
                                                                   abs=1e-12)
    assert float(soft_plus(np.array(0.0), 1.0)) == pytest.approx(np.log(2))


def test_overdrive_strong_inversion_linear():
    vgst = float(effective_overdrive(1.0, 0.35, 1.0, VT))
    assert vgst == pytest.approx(0.65, abs=1e-3)


def test_overdrive_subthreshold_exponential():
    v1 = float(effective_overdrive(0.1, 0.35, 1.0, VT))
    v2 = float(effective_overdrive(0.1 + VT * np.log(10), 0.35, 1.0, VT))
    assert v2 / v1 == pytest.approx(10.0, rel=0.05)


def test_overdrive_derivative_is_logistic():
    assert float(overdrive_derivative(0.35, 0.35, 1.0, VT)) == pytest.approx(0.5)
    assert float(overdrive_derivative(1.0, 0.35, 1.0, VT)) == pytest.approx(
        1.0, abs=1e-6)


def test_overdrive_never_exceeds_huge_argument():
    assert np.isfinite(float(effective_overdrive(100.0, 0.35, 1.0, VT)))


# ---------------------------------------------------------------------------
# mobility
# ---------------------------------------------------------------------------
def test_mobility_u0_limit():
    mu = float(mob_mod.effective_mobility(0.0, 1e-9, 0.045, 0.0, 0.0, 0.0,
                                          1.0, VT))
    assert mu == pytest.approx(0.045)


def test_mobility_ua_degradation():
    mu0 = float(mob_mod.effective_mobility(0.2, 1e-9, 0.045, 0.0, 0.0, 0.0,
                                           1.0, VT))
    mu1 = float(mob_mod.effective_mobility(0.8, 1e-9, 0.045, 2e-9, 0.0, 0.0,
                                           1.0, VT))
    assert mu1 < mu0


def test_mobility_monotone_in_overdrive():
    vgst = np.linspace(0.0, 1.0, 20)
    mu = mob_mod.effective_mobility(vgst, 1e-9, 0.045, 1.5e-9, 1e-18, 0.0,
                                    1.0, VT)
    assert np.all(np.diff(mu) < 0)


def test_coulomb_term_hits_low_overdrive():
    mu_low = float(mob_mod.effective_mobility(0.01, 1e-9, 0.045, 0.0, 0.0,
                                              1.0, 1.0, VT))
    mu_high = float(mob_mod.effective_mobility(0.8, 1e-9, 0.045, 0.0, 0.0,
                                               1.0, 1.0, VT))
    assert mu_low < mu_high


# ---------------------------------------------------------------------------
# current
# ---------------------------------------------------------------------------
def test_vdseff_below_vdsat():
    vdseff = cur_mod.effective_vds(np.array(0.1), np.array(0.5))
    assert float(vdseff) == pytest.approx(0.1, abs=0.01)


def test_vdseff_clamps_to_vdsat():
    vdseff = cur_mod.effective_vds(np.array(1.0), np.array(0.2))
    assert float(vdseff) == pytest.approx(0.2, abs=0.02)


def test_vdsat_subthreshold_floor():
    # Subthreshold (vgsteff ~ 0): vdsat -> esat_l * 2vt / (esat_l + 2vt),
    # the diffusion saturation voltage limited by velocity saturation.
    esat_l = 0.1
    vdsat = cur_mod.saturation_voltage(np.array(1e-6), np.array(esat_l), VT)
    expected = esat_l * 2 * VT / (esat_l + 2 * VT)
    assert float(vdsat) == pytest.approx(expected, rel=0.01)


def test_vdsat_strong_inversion_limit():
    # esat_l >> vgsteff: vdsat ~ vgsteff + 2vt (long-channel limit).
    vdsat = cur_mod.saturation_voltage(np.array(0.5), np.array(100.0), VT)
    assert float(vdsat) == pytest.approx(0.5 + 2 * VT, rel=0.01)


def test_drain_current_positive_and_monotone():
    vgst = np.array([0.1, 0.3, 0.5, 0.7])
    ids = cur_mod.drain_current(vgst, 1.0, 0.03, 0.0345, 192e-9, 24e-9,
                                9e4, 0.0, VT)
    assert np.all(ids > 0)
    assert np.all(np.diff(ids) > 0)


def test_drain_current_leakage_floor():
    ids = cur_mod.drain_current(np.array(0.0), np.array(1.0), 0.03, 0.0345,
                                192e-9, 24e-9, 9e4, 0.0, VT)
    assert float(ids) > 0


def test_clm_increases_with_vds():
    i1 = cur_mod.drain_current(np.array(0.6), np.array(0.6), 0.03, 0.0345,
                               192e-9, 24e-9, 9e4, 0.0, VT)
    i2 = cur_mod.drain_current(np.array(0.6), np.array(1.0), 0.03, 0.0345,
                               192e-9, 24e-9, 9e4, 0.0, VT)
    assert float(i2) > float(i1)


def test_pvag_raises_early_voltage():
    kwargs = dict(mu_eff=0.03, cox=0.0345, width=192e-9, length=24e-9,
                  vsat=9e4, vt=VT)
    flat = cur_mod.drain_current(np.array(0.6), np.array(1.0), pvag=10.0,
                                 **kwargs)
    steep = cur_mod.drain_current(np.array(0.6), np.array(1.0), pvag=0.0,
                                  **kwargs)
    assert float(flat) < float(steep)


# ---------------------------------------------------------------------------
# capacitance
# ---------------------------------------------------------------------------
def _cap_params(**overrides):
    defaults = dict(ckappa=0.6, delvt=0.0, cf=5e-11, cgso=5e-11, cgdo=5e-11,
                    moin=3.0, cgsl=1e-10, cgdl=1e-10)
    defaults.update(overrides)
    return cap_mod.CapacitanceParameters(**defaults)


def test_cgg_limits():
    params = _cap_params()
    cox = 0.0345
    w, l = 192e-9, 24e-9
    low = float(cap_mod.gate_capacitance(-0.5, params, 0.35, cox, w, l, VT))
    high = float(cap_mod.gate_capacitance(1.5, params, 0.35, cox, w, l, VT))
    static = w * (params.cgso + params.cgdo + params.cf)
    assert low == pytest.approx(static, rel=0.05)
    assert high == pytest.approx(static + w * l * cox +
                                 w * (params.cgsl + params.cgdl), rel=0.05)


def test_cgg_monotone():
    params = _cap_params()
    vg = np.linspace(-0.5, 1.5, 41)
    c = cap_mod.gate_capacitance(vg, params, 0.35, 0.0345, 192e-9, 24e-9, VT)
    assert np.all(np.diff(c) >= -1e-20)


def test_delvt_shifts_transition():
    base = _cap_params()
    shifted = _cap_params(delvt=0.2)
    c_base = float(cap_mod.gate_capacitance(0.35, base, 0.35, 0.0345,
                                            192e-9, 24e-9, VT))
    c_shift = float(cap_mod.gate_capacitance(0.35, shifted, 0.35, 0.0345,
                                             192e-9, 24e-9, VT))
    assert c_shift < c_base


def test_moin_widens_transition():
    narrow = _cap_params(moin=1.0)
    wide = _cap_params(moin=10.0)
    # far below threshold, the wide transition already shows some rise
    below = 0.1
    c_narrow = float(cap_mod.gate_capacitance(below, narrow, 0.35, 0.0345,
                                              192e-9, 24e-9, VT))
    c_wide = float(cap_mod.gate_capacitance(below, wide, 0.35, 0.0345,
                                            192e-9, 24e-9, VT))
    assert c_wide > c_narrow


def test_intrinsic_charge_is_antiderivative():
    """dQ/dV must equal the intrinsic capacitance term (consistency)."""
    params = _cap_params()
    cox, w, l = 0.0345, 192e-9, 24e-9
    v = 0.5
    dv = 1e-5
    q1 = float(cap_mod.intrinsic_channel_charge(v + dv, params, 0.35, cox,
                                                w, l, VT))
    q0 = float(cap_mod.intrinsic_channel_charge(v - dv, params, 0.35, cox,
                                                w, l, VT))
    c_expected = w * l * cox * float(cap_mod.inversion_transition(
        v, 0.35, params.delvt, params.moin, VT))
    assert (q1 - q0) / (2 * dv) == pytest.approx(c_expected, rel=1e-3)


def test_fringe_charge_derivative_matches_turn_on():
    params = _cap_params()
    w = 192e-9
    v, dv = 0.3, 1e-5
    q1 = float(cap_mod.fringe_charge(v + dv, params, w, "s"))
    q0 = float(cap_mod.fringe_charge(v - dv, params, w, "s"))
    c_expected = w * params.cgsl * float(cap_mod.fringe_turn_on(
        v, params.ckappa))
    assert (q1 - q0) / (2 * dv) == pytest.approx(c_expected, rel=1e-3)
