"""Shared conformance suite every execution backend must pass.

One parametrized battery over ``serial``, ``pool:2`` and ``workqueue``:
dependency ordering, cache behaviour, bit-identical artifacts, retries,
``on_error="continue"``, cancellation and content-addressed resume run
everywhere; preemption (timeouts) and worker-crash recovery are gated
on the backend's capability flags rather than its name, so a future
backend is judged by what it claims, not by what it is called.
"""

import pytest

from repro.engine import (
    Engine,
    PoolBackend,
    SerialBackend,
    Task,
    WorkQueueBackend,
    parse_backend_spec,
    register_stage,
    resolve_backend,
    unregister_stage,
)
from repro.engine.durability import CancellationToken
from repro.errors import ReproError, RunInterrupted
from repro.resilience import FaultInjector, RetryPolicy, clear_faults, install

pytestmark = pytest.mark.engine

#: Every shipped backend spec, exercised by the whole battery.
BACKENDS = ("serial", "pool:2", "workqueue")


def _add(payload, deps):
    return payload["value"] + sum(deps.values())


def _fail(payload, deps):
    raise RuntimeError("boom")


def _nap(payload, deps):
    import time
    time.sleep(payload["seconds"])
    return payload["seconds"]


@pytest.fixture(autouse=True)
def _stages(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    clear_faults()
    register_stage("conf_add", version=1, compute=_add,
                   encode=lambda a: a, decode=lambda d: d, replace=True)
    register_stage("conf_fail", version=1, compute=_fail, replace=True)
    register_stage("conf_nap", version=1, compute=_nap, replace=True)
    yield
    clear_faults()
    unregister_stage("conf_add")
    unregister_stage("conf_fail")
    unregister_stage("conf_nap")


def _engine(backend, cache_dir, **kwargs):
    return Engine(backend=backend, cache_dir=cache_dir, **kwargs)


def _graph():
    return [
        Task(id="a", stage="conf_add", payload={"value": 1}),
        Task(id="b", stage="conf_add", payload={"value": 10},
             deps=("a",)),
        Task(id="c", stage="conf_add", payload={"value": 100},
             deps=("a", "b")),
        Task(id="d", stage="conf_add", payload={"value": 7}),
    ]


# ----------------------------------------------------------------------
# spec parsing / resolution
# ----------------------------------------------------------------------
def test_parse_backend_spec_variants():
    assert isinstance(parse_backend_spec("serial"), SerialBackend)
    assert isinstance(parse_backend_spec("workqueue"), WorkQueueBackend)
    pool = parse_backend_spec("pool:3")
    assert isinstance(pool, PoolBackend)
    assert pool.workers == 3
    with pytest.raises(ReproError, match="backend"):
        parse_backend_spec("quantum")
    with pytest.raises(ReproError):
        parse_backend_spec("pool:zero")


def test_resolve_backend_passthrough_and_env(monkeypatch):
    backend = SerialBackend()
    assert resolve_backend(backend) is backend
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    assert isinstance(resolve_backend(None), SerialBackend)
    monkeypatch.delenv("REPRO_BACKEND")
    assert resolve_backend(None) is None
    with pytest.raises(ReproError, match="backend"):
        resolve_backend(42)


def test_workqueue_requires_disk_cache():
    with pytest.raises(ReproError, match="disk cache"):
        Engine(backend="workqueue", use_disk=False)


# ----------------------------------------------------------------------
# the parametrized battery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_dependencies_feed_dependents(tmp_path, backend):
    run = _engine(backend, tmp_path).run(_graph())
    assert run["a"] == 1
    assert run["b"] == 11
    assert run["c"] == 112
    assert run["d"] == 7
    assert run.manifest.backend == backend.split(":")[0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_artifacts_bit_identical_to_serial(tmp_path, backend):
    baseline = _engine("serial", tmp_path / "base").run(_graph())
    run = _engine(backend, tmp_path / "cand").run(_graph())
    assert run.artifacts == baseline.artifacts
    assert {r.task_id: r.key for r in run.manifest.records} == \
        {r.task_id: r.key for r in baseline.manifest.records}


@pytest.mark.parametrize("backend", BACKENDS)
def test_warm_rerun_is_all_cache_hits(tmp_path, backend):
    _engine(backend, tmp_path).run(_graph())
    warm = _engine(backend, tmp_path).run(_graph())
    assert warm.manifest.hit_rate() == 1.0
    assert all(r.worker == "cache" for r in warm.manifest.records)


@pytest.mark.parametrize("backend", BACKENDS)
def test_retry_heals_transient_faults(tmp_path, backend):
    install(FaultInjector.parse("stage_exc:conf_add:first=1"))
    engine = _engine(backend, tmp_path,
                     retry_policy=RetryPolicy(retries=2, backoff=0.0))
    run = engine.run(
        [Task(id="a", stage="conf_add", payload={"value": 5})])
    clear_faults()
    assert run["a"] == 5
    assert run.manifest.retries() >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_on_error_continue_completes_independents(tmp_path, backend):
    engine = _engine(backend, tmp_path, on_error="continue")
    run = engine.run([
        Task(id="bad", stage="conf_fail", payload=None),
        Task(id="child", stage="conf_add", payload={"value": 1},
             deps=("bad",)),
        Task(id="ok", stage="conf_add", payload={"value": 4}),
    ])
    assert run["ok"] == 4
    assert set(run.failed) == {"bad"}
    assert set(run.skipped) == {"child"}
    assert run.failed["bad"].error_type == "RuntimeError"


@pytest.mark.parametrize("backend", BACKENDS)
def test_pre_cancelled_token_interrupts(tmp_path, backend):
    token = CancellationToken(grace=0.2)
    token.request()
    engine = _engine(backend, tmp_path)
    with pytest.raises(RunInterrupted) as err:
        engine.run(_graph(), cancellation=token)
    assert err.value.manifest is not None
    assert err.value.manifest.interrupted


@pytest.mark.parametrize("backend", BACKENDS)
def test_failed_run_resumes_from_cache(tmp_path, backend):
    install(FaultInjector.parse("stage_exc:conf_add:first=1"))
    first = _engine(backend, tmp_path, on_error="continue").run(_graph())
    clear_faults()
    assert first.failed
    second = _engine(backend, tmp_path).run(_graph())
    assert second.ok
    reference = _engine("serial", tmp_path / "ref").run(_graph())
    assert second.artifacts == reference.artifacts


# ----------------------------------------------------------------------
# capability-gated checks (flags, not names)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_timeout_preempts_only_when_supported(tmp_path, backend):
    engine = _engine(backend, tmp_path, on_error="continue",
                     retry_policy=RetryPolicy(retries=0, timeout=0.3))
    if not engine.backend.supports_preemption:
        pytest.skip(f"{engine.backend.name} cannot preempt a running "
                    f"compute function")
    run = engine.run([
        Task(id="slow", stage="conf_nap", payload={"seconds": 30.0}),
        Task(id="quick", stage="conf_add", payload={"value": 3}),
    ])
    assert run["quick"] == 3
    assert run.failed["slow"].error_type == "TaskTimeoutError"


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_crash_recovers_when_remote(tmp_path, backend):
    engine = _engine(backend, tmp_path)
    if not engine.backend.remote_workers:
        pytest.skip(f"{engine.backend.name} computes in-process; a "
                    f"worker kill would kill the run itself")
    install(FaultInjector.parse("worker_kill:conf_add:n=1"))
    run = engine.run(_graph())
    clear_faults()
    assert run.ok
    assert run.manifest.pool_rebuilds >= 1
    reference = _engine("serial", tmp_path / "ref").run(_graph())
    assert run.artifacts == reference.artifacts
