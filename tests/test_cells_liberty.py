"""Liberty-lite characterisation."""

import numpy as np
import pytest

from repro.cells.library import get_cell
from repro.cells.liberty import (
    CharacterizationGrid,
    TimingTable,
    characterize_cell,
    render_liberty,
)
from repro.errors import CellLibraryError


@pytest.fixture(scope="module")
def inv_char(model_set_2d):
    grid = CharacterizationGrid(slews=(1e-11, 4e-11),
                                loads=(0.5e-15, 2e-15))
    return characterize_cell(get_cell("INV1X1"), model_set_2d, grid)


def test_grid_validation():
    with pytest.raises(CellLibraryError):
        CharacterizationGrid(slews=(), loads=(1e-15,))
    with pytest.raises(CellLibraryError):
        CharacterizationGrid(slews=(-1e-11,), loads=(1e-15,))


def test_timing_table_interpolation():
    table = TimingTable(slews=(1e-11, 3e-11), loads=(1e-15, 3e-15),
                        values=np.array([[1.0, 3.0], [2.0, 4.0]]))
    assert table.lookup(1e-11, 1e-15) == pytest.approx(1.0)
    assert table.lookup(2e-11, 2e-15) == pytest.approx(2.5)
    # clamped outside the grid
    assert table.lookup(0.0, 0.0) == pytest.approx(1.0)
    assert table.lookup(1.0, 1.0) == pytest.approx(4.0)


def test_delay_increases_with_load(inv_char):
    pin = inv_char.pins["a"]
    for row in pin.delay.values:
        assert row[-1] > row[0]


def test_delay_values_ps_scale(inv_char):
    assert np.all(inv_char.pins["a"].delay.values > 1e-12)
    assert np.all(inv_char.pins["a"].delay.values < 1e-10)


def test_transition_increases_with_load(inv_char):
    pin = inv_char.pins["a"]
    for row in pin.transition.values:
        assert row[-1] > row[0]


def test_input_capacitance_reasonable(inv_char):
    cap = inv_char.input_caps["a"]
    assert 5e-17 < cap < 2e-15


def test_leakage_power_small_positive(inv_char):
    assert 0.0 < inv_char.leakage_power < 1e-7


def test_lookup_helper(inv_char):
    mid = inv_char.delay_at("a", 2e-11, 1e-15)
    lo = inv_char.delay_at("a", 1e-11, 0.5e-15)
    hi = inv_char.delay_at("a", 4e-11, 2e-15)
    assert lo < mid < hi


def test_render_liberty(inv_char):
    text = render_liberty([inv_char])
    assert "library (repro_m3d)" in text
    assert "cell (INV1X1__2D)" in text
    assert "related_pin : \"a\"" in text
    assert "index_1" in text and "values" in text
    with pytest.raises(CellLibraryError):
        render_liberty([])
