"""AC analysis: RC filter closed forms, capacitance probing, gains."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice import Capacitor, Circuit, Mosfet, Resistor, dc_source
from repro.spice.ac import (
    ac_analysis,
    input_capacitance,
    unity_gain_frequency,
)


def rc_lowpass(r=1e3, c=1e-12):
    circuit = Circuit("lp")
    circuit.add(dc_source("VIN", "in", "0", 0.0))
    circuit.add(Resistor("R1", "in", "out", r))
    circuit.add(Capacitor("C1", "out", "0", c))
    return circuit


def test_lowpass_matches_closed_form():
    r, c = 1e3, 1e-12
    circuit = rc_lowpass(r, c)
    freqs = np.logspace(6, 10, 41)
    result = ac_analysis(circuit, "VIN", freqs)
    vout = result.voltage("out")
    expected = 1.0 / (1.0 + 1j * 2 * np.pi * freqs * r * c)
    assert np.allclose(vout, expected, rtol=1e-6)


def test_corner_frequency_gain():
    r, c = 1e3, 1e-12
    f_corner = 1.0 / (2 * np.pi * r * c)
    result = ac_analysis(rc_lowpass(r, c), "VIN", np.array([f_corner]))
    gain = result.gain_db("out", "in")[0]
    assert gain == pytest.approx(-3.0103, abs=0.01)


def test_input_capacitance_of_pure_cap():
    circuit = Circuit("c")
    circuit.add(dc_source("VIN", "in", "0", 0.0))
    circuit.add(Capacitor("C1", "in", "0", 2.5e-15))
    measured = input_capacitance(circuit, "VIN")
    assert measured == pytest.approx(2.5e-15, rel=1e-6)


def test_input_capacitance_series_rc():
    # At low frequency a series R barely matters.
    circuit = Circuit("rc")
    circuit.add(dc_source("VIN", "in", "0", 0.0))
    circuit.add(Resistor("R1", "in", "x", 10.0))
    circuit.add(Capacitor("C1", "x", "0", 1e-15))
    measured = input_capacitance(circuit, "VIN", frequency=1e7)
    assert measured == pytest.approx(1e-15, rel=1e-4)


def test_inverter_input_capacitance_reasonable(model_set_2d):
    circuit = Circuit("inv")
    circuit.add(dc_source("VDD", "vdd", "0", 1.0))
    circuit.add(dc_source("VIN", "in", "0", 0.5))
    circuit.add(Mosfet("MP", "out", "in", "vdd", model_set_2d.pmos))
    circuit.add(Mosfet("MN", "out", "in", "0", model_set_2d.nmos))
    circuit.add(Capacitor("CL", "out", "0", 1e-15))
    cin = input_capacitance(circuit, "VIN", frequency=1e7)
    # two gates' worth of capacitance: between 0.05 and 2 fF.
    assert 5e-17 < cin < 2e-15


def test_other_sources_ac_grounded():
    # With the excitation on VIN, a second DC source contributes nothing.
    circuit = rc_lowpass()
    circuit.add(Resistor("R2", "out", "x", 1e3))
    circuit.add(dc_source("VB", "x", "0", 0.7))
    result = ac_analysis(circuit, "VIN", np.array([1e6]))
    assert abs(result.voltage("x")[0]) == pytest.approx(0.0, abs=1e-12)


def test_unity_gain_frequency_of_integrator_like_divider():
    # Gain |1/(1+jwRC)| crosses 0 dB only asymptotically; build a gainy
    # divider instead: out = 2x in via two sources? Use an RC with gain
    # start above 0 dB by probing in->out of a 2:1 *boost* is impossible
    # passively, so synthesise: measure crossing of a scaled waveform.
    r, c = 1e3, 1e-12
    circuit = rc_lowpass(r, c)
    freqs = np.logspace(7, 11, 81)
    result = ac_analysis(circuit, "VIN", freqs, magnitude=2.0)
    # with 2 V excitation, |vout| starts at 2 (=> +6 dB vs the 1 V input
    # reference node "in" is also 2 V...), so compare against ground-
    # referenced half of the input instead:
    gain = 20 * np.log10(np.abs(result.voltage("out")))
    assert gain[0] > 0
    crossing = np.nonzero(gain <= 0)[0]
    assert crossing.size > 0


def test_unity_gain_helper_errors():
    circuit = rc_lowpass()
    freqs = np.logspace(6, 7, 5)
    result = ac_analysis(circuit, "VIN", freqs)
    with pytest.raises(SimulationError):
        unity_gain_frequency(result, "out", "in")  # never crosses


def test_ac_validation():
    circuit = rc_lowpass()
    with pytest.raises(SimulationError):
        ac_analysis(circuit, "VIN", np.array([]))
    with pytest.raises(SimulationError):
        ac_analysis(circuit, "VIN", np.array([-1.0]))
    with pytest.raises(SimulationError):
        ac_analysis(circuit, "R1", np.array([1e6]))


def test_result_lookup_errors():
    result = ac_analysis(rc_lowpass(), "VIN", np.array([1e6]))
    with pytest.raises(SimulationError):
        result.voltage("zz")
    with pytest.raises(SimulationError):
        result.current("VX")
    assert np.all(result.voltage("0") == 0)
