"""The remote tier client: read-through, write-behind, degradation.

Every test drives a real ``CacheServer`` (or a dead endpoint) over
loopback HTTP — the fault model is only trustworthy if it survives the
actual socket layer, not a mocked transport.
"""

import json

import pytest

from repro.cachesrv import CacheServer, body_digest
from repro.engine.cache import ArtifactCache
from repro.engine.remote import (
    REMOTE_CACHE_ENV,
    RemoteCache,
    resolve_remote_cache,
)
from repro.engine.stages import StageDef
from repro.resilience.breaker import CircuitBreaker

#: An unroutable loopback endpoint (port 9 = discard; nothing listens).
DEAD_URL = "http://127.0.0.1:9"


def _stage(version=1):
    codec = dict(encode=lambda art: {"value": art["value"]},
                 decode=lambda data: {"value": data["value"]})
    return StageDef(name="toy", version=version,
                    compute=lambda payload, deps: None, **codec)


@pytest.fixture()
def server(tmp_path):
    srv = CacheServer(tmp_path / "remote-store").serve_in_thread()
    yield srv
    srv.close()


def _client(url, **kwargs):
    kwargs.setdefault("timeout", 0.5)
    kwargs.setdefault("retries", 0)
    return RemoteCache(url, **kwargs)


class TestTierComposition:
    def test_write_behind_then_read_through(self, server, tmp_path):
        stage = _stage()
        writer = ArtifactCache(cache_dir=tmp_path / "writer",
                               remote=_client(server.url))
        writer.put("k1", stage, {"value": 1.5})
        assert writer.remote.stores == 1

        # A cold local cache sharing only the remote endpoint hits it.
        reader = ArtifactCache(cache_dir=tmp_path / "reader",
                               remote=_client(server.url))
        hit, layer = reader.get("k1", stage)
        assert hit == {"value": 1.5}
        assert layer == "remote"
        assert reader.hits_remote == 1

    def test_remote_hit_replicates_to_local_disk(self, server, tmp_path):
        stage = _stage()
        ArtifactCache(cache_dir=tmp_path / "w",
                      remote=_client(server.url)).put("k1", stage,
                                                      {"value": 2.0})
        reader_dir = tmp_path / "r"
        ArtifactCache(cache_dir=reader_dir,
                      remote=_client(server.url)).get("k1", stage)
        # A FRESH instance with no remote finds the local replica.
        hit, layer = ArtifactCache(cache_dir=reader_dir).get("k1", stage)
        assert hit == {"value": 2.0}
        assert layer == "disk"

    def test_version_mismatch_is_a_miss(self, server, tmp_path):
        ArtifactCache(cache_dir=tmp_path / "w",
                      remote=_client(server.url)).put(
            "k1", _stage(version=1), {"value": 1.0})
        hit, layer = ArtifactCache(cache_dir=tmp_path / "r",
                                   remote=_client(server.url)).get(
            "k1", _stage(version=2))
        assert hit is None and layer is None

    def test_memory_only_stage_never_touches_remote(self, server,
                                                    tmp_path):
        stage = StageDef(name="toy", version=1,
                         compute=lambda payload, deps: None)  # no codec
        cache = ArtifactCache(cache_dir=tmp_path,
                              remote=_client(server.url))
        cache.put("k1", stage, {"value": 1.0})
        assert cache.remote.stores == 0


class TestDegradation:
    def test_dead_endpoint_is_a_miss_never_an_error(self, tmp_path):
        stage = _stage()
        cache = ArtifactCache(cache_dir=tmp_path,
                              remote=_client(DEAD_URL))
        cache.put("k1", stage, {"value": 1.0})  # write-behind fails quietly
        hit, layer = cache.get("k1", stage)     # local still works
        assert hit == {"value": 1.0}
        hit, layer = ArtifactCache(
            cache_dir=tmp_path / "cold", remote=_client(DEAD_URL)).get(
            "k1", stage)
        assert hit is None and layer is None

    def test_breaker_opens_and_refuses(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        remote = _client(DEAD_URL, breaker=breaker)
        for _ in range(3):
            remote.fetch("toy", "k")
        assert remote.degraded
        assert breaker.state == "open"
        refused_before = remote.refused
        remote.fetch("toy", "k")
        assert remote.refused > refused_before
        cache = ArtifactCache(cache_dir=tmp_path, remote=remote)
        assert cache.remote_degraded

    def test_breaker_reattaches_after_recovery(self, server):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=lambda: clock[0])
        remote = _client(server.url, breaker=breaker)
        # Trip it with a forced failure record, then elapse the window:
        breaker.record_failure()
        assert remote.degraded
        clock[0] += 6.0
        assert remote.healthz() is not None  # the half-open probe
        assert not remote.degraded
        assert breaker.reattached_total == 1

    def test_stats_shape(self, server, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path,
                              remote=_client(server.url))
        cache.put("k1", _stage(), {"value": 1.0})
        stats = cache.stats()
        assert stats["hits_remote"] == 0
        remote = stats["remote"]
        assert remote["stores"] == 1
        assert remote["bytes_stored"] > 0
        assert remote["degraded"] is False
        assert remote["breaker_state"] == "closed"


class TestIntegrity:
    def _poison(self, server, stage, key):
        """Corrupt the stored body at rest, sidecar digest intact."""
        entry = server.store.root / stage / f"{key}.json"
        entry.write_bytes(entry.read_bytes()[:-2] + b'?}')

    def test_corrupt_at_rest_quarantined_after_refetch(self, server,
                                                       tmp_path):
        stage = _stage()
        ArtifactCache(cache_dir=tmp_path / "w",
                      remote=_client(server.url)).put("k1", stage,
                                                      {"value": 3.0})
        self._poison(server, "toy", "k1")
        reader = ArtifactCache(cache_dir=tmp_path / "r",
                               remote=_client(server.url))
        hit, layer = reader.get("k1", stage)
        assert hit is None and layer is None
        # Both fetch attempts saw the mismatch, then the entry was
        # quarantined server-side (DELETE): gone, kept for forensics.
        assert reader.remote.integrity_failures == 2
        assert server.store.get("toy", "k1") is None
        assert list((server.store.root / ".quarantine").iterdir())

    def test_envelope_must_name_stage_and_key(self, server):
        # A well-digested body under the WRONG key must not verify —
        # digest integrity alone cannot catch a misfiled entry.
        body = json.dumps({"format": 1, "stage": "toy", "version": 1,
                           "key": "other", "artifact": {"value": 1}},
                          ).encode()
        server.store.put("toy", "k1", body, body_digest(body))
        remote = _client(server.url)
        assert remote.fetch("toy", "k1") is None
        assert remote.integrity_failures == 2


class TestResolution:
    def test_env_resolution(self, monkeypatch, server):
        monkeypatch.delenv(REMOTE_CACHE_ENV, raising=False)
        assert resolve_remote_cache() is None
        monkeypatch.setenv(REMOTE_CACHE_ENV, "")
        assert resolve_remote_cache() is None
        monkeypatch.setenv(REMOTE_CACHE_ENV, server.url)
        remote = resolve_remote_cache()
        assert isinstance(remote, RemoteCache)
        assert remote.base_url == server.url

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(REMOTE_CACHE_ENV, "http://env:1")
        assert resolve_remote_cache("http://arg:2").base_url \
            == "http://arg:2"
        ready = RemoteCache("http://ready:3", timeout=0.1, retries=0)
        assert resolve_remote_cache(ready) is ready
