"""Carrier statistics."""

import numpy as np
import pytest

from repro.tcad.statistics import (
    boltzmann_n,
    boltzmann_p,
    built_in_potential,
    fermi_correction,
)

NI = 1e16
VT = 0.0259


def test_equilibrium_neutrality():
    # At psi = 0 with both quasi-Fermi levels at 0: n = p = ni.
    assert boltzmann_n(0.0, 0.0, NI, VT) == pytest.approx(NI)
    assert boltzmann_p(0.0, 0.0, NI, VT) == pytest.approx(NI)


def test_mass_action_law():
    # n * p = ni^2 independent of psi when quasi-Fermi levels coincide.
    for psi in (-0.3, 0.0, 0.4):
        n = boltzmann_n(psi, 0.0, NI, VT)
        p = boltzmann_p(psi, 0.0, NI, VT)
        assert n * p == pytest.approx(NI * NI, rel=1e-9)


def test_quasi_fermi_splitting_reduces_n():
    n0 = boltzmann_n(0.5, 0.0, NI, VT)
    n1 = boltzmann_n(0.5, 0.1, NI, VT)
    assert n1 < n0
    assert n1 == pytest.approx(n0 * np.exp(-0.1 / VT), rel=1e-9)


def test_exponential_slope_is_60mv_per_decade():
    n1 = boltzmann_n(0.0, 0.0, NI, VT)
    n2 = boltzmann_n(VT * np.log(10), 0.0, NI, VT)
    assert n2 / n1 == pytest.approx(10.0, rel=1e-9)


def test_overflow_clipped():
    n = boltzmann_n(100.0, 0.0, NI, VT)
    assert np.isfinite(n)


def test_vectorised():
    psi = np.linspace(-0.5, 0.5, 11)
    n = boltzmann_n(psi, 0.0, NI, VT)
    assert n.shape == psi.shape
    assert np.all(np.diff(n) > 0)


def test_fermi_correction_negligible_at_low_density():
    assert fermi_correction(1e20, 2.86e25) == pytest.approx(1.0, abs=1e-4)


def test_fermi_correction_reduces_high_density():
    assert fermi_correction(2.86e25, 2.86e25) < 1.0


def test_built_in_potential():
    # 1e19 cm^-3 donor vs intrinsic: ~kT ln(Nd/ni) ~ 0.53 V.
    vbi = built_in_potential(1e25, 1e16, 0.0259)
    assert vbi == pytest.approx(0.0259 * np.log(1e9), rel=1e-6)
    assert 0.5 < vbi < 0.6


def test_built_in_potential_rejects_bad_inputs():
    with pytest.raises(ValueError):
        built_in_potential(-1.0, 1e16, 0.0259)
