"""The engine's failure domain: retries, on_error="continue", worker
crash recovery, task timeouts, same-key failure propagation and
content-addressed resume."""

import pytest

from repro.engine import (
    Engine,
    Task,
    register_stage,
    unregister_stage,
)
from repro.errors import EngineRunError, InjectedFault, ReproError
from repro.resilience import FaultInjector, RetryPolicy, clear_faults, install


def _add(payload, deps):
    return payload["value"] + sum(deps.values())


def _fail(payload, deps):
    raise RuntimeError("boom")


def _nap(payload, deps):
    import time
    time.sleep(payload["seconds"])
    return payload["seconds"]


@pytest.fixture(autouse=True)
def _stages(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    clear_faults()
    register_stage("toy_add", version=1, compute=_add,
                   encode=lambda a: a, decode=lambda d: d, replace=True)
    register_stage("toy_fail", version=1, compute=_fail, replace=True)
    register_stage("toy_nap", version=1, compute=_nap, replace=True)
    yield
    clear_faults()
    unregister_stage("toy_add")
    unregister_stage("toy_fail")
    unregister_stage("toy_nap")


def _graph():
    return [
        Task(id="a", stage="toy_add", payload={"value": 1}),
        Task(id="b", stage="toy_fail", payload=None),
        Task(id="c", stage="toy_add", payload={"value": 10}, deps=("b",)),
        Task(id="d", stage="toy_add", payload={"value": 100}),
    ]


# ----------------------------------------------------------------------
# on_error="continue"
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "pool:3"])
def test_continue_completes_independent_subgraphs(tmp_path, backend):
    engine = Engine(backend=backend, cache_dir=tmp_path,
                    on_error="continue")
    run = engine.run(_graph())
    assert run["a"] == 1 and run["d"] == 100
    assert not run.ok
    assert set(run.failed) == {"b"}
    assert set(run.skipped) == {"c"}
    assert run.failed["b"].error_type == "RuntimeError"
    assert run.failed["b"].message == "boom"
    assert "boom" in run.failed["b"].traceback
    assert run.skipped["c"].upstream == "b"
    with pytest.raises(EngineRunError, match="1 task.s. failed, 1 skipped"):
        run.raise_for_failures()
    assert "toy_fail" in str(run.error)


def test_raise_mode_still_propagates_original_error(tmp_path):
    engine = Engine(backend="serial", cache_dir=tmp_path)   # default: raise
    with pytest.raises(RuntimeError, match="boom"):
        engine.run(_graph())


def test_per_run_on_error_override(tmp_path):
    engine = Engine(backend="serial", cache_dir=tmp_path, on_error="continue")
    with pytest.raises(RuntimeError, match="boom"):
        engine.run(_graph(), on_error="raise")
    run = engine.run(_graph())
    assert not run.ok


def test_invalid_on_error_rejected(tmp_path):
    with pytest.raises(ReproError, match="on_error"):
        Engine(backend="serial", cache_dir=tmp_path, on_error="explode")
    engine = Engine(backend="serial", cache_dir=tmp_path)
    with pytest.raises(ReproError, match="on_error"):
        engine.run([], on_error="explode")


def test_manifest_render_shows_failures(tmp_path):
    engine = Engine(backend="serial", cache_dir=tmp_path, on_error="continue")
    run = engine.run(_graph())
    text = run.manifest.render()
    assert "1 failed / 1 skipped" in text
    assert "RuntimeError: boom" in text
    assert "dependency b failed" in text


def test_manifest_failure_roundtrip(tmp_path):
    from repro.engine import RunManifest
    engine = Engine(backend="serial", cache_dir=tmp_path, on_error="continue")
    run = engine.run(_graph())
    restored = RunManifest.from_dict(run.manifest.to_dict())
    assert [f.task_id for f in restored.failed()] == ["b"]
    assert [f.task_id for f in restored.skipped()] == ["c"]


# ----------------------------------------------------------------------
# retries
# ----------------------------------------------------------------------
def test_serial_retry_succeeds_after_transient_faults(tmp_path):
    install(FaultInjector.parse("stage_exc:toy_add:first=2"))
    engine = Engine(backend="serial", cache_dir=tmp_path,
                    retry_policy=RetryPolicy(retries=3, backoff=0.0))
    run = engine.run([Task(id="a", stage="toy_add", payload={"value": 5})])
    assert run["a"] == 5
    assert run.manifest.records[0].attempts == 3
    assert run.manifest.retries() == 2


def test_serial_retries_exhausted_records_failure(tmp_path):
    install(FaultInjector.parse("stage_exc:toy_add"))
    engine = Engine(backend="serial", cache_dir=tmp_path,
                    retry_policy=RetryPolicy(retries=1, backoff=0.0),
                    on_error="continue")
    run = engine.run([Task(id="a", stage="toy_add", payload={"value": 5})])
    assert run.failed["a"].error_type == "InjectedFault"
    assert run.failed["a"].attempts == 2


def test_parallel_retry_succeeds_after_transient_faults(tmp_path):
    install(FaultInjector.parse("stage_exc:toy_add:first=1"))
    engine = Engine(backend="pool:2", cache_dir=tmp_path,
                    retry_policy=RetryPolicy(retries=2, backoff=0.0))
    run = engine.run([Task(id="a", stage="toy_add", payload={"value": 1}),
                      Task(id="b", stage="toy_add", payload={"value": 2})])
    assert run["a"] == 1 and run["b"] == 2
    assert run.manifest.retries() == 1


def test_env_retries_are_picked_up(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
    engine = Engine(backend="serial", cache_dir=tmp_path)
    assert engine.retry_policy.retries == 4


# ----------------------------------------------------------------------
# same-key duplicates must share the failure, not deadlock
# ----------------------------------------------------------------------
def test_same_key_failure_propagates_to_parked_duplicate(tmp_path):
    engine = Engine(backend="pool:2", cache_dir=tmp_path, on_error="continue")
    run = engine.run([Task(id="x1", stage="toy_fail", payload=None),
                      Task(id="x2", stage="toy_fail", payload=None),
                      Task(id="ok", stage="toy_add", payload={"value": 7})])
    assert run["ok"] == 7
    assert set(run.failed) == {"x1", "x2"}


def test_same_key_failure_propagates_serially(tmp_path):
    engine = Engine(backend="serial", cache_dir=tmp_path, on_error="continue")
    run = engine.run([Task(id="x1", stage="toy_fail", payload=None),
                      Task(id="x2", stage="toy_fail", payload=None)])
    assert set(run.failed) == {"x1", "x2"}


# ----------------------------------------------------------------------
# worker crashes (BrokenProcessPool) and timeouts
# ----------------------------------------------------------------------
def test_worker_kill_recovers_with_identical_artifacts(tmp_path):
    tasks = [Task(id=f"t{i}", stage="toy_add", payload={"value": i})
             for i in range(5)]
    reference = Engine(backend="pool:3", cache_dir=tmp_path / "ref").run(tasks)

    install(FaultInjector.parse("worker_kill:toy_add:n=1"))
    engine = Engine(backend="pool:3", cache_dir=tmp_path / "faulty")
    run = engine.run(tasks)
    clear_faults()

    assert run.ok
    assert run.artifacts == reference.artifacts
    assert run.manifest.pool_rebuilds >= 1
    # The content addresses agree too: the resubmitted artefacts are
    # the same bits a fault-free run produces.
    ref_keys = {r.task_id: r.key for r in reference.manifest.records}
    run_keys = {r.task_id: r.key for r in run.manifest.records}
    assert ref_keys == run_keys


def test_repeated_worker_kills_exhaust_crash_budget(tmp_path):
    install(FaultInjector.parse("worker_kill:toy_fail:first=99"))
    engine = Engine(backend="pool:2", cache_dir=tmp_path, on_error="continue")
    # Two same-key victims: one is in flight and keeps killing its
    # worker, the other stays parked behind the duplicate key — when
    # the crash budget runs out both must fail (no deadlock).
    run = engine.run([Task(id="v1", stage="toy_fail", payload=None),
                      Task(id="v2", stage="toy_fail", payload=None)])
    assert set(run.failed) == {"v1", "v2"}
    assert "WorkerCrashError" in {f.error_type
                                  for f in run.manifest.failed()}
    assert run.manifest.pool_rebuilds >= 2


def test_task_timeout_fails_and_spares_the_rest(tmp_path):
    engine = Engine(backend="pool:2", cache_dir=tmp_path, on_error="continue",
                    retry_policy=RetryPolicy(retries=0, timeout=0.4))
    run = engine.run([
        Task(id="slow", stage="toy_nap", payload={"seconds": 30.0}),
        Task(id="quick", stage="toy_add", payload={"value": 3}),
    ])
    assert run["quick"] == 3
    assert run.failed["slow"].error_type == "TaskTimeoutError"
    assert run.manifest.pool_rebuilds >= 1


def test_task_timeout_burns_retry_attempts(tmp_path):
    engine = Engine(backend="pool:2", cache_dir=tmp_path, on_error="continue",
                    retry_policy=RetryPolicy(retries=1, backoff=0.01,
                                             timeout=0.3))
    run = engine.run([
        Task(id="slow", stage="toy_nap", payload={"seconds": 30.0}),
        Task(id="quick", stage="toy_add", payload={"value": 3}),
    ])
    assert run.failed["slow"].attempts == 2
    assert run.manifest.pool_rebuilds >= 2


# ----------------------------------------------------------------------
# content-addressed resume
# ----------------------------------------------------------------------
def test_rerun_recomputes_only_the_failed_subgraph(tmp_path):
    tasks = [
        Task(id="a", stage="toy_add", payload={"value": 1}),
        Task(id="b", stage="toy_add", payload={"value": 10}, deps=("a",)),
        Task(id="c", stage="toy_add", payload={"value": 100}),
    ]
    reference = Engine(backend="serial", cache_dir=tmp_path / "ref").run(tasks)

    # Serial draws happen in topological order, so first=1 fails "a"
    # (and skips its dependent "b") while "c" completes.
    install(FaultInjector.parse("stage_exc:toy_add:first=1"))
    engine = Engine(backend="serial", cache_dir=tmp_path / "cache",
                    on_error="continue")
    first = engine.run(tasks)
    clear_faults()
    assert set(first.failed) == {"a"} and set(first.skipped) == {"b"}
    assert first["c"] == 100

    second = engine.run(tasks)
    assert second.ok
    assert second.artifacts == reference.artifacts
    by_id = {r.task_id: r for r in second.manifest.records}
    # c was cached by the degraded run; only the failed subgraph computes.
    assert by_id["c"].cache == "memory"
    assert by_id["a"].cache == "miss"
    assert by_id["b"].cache == "miss"
