"""Differential harness: fast solver kernels vs their legacy oracles.

The batched dd1d sweep and the sparse MNA kernel are allowed to differ
from the loop/dense oracles only within documented tolerance-class
bounds (``repro.verify.tolerances``):

* finite-bias dd1d currents — ``numeric`` (1e-6 relative);
* equilibrium dd1d currents — the solver noise floor (|I| < 1e-15 A,
  the bound the audit suite already pins for the loop kernel);
* SPICE waveforms and operating points — ``numeric``;
* rescue-ladder recoveries (faults, gmin stepping, timestep
  rejection) — ``calibrated`` (1e-3), the class every rescued
  artifact is documented under.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.observe import Tracer, activate
from repro.resilience import FaultInjector, clear_faults, install
from repro.spice import (
    Circuit,
    Resistor,
    dc_source,
    pulse_source,
    transient,
)
from repro.spice.dcop import solve_dc
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.controlled import Vccs
from repro.spice.elements.mosfet import Mosfet
from repro.tcad.dd1d import Bar1D, DriftDiffusion1D, uniform_bar
from repro.verify.tolerances import tolerance_class

NUMERIC = tolerance_class("numeric")
CALIBRATED = tolerance_class("calibrated")

#: Equilibrium dd1d current noise floor [A] (same bound the audit
#: suite pins for the loop kernel).
NOISE_FLOOR = 1e-15


@pytest.fixture(autouse=True)
def _clean_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_SOLVER_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_SPARSE_THRESHOLD", raising=False)
    clear_faults()
    yield
    clear_faults()


# ----------------------------------------------------------------------
# dd1d: batched kernel vs the loop oracle
# ----------------------------------------------------------------------
def _junction_bar() -> Bar1D:
    """n+/n-/n+ bar: the series-resistance shape of the S/D extension."""
    def doping(x: float) -> float:
        return 1e25 if x < 16e-9 or x > 32e-9 else 1e23
    return Bar1D(length=48e-9, area=192e-9 * 7e-9, doping=doping,
                 n_nodes=161, mobility=0.01)


DEVICES = {
    "uniform-default": uniform_bar,
    "uniform-light": lambda: uniform_bar(nd_cm3=1e18, mobility=0.03),
    "junction": _junction_bar,
}

SWEEPS = {
    "paper-grid": [0.0, 0.01, 0.05, 0.1, 0.2],
    "coarse-high-bias": [0.0, 0.05, 0.15, 0.3],
}


def _assert_sweep_agrees(loop, batched):
    assert len(loop) == len(batched)
    for ref, got in zip(loop, batched):
        if abs(ref.current) < NOISE_FLOOR:
            assert abs(got.current) < NOISE_FLOOR
        else:
            assert NUMERIC.accepts(ref.current, got.current), (
                f"current {got.current!r} vs oracle {ref.current!r}")
        assert np.max(np.abs(ref.psi - got.psi)) < 1e-7


@pytest.mark.parametrize("device", sorted(DEVICES))
@pytest.mark.parametrize("sweep", sorted(SWEEPS))
def test_dd1d_batched_matches_loop_oracle(device, sweep):
    solver = DriftDiffusion1D(DEVICES[device]())
    loop = solver.sweep(SWEEPS[sweep], kernel="loop")
    batched = solver.sweep(SWEEPS[sweep], kernel="batched")
    _assert_sweep_agrees(loop, batched)


def test_dd1d_batched_matches_independent_cold_solves():
    """Each batched point is a cold solve: compare per point, not to
    the warm-started loop, for the tightest possible bound."""
    solver = DriftDiffusion1D(uniform_bar())
    biases = [0.02, 0.08, 0.12]
    batched = solver.sweep(biases, kernel="batched")
    for bias, got in zip(biases, batched):
        ref = solver.solve(bias)
        assert abs(got.current - ref.current) <= 1e-9 * abs(ref.current)


def test_dd1d_env_kernel_selection(monkeypatch):
    solver = DriftDiffusion1D(uniform_bar())
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "loop")
    loop = solver.sweep([0.0, 0.1])
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "batched")
    batched = solver.sweep([0.0, 0.1])
    _assert_sweep_agrees(loop, batched)


def test_dd1d_batched_emits_counters():
    solver = DriftDiffusion1D(uniform_bar())
    tracer = Tracer()
    with activate(tracer):
        solver.sweep([0.0, 0.05, 0.1], kernel="batched")
    assert tracer.counter("tcad.dd1d.batch_sweeps").value == 1
    assert tracer.counter("tcad.dd1d.batch_points").value == 3
    assert tracer.counter("tcad.dd1d.batch_gummel_iterations").value > 0


def test_dd1d_batched_rescues_faulted_points():
    """A non-fatal injected fault on one sweep point must engage the
    continuation rescue under the batched kernel too, and the rescued
    point stays calibrated-equal to the clean oracle."""
    solver = DriftDiffusion1D(uniform_bar())
    clean = solver.sweep([0.0, 0.05, 0.1], kernel="loop")

    install(FaultInjector.parse("convergence:dd1d:first=2"))
    tracer = Tracer()
    with activate(tracer):
        rescued = solver.sweep([0.0, 0.05, 0.1], kernel="batched")
    assert tracer.counter("tcad.dd1d.rescues").value >= 1
    assert tracer.counter("tcad.dd1d.batch_fallbacks").value >= 1
    for ref, got in zip(clean[1:], rescued[1:]):
        assert CALIBRATED.accepts(ref.current, got.current)


def test_dd1d_fatal_fault_raises_under_both_kernels():
    for kernel in ("loop", "batched"):
        solver = DriftDiffusion1D(uniform_bar())
        install(FaultInjector.parse("convergence:dd1d:fatal=1"))
        with pytest.raises(ConvergenceError, match="dd1d"):
            solver.sweep([0.05], kernel=kernel)
        clear_faults()


# ----------------------------------------------------------------------
# SPICE: sparse MNA kernel vs the dense oracle
# ----------------------------------------------------------------------
def _rc_ladder(n=24):
    c = Circuit(f"ladder{n}")
    c.add(pulse_source("Vin", "in", "0", v1=0.0, v2=1.0, delay=1e-10,
                       rise=2e-11, fall=2e-11, width=4e-10))
    prev = "in"
    for i in range(n):
        node = f"n{i}"
        c.add(Resistor(f"R{i}", prev, node, 200.0))
        c.add(Capacitor(f"C{i}", node, "0", 5e-15))
        prev = node
    return c


def _mosfet_chain(n=6):
    from repro.compact.parameters import default_parameters
    from repro.compact.model import BsimSoi4Lite
    from repro.tcad.device import Polarity
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    c = Circuit(f"moschain{n}")
    c.add(dc_source("Vdd", "vdd", "0", 1.0))
    c.add(pulse_source("Vg", "g", "0", v1=0.2, v2=0.9, delay=1e-10,
                       rise=2e-11, fall=2e-11, width=4e-10))
    prev = "vdd"
    for i in range(n):
        node = f"m{i}"
        c.add(Resistor(f"RL{i}", prev, node, 5e3))
        c.add(Mosfet(f"M{i}", node, "g", "0", model))
        c.add(Capacitor(f"CL{i}", node, "0", 2e-15))
        prev = node
    return c


def _controlled_bridge():
    c = Circuit("bridge")
    c.add(pulse_source("Vin", "in", "0", v1=0.0, v2=1.0, delay=1e-10,
                       rise=2e-11, fall=2e-11, width=4e-10))
    c.add(Resistor("R1", "in", "a", 1e3))
    c.add(Capacitor("C1", "a", "0", 1e-13))
    c.add(Vccs("G1", "b", "0", "a", "0", 2e-3))
    c.add(Resistor("R2", "b", "0", 500.0))
    c.add(Capacitor("C2", "b", "0", 5e-14))
    return c


CIRCUITS = {
    "rc-ladder": (_rc_ladder, "n23"),
    "mosfet-chain": (_mosfet_chain, "m5"),
    "controlled-bridge": (_controlled_bridge, "b"),
}

TIMESTEPS = {"coarse": 5e-11, "fine": 2e-11}


def _run_transient(kernel, monkeypatch, build, probe, dt, method):
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", kernel)
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    return transient(build(), t_stop=1e-9, dt=dt, method=method,
                     record_nodes=[probe]).waveform(probe).v


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
@pytest.mark.parametrize("dt", sorted(TIMESTEPS))
@pytest.mark.parametrize("method", ["be", "trap"])
def test_transient_sparse_matches_dense_oracle(circuit, dt, method,
                                               monkeypatch):
    build, probe = CIRCUITS[circuit]
    dense = _run_transient("dense", monkeypatch, build, probe,
                           TIMESTEPS[dt], method)
    sparse = _run_transient("sparse", monkeypatch, build, probe,
                            TIMESTEPS[dt], method)
    scale = max(1e-24, float(np.max(np.abs(dense))))
    assert np.max(np.abs(dense - sparse)) <= NUMERIC.rtol * scale


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
def test_dcop_sparse_matches_dense_oracle(circuit, monkeypatch):
    build, probe = CIRCUITS[circuit]
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "dense")
    dense = solve_dc(build())
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "sparse")
    sparse = solve_dc(build())
    for node in dense.voltages:
        assert NUMERIC.accepts(dense.voltages[node] or 1e-30,
                               sparse.voltages[node] or 1e-30)


def test_sparse_transient_reuses_factorizations(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "sparse")
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    tracer = Tracer()
    with activate(tracer):
        transient(_rc_ladder(), t_stop=1e-9, dt=5e-11,
                  record_nodes=["n23"])
    factorizations = tracer.counter("spice.mna.factorizations").value
    reuses = tracer.counter("spice.mna.factor_reuse").value
    assert factorizations >= 1
    # A linear circuit refactors only when the timestep (companion
    # coefficient) changes: reuse must dominate.
    assert reuses > factorizations


def test_sparse_newton_rescue_ladder_still_engages(monkeypatch):
    """Injected primary-rung failure under the sparse kernel: the gmin
    rescue must engage and land numeric-equal to the dense result."""
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "dense")
    reference = solve_dc(_rc_ladder())

    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "sparse")
    install(FaultInjector.parse("convergence:newton:first=1"))
    tracer = Tracer()
    with activate(tracer):
        rescued = solve_dc(_rc_ladder())
    assert tracer.counter("spice.newton.rescues").value == 1
    assert tracer.counter("spice.newton.rescues.gmin").value == 1
    for node in reference.voltages:
        assert NUMERIC.accepts(reference.voltages[node] or 1e-30,
                               rescued.voltages[node] or 1e-30)


def test_sparse_timestep_rejection_recovers(monkeypatch):
    """Fatal faults on the first timestep solves under the sparse
    kernel: halved sub-steps must carry the waveform through, staying
    calibrated-close to the clean dense waveform."""
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "dense")
    reference = transient(_rc_ladder(), t_stop=1e-9, dt=5e-11,
                          record_nodes=["n23"])

    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "sparse")
    install(FaultInjector.parse(
        "convergence:transient.newton:first=3,fatal=1"))
    tracer = Tracer()
    with activate(tracer):
        rescued = transient(_rc_ladder(), t_stop=1e-9, dt=5e-11,
                            record_nodes=["n23"])
    assert tracer.counter("spice.transient.rejected_steps").value >= 1
    assert np.array_equal(rescued.times, reference.times)
    ref = reference.waveform("n23").v
    got = rescued.waveform("n23").v
    assert np.max(np.abs(got - ref)) < 1e-3


@pytest.mark.slow
def test_transient_kernels_agree_across_method_grid(monkeypatch):
    """Denser differential grid (all circuits x both methods x three
    timesteps) for the slow tier."""
    for name, (build, probe) in sorted(CIRCUITS.items()):
        for method in ("be", "trap"):
            for dt in (2e-11, 4e-11, 8e-11):
                dense = _run_transient("dense", monkeypatch, build,
                                       probe, dt, method)
                sparse = _run_transient("sparse", monkeypatch, build,
                                        probe, dt, method)
                scale = max(1e-24, float(np.max(np.abs(dense))))
                assert np.max(np.abs(dense - sparse)) <= \
                    NUMERIC.rtol * scale, (name, method, dt)
