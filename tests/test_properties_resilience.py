"""Property tests for the network-resilience state machines.

Two contracts the remote cache tier leans on:

* the :class:`CircuitBreaker` never admits a call while open before
  the probe window elapses, and in half-open admits *exactly one*
  probe per window — no matter what interleaving of successes and
  failures produced the state;
* a jittered :meth:`RetryPolicy.delay` always stays within
  ``[backoff, backoff_cap]`` — jitter de-synchronises retries, it
  never fires one early or stretches one past the cap.
"""

import random
import warnings

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# The failure-reporting hook of the hypothesis pytest plugin imports
# libcst lazily, whose import raises a DeprecationWarning that this
# repo escalates to an error; import it once here, quietly, so a
# genuine failing example reports normally instead of INTERNALERROR.
with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    try:
        import hypothesis.extra._patching  # noqa: F401
    except ImportError:  # pragma: no cover - optional extra
        pass

from repro.resilience.breaker import (  # noqa: E402
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.retry import RetryPolicy  # noqa: E402


class _FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# one driver step: attempt a call with this outcome, or advance time
_step = st.one_of(
    st.tuples(st.just("call"), st.booleans()),
    st.tuples(st.just("tick"), st.floats(min_value=0.01, max_value=30.0,
                                         allow_nan=False)),
)


def _drive(breaker, clock, steps):
    """Replay a step sequence, asserting the admission invariants."""
    for kind, value in steps:
        if kind == "tick":
            clock.advance(value)
            continue
        state_before = breaker.state
        admitted = breaker.allow()
        if state_before == STATE_CLOSED:
            assert admitted, "closed breaker refused a call"
        elif state_before == STATE_OPEN:
            # The reset window has NOT elapsed (state says open, not
            # half-open): nothing may get through.
            assert not admitted, "open breaker admitted before probe window"
        if not admitted:
            continue
        if value:
            breaker.record_success()
            assert breaker.state == STATE_CLOSED
        else:
            breaker.record_failure()


@settings(max_examples=120, deadline=None)
@given(threshold=st.integers(min_value=1, max_value=6),
       reset=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
       steps=st.lists(_step, min_size=0, max_size=40))
def test_breaker_never_admits_while_open(threshold, reset, steps):
    clock = _FakeClock()
    breaker = CircuitBreaker(failure_threshold=threshold,
                             reset_timeout=reset, clock=clock)
    _drive(breaker, clock, steps)


@settings(max_examples=120, deadline=None)
@given(threshold=st.integers(min_value=1, max_value=6),
       reset=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
       steps=st.lists(_step, min_size=0, max_size=30),
       extra_callers=st.integers(min_value=1, max_value=8))
def test_half_open_admits_exactly_one_probe(threshold, reset, steps,
                                            extra_callers):
    clock = _FakeClock()
    breaker = CircuitBreaker(failure_threshold=threshold,
                             reset_timeout=reset, clock=clock)
    _drive(breaker, clock, steps)
    # Force the breaker open, elapse the window, then race N callers:
    # exactly one wins the probe slot, everyone else is refused until
    # its outcome is recorded.
    for _ in range(threshold):
        if breaker.allow():
            breaker.record_failure()
    assert breaker.state == STATE_OPEN
    # Strictly past the window: `advance(reset)` alone can land a ULP
    # short after accumulated float ticks.
    clock.advance(reset * 1.01 + 1e-9)
    assert breaker.state == STATE_HALF_OPEN
    admissions = [breaker.allow() for _ in range(extra_callers + 1)]
    assert admissions.count(True) == 1
    assert admissions[0] is True
    # The failed probe re-opens a fresh window; the next probe only
    # comes after another full reset_timeout.
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    clock.advance(reset * 1.01 + 1e-9)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED


@settings(max_examples=200, deadline=None)
@given(backoff=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
       cap_factor=st.floats(min_value=1.0, max_value=100.0,
                            allow_nan=False),
       jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       attempt=st.integers(min_value=1, max_value=30),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_jittered_delay_stays_within_bounds(backoff, cap_factor, jitter,
                                            attempt, seed):
    cap = backoff * cap_factor
    policy = RetryPolicy(retries=1, backoff=backoff, backoff_cap=cap,
                         jitter=jitter)
    delay = policy.delay(attempt, rng=random.Random(seed))
    assert backoff <= delay <= cap
    # The deterministic rung (no rng) is an upper bound on any
    # jittered draw of the same attempt.
    assert delay <= policy.delay(attempt)


def test_deterministic_delay_is_the_exponential_rung():
    policy = RetryPolicy(retries=3, backoff=0.05, backoff_cap=0.5,
                         jitter=0.5)
    assert policy.delay(1) == pytest.approx(0.05)
    assert policy.delay(2) == pytest.approx(0.10)
    assert policy.delay(5) == pytest.approx(0.5)  # capped
