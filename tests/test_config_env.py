"""Validated environment/parameter resolution (:mod:`repro.config`).

The regression this guards: ``REPRO_LOCK_TIMEOUT=nan`` used to pass
``float()`` *and* the ``<= 0`` check (NaN compares false to
everything), turning the flock wait-loop deadline into
``now + nan`` — a loop that never times out.  Every timing knob now
rejects zero, negative, non-numeric, NaN and infinite values with a
clear :class:`ConfigError` at resolution time, for environment values
and explicit arguments alike.
"""

from __future__ import annotations

import pytest

from repro.config import (
    require_finite_float,
    require_int,
    resolve_float,
    resolve_int,
)
from repro.engine.backends.workqueue import (
    DEFAULT_LEASE_TTL,
    LEASE_TTL_ENV,
    resolve_lease_ttl,
)
from repro.engine.durability import (
    DEFAULT_SHUTDOWN_GRACE,
    SHUTDOWN_GRACE_ENV,
    resolve_shutdown_grace,
)
from repro.engine.locks import (
    DEFAULT_LOCK_TIMEOUT,
    LOCK_TIMEOUT_ENV,
    resolve_lock_timeout,
)
from repro.errors import ConfigError, ReproError
from repro.serve.config import (
    DEADLINE_ENV,
    QUEUE_ENV,
    TENANT_RPS_ENV,
    WORKERS_ENV,
    ServeConfig,
)


class TestRequireFiniteFloat:
    def test_accepts_numbers_and_numeric_strings(self):
        assert require_finite_float("x", 1.5) == 1.5
        assert require_finite_float("x", "2.5") == 2.5
        assert require_finite_float("x", 3) == 3.0

    @pytest.mark.parametrize("bad", ["soon", "", None, "1.2.3", [1]])
    def test_rejects_non_numeric(self, bad):
        with pytest.raises(ConfigError, match="must be a number"):
            require_finite_float("KNOB", bad)

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf",
                                     float("nan"), float("inf")])
    def test_rejects_nan_and_inf(self, bad):
        with pytest.raises(ConfigError, match="must be finite"):
            require_finite_float("KNOB", bad)

    @pytest.mark.parametrize("bad", [0, -1, "0", "-0.5"])
    def test_positive_rejects_zero_and_negative(self, bad):
        with pytest.raises(ConfigError, match="must be positive"):
            require_finite_float("KNOB", bad, positive=True)

    def test_minimum_bound(self):
        assert require_finite_float("x", 0, minimum=0.0) == 0.0
        with pytest.raises(ConfigError, match="must be >= 0"):
            require_finite_float("KNOB", -0.1, minimum=0.0)

    def test_error_names_the_knob(self):
        with pytest.raises(ConfigError, match="KNOB"):
            require_finite_float("KNOB", "nope")


class TestRequireInt:
    def test_accepts_ints_and_strings(self):
        assert require_int("x", 4) == 4
        assert require_int("x", "8") == 8

    def test_rejects_bool(self):
        with pytest.raises(ConfigError, match="must be an integer"):
            require_int("KNOB", True)

    @pytest.mark.parametrize("bad", ["2.5", "many", None])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(ConfigError, match="must be an integer"):
            require_int("KNOB", bad)

    def test_positive(self):
        with pytest.raises(ConfigError, match="must be positive"):
            require_int("KNOB", 0, positive=True)


class TestResolvePrecedence:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "10")
        assert resolve_float("REPRO_TEST_KNOB", 1.0, 5.0) == 5.0
        assert resolve_int("REPRO_TEST_KNOB", 1, 7) == 7

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "10")
        assert resolve_float("REPRO_TEST_KNOB", 1.0) == 10.0

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert resolve_float("REPRO_TEST_KNOB", 1.5) == 1.5

    def test_explicit_is_validated_too(self):
        with pytest.raises(ConfigError):
            resolve_float("REPRO_TEST_KNOB", 1.0, float("nan"))


class TestTimingKnobs:
    """The library's real knobs reject unusable values at startup."""

    @pytest.mark.parametrize("resolver,env,default", [
        (resolve_lock_timeout, LOCK_TIMEOUT_ENV, DEFAULT_LOCK_TIMEOUT),
        (resolve_lease_ttl, LEASE_TTL_ENV, DEFAULT_LEASE_TTL),
    ])
    @pytest.mark.parametrize("bad", ["0", "-3", "nan", "inf", "soon"])
    def test_positive_knobs_reject_bad_env(self, monkeypatch, resolver,
                                           env, default, bad):
        monkeypatch.setenv(env, bad)
        with pytest.raises(ReproError, match=env):
            resolver()

    @pytest.mark.parametrize("resolver,env,default", [
        (resolve_lock_timeout, LOCK_TIMEOUT_ENV, DEFAULT_LOCK_TIMEOUT),
        (resolve_lease_ttl, LEASE_TTL_ENV, DEFAULT_LEASE_TTL),
        (resolve_shutdown_grace, SHUTDOWN_GRACE_ENV,
         DEFAULT_SHUTDOWN_GRACE),
    ])
    def test_knobs_default_and_env(self, monkeypatch, resolver, env,
                                   default):
        monkeypatch.delenv(env, raising=False)
        assert resolver() == default
        monkeypatch.setenv(env, "12.5")
        assert resolver() == 12.5

    def test_explicit_arguments_are_validated(self):
        with pytest.raises(ReproError):
            resolve_lock_timeout(float("nan"))
        with pytest.raises(ReproError):
            resolve_lease_ttl(-1)

    def test_shutdown_grace_allows_zero_but_not_negative(self,
                                                         monkeypatch):
        monkeypatch.delenv(SHUTDOWN_GRACE_ENV, raising=False)
        assert resolve_shutdown_grace(0) == 0.0
        with pytest.raises(ReproError, match=SHUTDOWN_GRACE_ENV):
            resolve_shutdown_grace(-1)
        monkeypatch.setenv(SHUTDOWN_GRACE_ENV, "nan")
        with pytest.raises(ReproError, match=SHUTDOWN_GRACE_ENV):
            resolve_shutdown_grace()


class TestEngineKnobs:
    """Engine/cache knobs migrated onto the validated resolvers: a
    malformed value fails at startup with a ConfigError naming the
    variable, never half-works."""

    def test_cache_max_bytes_rejects_garbage(self, monkeypatch):
        from repro.engine.cache import CACHE_MAX_BYTES_ENV, \
            resolve_max_bytes
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        with pytest.raises(ConfigError, match=CACHE_MAX_BYTES_ENV):
            resolve_max_bytes()
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "512M")
        assert resolve_max_bytes() == 512 * 1024**2

    def test_max_workers_rejects_bad_env(self, monkeypatch):
        from repro.engine.executor import MAX_WORKERS_ENV, \
            resolve_worker_count
        for bad in ("0", "-2", "many", "2.5"):
            monkeypatch.setenv(MAX_WORKERS_ENV, bad)
            with pytest.raises(ConfigError, match=MAX_WORKERS_ENV):
                resolve_worker_count()
        monkeypatch.setenv(MAX_WORKERS_ENV, "3")
        assert resolve_worker_count() == 3

    @pytest.mark.parametrize("env_name,bad", [
        ("REPRO_REMOTE_TIMEOUT", "0"),
        ("REPRO_REMOTE_TIMEOUT", "nan"),
        ("REPRO_REMOTE_RETRIES", "-1"),
        ("REPRO_REMOTE_RETRIES", "2.5"),
        ("REPRO_REMOTE_BREAKER_THRESHOLD", "0"),
        ("REPRO_REMOTE_BREAKER_RESET", "-3"),
    ])
    def test_remote_knobs_fail_at_construction(self, monkeypatch,
                                               env_name, bad):
        from repro.engine.remote import RemoteCache
        monkeypatch.setenv(env_name, bad)
        with pytest.raises(ConfigError, match=env_name):
            RemoteCache("http://127.0.0.1:9")


class TestServeConfig:
    def test_defaults(self, tmp_path, monkeypatch):
        for env in (QUEUE_ENV, WORKERS_ENV, TENANT_RPS_ENV,
                    DEADLINE_ENV):
            monkeypatch.delenv(env, raising=False)
        config = ServeConfig.from_env(cache_dir=tmp_path)
        assert config.queue_limit == 16
        assert config.workers == 2
        assert config.tenant_rps == 5.0
        assert config.default_deadline == 0.0
        assert config.tenants_root().endswith("tenants")

    def test_env_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "4")
        monkeypatch.setenv(TENANT_RPS_ENV, "0.5")
        config = ServeConfig.from_env(cache_dir=tmp_path)
        assert config.queue_limit == 4
        assert config.tenant_rps == 0.5

    @pytest.mark.parametrize("env,bad", [
        (QUEUE_ENV, "0"), (QUEUE_ENV, "lots"), (WORKERS_ENV, "-1"),
        (TENANT_RPS_ENV, "nan"), (DEADLINE_ENV, "-5"),
    ])
    def test_bad_env_fails_at_startup(self, tmp_path, monkeypatch, env,
                                      bad):
        monkeypatch.setenv(env, bad)
        with pytest.raises(ConfigError, match=env):
            ServeConfig.from_env(cache_dir=tmp_path)

    def test_requires_a_cache_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        with pytest.raises(ConfigError, match="REPRO_CACHE_DIR"):
            ServeConfig.from_env()
