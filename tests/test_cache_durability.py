"""Cache durability: quarantine bounds, LRU eviction, pins, ENOSPC
degradation, single-flight and the bucket write locks."""

import errno
import os
import time

import pytest

from repro.engine.cache import (
    ArtifactCache,
    CACHE_MAX_BYTES_ENV,
    QUARANTINE_DIRNAME,
    parse_size,
    resolve_max_bytes,
)
from repro.engine.durability import mark_active, run_dir, write_pins
from repro.engine.locks import HAVE_LOCKS
from repro.engine.stages import StageDef
from repro.errors import ReproError


def _stage(name="toy", version=1):
    return StageDef(name=name, version=version,
                    compute=lambda payload, deps: None,
                    encode=lambda art: {"value": art["value"]},
                    decode=lambda data: {"value": data["value"]})


# ----------------------------------------------------------------------
# size parsing / budget resolution
# ----------------------------------------------------------------------
def test_parse_size():
    assert parse_size("1024") == 1024
    assert parse_size("4K") == 4096
    assert parse_size("2M") == 2 * 1024 ** 2
    assert parse_size("1G") == 1024 ** 3
    assert parse_size(" 512m ") == 512 * 1024 ** 2
    assert parse_size("8KB") == 8192
    for bad in ("", "abc", "-5", "1.5M"):
        with pytest.raises(ReproError):
            parse_size(bad)


def test_resolve_max_bytes(monkeypatch):
    monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
    assert resolve_max_bytes() is None
    assert resolve_max_bytes(4096) == 4096
    monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "64K")
    assert resolve_max_bytes() == 65536
    with pytest.raises(ReproError):
        resolve_max_bytes(0)


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------
def test_corrupt_entry_moves_to_quarantine(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("deadbeef", stage, {"value": 1.0})
    path = tmp_path / "toy" / "deadbeef.json"
    path.write_text("{torn", encoding="utf-8")
    fresh = ArtifactCache(cache_dir=tmp_path)
    hit, layer = fresh.get("deadbeef", stage)
    assert hit is None and layer is None
    assert not path.exists()
    quarantined = fresh.quarantined()
    assert len(quarantined) == 1
    assert quarantined[0].name == "toy.deadbeef.json"


def test_quarantine_expiry_by_count_and_age(tmp_path):
    cache = ArtifactCache(cache_dir=tmp_path)
    qdir = tmp_path / QUARANTINE_DIRNAME
    qdir.mkdir()
    for i in range(6):
        path = qdir / f"toy.k{i}.json"
        path.write_text("{}", encoding="utf-8")
        os.utime(path, (i + 1.0, i + 1.0))
    # count cap: keep the 4 newest
    removed = cache.expire_quarantine(max_age=10 ** 12, max_files=4)
    assert removed == 2
    assert {p.name for p in cache.quarantined()} == \
        {f"toy.k{i}.json" for i in (2, 3, 4, 5)}
    # age cap: mtimes of 3..6 are all ancient
    removed = cache.expire_quarantine(max_age=1.0, max_files=100)
    assert removed == 4
    assert cache.quarantined() == []
    assert cache.stats()["quarantine_expired"] == 6


# ----------------------------------------------------------------------
# LRU eviction / pins / budget
# ----------------------------------------------------------------------
def test_evict_to_removes_lru_first(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    for i in range(4):
        cache.put(f"k{i}", stage, {"value": float(i)})
    # touch k0 so k1 becomes the least recently used
    cache.clear_memory()
    cache.get("k0", stage)
    total, count = cache.disk_usage()
    assert count == 4
    per_entry = total // 4
    evicted = cache.evict_to(total - per_entry)  # need to free one
    assert evicted == 1
    assert not (tmp_path / "toy" / "k1.json").exists()
    assert (tmp_path / "toy" / "k0.json").exists()


def test_eviction_never_touches_pinned_entries(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    for i in range(4):
        cache.put(f"k{i}", stage, {"value": float(i)})
    cache.pin({"k0", "k1", "k2", "k3"})
    assert cache.evict_to(0) == 0
    cache.unpin({"k0", "k1"})
    assert cache.evict_to(0) == 2
    remaining = {p.name for p in (tmp_path / "toy").glob("*.json")}
    assert remaining == {"k2.json", "k3.json"}


def test_eviction_respects_cross_process_pins(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    for i in range(2):
        cache.put(f"k{i}", stage, {"value": float(i)})
    directory = run_dir(tmp_path, "live-run")
    mark_active(directory)
    write_pins(directory, {"k0"})
    fresh = ArtifactCache(cache_dir=tmp_path)  # no in-process pins
    assert fresh.evict_to(0) == 1
    assert (tmp_path / "toy" / "k0.json").exists()
    assert not (tmp_path / "toy" / "k1.json").exists()


def test_max_bytes_budget_is_enforced_on_put(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("probe", stage, {"value": 0.0})
    entry_size = cache.disk_usage()[0]
    budget = entry_size * 3
    cache = ArtifactCache(cache_dir=tmp_path, max_bytes=budget)
    for i in range(12):
        cache.put(f"k{i}", stage, {"value": float(i)})
    cache.enforce_budget()
    assert cache.disk_usage()[0] <= budget
    assert cache.stats()["evicted"] > 0


def test_enospc_evicts_then_degrades(tmp_path, monkeypatch):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    for i in range(4):
        cache.put(f"k{i}", stage, {"value": float(i)})
    before = cache.disk_usage()[1]
    real_replace = os.replace

    def full_disk(src, dst):
        if str(dst).endswith("full.json"):
            raise OSError(errno.ENOSPC, "No space left on device")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", full_disk)
    cache.put("full", stage, {"value": 99.0})
    # the publish failed both times, but made room trying...
    assert cache.disk_usage()[1] < before
    assert cache.stats()["write_errors"] == 1
    assert cache.stats()["evicted"] > 0
    # ...and the cache degraded to memory-only, not dead
    assert cache.get("full", stage)[1] == "memory"
    monkeypatch.setattr(os, "replace", real_replace)
    cache.put("after", stage, {"value": 1.0})
    assert not (tmp_path / "toy" / "after.json").exists()  # degraded


def test_atime_journal_tracks_reads(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    cache.clear_memory()
    cache.get("k1", stage)
    atimes = cache._read_atimes()
    assert "k1" in atimes
    assert atimes["k1"] == pytest.approx(time.time(), abs=60.0)


# ----------------------------------------------------------------------
# single flight
# ----------------------------------------------------------------------
def test_single_flight_claim_and_release(tmp_path):
    cache = ArtifactCache(cache_dir=tmp_path)
    flight = cache.begin_flight("k1")
    assert flight is not None
    peer = ArtifactCache(cache_dir=tmp_path)
    if HAVE_LOCKS:
        assert peer.begin_flight("k1") is None
    cache.end_flight(flight)
    second = peer.begin_flight("k1")
    assert second is not None
    peer.end_flight(second)
    cache.end_flight(None)  # idempotent


@pytest.mark.skipif(not HAVE_LOCKS, reason="needs advisory locks")
def test_flight_wait_ready_free_timeout(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path, lock_timeout=0.2)
    peer = ArtifactCache(cache_dir=tmp_path, lock_timeout=0.2)
    # "free": nobody holds the flight
    assert peer.flight_wait("k1", stage.name) == "free"
    # "timeout": holder never publishes
    flight = cache.begin_flight("k1")
    assert peer.flight_wait("k1", stage.name) == "timeout"
    assert peer.stats()["flight_timeouts"] == 1
    # "ready": entry published (holder still holding is irrelevant)
    cache.put("k1", stage, {"value": 1.0})
    assert peer.flight_wait("k1", stage.name) == "ready"
    cache.end_flight(flight)


@pytest.mark.skipif(not HAVE_LOCKS, reason="needs advisory locks")
def test_put_skips_disk_when_bucket_lock_is_wedged(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path, lock_timeout=0.15)
    wedge = cache._entry_lock("k1")
    assert wedge.try_acquire()
    try:
        peer = ArtifactCache(cache_dir=tmp_path, lock_timeout=0.15)
        peer.put("k1", stage, {"value": 1.0})
        assert peer.stats()["lock_timeouts"] == 1
        assert not (tmp_path / "toy" / "k1.json").exists()
        assert peer.get("k1", stage)[1] == "memory"  # still usable
    finally:
        wedge.release()


def test_disk_entries_skip_internal_dirs(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    # internal state must never be counted (or evicted) as artefacts
    (tmp_path / "runs" / "r1").mkdir(parents=True)
    (tmp_path / "runs" / "r1" / "journal.jsonl").write_text("{}\n")
    (tmp_path / QUARANTINE_DIRNAME).mkdir()
    (tmp_path / QUARANTINE_DIRNAME / "toy.bad.json").write_text("{}")
    total, count = cache.disk_usage()
    assert count == 1


def test_collect_tmp_files(tmp_path):
    stage = _stage()
    cache = ArtifactCache(cache_dir=tmp_path)
    cache.put("k1", stage, {"value": 1.0})
    orphan = tmp_path / "toy" / "crashed.tmp"
    orphan.write_text("partial", encoding="utf-8")
    os.utime(orphan, (1.0, 1.0))
    fresh_orphan = tmp_path / "toy" / "inflight.tmp"
    fresh_orphan.write_text("partial", encoding="utf-8")
    cache._collect_tmp_files()
    assert not orphan.exists()
    assert fresh_orphan.exists()  # too young to be debris


def test_manifest_save_is_atomic(tmp_path, monkeypatch):
    from repro.engine.manifest import RunManifest
    manifest = RunManifest(max_workers=1)
    path = tmp_path / "deep" / "manifest.json"
    manifest.save(path)
    assert RunManifest.load(path).max_workers == 1

    real_replace = os.replace

    def boom(src, dst):
        raise OSError(errno.EIO, "disk detached")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        RunManifest(max_workers=2).save(path)
    monkeypatch.setattr(os, "replace", real_replace)
    # the old manifest is intact and no temp debris is left behind
    assert RunManifest.load(path).max_workers == 1
    assert list(path.parent.glob("*.tmp")) == []
