"""1-D mesh construction."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.tcad.mesh import Mesh1D, Region


def two_region_mesh():
    return Mesh1D([
        Region("ox", 1e-9, 4, 3.45e-11),
        Region("film", 7e-9, 14, 1.035e-10, has_charge=True),
    ])


def test_node_count():
    mesh = two_region_mesh()
    assert mesh.n_nodes == 4 + 14 + 1


def test_total_span():
    mesh = two_region_mesh()
    assert mesh.x[-1] == pytest.approx(8e-9)
    assert mesh.x[0] == 0.0


def test_nodes_strictly_increasing():
    mesh = two_region_mesh()
    assert np.all(np.diff(mesh.x) > 0)


def test_interface_on_node():
    mesh = two_region_mesh()
    assert np.any(np.isclose(mesh.x, 1e-9))


def test_edge_permittivity_per_region():
    mesh = two_region_mesh()
    assert np.all(mesh.edge_eps[:4] == pytest.approx(3.45e-11))
    assert np.all(mesh.edge_eps[4:] == pytest.approx(1.035e-10))


def test_node_volumes_sum_to_span():
    mesh = two_region_mesh()
    assert mesh.node_volumes.sum() == pytest.approx(8e-9)


def test_charge_mask_covers_film_including_interfaces():
    mesh = two_region_mesh()
    charged = mesh.node_charged
    film_mask = mesh.region_node_mask("film")
    # every film node (incl. its boundary nodes) carries charge
    assert np.all(charged[film_mask])
    # oxide interior nodes carry none
    assert not charged[1]


def test_region_span():
    mesh = two_region_mesh()
    assert mesh.region_span("film") == (pytest.approx(1e-9),
                                        pytest.approx(8e-9))


def test_unknown_region_raises():
    mesh = two_region_mesh()
    with pytest.raises(MeshError):
        mesh.region_node_mask("box")
    with pytest.raises(MeshError):
        mesh.region_span("box")


def test_invalid_region_parameters():
    with pytest.raises(MeshError):
        Region("bad", 0.0, 4, 1.0)
    with pytest.raises(MeshError):
        Region("bad", 1e-9, 0, 1.0)
    with pytest.raises(MeshError):
        Region("bad", 1e-9, 4, -1.0)


def test_empty_mesh_rejected():
    with pytest.raises(MeshError):
        Mesh1D([])
