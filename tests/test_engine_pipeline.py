"""The paper pipeline on the engine: process-aware keys, codecs, dedup.

Includes the regression tests for the stale-cache bug class of the old
ad-hoc memos, which keyed on ``id(process)``: artefacts are now
content-addressed on the full process record, so two different
processes can never share curves or models.
"""

import pytest

from repro.cells.netlist_builder import Parasitics
from repro.cells.variants import DeviceVariant, ModelSet
from repro.engine import default_engine
from repro.engine.pipeline import (
    cell_ppa_tasks,
    extraction_tasks,
    merge_tasks,
    model_set_tasks,
    targets_task,
)
from repro.errors import ReproError
from repro.extraction.targets import cached_targets
from repro.geometry.process import DEFAULT_PROCESS
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity
from repro.tcad.simulator import SweepSpec

#: A coarse sweep plan so process-distinctness tests stay cheap.
FAST_SPEC = SweepSpec(vg_points=5, vd_points=5, cv_points=5,
                      idvd_gate_biases=(0.6, 1.0))


# ----------------------------------------------------------------------
# stale-cache regression: distinct processes -> distinct artefacts
# ----------------------------------------------------------------------
def test_two_processes_yield_distinct_target_artifacts():
    thick = DEFAULT_PROCESS.with_updates(t_si=9e-9)
    default = cached_targets(ChannelCount.TRADITIONAL, Polarity.NMOS,
                             spec=FAST_SPEC)
    shifted = cached_targets(ChannelCount.TRADITIONAL, Polarity.NMOS,
                             process=thick, spec=FAST_SPEC)
    assert default is not shifted
    assert float(shifted.idvg_sat.i[-1]) != float(default.idvg_sat.i[-1])
    # explicit default process and implicit default share one artefact
    explicit = cached_targets(ChannelCount.TRADITIONAL, Polarity.NMOS,
                              process=DEFAULT_PROCESS, spec=FAST_SPEC)
    assert explicit is default


def test_two_processes_never_share_model_set_keys():
    thick = DEFAULT_PROCESS.with_updates(t_si=9e-9)
    task_a, support_a = model_set_tasks(DeviceVariant.MIV_2CH)
    task_b, support_b = model_set_tasks(DeviceVariant.MIV_2CH, thick)
    keys_a = default_engine().task_keys(support_a)
    keys_b = default_engine().task_keys(support_b)
    assert task_a.id != task_b.id
    assert keys_a[task_a.id] != keys_b[task_b.id]
    # every task in the chain is distinct, down to the TCAD sweep
    assert not set(keys_a.values()) & set(keys_b.values())


def test_sweep_spec_is_part_of_the_key():
    a = targets_task(ChannelCount.ONE, Polarity.NMOS)
    b = targets_task(ChannelCount.ONE, Polarity.NMOS, spec=FAST_SPEC)
    assert a.id != b.id


def test_default_process_expansion_is_canonical():
    implicit = targets_task(ChannelCount.ONE, Polarity.NMOS)
    explicit = targets_task(ChannelCount.ONE, Polarity.NMOS,
                            process=DEFAULT_PROCESS, spec=SweepSpec())
    assert implicit == explicit


# ----------------------------------------------------------------------
# PPA keying: (parasitics, dt) are part of the artefact identity
# ----------------------------------------------------------------------
def test_ppa_key_includes_parasitics_and_dt():
    base, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D)
    heavier, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D,
                                parasitics=Parasitics(c_load=2e-15))
    finer, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D, dt=1e-11)
    assert len({base.id, heavier.id, finer.id}) == 3
    default_again, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D,
                                      parasitics=Parasitics())
    assert default_again == base


def test_ppa_runner_instances_with_equal_settings_share_keys():
    from repro.ppa.runner import PpaRunner

    def runner():
        return PpaRunner(engine=default_engine())

    assert runner().parasitics == Parasitics()
    a, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D,
                          runner().parasitics, runner().dt)
    b, _ = cell_ppa_tasks("INV1X1", DeviceVariant.TWO_D,
                          runner().parasitics, runner().dt)
    assert a == b


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
def test_variants_share_the_traditional_pmos_chain():
    _, support_2d = model_set_tasks(DeviceVariant.TWO_D)
    _, support_2ch = model_set_tasks(DeviceVariant.MIV_2CH)
    merged = merge_tasks(support_2d, support_2ch)
    # 2D: trad-n + trad-p chains; 2ch adds only its n chain: the shared
    # PMOS targets+extract tasks appear once.
    pmos_tasks = [t for t in merged if ":p:" in t.id]
    assert len(pmos_tasks) == 2  # one targets + one extract, not four


def test_merge_tasks_rejects_conflicting_definitions():
    task = targets_task(ChannelCount.ONE, Polarity.NMOS)
    impostor = type(task)(id=task.id, stage=task.stage,
                          payload={"different": True})
    with pytest.raises(ReproError, match="conflicting"):
        merge_tasks([task], [impostor])


def test_full_grid_task_count():
    pairs = [cell_ppa_tasks(cell, variant)
             for cell in ("INV1X1", "NAND2X1")
             for variant in DeviceVariant]
    merged = merge_tasks(*[support for _, support in pairs])
    # 5 devices (4 n-type + shared trad p) x 2 (targets+extract)
    # + 4 model sets + 8 ppa points
    assert len(merged) == 5 * 2 + 4 + 8


# ----------------------------------------------------------------------
# codecs round-trip bit-identically
# ----------------------------------------------------------------------
def test_model_set_roundtrip(model_set_2d):
    restored = ModelSet.from_dict(model_set_2d.to_dict())
    assert restored.variant is model_set_2d.variant
    assert restored.nmos.params.as_dict() == model_set_2d.nmos.params.as_dict()
    assert float(restored.pmos.ids_magnitude(1.0, 1.0)) == \
        float(model_set_2d.pmos.ids_magnitude(1.0, 1.0))


def test_extracted_device_roundtrip(extracted_nmos):
    from repro.extraction.flow import ExtractedDevice
    restored = ExtractedDevice.from_dict(extracted_nmos.to_dict())
    assert restored.errors == extracted_nmos.errors
    assert restored.stage_rms == extracted_nmos.stage_rms
    assert restored.model.params.as_dict() == \
        extracted_nmos.model.params.as_dict()
    assert restored.targets.label == extracted_nmos.targets.label


def test_cell_ppa_roundtrip():
    from repro.ppa.runner import CellPPA
    ppa = CellPPA(cell_name="INV1X1", variant=DeviceVariant.MIV_2CH,
                  delay=1.25e-11, power=3.5e-6, area=1e-13, substrate=5e-14)
    restored = CellPPA.from_dict(ppa.to_dict())
    assert restored == ppa
