"""Charge-sheet transport model behaviour."""

import pytest

from repro.errors import SimulationError
from repro.tcad.charge_sheet import ChargeSheetModel
from repro.tcad.poisson1d import Poisson1D, StackSpec
from repro.tcad.short_channel import ShortChannelModel
from repro.tcad.velocity import ELECTRON_MOBILITY


@pytest.fixture(scope="module")
def engine():
    poisson = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9,
                                  flatband=0.04))
    return ChargeSheetModel(
        poisson=poisson,
        mobility=ELECTRON_MOBILITY,
        short_channel=ShortChannelModel(t_si=7e-9, t_ox=1e-9),
        width=192e-9,
        l_gate=24e-9,
    )


def test_zero_vds_zero_current(engine):
    assert engine.drain_current(0.8, 0.0) == 0.0


def test_current_increases_with_vgs(engine):
    currents = [engine.drain_current(v, 1.0) for v in (0.4, 0.6, 0.8, 1.0)]
    assert all(i2 > i1 for i1, i2 in zip(currents, currents[1:]))


def test_current_increases_with_vds(engine):
    currents = [engine.drain_current(0.8, v) for v in (0.1, 0.3, 0.6, 1.0)]
    assert all(i2 > i1 for i1, i2 in zip(currents, currents[1:]))


def test_saturation_flattens_output(engine):
    g_lin = (engine.drain_current(1.0, 0.10) -
             engine.drain_current(1.0, 0.05)) / 0.05
    g_sat = (engine.drain_current(1.0, 1.00) -
             engine.drain_current(1.0, 0.95)) / 0.05
    assert g_sat < 0.15 * g_lin


def test_reverse_vds_antisymmetric(engine):
    # Source/drain exchange: I(vgs, -vds) = -I(vgs + vds, vds).
    forward = engine.drain_current(0.8 + 0.5, 0.5)
    reverse = engine.drain_current(0.8, -0.5)
    assert reverse == pytest.approx(-forward, rel=1e-9)


def test_subthreshold_swing_near_ideal(engine):
    swing = engine.subthreshold_swing()
    assert 0.058 < swing < 0.075  # V/decade at room temperature


def test_leakage_floor_nonzero(engine):
    assert engine.drain_current(0.0, 1.0) > 0.0


def test_on_current_magnitude(engine):
    # ~0.1-1 mA/um-class drive for this geometry.
    ion = engine.drain_current(1.0, 1.0)
    assert 5e-5 < ion < 1e-3


def test_on_off_ratio(engine):
    ion = engine.drain_current(1.0, 1.0)
    ioff = engine.drain_current(0.0, 1.0)
    assert ion / ioff > 1e6


def test_dibl_increases_saturation_current(engine):
    # Through the effective gate voltage, higher vds raises subthreshold
    # current beyond simple saturation.
    i_low = engine.drain_current(0.15, 0.05)
    i_high = engine.drain_current(0.15, 1.0)
    assert i_high > 2 * i_low


def test_longer_channel_less_current():
    poisson = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    short = ChargeSheetModel(
        poisson=poisson, mobility=ELECTRON_MOBILITY,
        short_channel=ShortChannelModel(t_si=7e-9, t_ox=1e-9),
        width=192e-9, l_gate=24e-9)
    long = ChargeSheetModel(
        poisson=poisson, mobility=ELECTRON_MOBILITY,
        short_channel=ShortChannelModel(t_si=7e-9, t_ox=1e-9),
        width=192e-9, l_gate=48e-9)
    assert long.drain_current(1.0, 1.0) < short.drain_current(1.0, 1.0)


def test_l_eff_factor_reduces_current(engine):
    poisson = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9,
                                  flatband=0.04))
    stretched = ChargeSheetModel(
        poisson=poisson, mobility=ELECTRON_MOBILITY,
        short_channel=ShortChannelModel(t_si=7e-9, t_ox=1e-9),
        width=192e-9, l_gate=24e-9, l_eff_factor=1.3)
    assert (stretched.drain_current(1.0, 1.0) <
            engine.drain_current(1.0, 1.0))


def test_gate_capacitance_positive_and_bounded(engine):
    c = engine.gate_capacitance_per_area(1.0)
    cox = engine.poisson.oxide_capacitance()
    assert 0 < c <= cox


def test_transconductance_positive_above_threshold(engine):
    assert engine.transconductance(0.8, 1.0) > 0


def test_output_conductance_positive(engine):
    assert engine.output_conductance(1.0, 0.9) > 0


def test_invalid_construction_rejected():
    poisson = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    with pytest.raises(SimulationError):
        ChargeSheetModel(poisson=poisson, mobility=ELECTRON_MOBILITY,
                         short_channel=ShortChannelModel(7e-9, 1e-9),
                         width=-1.0, l_gate=24e-9)
    with pytest.raises(SimulationError):
        ChargeSheetModel(poisson=poisson, mobility=ELECTRON_MOBILITY,
                         short_channel=ShortChannelModel(7e-9, 1e-9),
                         width=192e-9, l_gate=24e-9, l_eff_factor=0.5)


def test_invalid_subthreshold_window_rejected(engine):
    with pytest.raises(SimulationError):
        engine.subthreshold_swing(vg_low=0.2, vg_high=0.2)
