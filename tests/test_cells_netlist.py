"""Cell netlist construction and parasitic insertion."""

import pytest

from repro.cells.library import get_cell
from repro.cells.netlist_builder import Parasitics, build_cell_circuit
from repro.cells.variants import DeviceVariant
from repro.spice import solve_dc
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.resistor import Resistor


@pytest.fixture(scope="module")
def inv_2d(model_set_2d):
    return build_cell_circuit(get_cell("INV1X1"), model_set_2d)


@pytest.fixture(scope="module")
def inv_2ch(model_set_2ch):
    return build_cell_circuit(get_cell("INV1X1"), model_set_2ch)


def test_transistor_count_matches_spec(inv_2d, model_set_2d):
    assert len(inv_2d.transistor_names) == 2
    nand3 = build_cell_circuit(get_cell("NAND3X1"), model_set_2d)
    assert len(nand3.transistor_names) == 6


def test_rail_resistances(inv_2d):
    assert inv_2d.circuit.element("Rvdd").resistance == pytest.approx(5.0)
    assert inv_2d.circuit.element("Rgnd").resistance == pytest.approx(5.0)


def test_output_miv_and_load(inv_2d):
    assert inv_2d.circuit.element("Rmivout_y").resistance == pytest.approx(7.0)
    assert inv_2d.circuit.element("Rout").resistance == pytest.approx(3.0)
    assert inv_2d.circuit.element("CL").capacitance == pytest.approx(1e-15)


def test_gate_routing_2d_has_interconnect_hop(inv_2d):
    # p-gate through the 7 Ohm MIV; n-gate through the 3 Ohm M1 wire.
    assert inv_2d.circuit.element("Rmiv_a").resistance == pytest.approx(7.0)
    assert inv_2d.circuit.element("Rint_a").resistance == pytest.approx(3.0)


def test_gate_routing_miv_variant_direct(inv_2ch):
    # The MIV is the gate: no M1 hop for the n-type device.
    assert "Rmiv_a" in inv_2ch.circuit
    assert "Rint_a" not in inv_2ch.circuit


def test_keepout_cap_only_in_2d(inv_2d, inv_2ch):
    assert "Ckoz_y" in inv_2d.circuit
    assert "Ckoz_y" not in inv_2ch.circuit


def test_validates_and_solves(inv_2d):
    inv_2d.circuit.validate()
    inv_2d.circuit.element("Va").waveform = 0.0
    op = solve_dc(inv_2d.circuit)
    assert op.voltage("out") == pytest.approx(1.0, abs=0.02)


def test_nand2_series_chain_has_internal_node(model_set_2d):
    netlist = build_cell_circuit(get_cell("NAND2X1"), model_set_2d)
    fets = [e for e in netlist.circuit if isinstance(e, Mosfet)]
    nmos = [f for f in fets if f.model.polarity.value == "n"]
    pmos = [f for f in fets if f.model.polarity.value == "p"]
    assert len(nmos) == 2 and len(pmos) == 2
    # the two NMOS share exactly one internal chain node
    nmos_nodes = [set((f.nodes[0], f.nodes[2])) for f in nmos]
    shared = nmos_nodes[0] & nmos_nodes[1]
    assert len(shared) == 1
    # PMOS are in parallel: both touch the output bottom node
    for fet in pmos:
        assert "y_b" in fet.nodes


def test_multi_stage_cell_wires_stage_output_to_next_gate(model_set_2d):
    netlist = build_cell_circuit(get_cell("AND2X1"), model_set_2d)
    circuit = netlist.circuit
    # intermediate signal yb drives the output inverter through its own
    # gate routing (MIV for the p side).
    assert "Rmiv_yb" in circuit
    assert "Rmivout_yb" in circuit


def test_input_sources_registered(inv_2d):
    assert inv_2d.input_sources == {"a": "Va"}


def test_custom_parasitics():
    from repro.cells.variants import extracted_model_set
    models = extracted_model_set(DeviceVariant.TWO_D)
    par = Parasitics(r_miv=14.0, r_interconnect=6.0, r_rail=10.0,
                     c_load=2e-15)
    netlist = build_cell_circuit(get_cell("INV1X1"), models, par)
    assert netlist.circuit.element("Rmiv_a").resistance == pytest.approx(14.0)
    assert netlist.circuit.element("CL").capacitance == pytest.approx(2e-15)


def test_mux_transistor_count(model_set_2d):
    netlist = build_cell_circuit(get_cell("MUX2X1"), model_set_2d)
    assert len(netlist.transistor_names) == 12


def test_all_cells_build_and_validate(model_set_2d):
    from repro.cells.library import all_cells
    for spec in all_cells():
        netlist = build_cell_circuit(spec, model_set_2d)
        netlist.circuit.validate()
        assert len(netlist.transistor_names) == spec.transistor_count
