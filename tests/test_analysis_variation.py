"""Process-corner / Monte-Carlo robustness study."""

import pytest

from repro.analysis.variation import (
    STANDARD_CORNERS,
    ProcessCorner,
    advantage_yield,
    corner_drive_study,
    drive_ratios,
    monte_carlo_drive,
)
from repro.errors import SimulationError
from repro.geometry.process import DEFAULT_PROCESS
from repro.geometry.transistor_layout import ChannelCount


def test_corner_apply():
    corner = ProcessCorner("x", t_si_scale=0.9, l_gate_scale=1.1)
    process = corner.apply(DEFAULT_PROCESS)
    assert process.t_si == pytest.approx(0.9 * DEFAULT_PROCESS.t_si)
    assert process.l_gate == pytest.approx(1.1 * DEFAULT_PROCESS.l_gate)
    assert process.t_ox == DEFAULT_PROCESS.t_ox


def test_standard_corners_include_nominal():
    assert STANDARD_CORNERS[0].name == "nominal"
    nominal = STANDARD_CORNERS[0].apply(DEFAULT_PROCESS)
    assert nominal.t_si == DEFAULT_PROCESS.t_si


def test_nominal_drive_ratios_match_calibration():
    result = drive_ratios(DEFAULT_PROCESS)
    assert result.ratios[ChannelCount.TRADITIONAL] == pytest.approx(1.0)
    assert 1.02 < result.ratios[ChannelCount.ONE] < 1.12
    assert 0.85 < result.ratios[ChannelCount.FOUR] < 0.99
    assert result.miv_advantage_holds


def test_advantage_holds_across_standard_corners():
    """The extension claim: the qualitative MIV-transistor finding is
    robust to +-5..10% geometry corners."""
    results = corner_drive_study()
    assert len(results) == len(STANDARD_CORNERS)
    assert advantage_yield(results) == 1.0


def test_monte_carlo_sampling_reproducible():
    a = monte_carlo_drive(n_samples=3, seed=7)
    b = monte_carlo_drive(n_samples=3, seed=7)
    for ra, rb in zip(a, b):
        for variant in ra.ratios:
            assert ra.ratios[variant] == pytest.approx(rb.ratios[variant])


def test_monte_carlo_yield_high():
    results = monte_carlo_drive(n_samples=6, sigma=0.02, seed=11)
    assert advantage_yield(results) >= 5 / 6


def test_monte_carlo_validation():
    with pytest.raises(SimulationError):
        monte_carlo_drive(n_samples=0)
    with pytest.raises(SimulationError):
        monte_carlo_drive(sigma=0.5)
    with pytest.raises(SimulationError):
        advantage_yield([])
