"""Unit-conversion helpers."""

import pytest

from repro import units


def test_nm_roundtrip():
    assert units.to_nm(units.nm(24.0)) == pytest.approx(24.0)


def test_nm_value():
    assert units.nm(1.0) == pytest.approx(1e-9)


def test_um_value():
    assert units.um(2.0) == pytest.approx(2e-6)


def test_per_cm3_conversion():
    # 1e19 cm^-3 (Table I doping) = 1e25 m^-3.
    assert units.per_cm3(1e19) == pytest.approx(1e25)


def test_per_cm3_roundtrip():
    assert units.to_per_cm3(units.per_cm3(5e18)) == pytest.approx(5e18)


def test_time_helpers():
    assert units.ps(10.0) == pytest.approx(1e-11)
    assert units.ns(1.5) == pytest.approx(1.5e-9)


def test_capacitance_helper():
    assert units.fF(1.0) == pytest.approx(1e-15)


def test_eng_format_femto():
    assert units.eng_format(2.5e-15, "F") == "2.5fF"


def test_eng_format_pico():
    assert units.eng_format(6.0e-12, "s") == "6ps"


def test_eng_format_zero():
    assert units.eng_format(0.0, "V") == "0V"


def test_eng_format_negative():
    assert units.eng_format(-3.3e-9, "A").startswith("-3.3")


def test_eng_format_plain_units():
    assert units.eng_format(7.0, "Ohm") == "7Ohm"


def test_eng_format_kilo():
    assert units.eng_format(2200.0, "Ohm") == "2.2kOhm"
