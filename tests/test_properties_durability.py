"""Property tests for the run journal's recovery guarantees.

The crash model: a ``kill -9`` can truncate the journal at ANY byte
(the last append may be torn mid-line).  The contract is that replay
always yields a consistent *prefix* of the appended records — never a
mangled record, never a record out of order — and that replay is a
pure function of the bytes on disk.
"""

import json
import warnings

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# The failure-reporting hook of the hypothesis pytest plugin imports
# libcst lazily, whose import raises a DeprecationWarning that this
# repo escalates to an error; import it once here, quietly, so a
# genuine failing example reports normally instead of INTERNALERROR.
with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    try:
        import hypothesis.extra._patching  # noqa: F401
    except ImportError:  # pragma: no cover - optional extra
        pass

from repro.engine.durability import (  # noqa: E402
    JournalState,
    RunJournal,
    replay_journal,
)

# journal records as they appear in real runs, with adversarial
# string content (newlines and quotes must survive the round-trip)
_text = st.text(min_size=0, max_size=20)
_record = st.one_of(
    st.fixed_dictionaries(
        {"type": st.just("begin"), "run_id": _text,
         "flow": st.dictionaries(_text, _text, max_size=3)}),
    st.fixed_dictionaries(
        {"type": st.just("task"), "id": _text,
         "status": st.sampled_from(["done", "failed"]),
         "key": _text}),
    st.fixed_dictionaries(
        {"type": st.just("end"),
         "status": st.sampled_from(["completed", "interrupted"])}),
)


def _write_journal(path, records):
    journal = RunJournal(path)
    for record in records:
        journal.append(record)
    journal.close()


@settings(max_examples=60, deadline=None)
@given(records=st.lists(_record, min_size=0, max_size=8),
       data=st.data())
def test_truncation_yields_consistent_prefix(tmp_path_factory,
                                             records, data):
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    _write_journal(path, records)
    # an append-less journal never opens its file: nothing to truncate
    raw = path.read_bytes() if path.exists() else b""
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)),
                    label="truncate_at")
    path.write_bytes(raw[:cut])
    replayed = replay_journal(path)
    # a prefix: every replayed record matches the original sequence
    assert replayed == records[:len(replayed)]
    # and at most one record (the torn tail) was lost
    if cut == len(raw):
        assert replayed == records


@settings(max_examples=40, deadline=None)
@given(records=st.lists(_record, min_size=0, max_size=8))
def test_replay_is_idempotent_and_order_stable(tmp_path_factory,
                                               records):
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    _write_journal(path, records)
    first = replay_journal(path)
    second = replay_journal(path)
    assert first == second == records


@settings(max_examples=40, deadline=None)
@given(updates=st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.sampled_from(["done", "failed"])),
    min_size=0, max_size=12))
def test_journal_state_last_record_wins(updates):
    records = [{"type": "begin", "run_id": "r", "flow": {}}]
    records += [{"type": "task", "id": tid, "status": status,
                 "key": f"k-{tid}"} for tid, status in updates]
    state = JournalState.from_records(records)
    expected = {}
    for tid, status in updates:
        expected[tid] = status
    assert {tid for tid, s in expected.items() if s == "done"} == \
        set(state.done())
    assert state.keys("done") == {
        f"k-{tid}" for tid, s in expected.items() if s == "done"}


@settings(max_examples=40, deadline=None)
@given(records=st.lists(_record, min_size=1, max_size=8))
def test_appended_bytes_round_trip_json(tmp_path_factory, records):
    # every line on disk is standalone valid JSON equal to its record
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    _write_journal(path, records)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == len(records)
    for line, record in zip(lines, records):
        assert json.loads(line) == record
