"""Bounded least-squares wrapper."""

import numpy as np
import pytest

from repro.compact.parameters import PARAMETER_SPECS, default_parameters
from repro.errors import ExtractionError
from repro.extraction.optimizer import fit_parameters


def test_recovers_known_parameter():
    base = default_parameters()
    target = 0.52

    def residuals(values):
        return np.array([values["VTH0"] - target])

    fitted, rms = fit_parameters(base, ["VTH0"], residuals)
    assert fitted["VTH0"] == pytest.approx(target, abs=1e-5)
    assert rms < 1e-5


def test_respects_bounds():
    base = default_parameters()

    def residuals(values):
        return np.array([values["VTH0"] - 100.0])  # unreachable target

    fitted, _ = fit_parameters(base, ["VTH0"], residuals)
    assert fitted["VTH0"] <= PARAMETER_SPECS["VTH0"].upper + 1e-12


def test_multi_parameter_fit():
    base = default_parameters()

    def residuals(values):
        return np.array([values["U0"] - 0.05,
                         (values["VTH0"] - 0.3) * 10.0])

    fitted, _ = fit_parameters(base, ["U0", "VTH0"], residuals)
    assert fitted["U0"] == pytest.approx(0.05, rel=1e-3)
    assert fitted["VTH0"] == pytest.approx(0.3, rel=1e-3)


def test_scaled_parameters_fit_well():
    # UB spans ~1e-18 — the normalisation must make it reachable.
    base = default_parameters()
    target = 3e-17

    def residuals(values):
        return np.array([(values["UB"] - target) / 1e-17])

    fitted, _ = fit_parameters(base, ["UB"], residuals)
    assert fitted["UB"] == pytest.approx(target, rel=1e-2)


def test_nonfinite_residuals_penalised_not_crashing():
    base = default_parameters()

    def residuals(values):
        if values["VTH0"] > 0.5:
            return np.array([np.nan])
        return np.array([values["VTH0"] - 0.4])

    fitted, _ = fit_parameters(base, ["VTH0"], residuals)
    assert np.isfinite(fitted["VTH0"])


def test_empty_names_rejected():
    with pytest.raises(ExtractionError):
        fit_parameters(default_parameters(), [], lambda v: np.zeros(1))


def test_unknown_names_rejected():
    with pytest.raises(ExtractionError):
        fit_parameters(default_parameters(), ["NOPE"],
                       lambda v: np.zeros(1))
