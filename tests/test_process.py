"""Table I process parameters."""

import pytest

from repro.errors import ReproError
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters


def test_table1_nominal_values():
    t1 = DEFAULT_PROCESS.as_table1()
    assert t1["t_Si [nm]"] == pytest.approx(7)
    assert t1["h_src [nm]"] == pytest.approx(7)
    assert t1["t_ox [nm]"] == pytest.approx(1)
    assert t1["n_src [cm^-3]"] == pytest.approx(1e19)
    assert t1["t_spacer [nm]"] == pytest.approx(10)
    assert t1["t_BOX [nm]"] == pytest.approx(100)
    assert t1["t_miv [nm]"] == pytest.approx(25)
    assert t1["l_src [nm]"] == pytest.approx(48)
    assert t1["w_src [nm]"] == pytest.approx(192)
    assert t1["L_G [nm]"] == pytest.approx(24)


def test_si_units_internally():
    assert DEFAULT_PROCESS.t_si == pytest.approx(7e-9)
    assert DEFAULT_PROCESS.n_src == pytest.approx(1e25)


def test_gate_pitch():
    # L_G + 2 spacers = 24 + 20 = 44 nm.
    assert DEFAULT_PROCESS.gate_pitch == pytest.approx(44e-9)


def test_with_updates_returns_new_object():
    thicker = DEFAULT_PROCESS.with_updates(t_si=10e-9)
    assert thicker.t_si == pytest.approx(10e-9)
    assert DEFAULT_PROCESS.t_si == pytest.approx(7e-9)
    assert thicker.t_box == DEFAULT_PROCESS.t_box


def test_nonpositive_parameter_rejected():
    with pytest.raises(ReproError):
        ProcessParameters(t_si=0.0)
    with pytest.raises(ReproError):
        DEFAULT_PROCESS.with_updates(l_gate=-1e-9)


def test_supply_and_temperature_defaults():
    assert DEFAULT_PROCESS.vdd == pytest.approx(1.0)
    assert DEFAULT_PROCESS.temperature == pytest.approx(298.15)


def test_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_PROCESS.t_si = 1e-9  # type: ignore[misc]
