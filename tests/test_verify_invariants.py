"""Conservation/monotonicity invariants of the physics stack."""

from __future__ import annotations

import pytest

from repro.verify.invariants import (
    INVARIANT_CHECKS,
    all_invariant_checks,
    compact_charge_conservation,
    compact_id_monotone_in_vgs,
    cv_bounded_by_oxide,
    dd1d_current_continuity,
    dd1d_equilibrium_current,
    tcad_id_monotone_in_vgs,
)
from repro.verify.report import STATUS_PASS


def test_dd1d_current_continuity_holds():
    result = dd1d_current_continuity()
    assert result.status == STATUS_PASS, result.detail
    assert result.measured < 1e-6


def test_dd1d_equilibrium_current_vanishes():
    result = dd1d_equilibrium_current()
    assert result.status == STATUS_PASS, result.detail


def test_compact_id_monotone_in_vgs():
    result = compact_id_monotone_in_vgs()
    assert result.status == STATUS_PASS, result.detail


def test_compact_charge_conservation():
    result = compact_charge_conservation()
    assert result.status == STATUS_PASS, result.detail


def test_cv_bounded_by_oxide():
    result = cv_bounded_by_oxide()
    assert result.status == STATUS_PASS, result.detail
    assert all(0.0 < r <= 1.0 + 1e-9 for r in result.measured)


@pytest.mark.slow
def test_tcad_id_monotone_in_vgs():
    result = tcad_id_monotone_in_vgs()
    assert result.status == STATUS_PASS, result.detail


@pytest.mark.slow
def test_full_battery_passes_and_is_timed():
    results = all_invariant_checks()
    assert len(results) == len(INVARIANT_CHECKS)
    assert all(r.status == STATUS_PASS for r in results), \
        "\n".join(f"{r.name}: {r.detail}" for r in results
                  if r.status != STATUS_PASS)
    assert all(r.wall_time_s >= 0.0 for r in results)
