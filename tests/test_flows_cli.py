"""The ``python -m repro.flows`` front end (in-process)."""

import json

import pytest

from repro.engine.durability import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
)
from repro.flows.cli import (
    _parse_cells,
    _parse_channels,
    _parse_variants,
    build_parser,
    main,
)

MINIMAL = ["--cells", "INV1X1", "--variants", "2D",
           "--extraction-variants", "TRADITIONAL"]


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def test_parse_cells_validates_names():
    assert _parse_cells("INV1X1") == ["INV1X1"]
    assert _parse_cells("INV1X1, NAND2X1") == ["INV1X1", "NAND2X1"]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError, match="GHOST"):
        _parse_cells("GHOST")


def test_parse_variants_and_channels():
    from repro.cells.variants import DeviceVariant
    from repro.geometry.transistor_layout import ChannelCount
    assert _parse_variants("2D,1-ch") == [
        DeviceVariant.TWO_D, DeviceVariant.MIV_1CH]
    assert _parse_channels("traditional, two") == [
        ChannelCount.TRADITIONAL, ChannelCount.TWO]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_variants("3D")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_channels("FIVE")


def test_bad_cell_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["run", "--cells", "GHOST"])
    assert excinfo.value.code == 2


def test_no_command_prints_help(capsys):
    assert main([]) == EXIT_USAGE
    assert "usage" in capsys.readouterr().err.lower()


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------
def test_list_without_cache_dir_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert main(["list"]) == EXIT_USAGE
    assert "cache directory" in capsys.readouterr().err


def test_list_empty_store(tmp_path, capsys):
    assert main(["list", "--cache-dir", str(tmp_path)]) == EXIT_OK
    assert "no journalled runs" in capsys.readouterr().out


def test_resume_unknown_run_fails(tmp_path, capsys):
    code = main(["resume", "never-ran", "--cache-dir", str(tmp_path)])
    assert code == EXIT_FAILURE
    assert "no journal" in capsys.readouterr().err


# ----------------------------------------------------------------------
# a real (minimal) durable run, in-process
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_run_resume_alias_and_list_roundtrip(tmp_path, capsys):
    cache = str(tmp_path)
    code = main(["run", *MINIMAL, "--run-id", "cli-test",
                 "--cache-dir", cache, "--workers", "1", "--quiet"])
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "run cli-test: completed" in out

    # everything is already cached, so the resume is fast and exits 0
    code = main(["resume", "cli-test", "--cache-dir", cache,
                 "--workers", "1", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_OK
    assert payload["run_id"] == "cli-test"
    assert payload["status"] == "completed"
    assert payload["resumed"] == 1
    assert payload["summary"]["cache_hits"] == payload["summary"]["tasks"]

    code = main(["list", "--cache-dir", cache])
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "cli-test" in out
    assert "resumed x1" in out


def test_resume_alias_rewrite_keeps_options():
    from repro.flows.cli import _rewrite_resume_alias
    assert _rewrite_resume_alias(["--resume", "r1"]) == ["resume", "r1"]
    assert _rewrite_resume_alias(["--resume=r1", "--quiet"]) == \
        ["resume", "r1", "--quiet"]
    assert _rewrite_resume_alias(
        ["--resume", "r1", "--cache-dir", "/tmp/x", "--json"]) == \
        ["resume", "r1", "--cache-dir", "/tmp/x", "--json"]
    # explicit subcommands are never rewritten
    assert _rewrite_resume_alias(["resume", "r1"]) == ["resume", "r1"]
    assert _rewrite_resume_alias(["run", "--run-id", "x"]) == \
        ["run", "--run-id", "x"]
    assert _rewrite_resume_alias([]) == []


@pytest.mark.slow
def test_top_level_resume_alias(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    from repro.engine import reset_default_engine
    reset_default_engine()
    try:
        assert main(["run", *MINIMAL, "--run-id", "alias-test",
                     "--quiet"]) == EXIT_OK
        capsys.readouterr()
        assert main(["--resume", "alias-test", "--quiet"]) == EXIT_OK
        assert "run alias-test: completed" in capsys.readouterr().out
    finally:
        reset_default_engine()
