"""Example scripts must keep working (the fast ones run here)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 5  # quickstart + >= 4 scenario scripts


def test_layout_area_study_runs(capsys):
    module = _load("layout_area_study.py")
    module.main()
    out = capsys.readouterr().out
    assert "Figure 5(c)" in out
    assert "2-ch" in out


def test_miv_electrostatics_runs(capsys):
    module = _load("miv_electrostatics.py")
    module.main()
    out = capsys.readouterr().out
    assert "Peak field" in out


def test_device_characterization_runs(capsys):
    module = _load("device_characterization.py")
    module.main()
    out = capsys.readouterr().out
    assert "traditional" in out
    assert "drive" in out


def test_custom_cell_logic_helpers():
    module = _load("custom_cell.py")
    cell = module.build_aoi22()
    module.verify_logic(cell)
    assert cell.transistor_count == 8
