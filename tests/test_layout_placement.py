"""Row packing and the per-layer placement study."""

import pytest

from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.placement import (
    Instance,
    Placer,
    demo_netlist,
    pack_rows,
)


def test_pack_single_row():
    placement = pack_rows([("a", 3.0), ("b", 4.0)], row_width=10.0,
                          row_height=1.0)
    assert placement.n_rows == 1
    assert placement.used_width == pytest.approx(7.0)
    assert placement.area == pytest.approx(10.0)
    assert placement.utilization == pytest.approx(0.7)


def test_pack_overflow_opens_new_row():
    placement = pack_rows([("a", 6.0), ("b", 6.0)], row_width=10.0,
                          row_height=2.0)
    assert placement.n_rows == 2
    assert placement.area == pytest.approx(40.0)


def test_ffd_packs_tightly():
    # widths 5,5,3,3,2,2 into rows of 10: FFD needs exactly 2 rows.
    widths = [(f"c{i}", w) for i, w in enumerate([3.0, 5.0, 2.0, 5.0,
                                                  3.0, 2.0])]
    placement = pack_rows(widths, row_width=10.0, row_height=1.0)
    assert placement.n_rows == 2
    assert placement.utilization == pytest.approx(1.0)


def test_pack_validation():
    with pytest.raises(LayoutError):
        pack_rows([("a", 1.0)], row_width=0.0, row_height=1.0)
    with pytest.raises(LayoutError):
        pack_rows([("a", 11.0)], row_width=10.0, row_height=1.0)


def test_instance_factory():
    inst = Instance.of("INV1X1", 3)
    assert inst.name == "INV1X1_3"
    assert inst.spec.name == "INV1X1"


def test_demo_netlist_scales():
    assert len(demo_netlist(2)) == 2 * len(demo_netlist(1))
    with pytest.raises(LayoutError):
        demo_netlist(0)


def test_placer_validation():
    with pytest.raises(LayoutError):
        Placer([], row_width=1e-6)
    with pytest.raises(LayoutError):
        Placer(demo_netlist(1), row_width=-1.0)


@pytest.fixture(scope="module")
def placer():
    return Placer(demo_netlist(scale=2), row_width=3e-6)


def test_every_instance_placed(placer):
    result = placer.place(DeviceVariant.TWO_D)
    placed = [name for row in result.joint.rows for name, _ in row]
    assert len(placed) == len(placer.instances)
    assert len(set(placed)) == len(placed)


def test_per_layer_never_worse_than_joint(placer):
    """Independent placement can only help: the per-layer substrate sum
    is at most the joint substrate (2 x joint area)."""
    for variant in DeviceVariant:
        result = placer.place(variant)
        assert (result.separate_substrate_area <=
                result.joint_substrate_area + 1e-18)


def test_four_channel_gains_most_from_separate_placement(placer):
    """The Section IV-3 observation: the 4-channel device's short top
    rows are wasted under joint placement and recovered by per-layer
    placement."""
    gains = {}
    for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                    DeviceVariant.MIV_4CH):
        savings = placer.substrate_savings(variant)
        gains[variant] = savings["separate"] - savings["joint"]
    assert gains[DeviceVariant.MIV_4CH] == max(gains.values())
    assert gains[DeviceVariant.MIV_4CH] > 0.05


def test_substrate_savings_positive_for_all_variants(placer):
    for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                    DeviceVariant.MIV_4CH):
        savings = placer.substrate_savings(variant)
        assert savings["separate"] > 0.05
