"""Serial/parallel and cold/warm parity of the engine-run full flow.

The acceptance bar for the execution engine: fanning the pipeline out
over processes, or serving it from the artifact cache, must change wall
time only — every reported number stays bit-identical.

Runs a reduced flow (one cell, two variants, four devices) so the three
cold/warm runs stay test-suite friendly.
"""

import pytest

from repro.cells.variants import DeviceVariant
from repro.engine import Engine
from repro.engine.pipeline import STAGE_EXTRACTION, STAGE_TARGETS
from repro.flows.full_flow import run_full_flow
from repro.geometry.transistor_layout import ChannelCount

pytestmark = pytest.mark.engine

CELLS = ["INV1X1"]
VARIANTS = [DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
            DeviceVariant.MIV_2CH]
DEVICES = [ChannelCount.TRADITIONAL, ChannelCount.ONE, ChannelCount.TWO]


def _flow(engine):
    return run_full_flow(cell_names=CELLS, variants=VARIANTS,
                         extraction_variants=DEVICES, engine=engine)


@pytest.fixture(scope="module")
def serial_cold(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serial")
    result = _flow(Engine(max_workers=1, cache_dir=cache_dir))
    return result, cache_dir


@pytest.fixture(scope="module")
def parallel_cold(tmp_path_factory):
    return _flow(Engine(max_workers=4,
                        cache_dir=tmp_path_factory.mktemp("parallel")))


def test_serial_and_parallel_results_bit_identical(serial_cold,
                                                   parallel_cold):
    serial, _ = serial_cold
    assert serial.headline() == parallel_cold.headline()
    for cell in CELLS:
        for variant in VARIANTS:
            for metric in ("delay", "power", "area"):
                assert serial.ppa.value(cell, variant, metric) == \
                    parallel_cold.ppa.value(cell, variant, metric)


def test_cold_runs_computed_everything(serial_cold, parallel_cold):
    serial, _ = serial_cold
    assert serial.manifest.hit_rate() == 0.0
    assert parallel_cold.manifest.hit_rate() == 0.0
    assert serial.manifest.workers_used() == ["main"]
    assert parallel_cold.manifest.max_workers == 4


def test_warm_disk_cache_skips_all_tcad_and_extraction(serial_cold):
    serial, cache_dir = serial_cold
    warm = _flow(Engine(max_workers=1, cache_dir=cache_dir))
    assert warm.manifest.hit_rate(STAGE_TARGETS) == 1.0
    assert warm.manifest.hit_rate(STAGE_EXTRACTION) == 1.0
    assert warm.manifest.hit_rate() == 1.0
    assert warm.headline() == serial.headline()


def test_max_workers_shortcut_shares_default_cache():
    # the max_workers override must reuse the process-default cache, so
    # artefacts of one call are visible to the next regardless of the
    # per-call worker setting
    cold = run_full_flow(cell_names=CELLS, variants=VARIANTS,
                         extraction_variants=DEVICES, max_workers=1)
    assert cold.manifest.max_workers == 1
    warm = run_full_flow(cell_names=CELLS, variants=VARIANTS,
                         extraction_variants=DEVICES, max_workers=1)
    assert warm.manifest.hit_rate() == 1.0
    assert warm.headline() == cold.headline()
