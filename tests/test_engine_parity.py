"""Serial/parallel and cold/warm parity of the engine-run full flow.

The acceptance bar for the execution engine: fanning the pipeline out
over processes, or serving it from the artifact cache, must change wall
time only — every reported number stays bit-identical.

Runs a reduced flow (one cell, two variants, four devices) so the three
cold/warm runs stay test-suite friendly.
"""

import pytest

from repro.cells.variants import DeviceVariant
from repro.engine import Engine
from repro.engine.pipeline import STAGE_EXTRACTION, STAGE_TARGETS
from repro.flows.full_flow import run_full_flow
from repro.geometry.transistor_layout import ChannelCount
from repro.observe import Tracer

pytestmark = pytest.mark.engine

CELLS = ["INV1X1"]
VARIANTS = [DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
            DeviceVariant.MIV_2CH]
DEVICES = [ChannelCount.TRADITIONAL, ChannelCount.ONE, ChannelCount.TWO]


def _flow(engine, observe=None):
    return run_full_flow(cells=CELLS, variants=VARIANTS,
                         extraction_variants=DEVICES, engine=engine,
                         observe=observe)


@pytest.fixture(scope="module")
def serial_cold(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serial")
    result = _flow(Engine(backend="serial", cache_dir=cache_dir))
    return result, cache_dir


@pytest.fixture(scope="module")
def parallel_cold(tmp_path_factory):
    return _flow(Engine(backend="pool:4",
                        cache_dir=tmp_path_factory.mktemp("parallel")))


def test_serial_and_parallel_results_bit_identical(serial_cold,
                                                   parallel_cold):
    serial, _ = serial_cold
    assert serial.headline() == parallel_cold.headline()
    for cell in CELLS:
        for variant in VARIANTS:
            for metric in ("delay", "power", "area"):
                assert serial.ppa.value(cell, variant, metric) == \
                    parallel_cold.ppa.value(cell, variant, metric)


def test_cold_runs_computed_everything(serial_cold, parallel_cold):
    serial, _ = serial_cold
    assert serial.manifest.hit_rate() == 0.0
    assert parallel_cold.manifest.hit_rate() == 0.0
    assert serial.manifest.workers_used() == ["main"]
    assert parallel_cold.manifest.max_workers == 4


def test_warm_disk_cache_skips_all_tcad_and_extraction(serial_cold):
    serial, cache_dir = serial_cold
    warm = _flow(Engine(backend="serial", cache_dir=cache_dir))
    assert warm.manifest.hit_rate(STAGE_TARGETS) == 1.0
    assert warm.manifest.hit_rate(STAGE_EXTRACTION) == 1.0
    assert warm.manifest.hit_rate() == 1.0
    assert warm.headline() == serial.headline()


def test_explicit_engine_width_shares_cache(serial_cold):
    # two engines over one cache directory must reuse each other's
    # artefacts regardless of the per-engine worker setting
    serial, cache_dir = serial_cold
    warm = _flow(Engine(backend="pool:4", cache_dir=cache_dir))
    assert warm.manifest.hit_rate() == 1.0
    assert warm.headline() == serial.headline()


@pytest.fixture(scope="module")
def traced_serial(tmp_path_factory):
    tracer = Tracer()
    result = _flow(Engine(backend="serial",
                          cache_dir=tmp_path_factory.mktemp("traced_s")),
                   observe=tracer)
    return result, tracer


@pytest.fixture(scope="module")
def traced_parallel(tmp_path_factory):
    tracer = Tracer()
    result = _flow(Engine(backend="pool:4",
                          cache_dir=tmp_path_factory.mktemp("traced_p")),
                   observe=tracer)
    return result, tracer


def test_tracing_does_not_change_results(serial_cold, traced_serial,
                                         traced_parallel):
    # observe= must be a pure observer: serial and parallel traced runs
    # reproduce the untraced numbers bit-identically
    serial, _ = serial_cold
    for traced, _tracer in (traced_serial, traced_parallel):
        assert traced.headline() == serial.headline()
        for cell in CELLS:
            for variant in VARIANTS:
                for metric in ("delay", "power", "area"):
                    assert traced.ppa.value(cell, variant, metric) == \
                        serial.ppa.value(cell, variant, metric)


def test_traced_flow_records_hot_path_metrics(traced_serial):
    # the cold traced flow must surface every instrumented hot path:
    # Newton solves, optimizer evaluations, MNA factorisations, engine
    # cache accounting — all of it visible in the summary table
    _, tracer = traced_serial
    snapshot = tracer.metrics.snapshot()
    assert snapshot["spice.newton.iterations"]["value"] > 0
    assert snapshot["spice.mna.solves"]["value"] > 0
    assert snapshot["extraction.optimizer.evaluations"]["value"] > 0
    assert snapshot["tcad.poisson1d.iterations"]["value"] > 0
    assert snapshot["engine.computed"]["value"] == \
        snapshot["engine.tasks"]["value"]
    assert snapshot["engine.cache.hit_rate"]["value"] == 0.0
    summary = tracer.summary()
    for needle in ("engine.run", "spice.newton.iterations",
                   "extraction.optimizer.evaluations", "spice.mna.solves",
                   "engine.cache.hit_rate"):
        assert needle in summary


def test_traced_flow_chrome_trace_loads(traced_serial, tmp_path):
    import json
    _, tracer = traced_serial
    path = tracer.write_chrome_trace(tmp_path / "trace.json")
    data = json.loads(path.read_text())
    names = {e.get("name") for e in data["traceEvents"]}
    assert "engine.run" in names
    assert "spice.transient" in names
    assert "extraction.fit" in names


def test_parallel_traced_flow_merges_worker_spans(traced_parallel):
    import os
    _, tracer = traced_parallel
    pids = {s["pid"] for s in tracer.spans}
    assert len(pids) > 1, "expected spans shipped back from pool workers"
    # worker top-level spans were re-rooted under a parent-side span
    main_ids = {s["id"] for s in tracer.spans
                if s["pid"] == os.getpid()}
    worker_spans = [s for s in tracer.spans if s["pid"] != os.getpid()]
    worker_ids = {s["id"] for s in worker_spans}
    for span in worker_spans:
        assert span["parent"] in main_ids | worker_ids
    assert tracer.metrics.snapshot()["spice.newton.solves"]["value"] > 0
