"""Kernel-selection knob (``REPRO_SOLVER_KERNEL``) resolution rules."""

import pytest

from repro.errors import ConfigError
from repro.kernels import (
    DEFAULT_SPARSE_THRESHOLD,
    KernelConfig,
    dd1d_kernel,
    mna_kernel,
    parse_kernel_spec,
    resolve_kernels,
    scipy_sparse_available,
    sparse_threshold,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_SOLVER_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_SPARSE_THRESHOLD", raising=False)


def test_defaults_are_the_fast_kernels():
    config = resolve_kernels()
    assert config == KernelConfig(dd1d="batched", mna="sparse")
    assert config.spec() == "batched,sparse"


@pytest.mark.parametrize("spec,dd1d,mna", [
    ("", "batched", "sparse"),
    ("loop", "loop", "sparse"),
    ("dense", "batched", "dense"),
    ("loop,dense", "loop", "dense"),
    ("dense loop", "loop", "dense"),
    ("batched,sparse", "batched", "sparse"),
    ("loop,loop", "loop", "sparse"),
])
def test_parse_kernel_spec(spec, dd1d, mna):
    config = parse_kernel_spec(spec)
    assert (config.dd1d, config.mna) == (dd1d, mna)


@pytest.mark.parametrize("spec", ["fast", "batched,turbo", "Loop"])
def test_unknown_tokens_fail_loudly(spec):
    with pytest.raises(ConfigError, match="REPRO_SOLVER_KERNEL"):
        parse_kernel_spec(spec)


@pytest.mark.parametrize("spec", ["loop,batched", "sparse,dense"])
def test_conflicting_tokens_fail_loudly(spec):
    with pytest.raises(ConfigError, match="conflicting"):
        parse_kernel_spec(spec)


def test_environment_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "loop,dense")
    assert dd1d_kernel() == "loop"
    assert mna_kernel() == "dense"
    # explicit beats environment
    assert dd1d_kernel("batched") == "batched"
    assert mna_kernel("sparse") == "sparse"
    # a full spec works as an explicit argument too
    assert dd1d_kernel("batched,sparse") == "batched"
    assert mna_kernel("loop,dense") == "dense"


def test_bad_environment_fails_at_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_KERNEL", "warp9")
    with pytest.raises(ConfigError):
        resolve_kernels()


def test_sparse_threshold_resolution(monkeypatch):
    assert sparse_threshold() == DEFAULT_SPARSE_THRESHOLD
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "7")
    assert sparse_threshold() == 7
    assert sparse_threshold(3) == 3


@pytest.mark.parametrize("bad", ["0", "-4", "many"])
def test_sparse_threshold_validation(monkeypatch, bad):
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", bad)
    with pytest.raises(ConfigError, match="REPRO_SPARSE_THRESHOLD"):
        sparse_threshold()


def test_scipy_probe_is_true_here():
    # the CI image bakes SciPy in; the probe gates graceful dense
    # degradation elsewhere
    assert scipy_sparse_available() is True
