"""Committed goldens vs fresh measurements (the ``golden`` marker)."""

from __future__ import annotations

import pytest

from repro.verify.snapshots import (
    PIPELINE_GOLDENS,
    SOLVER_GOLDENS,
)

pytestmark = pytest.mark.golden


@pytest.mark.parametrize("name", sorted(SOLVER_GOLDENS))
def test_solver_golden(name, check_golden):
    builder, tolerance = SOLVER_GOLDENS[name]
    check_golden(name, builder(), default_tolerance=tolerance,
                 description=f"verify golden {name}")


@pytest.mark.slow
@pytest.mark.engine
@pytest.mark.parametrize("name", sorted(PIPELINE_GOLDENS))
def test_pipeline_golden(name, check_golden):
    builder, tolerance = PIPELINE_GOLDENS[name]
    check_golden(name, builder(), default_tolerance=tolerance,
                 description=f"verify golden {name}")


def test_golden_detects_mobility_perturbation(monkeypatch):
    """+1% bar mobility must trip the dd1d golden (sensitivity
    check: the tolerance classes are tight enough to see a physics
    drift an eyeball comparison would miss)."""
    import repro.tcad.dd1d as dd
    from repro.verify.goldens import GoldenStore
    from repro.verify.snapshots import dd1d_snapshot
    original = dd.uniform_bar

    def perturbed(*args, **kwargs):
        bar = original(*args, **kwargs)
        return dd.Bar1D(length=bar.length, area=bar.area,
                        doping=bar.doping, n_nodes=bar.n_nodes,
                        mobility=bar.mobility * 1.01)

    monkeypatch.setattr(dd, "uniform_bar", perturbed)
    diff = GoldenStore().diff("dd1d_bar", dd1d_snapshot())
    assert not diff.passed
    assert any(q.name == "currents" for q in diff.failures)


def test_registries_do_not_overlap():
    assert not set(SOLVER_GOLDENS) & set(PIPELINE_GOLDENS)


def test_snapshots_are_flat_json_friendly_dicts():
    from repro.verify.goldens import _jsonable
    from repro.verify.snapshots import poisson1d_snapshot
    snapshot = poisson1d_snapshot()
    assert snapshot and isinstance(snapshot, dict)
    for key, value in snapshot.items():
        assert isinstance(key, str)
        _jsonable(value)  # raises on exotic types
