"""Paper gates: windows, skip logic and perturbation sensitivity."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.cells.library import CELL_NAMES
from repro.cells.variants import DeviceVariant
from repro.flows.full_flow import FullFlowResult
from repro.layout.report import build_area_report
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import CellPPA
from repro.reporting.paper import FIG5_REFERENCE
from repro.verify.paper_gates import evaluate_gates, paper_gates
from repro.verify.report import STATUS_FAIL, STATUS_PASS, STATUS_SKIP


def _fake_extraction(worst: float = 8.0):
    """Extraction report stub with a controllable worst error."""
    errors = {"IDVG": worst - 1.0, "IDVD": worst - 2.0, "CV": worst}
    device = SimpleNamespace(errors=dict(errors))
    return SimpleNamespace(max_error=lambda: worst, devices=[device])


def _paper_centred_ppa(cells=CELL_NAMES, scale=1.0):
    """A PpaComparison whose library averages equal the paper's
    Figure 5 numbers exactly (optionally scaled)."""
    label = {DeviceVariant.MIV_1CH: "1-ch",
             DeviceVariant.MIV_2CH: "2-ch",
             DeviceVariant.MIV_4CH: "4-ch"}
    results = []
    for cell in cells:
        for variant in DeviceVariant:
            if variant is DeviceVariant.TWO_D:
                delay = power = area = 1.0
            else:
                key = label[variant]
                delay = 1.0 + scale * \
                    FIG5_REFERENCE["delay"][key] / 100.0
                power = 1.0 + scale * \
                    FIG5_REFERENCE["power"][key] / 100.0
                area = 1.0 + scale * \
                    FIG5_REFERENCE["area"][key] / 100.0
            results.append(CellPPA(
                cell_name=cell, variant=variant, delay=delay,
                power=power, area=area, substrate=area))
    return PpaComparison.from_results(results)


def _flow(ppa=None, worst_error: float = 8.0) -> FullFlowResult:
    return FullFlowResult(
        extraction=_fake_extraction(worst_error),
        ppa=ppa if ppa is not None else _paper_centred_ppa(),
        areas=build_area_report())


def test_gate_table_shape():
    gates = paper_gates()
    names = [g.name for g in gates]
    assert len(names) == len(set(names))
    assert sum(1 for n in names if n.startswith("gate.table3.")) == 4
    assert sum(1 for n in names if n.startswith("gate.fig5.")) == 9
    assert sum(1 for n in names if n.startswith("gate.summary.")) == 3
    for gate in gates:
        lo, hi = gate.window
        assert lo < hi


def test_paper_centred_flow_passes_every_gate():
    results = evaluate_gates(_flow())
    failed = [r for r in results if r.status == STATUS_FAIL]
    assert not failed, "\n".join(f"{r.name}: {r.detail}"
                                 for r in failed)
    # Nothing should have been skipped: the library is complete.
    assert all(r.status == STATUS_PASS for r in results)


def test_library_average_gates_skip_on_reduced_flow():
    reduced = _flow(ppa=_paper_centred_ppa(cells=("INV1X1",)))
    results = {r.name: r for r in evaluate_gates(reduced)}
    assert results["gate.fig5.delay.2-ch"].status == STATUS_SKIP
    assert results["gate.summary.pdp_2ch_reduction"].status == \
        STATUS_SKIP
    # Flow-independent gates still run.
    assert results["gate.table3.max_error"].status == STATUS_PASS
    assert results["gate.summary.substrate_area_bound"].status == \
        STATUS_PASS


def test_extraction_error_above_ceiling_fails():
    results = {r.name: r
               for r in evaluate_gates(_flow(worst_error=10.4))}
    assert results["gate.table3.max_error"].status == STATUS_FAIL
    assert results["gate.table3.cv"].status == STATUS_FAIL


def test_ppa_drift_outside_window_fails():
    # Tripling every paper delta pushes the area numbers (and most
    # others) far outside their reproduction windows.
    drifted = _flow(ppa=_paper_centred_ppa(scale=3.0))
    results = {r.name: r for r in evaluate_gates(drifted)}
    assert results["gate.fig5.area.2-ch"].status == STATUS_FAIL
    assert results["gate.fig5.delay.1-ch"].status == STATUS_FAIL


def test_substrate_gate_measures_real_layouts():
    results = {r.name: r for r in evaluate_gates(_flow())}
    gate = results["gate.summary.substrate_area_bound"]
    assert gate.status == STATUS_PASS
    # The real 4-channel top-layer reduction (the paper's "up to 31%").
    assert 20.0 <= gate.measured <= 35.0


def test_gate_windows_contain_measured_baseline():
    """The windows must contain EXPERIMENTS.md's measured numbers —
    otherwise the committed gate table fails on a healthy tree."""
    measured = {  # from EXPERIMENTS.md (measured column)
        "gate.fig5.delay.1-ch": -4.02,
        "gate.fig5.delay.2-ch": -4.29,
        "gate.fig5.delay.4-ch": +1.93,
        "gate.fig5.power.1-ch": -1.54,
        "gate.fig5.power.2-ch": -1.36,
        "gate.fig5.power.4-ch": -0.87,
        "gate.fig5.area.1-ch": -7.62,
        "gate.fig5.area.2-ch": -15.24,
        "gate.fig5.area.4-ch": -14.02,
        "gate.summary.pdp_2ch_reduction": -5.6,
        "gate.summary.substrate_area_bound": 29.0,
    }
    for gate in paper_gates():
        if gate.name in measured:
            lo, hi = gate.window
            assert lo <= measured[gate.name] <= hi, (
                f"{gate.name}: measured {measured[gate.name]} outside "
                f"[{lo}, {hi}]")


@pytest.mark.slow
@pytest.mark.engine
def test_gates_over_reduced_real_flow():
    from repro.verify.suites import gate_checks
    results = gate_checks()
    failed = [r for r in results if r.status == STATUS_FAIL]
    assert not failed, "\n".join(f"{r.name}: {r.detail}"
                                 for r in failed)
    statuses = {r.name: r.status for r in results}
    assert statuses["gate.table3.max_error"] == STATUS_PASS
    assert statuses["gate.summary.substrate_area_bound"] == STATUS_PASS
