"""Failure injection: solvers and builders must fail loudly and
diagnostically, never silently."""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    NetlistError,
    SimulationError,
    SingularMatrixError,
)
from repro.spice import Circuit, Resistor, dc_source, transient
from repro.spice.dcop import solve_dc
from repro.spice.elements.capacitor import Capacitor
from repro.spice.mna import MnaAssembler
from repro.spice.newton import newton_solve


def test_floating_subcircuit_resolved_by_gmin():
    """A subcircuit with no DC path to ground would make the raw MNA
    matrix singular; GMIN pins it to 0 V instead of crashing."""
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    c.add(Resistor("R2", "x", "y", 1e3))
    c.add(Resistor("R3", "x", "y", 1e3))
    op = solve_dc(c)
    assert op.voltage("x") == pytest.approx(0.0, abs=1e-6)
    assert op.voltage("y") == pytest.approx(0.0, abs=1e-6)


def test_voltage_source_loop_is_singular():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(dc_source("V2", "a", "0", 2.0))  # conflicting hard sources
    c.add(Resistor("R1", "a", "0", 1e3))
    with pytest.raises(SingularMatrixError):
        solve_dc(c)


def test_newton_divergence_reports_iterations():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    assembler = MnaAssembler(c)

    class Bouncer:
        """An extra system that keeps the solution moving forever."""

        def __init__(self):
            self.flip = 1.0

        def __call__(self, x, stamper):
            self.flip = -self.flip
            stamper.rhs += self.flip * 10.0

    with pytest.raises(ConvergenceError) as err:
        newton_solve(assembler, np.zeros(assembler.n_unknowns), 0.0,
                     extra_system=Bouncer())
    assert err.value.iterations > 0
    assert np.isfinite(err.value.residual)


def test_transient_requires_valid_method():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    with pytest.raises(SimulationError):
        transient(c, t_stop=1e-9, dt=1e-10, method="rk4")


def test_transient_rejects_bad_times():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "0", 1e3))
    with pytest.raises(SimulationError):
        transient(c, t_stop=-1.0, dt=1e-10)


def test_empty_circuit_rejected_before_solving():
    with pytest.raises(NetlistError):
        solve_dc(Circuit())


def test_capacitor_only_node_survives_via_gmin():
    """A node held only by a capacitor is kept solvable by GMIN."""
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(Resistor("R1", "a", "b", 1e3))
    c.add(Capacitor("C1", "b", "0", 1e-15))
    op = solve_dc(c)
    # GMIN pulls the floating node to the driven value.
    assert op.voltage("b") == pytest.approx(1.0, abs=1e-3)


def test_poisson_failure_diagnostics():
    from repro.tcad.poisson1d import Poisson1D, StackSpec
    solver = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    solver.MAX_ITERATIONS = 2
    with pytest.raises(ConvergenceError) as err:
        solver.solve(1.0)
    assert "v_gate" in str(err.value)


def test_extraction_rejects_mismatched_targets(nmos_targets):
    from repro.extraction.error import relative_errors
    from repro.errors import ExtractionError
    with pytest.raises(ExtractionError):
        relative_errors(np.zeros(3), np.ones(5))
