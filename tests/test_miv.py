"""MIV geometry: sizes, keep-out, parasitics (Figure 1 / Section II)."""

import pytest

from repro.errors import LayoutError
from repro.geometry.miv import MivGeometry, MivRole
from repro.geometry.process import DEFAULT_PROCESS


def test_miv_side_is_25nm():
    miv = MivGeometry(DEFAULT_PROCESS)
    assert miv.side == pytest.approx(25e-9)


def test_outer_side_includes_liner():
    miv = MivGeometry(DEFAULT_PROCESS)
    assert miv.outer_side == pytest.approx(27e-9)


def test_external_contact_keepout_is_m1_spacing():
    miv = MivGeometry(DEFAULT_PROCESS, MivRole.EXTERNAL_CONTACT)
    assert miv.keepout_margin == pytest.approx(24e-9)
    assert miv.footprint_side == pytest.approx(75e-9)


def test_gate_transistor_has_no_keepout():
    miv = MivGeometry(DEFAULT_PROCESS, MivRole.GATE_TRANSISTOR)
    assert miv.keepout_margin == 0.0
    assert miv.footprint_side == pytest.approx(27e-9)


def test_internal_contact_free_area():
    miv = MivGeometry(DEFAULT_PROCESS, MivRole.INTERNAL_CONTACT)
    assert miv.footprint_area == 0.0


def test_external_footprint_area():
    miv = MivGeometry(DEFAULT_PROCESS, MivRole.EXTERNAL_CONTACT)
    assert miv.footprint_area == pytest.approx((75e-9) ** 2)


def test_keepout_dominates_miv_area():
    # The paper's core motivation: keep-out multiplies the MIV footprint.
    external = MivGeometry(DEFAULT_PROCESS, MivRole.EXTERNAL_CONTACT)
    gate = MivGeometry(DEFAULT_PROCESS, MivRole.GATE_TRANSISTOR)
    ratio = external.footprint_side ** 2 / gate.footprint_side ** 2
    assert ratio > 7


def test_footprint_rect_centred():
    miv = MivGeometry(DEFAULT_PROCESS, MivRole.GATE_TRANSISTOR)
    rect = miv.footprint_rect(0.0, 0.0)
    assert rect.x0 == pytest.approx(-miv.footprint_side / 2)
    assert rect.area == pytest.approx(miv.footprint_side ** 2)


def test_resistance_order_of_magnitude():
    # Across a ~200 nm tier span, a 25 nm Cu via is a few ohms — the
    # paper assumes 7 Ohm for cell simulation.
    miv = MivGeometry(DEFAULT_PROCESS)
    r = miv.resistance(250e-9)
    assert 1 < r < 20


def test_resistance_scales_with_span():
    miv = MivGeometry(DEFAULT_PROCESS)
    assert miv.resistance(200e-9) == pytest.approx(
        2 * miv.resistance(100e-9))


def test_resistance_rejects_bad_span():
    with pytest.raises(LayoutError):
        MivGeometry(DEFAULT_PROCESS).resistance(0.0)


def test_liner_capacitance_positive_small():
    miv = MivGeometry(DEFAULT_PROCESS)
    c = miv.liner_capacitance(7e-9)  # film-thickness span
    assert 0 < c < 1e-15
