"""Parity matrix: comparison semantics and a real reduced run."""

from __future__ import annotations

import pytest

from repro.verify.parity import (
    FAST_MODES,
    PARITY_MATRIX,
    ParityCell,
    _compare,
    run_parity_matrix,
)
from repro.verify.report import STATUS_FAIL, STATUS_PASS

pytestmark = pytest.mark.parity


# ----------------------------------------------------------------------
# matrix declaration
# ----------------------------------------------------------------------
def test_matrix_covers_every_mechanism():
    names = [c.name for c in PARITY_MATRIX]
    assert names[0] == "serial-cold"
    assert len(names) == len(set(names))
    assert any(c.max_workers > 1 for c in PARITY_MATRIX)
    assert any(c.warm_from for c in PARITY_MATRIX)
    assert any(c.traced for c in PARITY_MATRIX)
    assert any(c.faults and c.comparison == "bitwise"
               for c in PARITY_MATRIX)
    assert any(c.faults and c.comparison == "tolerance"
               for c in PARITY_MATRIX)
    # Warm cells must name a cell that exists.
    for cell in PARITY_MATRIX:
        if cell.warm_from:
            assert cell.warm_from in names
    assert set(FAST_MODES) <= set(names)
    # Every shipped execution backend appears as an explicit cell: a
    # warm-worker pool pair (cold + replay) and the two-process
    # work-queue chaos drain.
    pool_cells = [c for c in PARITY_MATRIX
                  if c.backend and c.backend.startswith("pool")]
    assert any(not c.warm_from for c in pool_cells)
    assert any(c.warm_from for c in pool_cells)
    assert any(c.backend == "workqueue" and c.chaos == "workqueue"
               for c in PARITY_MATRIX)


def test_unknown_mode_rejected():
    from repro.errors import ReproError
    with pytest.raises(ReproError, match="unknown parity modes"):
        run_parity_matrix(modes=("no-such-mode",))


# ----------------------------------------------------------------------
# comparison semantics
# ----------------------------------------------------------------------
_BITWISE = ParityCell(name="x", description="x")
_TOL = ParityCell(name="x", description="x", comparison="tolerance",
                  tolerance="calibrated")


def test_bitwise_comparison_flags_any_drift():
    base = {"a": 1.0, "b": 2.0}
    ok, note = _compare(_BITWISE, base, {"a": 1.0, "b": 2.0})
    assert ok and "bit-identical" in note
    ok, note = _compare(_BITWISE, base,
                        {"a": 1.0, "b": 2.0 * (1 + 1e-15)})
    assert not ok and "b" in note


def test_tolerance_comparison_accepts_documented_drift():
    base = {"a": 1.0, "b": 2.0}
    ok, note = _compare(_TOL, base, {"a": 1.0 + 5e-4, "b": 2.0})
    assert ok and "calibrated" in note
    ok, note = _compare(_TOL, base, {"a": 1.0 + 5e-3, "b": 2.0})
    assert not ok and "a" in note


def test_comparison_requires_identical_keys():
    ok, note = _compare(_BITWISE, {"a": 1.0}, {"b": 1.0})
    assert not ok and "key mismatch" in note


# ----------------------------------------------------------------------
# real reduced run (cold + warm replay)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.engine
def test_cold_warm_parity_on_reduced_flow(tmp_path):
    results = run_parity_matrix(
        modes=("serial-cold", "serial-warm"), workdir=tmp_path)
    by_name = {r.name: r for r in results}
    assert set(by_name) == {"parity.serial-cold",
                            "parity.serial-warm"}
    failed = [r for r in results if r.status == STATUS_FAIL]
    assert not failed, "\n".join(f"{r.name}: {r.detail}"
                                 for r in failed)
    warm = by_name["parity.serial-warm"]
    assert warm.status == STATUS_PASS
    assert "bit-identical" in warm.detail
    # The warm replay must actually have been warm.
    assert warm.wall_time_s < \
        by_name["parity.serial-cold"].wall_time_s / 2
