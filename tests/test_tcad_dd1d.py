"""Drift-diffusion solver: analytic limits and S/D-resistance validation."""

import numpy as np
import pytest

from repro.constants import Q
from repro.errors import MeshError
from repro.tcad.dd1d import (
    Bar1D,
    DriftDiffusion1D,
    bernoulli,
    uniform_bar,
)


def test_bernoulli_limits():
    assert bernoulli(np.array(0.0)) == pytest.approx(1.0)
    assert bernoulli(np.array(1e-6)) == pytest.approx(1.0 - 5e-7, rel=1e-9)
    # B(x) ~ x e^{-x} for large positive x -> 0; B(-x) ~ x.
    assert bernoulli(np.array(50.0)) < 1e-18
    assert bernoulli(np.array(-50.0)) == pytest.approx(50.0, rel=1e-9)


def test_bernoulli_identity():
    # B(-x) - B(x) = x.
    for x in (0.1, 1.0, 5.0):
        assert (bernoulli(np.array(-x)) -
                bernoulli(np.array(x))) == pytest.approx(x, rel=1e-9)


@pytest.fixture(scope="module")
def solver():
    return DriftDiffusion1D(uniform_bar())


def test_equilibrium_zero_current(solver):
    solution = solver.solve(0.0)
    assert abs(solution.current) < 1e-12


def test_equilibrium_flat_potential_uniform_bar(solver):
    solution = solver.solve(0.0)
    assert np.ptp(solution.psi) < 1e-6  # uniform doping: no band bending


def test_equilibrium_neutrality(solver):
    solution = solver.solve(0.0)
    assert np.allclose(solution.n, solver.nd, rtol=1e-3)


def test_ohmic_conductance_matches_analytic(solver):
    """Low-bias conductance of the bar = q mu N A / L."""
    bar = solver.bar
    expected = (Q * bar.mobility * solver.nd[0] * bar.area /
                bar.length)
    measured = 1.0 / solver.resistance(bias=2e-3)
    assert measured == pytest.approx(expected, rel=0.02)


def test_current_monotone_in_bias(solver):
    biases = [0.01, 0.03, 0.06, 0.1]
    currents = []
    previous = None
    for bias in biases:
        previous = solver.solve(bias, initial=previous)
        currents.append(previous.current)
    assert all(b > a for a, b in zip(currents, currents[1:]))


def test_current_sign_reverses(solver):
    assert solver.solve(0.05).current * solver.solve(-0.05).current < 0


def test_sd_extension_resistance_consistent_with_assumption():
    """The DD-computed resistance of one S/D extension is the same
    order as the silicided sheet-resistance assumption in
    repro.tcad.device (~60 Ohm per side for half of l_src)."""
    from repro.tcad.device import SD_SHEET_RESISTANCE
    # Half of l_src (the current enters through the contact above).
    bar = uniform_bar(length=24e-9)
    dd_resistance = DriftDiffusion1D(bar).resistance()
    assumed = SD_SHEET_RESISTANCE * (24e-9 / 192e-9)
    # The unsilicided doped film is more resistive than the silicided
    # assumption, but within the same couple of orders of magnitude.
    assert assumed / 50 < dd_resistance < assumed * 50


def _long_junction_bar():
    """n+/n-/n+ with a 200 nm n- region, far longer than the ~13 nm
    Debye length of the 1e17 cm^-3 middle, so spill-over is confined to
    the junctions and the bulk analytic limits apply."""
    def profile(x):
        return 1e25 if (x < 100e-9 or x > 300e-9) else 1e23

    return Bar1D(length=400e-9, area=1e-15, doping=profile, n_nodes=161)


def test_n_plus_n_minus_junction_builds_barrier():
    """The long n+/n-/n+ profile shows the full built-in potential dip."""
    solver = DriftDiffusion1D(_long_junction_bar())
    solution = solver.solve(0.0)
    mid = solution.psi[len(solution.psi) // 2]
    edge = solution.psi[2]
    expected_dip = solver.vt * np.log(1e25 / 1e23)
    assert edge - mid == pytest.approx(expected_dip, rel=0.1)


def test_short_n_minus_region_shows_carrier_spillover():
    """With the n- region shorter than a couple of Debye lengths, the
    n+ carriers spill in and the dip shrinks — a genuinely 2-solver
    physical effect the analytic bulk formula misses."""
    def profile(x):
        return 1e25 if (x < 16e-9 or x > 32e-9) else 1e23

    solver = DriftDiffusion1D(Bar1D(length=48e-9, area=1e-15,
                                    doping=profile, n_nodes=97))
    solution = solver.solve(0.0)
    n_mid = solution.n[len(solution.n) // 2]
    assert n_mid > 3e23  # well above the 1e23 doping: spill-over


def test_n_plus_n_minus_dominated_by_low_doped_region():
    bar = _long_junction_bar()
    uniform_high = Bar1D(length=400e-9, area=1e-15,
                         doping=lambda _x: 1e25, n_nodes=161)
    r_junction = DriftDiffusion1D(bar).resistance()
    r_uniform = DriftDiffusion1D(uniform_high).resistance()
    assert r_junction > 10 * r_uniform


def test_validation_against_charge_sheet_philosophy(solver):
    """Doubling the area halves the resistance (sanity of scaling)."""
    bar2 = Bar1D(length=solver.bar.length, area=2 * solver.bar.area,
                 doping=solver.bar.doping, mobility=solver.bar.mobility)
    r1 = solver.resistance()
    r2 = DriftDiffusion1D(bar2).resistance()
    assert r2 == pytest.approx(r1 / 2, rel=0.02)


def test_bar_validation():
    with pytest.raises(MeshError):
        Bar1D(length=0.0, area=1e-15, doping=lambda x: 1e25)
    with pytest.raises(MeshError):
        Bar1D(length=1e-8, area=1e-15, doping=lambda x: 1e25, n_nodes=3)
    with pytest.raises(MeshError):
        DriftDiffusion1D(Bar1D(length=1e-8, area=1e-15,
                               doping=lambda x: 0.0))
