"""DC analyses: operating point, sweeps, transfer curves."""

import numpy as np
import pytest

from repro.errors import NetlistError, SimulationError
from repro.spice import (
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    dc_source,
    solve_dc,
)
from repro.spice.dcsweep import dc_sweep, sweep_voltages, transfer_curve


def test_voltage_divider_exact():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 2.0))
    c.add(Resistor("R1", "in", "mid", 3e3))
    c.add(Resistor("R2", "mid", "0", 1e3))
    op = solve_dc(c)
    assert op.voltage("mid") == pytest.approx(0.5, rel=1e-6)
    assert op.voltage("in") == pytest.approx(2.0)
    assert op.voltage("0") == 0.0


def test_source_current_is_negative_when_sourcing():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "0", 1e3))
    op = solve_dc(c)
    # MNA branch current flows into the + terminal: -1 mA here.
    assert op.current("V1") == pytest.approx(-1e-3, rel=1e-6)


def test_current_source_into_resistor():
    c = Circuit()
    c.add(CurrentSource("I1", "0", "out", 1e-3))
    c.add(Resistor("R1", "out", "0", 2e3))
    op = solve_dc(c)
    assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)


def test_two_sources_superposition():
    c = Circuit()
    c.add(dc_source("V1", "a", "0", 1.0))
    c.add(dc_source("V2", "b", "0", 2.0))
    c.add(Resistor("R1", "a", "mid", 1e3))
    c.add(Resistor("R2", "b", "mid", 1e3))
    c.add(Resistor("R3", "mid", "0", 1e3))
    op = solve_dc(c)
    assert op.voltage("mid") == pytest.approx(1.0, rel=1e-6)


def test_inverter_dc_rails(model_set_2d):
    c = Circuit()
    c.add(dc_source("VDD", "vdd", "0", 1.0))
    c.add(dc_source("VIN", "in", "0", 0.0))
    c.add(Mosfet("MP", "out", "in", "vdd", model_set_2d.pmos))
    c.add(Mosfet("MN", "out", "in", "0", model_set_2d.nmos))
    c.add(Resistor("RL", "out", "0", 1e9))
    op = solve_dc(c)
    assert op.voltage("out") == pytest.approx(1.0, abs=0.02)

    c.element("VIN").waveform = 1.0
    op = solve_dc(c)
    assert op.voltage("out") == pytest.approx(0.0, abs=0.02)


def test_inverter_transfer_curve_monotone(model_set_2d):
    c = Circuit()
    c.add(dc_source("VDD", "vdd", "0", 1.0))
    c.add(dc_source("VIN", "in", "0", 0.0))
    c.add(Mosfet("MP", "out", "in", "vdd", model_set_2d.pmos))
    c.add(Mosfet("MN", "out", "in", "0", model_set_2d.nmos))
    c.add(Resistor("RL", "out", "0", 1e9))
    curve = transfer_curve(c, "VIN", "out", 0.0, 1.0, 21)
    vout = curve["vout"]
    assert np.all(np.diff(vout) <= 1e-6)          # monotone falling
    assert vout[0] > 0.95 and vout[-1] < 0.05     # full swing
    # switching threshold (where vout crosses mid-rail) near mid-rail
    crossing = float(np.interp(-0.5, -vout, curve["vin"]))
    assert 0.3 < crossing < 0.7


def test_dc_sweep_warm_start_consistency():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 0.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Resistor("R2", "out", "0", 1e3))
    ops = dc_sweep(c, "V1", [0.0, 0.5, 1.0])
    assert sweep_voltages(ops, "out")[2] == pytest.approx(0.5, rel=1e-6)
    # sweep restores the original waveform
    assert c.element("V1").value(0.0) == 0.0


def test_dc_sweep_validation():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 0.0))
    c.add(Resistor("R1", "in", "0", 1e3))
    with pytest.raises(SimulationError):
        dc_sweep(c, "V1", [])
    with pytest.raises(SimulationError):
        dc_sweep(c, "R1", [1.0])
    with pytest.raises(NetlistError):
        dc_sweep(c, "VX", [1.0])


def test_transfer_curve_validation(model_set_2d):
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 0.0))
    c.add(Resistor("R1", "in", "0", 1e3))
    with pytest.raises(SimulationError):
        transfer_curve(c, "V1", "in", 0.0, 1.0, 1)
