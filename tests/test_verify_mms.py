"""Convergence-order estimators and the MMS battery."""

from __future__ import annotations

import math

import pytest

from repro.verify.mms import (
    ConvergenceResult,
    dd1d_analytic_resistance,
    dd1d_convergence,
    observed_order,
    poisson1d_convergence,
    poisson2d_mms,
    transient_order,
)

pytestmark = pytest.mark.mms


# ----------------------------------------------------------------------
# the estimator itself
# ----------------------------------------------------------------------
def test_observed_order_recovers_known_slopes():
    # Second-order ladder: error / 4 per refinement.
    second = [1.0, 0.25, 0.0625]
    assert observed_order(second) == pytest.approx([2.0, 2.0])
    # First-order ladder with refinement factor 3.
    first = [0.9, 0.3, 0.1]
    assert observed_order(first, refinement=3.0) == \
        pytest.approx([1.0, 1.0])


def test_observed_order_handles_exact_solutions():
    assert observed_order([1e-3, 0.0]) == [float("inf")]
    assert observed_order([0.0, 1e-3]) == [0.0]


def test_convergence_result_verdict():
    good = ConvergenceResult(name="x", resolutions=[1, 2],
                             errors=[1.0, 0.25], observed=2.0,
                             bounds=(1.8, 2.2))
    assert good.passed
    bad = ConvergenceResult(name="x", resolutions=[1, 2],
                            errors=[1.0, 0.5], observed=1.0,
                            bounds=(1.8, 2.2))
    assert not bad.passed
    assert "1.00" in bad.render()


# ----------------------------------------------------------------------
# the physics ladders (real solves)
# ----------------------------------------------------------------------
def test_poisson2d_manufactured_solution_is_second_order():
    result = poisson2d_mms(sizes=(9, 17, 33))
    assert result.passed, result.render()
    assert result.observed == pytest.approx(2.0, abs=0.2)
    # The error must actually shrink, not just order-match.
    assert result.errors[-1] < result.errors[0] / 8


def test_poisson1d_richardson_order_pinned():
    result = poisson1d_convergence(factors=(1, 2, 4, 8))
    assert result.passed, result.render()
    # Interface-limited first order (documented in the docstring):
    # a jump to clean second order means the interface quadrature
    # changed and every golden needs deliberate regeneration.
    assert result.observed < 1.8


def test_dd1d_grid_convergence():
    result = dd1d_convergence(nodes=(41, 81, 161))
    assert result.passed, result.render()
    assert result.errors[-1] < result.errors[0]


def test_dd1d_matches_analytic_resistance():
    result = dd1d_analytic_resistance()
    assert result.passed, result.render()
    assert result.observed < 2e-2


def test_transient_trapezoidal_is_second_order():
    result = transient_order("trap")
    assert result.passed, result.render()


@pytest.mark.slow
def test_transient_backward_euler_is_first_order():
    result = transient_order("be")
    assert result.passed, result.render()
    # BE must be distinctly *below* second order — if it matched trap
    # the method switch is being ignored.
    assert result.observed < 1.6


@pytest.mark.slow
def test_full_ladders_agree_with_fast_ones():
    from repro.verify.mms import all_mms_checks
    fast = {r.name: r for r in all_mms_checks(fast=True)}
    full = {r.name: r for r in all_mms_checks(fast=False)}
    assert set(fast) == set(full)
    for name, result in full.items():
        assert result.passed, result.render()
        if math.isfinite(result.observed) and \
                math.isfinite(fast[name].observed):
            assert result.observed == pytest.approx(
                fast[name].observed, abs=0.6)
