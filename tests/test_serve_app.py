"""The service app in-process: routing, admission, deadlines,
coalescing and drain — a stub runner stands in for the real flow, so
these are fast and deterministic (marker ``serve``)."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.engine.durability import CancellationToken
from repro.errors import DeadlineExceeded, RunInterrupted, ServiceDraining
from repro.serve import ServeApp, ServeConfig
from repro.serve.handlers import FlowRunner, parse_characterize

pytestmark = pytest.mark.serve


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
class StubRunner:
    """Contract-compatible stand-in for :class:`FlowRunner`."""

    def __init__(self, delay: float = 0.0, gate: threading.Event = None,
                 degraded: bool = False):
        self.delay = delay
        self.gate = gate
        self.degraded = degraded
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request, tenant, token):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10.0), "stub gate never opened"
        deadline = time.monotonic() + self.delay
        while time.monotonic() < deadline:
            if token.is_set():
                break
            time.sleep(0.005)
        if token.expired:
            raise DeadlineExceeded(
                f"deadline expired before run {request.run_id} "
                f"completed", run_id=request.run_id)
        if token.is_set():
            raise ServiceDraining(
                f"draining; run {request.run_id} resumes on retry")
        return {"status": "completed", "run_id": request.run_id,
                "tenant": tenant.name, "resumed": 0,
                "degraded": self.degraded}


def make_config(tmp_path, **overrides) -> ServeConfig:
    settings = dict(cache_dir=tmp_path, queue_limit=4, workers=2,
                    tenant_rps=1000.0, tenant_burst=1000.0, grace=1.0)
    settings.update(overrides)
    return ServeConfig.from_env(**settings)


async def http(port, method, path, body=None, headers=None,
               timeout=15.0):
    """Raw-socket JSON request against the app under test."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    lines = [f"{method} {path} HTTP/1.1", "Host: test",
             f"Content-Length: {len(data)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout)
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    header_lines = head.decode("latin-1").split("\r\n")
    status = int(header_lines[0].split()[1])
    resp_headers = {}
    for line in header_lines[1:]:
        name, _, value = line.partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    return status, json.loads(payload), resp_headers


def with_app(config, runner, scenario):
    """Run ``scenario(app, port)`` against a live in-process server."""
    async def main():
        app = ServeApp(config, runner=runner)
        server = await asyncio.start_server(
            app.handle_connection, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            async with server:
                await scenario(app, port)
        finally:
            app.executor.shutdown(wait=True, cancel_futures=True)
    asyncio.run(main())


# ----------------------------------------------------------------------
# routing and plumbing
# ----------------------------------------------------------------------
def test_health_ready_metrics_routes(tmp_path):
    async def scenario(app, port):
        status, body, _ = await http(port, "GET", "/healthz")
        assert (status, body) == (200, {"status": "ok"})
        status, body, _ = await http(port, "GET", "/readyz")
        assert (status, body) == (200, {"status": "ok"})
        status, body, _ = await http(port, "GET", "/metrics")
        assert status == 200
        assert body["health"] == "ok"
        assert body["admission"]["limit"] == 4
        status, _, _ = await http(port, "GET", "/nope")
        assert status == 404
        status, _, _ = await http(port, "GET", "/characterize")
        assert status == 405

    with_app(make_config(tmp_path), StubRunner(), scenario)


def test_characterize_happy_path(tmp_path):
    runner = StubRunner()

    async def scenario(app, port):
        status, body, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]})
        assert status == 200
        assert body["status"] == "completed"
        assert body["run_id"].startswith("req-")
        assert body["tenant"] == "public"
        assert body["degraded"] is False
        status, metrics, _ = await http(port, "GET", "/metrics")
        assert metrics["metrics"]["serve.requests_total"]["value"] == 1
        assert metrics["metrics"]["serve.responses_2xx"]["value"] == 1

    with_app(make_config(tmp_path), runner, scenario)
    assert runner.calls == 1


def test_invalid_bodies_get_400_with_error_code(tmp_path):
    async def scenario(app, port):
        for body in (b"not json", b'["list"]'):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"POST /characterize HTTP/1.1\r\nHost: t\r\n"
                         + f"Content-Length: {len(body)}\r\n\r\n".encode()
                         + body)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            assert b"serve.bad_request" in raw
        status, payload, _ = await http(
            port, "POST", "/characterize", {"cells": ["NOPE"]})
        assert status == 400
        assert payload["error"]["code"] == "serve.bad_request"
        status, payload, _ = await http(
            port, "POST", "/characterize", {"unexpected": 1})
        assert status == 400

    with_app(make_config(tmp_path), StubRunner(), scenario)


def test_tenant_header_validation_and_isolation(tmp_path):
    async def scenario(app, port):
        status, body, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]},
            headers={"X-Repro-Tenant": "alice"})
        assert status == 200 and body["tenant"] == "alice"
        status, payload, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]},
            headers={"X-Repro-Tenant": "../escape"})
        assert status == 400
        assert payload["error"]["code"] == "serve.bad_request"

    with_app(make_config(tmp_path), StubRunner(), scenario)
    import os
    assert os.path.isdir(os.path.join(tmp_path, "tenants", "alice"))
    assert not os.path.exists(os.path.join(tmp_path, "escape"))


# ----------------------------------------------------------------------
# admission and quotas
# ----------------------------------------------------------------------
def test_queue_full_sheds_with_retry_after(tmp_path):
    gate = threading.Event()
    runner = StubRunner(gate=gate)

    async def scenario(app, port):
        # Occupy the single queue slot (distinct body: no coalescing).
        blocked = asyncio.ensure_future(http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]}))
        for _ in range(200):
            if app.admission.inflight:
                break
            await asyncio.sleep(0.01)
        assert app.admission.inflight == 1
        status, payload, headers = await http(
            port, "POST", "/characterize", {"cells": ["AND2X1"]})
        assert status == 429
        assert payload["error"]["code"] == "serve.overloaded"
        assert payload["error"]["retryable"] is True
        assert int(headers["retry-after"]) >= 1
        # /healthz answers while the queue is full.
        status, _, _ = await http(port, "GET", "/healthz")
        assert status == 200
        gate.set()
        status, _, _ = await blocked
        assert status == 200

    with_app(make_config(tmp_path, queue_limit=1, workers=1), runner,
             scenario)


def test_quota_exhaustion_is_per_tenant(tmp_path):
    async def scenario(app, port):
        status, _, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]},
            headers={"X-Repro-Tenant": "alice"})
        assert status == 200
        status, payload, headers = await http(
            port, "POST", "/characterize", {"cells": ["AND2X1"]},
            headers={"X-Repro-Tenant": "alice"})
        assert status == 429
        assert payload["error"]["code"] == "serve.quota_exceeded"
        assert int(headers["retry-after"]) >= 1
        status, _, _ = await http(
            port, "POST", "/characterize", {"cells": ["AND2X1"]},
            headers={"X-Repro-Tenant": "bob"})
        assert status == 200

    with_app(make_config(tmp_path, tenant_rps=0.001, tenant_burst=1.0),
             StubRunner(), scenario)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_deadline_header_maps_to_504_with_resumable_run_id(tmp_path):
    runner = StubRunner(delay=30.0)

    async def scenario(app, port):
        status, payload, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]},
            headers={"X-Repro-Deadline": "0.05"})
        assert status == 504
        assert payload["error"]["code"] == "serve.deadline_exceeded"
        assert payload["error"]["retryable"] is True
        expected = parse_characterize({"cells": ["INV1X1"]}).run_id
        assert payload["error"]["run_id"] == expected

    with_app(make_config(tmp_path), runner, scenario)


def test_invalid_deadline_header_is_400(tmp_path):
    async def scenario(app, port):
        for bad in ("nan", "-1", "soon"):
            status, payload, _ = await http(
                port, "POST", "/characterize", {"cells": ["INV1X1"]},
                headers={"X-Repro-Deadline": bad})
            assert status == 400
            assert payload["error"]["code"] == "serve.bad_request"

    with_app(make_config(tmp_path), StubRunner(), scenario)


def test_deadline_is_clamped_to_the_service_maximum(tmp_path):
    from repro.serve.deadlines import parse_deadline

    assert parse_deadline("7200", 0.0, 3600.0) == 3600.0
    assert parse_deadline(None, 30.0, 3600.0) == 30.0
    assert parse_deadline(None, 0.0, 3600.0) is None
    assert parse_deadline("5", 30.0, 3600.0) == 5.0


def test_flow_runner_maps_interruptions():
    request = parse_characterize({"cells": ["INV1X1"]})
    token = CancellationToken(grace=1.0)
    token.set_deadline(0.0)
    exc = FlowRunner._interruption_error(
        RunInterrupted("stopped", run_id="req-x"), request, token)
    assert isinstance(exc, DeadlineExceeded) and exc.run_id == "req-x"
    drained = CancellationToken(grace=1.0)
    drained.request(reason="drain")
    exc = FlowRunner._interruption_error(
        RunInterrupted("stopped"), request, drained)
    assert isinstance(exc, ServiceDraining)


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
def test_identical_concurrent_requests_coalesce(tmp_path):
    gate = threading.Event()
    runner = StubRunner(gate=gate)

    async def scenario(app, port):
        body = {"cells": ["INV1X1"]}
        leader = asyncio.ensure_future(
            http(port, "POST", "/characterize", body))
        for _ in range(200):
            if app._inflight:
                break
            await asyncio.sleep(0.01)
        followers = [asyncio.ensure_future(
            http(port, "POST", "/characterize", body)) for _ in range(3)]
        await asyncio.sleep(0.05)
        gate.set()
        responses = [await leader] + [await f for f in followers]
        assert all(status == 200 for status, _, _ in responses)
        run_ids = {payload["run_id"] for _, payload, _ in responses}
        assert len(run_ids) == 1
        coalesced = [payload for _, payload, _ in responses
                     if payload.get("coalesced")]
        assert len(coalesced) == 3
        _, metrics, _ = await http(port, "GET", "/metrics")
        assert metrics["metrics"]["serve.coalesced_total"]["value"] == 3

    with_app(make_config(tmp_path), runner, scenario)
    assert runner.calls == 1  # one computation for four requests


def test_different_requests_do_not_coalesce(tmp_path):
    runner = StubRunner()

    async def scenario(app, port):
        for cells in (["INV1X1"], ["AND2X1"]):
            status, _, _ = await http(
                port, "POST", "/characterize", {"cells": cells})
            assert status == 200

    with_app(make_config(tmp_path), runner, scenario)
    assert runner.calls == 2


# ----------------------------------------------------------------------
# degradation ladder and drain
# ----------------------------------------------------------------------
def test_degraded_runs_are_marked(tmp_path):
    runner = StubRunner(degraded=True)

    async def scenario(app, port):
        status, body, _ = await http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]})
        assert status == 200 and body["degraded"] is True
        assert app.health() == "degraded"
        status, body, _ = await http(port, "GET", "/healthz")
        assert body["status"] == "degraded"
        status, _, _ = await http(port, "GET", "/readyz")
        assert status == 200  # degraded still accepts work

    with_app(make_config(tmp_path), runner, scenario)


def test_sustained_shedding_degrades_health(tmp_path):
    from repro.serve.config import SHED_DEGRADE_THRESHOLD

    gate = threading.Event()
    runner = StubRunner(gate=gate)

    async def scenario(app, port):
        blocked = asyncio.ensure_future(http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]}))
        for _ in range(200):
            if app.admission.inflight:
                break
            await asyncio.sleep(0.01)
        cells = ["AND2X1", "AND3X1", "AOI2X1", "MUX2X1", "NAND2X1",
                 "NAND3X1", "NOR2X1", "NOR3X1", "OAI2X1", "OR2X1"]
        for i in range(SHED_DEGRADE_THRESHOLD):
            status, _, _ = await http(
                port, "POST", "/characterize",
                {"cells": [cells[i % len(cells)]]})
            assert status == 429
        status, body, _ = await http(port, "GET", "/healthz")
        assert body["status"] == "degraded"
        gate.set()
        await blocked

    with_app(make_config(tmp_path, queue_limit=1, workers=1), runner,
             scenario)


def test_drain_rejects_new_work_and_finishes_in_flight(tmp_path):
    gate = threading.Event()
    runner = StubRunner(gate=gate)

    async def scenario(app, port):
        in_flight = asyncio.ensure_future(http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]}))
        for _ in range(200):
            if app.admission.inflight:
                break
            await asyncio.sleep(0.01)
        app.begin_drain()
        status, body, _ = await http(port, "GET", "/healthz")
        assert (status, body["status"]) == (200, "draining")
        status, _, _ = await http(port, "GET", "/readyz")
        assert status == 503
        status, payload, _ = await http(
            port, "POST", "/characterize", {"cells": ["AND2X1"]})
        assert status == 503
        assert payload["error"]["code"] == "serve.draining"
        gate.set()
        status, _, _ = await in_flight
        assert status == 200  # admitted work still answers
        await app._drain()

    with_app(make_config(tmp_path), runner, scenario)


def test_drain_cancels_stragglers_after_grace(tmp_path):
    runner = StubRunner(delay=60.0)

    async def scenario(app, port):
        in_flight = asyncio.ensure_future(http(
            port, "POST", "/characterize", {"cells": ["INV1X1"]}))
        for _ in range(200):
            if app.admission.inflight:
                break
            await asyncio.sleep(0.01)
        app.begin_drain()
        await app._drain()  # grace 0.2s, then tokens are cancelled
        status, payload, _ = await in_flight
        assert status == 503
        assert payload["error"]["code"] == "serve.draining"

    with_app(make_config(tmp_path, grace=0.2), runner, scenario)
