"""Every 1.1 call shape keeps working behind a DeprecationWarning.

The suite-wide ``filterwarnings = error::DeprecationWarning`` turns any
*unintentional* use of the old API into a failure; these tests are the
one place the shims are exercised on purpose, each asserting both the
warning and unchanged behaviour.  Cheap argument-plumbing paths only —
nothing here runs a simulation (the fast graph-construction layer is
deep enough to prove the values landed).
"""

import pytest

import repro
from repro.cells.netlist_builder import Parasitics
from repro.deprecation import absorb_positional, absorb_renamed
from repro.engine import default_engine
from repro.ppa.runner import DEFAULT_DT, PpaRunner


# ----------------------------------------------------------------------
# the shim helpers themselves
# ----------------------------------------------------------------------
def test_absorb_positional_maps_legacy_order():
    with pytest.warns(DeprecationWarning, match="positional arguments"):
        kwargs = absorb_positional("f", (1, 2), ("a", "b", "c"),
                                   {"a": None, "b": None, "c": "kept"})
    assert kwargs == {"a": 1, "b": 2, "c": "kept"}


def test_absorb_positional_rejects_overflow():
    with pytest.raises(TypeError, match="at most 1"):
        absorb_positional("f", (1, 2), ("a",), {"a": None})


def test_absorb_positional_is_silent_without_args():
    kwargs = absorb_positional("f", (), ("a",), {"a": None})
    assert kwargs == {"a": None}


def test_absorb_renamed_prefers_new_spelling():
    with pytest.warns(DeprecationWarning, match="old="):
        assert absorb_renamed("f", "old", 1, "new", 2) == 2
    with pytest.warns(DeprecationWarning, match="old="):
        assert absorb_renamed("f", "old", 1, "new", None) == 1
    assert absorb_renamed("f", "old", None, "new", 3) == 3


# ----------------------------------------------------------------------
# PpaRunner
# ----------------------------------------------------------------------
def test_engineless_ppa_runner_warns_but_works():
    with pytest.warns(DeprecationWarning, match="engine-less"):
        runner = PpaRunner()
    assert runner.parasitics == Parasitics()
    assert runner.dt == DEFAULT_DT
    assert runner._engine() is default_engine()


def test_positional_ppa_runner_warns_and_maps():
    parasitics = Parasitics(c_load=2e-15)
    engine = default_engine()
    with pytest.warns(DeprecationWarning, match="positional arguments"):
        runner = PpaRunner(parasitics, 1e-11, None, engine)
    assert runner.parasitics == parasitics
    assert runner.dt == 1e-11
    assert runner.engine is engine


class _StubEngine:
    """Records the submitted graph, then aborts before any simulation."""

    def __init__(self):
        self.tasks = None

    def run(self, tasks):
        self.tasks = list(tasks)
        raise RuntimeError("stop before simulating")


def test_ppa_runner_sweep_cell_names_warns():
    stub = _StubEngine()
    runner = PpaRunner(engine=stub)
    with pytest.warns(DeprecationWarning, match="cell_names="):
        with pytest.raises(RuntimeError, match="stop before"):
            runner.sweep(cell_names=["INV1X1"])
    assert any("INV1X1" in task.id for task in stub.tasks)


# ----------------------------------------------------------------------
# quick_ppa / flows
# ----------------------------------------------------------------------
def _stop_engine_runs(monkeypatch):
    """Abort any engine run before simulation work starts."""

    def fake_run(self, tasks):
        raise RuntimeError("stop before simulating")

    monkeypatch.setattr(repro.Engine, "run", fake_run)


def test_quick_ppa_positional_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="positional arguments"):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.quick_ppa(["INV1X1"])


def test_quick_ppa_cell_names_keyword_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="cell_names="):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.quick_ppa(cell_names=["INV1X1"])


def test_run_full_flow_positional_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="positional arguments"):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.run_full_flow(["INV1X1"])


def test_run_full_flow_cell_names_keyword_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="cell_names="):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.run_full_flow(cell_names=["INV1X1"])


def test_run_full_flow_max_workers_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="max_workers="):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.run_full_flow(cells=["INV1X1"], max_workers=1)


def test_run_extractions_positional_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    from repro.geometry.transistor_layout import ChannelCount
    with pytest.warns(DeprecationWarning, match="positional arguments"):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.run_extractions([ChannelCount.TRADITIONAL])


def test_run_extractions_max_workers_warns(monkeypatch):
    _stop_engine_runs(monkeypatch)
    with pytest.warns(DeprecationWarning, match="max_workers="):
        with pytest.raises(RuntimeError, match="stop before"):
            repro.run_extractions(max_workers=1)


# ----------------------------------------------------------------------
# the new shapes stay silent
# ----------------------------------------------------------------------
def test_new_keyword_shapes_do_not_warn(monkeypatch, recwarn):
    _stop_engine_runs(monkeypatch)
    with pytest.raises(RuntimeError, match="stop before"):
        repro.quick_ppa(cells=["INV1X1"])
    with pytest.raises(RuntimeError, match="stop before"):
        repro.run_full_flow(cells=["INV1X1"], engine=default_engine())
    with pytest.raises(RuntimeError, match="stop before"):
        repro.run_extractions(engine=default_engine())
    runner = PpaRunner(engine=default_engine())
    with pytest.raises(RuntimeError, match="stop before"):
        runner.sweep(cells=["INV1X1"])
    assert not [w for w in recwarn
                if issubclass(w.category, DeprecationWarning)]


# ----------------------------------------------------------------------
# Engine(max_workers=) / REPRO_MAX_WORKERS -> backends (1.5)
# ----------------------------------------------------------------------
def test_engine_max_workers_warns_but_works():
    from repro.engine import SerialBackend
    with pytest.warns(DeprecationWarning, match="backend="):
        engine = repro.Engine(max_workers=1, use_disk=False)
    assert isinstance(engine.backend, SerialBackend)
    assert engine.max_workers == 1


def test_engine_max_workers_multi_maps_to_pool():
    from repro.engine import PoolBackend
    with pytest.warns(DeprecationWarning, match="backend="):
        engine = repro.Engine(max_workers=3, use_disk=False)
    try:
        assert isinstance(engine.backend, PoolBackend)
        assert engine.max_workers == 3
    finally:
        engine.shutdown()


def test_repro_max_workers_env_warns(monkeypatch):
    from repro.engine import SerialBackend
    monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
    with pytest.warns(DeprecationWarning, match="REPRO_BACKEND"):
        engine = repro.Engine(use_disk=False)
    assert isinstance(engine.backend, SerialBackend)


def test_explicit_backend_silences_max_workers_env(monkeypatch, recwarn):
    monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
    engine = repro.Engine(backend="serial", use_disk=False)
    assert engine.max_workers == 1
    assert not [w for w in recwarn
                if issubclass(w.category, DeprecationWarning)]


def test_backend_env_selects_backend(monkeypatch, recwarn):
    from repro.engine import SerialBackend
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    engine = repro.Engine(use_disk=False)
    assert isinstance(engine.backend, SerialBackend)
    assert not [w for w in recwarn
                if issubclass(w.category, DeprecationWarning)]


def test_version_bumped():
    assert repro.__version__ == "1.8.0"
