"""SPICE deck parsing / serialisation round-trips."""

import pytest

from repro.cells.library import get_cell
from repro.cells.netlist_builder import build_cell_circuit
from repro.errors import NetlistError
from repro.spice import Circuit, Resistor, dc_source, solve_dc
from repro.spice.elements.vsource import PulseSpec, PwlSpec
from repro.spice.parser import (
    format_value,
    parse_deck,
    parse_value,
    serialize_circuit,
)


# ---------------------------------------------------------------------------
# values
# ---------------------------------------------------------------------------
def test_parse_plain_numbers():
    assert parse_value("100") == 100.0
    assert parse_value("-2.5") == -2.5
    assert parse_value("1e-9") == 1e-9


def test_parse_suffixes():
    assert parse_value("1f") == pytest.approx(1e-15)
    assert parse_value("25n") == pytest.approx(25e-9)
    assert parse_value("3.3u") == pytest.approx(3.3e-6)
    assert parse_value("2k") == pytest.approx(2e3)
    assert parse_value("1MEG") == pytest.approx(1e6)
    assert parse_value("7m") == pytest.approx(7e-3)


def test_parse_bad_value():
    with pytest.raises(NetlistError):
        parse_value("abc")
    with pytest.raises(NetlistError):
        parse_value("1x")


def test_format_value_roundtrip():
    for value in (7.0, 3.0, 1e-15, 25e-9, 2.4e-9, 1e6, 0.0):
        assert parse_value(format_value(value)) == pytest.approx(value)


# ---------------------------------------------------------------------------
# decks
# ---------------------------------------------------------------------------
def rc_deck():
    return """
* test rc
V1 in 0 PULSE(0 1 100p 10p 10p 1n 2.4n)
R1 in out 1k
C1 out 0 1f
.end
"""


def test_parse_rc_deck():
    circuit = parse_deck(rc_deck())
    assert len(circuit) == 3
    assert circuit.element("R1").resistance == pytest.approx(1e3)
    assert circuit.element("C1").capacitance == pytest.approx(1e-15)
    source = circuit.element("V1")
    assert isinstance(source.waveform, PulseSpec)
    assert source.waveform.period == pytest.approx(2.4e-9)


def test_parse_dc_and_pwl_sources():
    deck = """
Vdd vdd 0 DC 1.0
Vin in 0 PWL(0 0 1n 1 2n 0)
R1 vdd in 1k
.end
"""
    circuit = parse_deck(deck)
    assert circuit.element("Vdd").value(0.0) == 1.0
    vin = circuit.element("Vin")
    assert isinstance(vin.waveform, PwlSpec)
    assert vin.value(0.5e-9) == pytest.approx(0.5)


def test_comments_and_continuations():
    deck = """
* full-line comment
R1 a 0 1k $ trailing comment
R2 a
+ 0 2k
V1 a 0 DC 1
.end
"""
    circuit = parse_deck(deck)
    assert circuit.element("R2").resistance == pytest.approx(2e3)


def test_parse_errors():
    with pytest.raises(NetlistError):
        parse_deck("")
    with pytest.raises(NetlistError):
        parse_deck("Q1 a b c model\n.end\n")
    with pytest.raises(NetlistError):
        parse_deck("M1 d g s missing_model\n.end\n")
    with pytest.raises(NetlistError):
        parse_deck("V1 a 0 PULSE(0 1)\n.end\n")


def test_serialize_simple_circuit():
    c = Circuit("div")
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Resistor("R2", "out", "0", 1e3))
    deck = serialize_circuit(c)
    assert "V1 in 0 DC 1" in deck
    assert deck.strip().endswith(".end")


def test_roundtrip_preserves_dc_solution():
    c = Circuit("div")
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "out", 3e3))
    c.add(Resistor("R2", "out", "0", 1e3))
    again = parse_deck(serialize_circuit(c))
    assert solve_dc(again).voltage("out") == pytest.approx(0.25, rel=1e-6)


def test_cell_netlist_roundtrip(model_set_2d):
    """A full generated cell deck survives serialise -> parse -> solve."""
    netlist = build_cell_circuit(get_cell("NAND2X1"), model_set_2d)
    netlist.circuit.element("Va").waveform = 1.0
    netlist.circuit.element("Vb").waveform = 1.0
    deck = serialize_circuit(netlist.circuit)
    assert ".model" in deck

    again = parse_deck(deck)
    assert len(again) == len(netlist.circuit)
    op_orig = solve_dc(netlist.circuit)
    op_again = solve_dc(again)
    assert op_again.voltage("out") == pytest.approx(
        op_orig.voltage("out"), abs=1e-6)
