""".model card render / parse round-trip."""

import pytest

from repro.compact.cards import (
    card_roundtrip_equal,
    parse_model_card,
    render_model_card,
)
from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.errors import ExtractionError
from repro.tcad.device import Polarity


@pytest.fixture(scope="module")
def model():
    params = default_parameters().updated({"VTH0": 0.42, "U0": 0.037,
                                           "VSAT": 1.1e5})
    return BsimSoi4Lite(params=params, polarity=Polarity.NMOS,
                        name="nch_test")


def test_render_contains_header(model):
    card = render_model_card(model)
    assert card.startswith(".model nch_test nmos")
    assert "level=70" in card
    assert "vth0=0.42" in card


def test_roundtrip_preserves_parameters(model):
    parsed = parse_model_card(render_model_card(model))
    equal, mismatch = card_roundtrip_equal(model, parsed, tol=1e-5)
    assert equal, f"mismatch on {mismatch}"
    assert parsed.name == "nch_test"


def test_roundtrip_preserves_polarity():
    pmodel = BsimSoi4Lite(params=default_parameters(),
                          polarity=Polarity.PMOS, name="pch")
    parsed = parse_model_card(render_model_card(pmodel))
    assert parsed.polarity is Polarity.PMOS


def test_roundtrip_preserves_geometry(model):
    parsed = parse_model_card(render_model_card(model))
    assert parsed.width == pytest.approx(model.width)
    assert parsed.length == pytest.approx(model.length)


def test_roundtrip_model_behaves_identically(model):
    parsed = parse_model_card(render_model_card(model))
    assert parsed.ids(0.9, 0.7) == pytest.approx(model.ids(0.9, 0.7),
                                                 rel=1e-5)


def test_parse_rejects_garbage():
    with pytest.raises(ExtractionError):
        parse_model_card("")
    with pytest.raises(ExtractionError):
        parse_model_card("not a model card")
    with pytest.raises(ExtractionError):
        parse_model_card(".model x nmos\nbroken line")


def test_detect_parameter_difference(model):
    other = model.with_params({"VTH0": 0.5})
    equal, mismatch = card_roundtrip_equal(model, other)
    assert not equal
    assert mismatch == "VTH0"
