"""Server chaos: real ``python -m repro.serve`` subprocesses under
SIGKILL, overload floods, coalescing clients and SIGTERM drains.

The service contract worth having survives a real ``kill -9`` of the
server mid-request: the client's plain retry (same body, no
bookkeeping) lands on the same deterministic run id, resumes the same
journal, recomputes only what the kill lost, and returns results
bit-identical to a serial baseline.  Marked ``serve``, ``chaos`` and
``slow``; CI runs these in the dedicated ``serve`` job.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.durability import load_run
from repro.resilience import chaos
from repro.serve.handlers import parse_characterize

pytestmark = [pytest.mark.serve, pytest.mark.chaos, pytest.mark.slow]

#: The minimal flow (1 cell x 1 variant x 1 extraction) is 6 tasks.
MINIMAL_TASKS = 6

MINIMAL_BODY = {"cells": ["INV1X1"], "variants": ["2D"],
                "extraction_variants": ["TRADITIONAL"]}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def tenant_cache(cache_dir, tenant: str = "public") -> str:
    return os.path.join(str(cache_dir), "tenants", tenant)


def journal_keys(cache_dir, run_id: str) -> set:
    """``(task_id, key)`` fingerprints of a run's completed tasks."""
    state = load_run(cache_dir, run_id)
    return {(tid, rec["key"]) for tid, rec in state.done().items()}


def post(port: int, body: dict, headers: dict = None, timeout=120.0):
    return chaos.http_request(
        "POST", f"http://127.0.0.1:{port}/characterize", body=body,
        headers=headers, timeout=timeout)


def test_sigkill_mid_request_retry_is_bit_identical(tmp_path):
    """kill -9 the server mid-run; a restarted server + client retry
    completes without recomputing journalled work, bit-identical to a
    serial baseline."""
    # Serial baseline in its own cache: the ground-truth fingerprints.
    baseline_cache = tmp_path / "baseline"
    baseline_env = chaos.repro_env(baseline_cache)
    outcome = chaos.run_flow(
        chaos.flow_argv(run_id="baseline", workers=1), baseline_env)
    assert outcome.returncode == 0, outcome.stderr
    baseline = journal_keys(baseline_cache, "baseline")
    assert len(baseline) == MINIMAL_TASKS

    server_cache = tmp_path / "server"
    env = chaos.repro_env(server_cache)
    run_id = parse_characterize(MINIMAL_BODY).run_id
    port = free_port()

    proc = chaos.spawn_server(chaos.serve_argv(port, workers=1), env)
    try:
        assert chaos.wait_for_server(port, proc=proc), "server not up"
        # Fire the request from a thread (it will die with the server).
        threading.Thread(target=lambda: _swallow(post, port),
                         daemon=True).start()
        assert chaos.wait_for_journal(
            tenant_cache(server_cache), run_id, min_tasks=2, proc=proc)
        os.killpg(proc.pid, signal.SIGKILL)
        assert chaos.finish(proc).killed
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)

    progressed = len(journal_keys(tenant_cache(server_cache), run_id))
    assert progressed <= MINIMAL_TASKS

    # Restart and retry the identical request: server-side resume.
    proc = chaos.spawn_server(chaos.serve_argv(port, workers=1), env)
    try:
        assert chaos.wait_for_server(port, proc=proc)
        status, payload, _ = post(port, MINIMAL_BODY)
        assert status == 200, payload
        assert payload["run_id"] == run_id
        assert payload["resumed"] >= 1
        summary = payload["manifest"]
        assert summary["tasks"] == MINIMAL_TASKS
        # Completed stages were NOT recomputed: the journalled tasks
        # come back as cache hits.
        assert summary["cache_hits"] >= progressed
        proc.send_signal(signal.SIGTERM)
        assert chaos.finish(proc).returncode == 0
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)

    # Bit-identical: same content-addressed (task, fingerprint) set as
    # the serial baseline computed in a different cache.
    assert journal_keys(tenant_cache(server_cache), run_id) == baseline


def _swallow(fn, *args):
    try:
        fn(*args, MINIMAL_BODY)
    except OSError:
        pass


def test_overload_flood_sheds_while_healthz_answers(tmp_path):
    """Flood a queue-of-1 server: sheds answer 429 + Retry-After with
    the taxonomy code, /healthz stays responsive, nothing is dropped."""
    env = chaos.repro_env(tmp_path)
    port = free_port()
    proc = chaos.spawn_server(
        chaos.serve_argv(port, queue=1, workers=1, tenant_rps=1000,
                         tenant_burst=1000), env)
    try:
        assert chaos.wait_for_server(port, proc=proc)
        # Distinct bodies so the flood cannot coalesce.
        floods = [dict(MINIMAL_BODY, cells=[cell]) for cell in
                  ("INV1X1", "AND2X1", "NOR2X1", "XOR2X1")]
        results = [None] * len(floods)

        def fire(i):
            results[i] = post(port, floods[i])

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(len(floods))]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # let the first request win the slot

        # While the flood is in flight, liveness answers fast.
        t0 = time.monotonic()
        status, body, _ = chaos.http_request(
            "GET", f"http://127.0.0.1:{port}/healthz", timeout=5.0)
        assert status == 200 and time.monotonic() - t0 < 2.0

        for thread in threads:
            thread.join(timeout=120.0)

        statuses = sorted(r[0] for r in results)
        # Zero silently-dropped: every request got a terminal answer.
        assert all(r is not None for r in results)
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        for status, payload, headers in results:
            if status == 429:
                assert payload["error"]["code"] == "serve.overloaded"
                assert payload["error"]["retryable"] is True
                assert int(headers["Retry-After"]) >= 1
        proc.send_signal(signal.SIGTERM)
        assert chaos.finish(proc).returncode == 0
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)


def test_coalescing_across_two_client_processes(tmp_path):
    """Two separate client *processes* post the identical request
    concurrently: exactly one computation happens, both get the same
    run id, and SIGTERM drains to exit 0 with a clean journal."""
    env = chaos.repro_env(tmp_path)
    run_id = parse_characterize(MINIMAL_BODY).run_id
    port = free_port()
    client_src = (
        "import json,sys,urllib.request\n"
        "req=urllib.request.Request(sys.argv[1],"
        "data=json.dumps({'cells':['INV1X1'],'variants':['2D'],"
        "'extraction_variants':['TRADITIONAL']}).encode(),"
        "method='POST')\n"
        "resp=urllib.request.urlopen(req,timeout=120)\n"
        "print(json.dumps(json.load(resp)))\n")
    url = f"http://127.0.0.1:{port}/characterize"

    proc = chaos.spawn_server(chaos.serve_argv(port, workers=2), env)
    try:
        assert chaos.wait_for_server(port, proc=proc)
        first = subprocess.Popen([sys.executable, "-c", client_src, url],
                                 stdout=subprocess.PIPE, text=True)
        assert chaos.wait_for_journal(
            tenant_cache(tmp_path), run_id, min_tasks=1, proc=proc)
        second = subprocess.Popen([sys.executable, "-c", client_src, url],
                                  stdout=subprocess.PIPE, text=True)
        out_first, _ = first.communicate(timeout=120)
        out_second, _ = second.communicate(timeout=120)
        assert first.returncode == 0 and second.returncode == 0

        import json
        bodies = [json.loads(out_first), json.loads(out_second)]
        assert {b["run_id"] for b in bodies} == {run_id}
        assert all(b["status"] == "completed" for b in bodies)
        assert any(b.get("coalesced") for b in bodies)

        status, metrics, _ = chaos.http_request(
            "GET", f"http://127.0.0.1:{port}/metrics", timeout=10.0)
        assert metrics["metrics"]["serve.coalesced_total"]["value"] == 1

        proc.send_signal(signal.SIGTERM)
        outcome = chaos.finish(proc)
        assert outcome.returncode == 0, outcome.stderr
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)

    # One computation: a single begin record, no resumes, a clean
    # completed journal of exactly the minimal flow's tasks.
    state = load_run(tenant_cache(tmp_path), run_id)
    assert state.status == "completed"
    assert state.resumes == 0
    assert len(state.tasks) == MINIMAL_TASKS


def test_sigterm_mid_request_drains_within_grace(tmp_path):
    """SIGTERM while a run is in flight: the admitted request still
    answers 200, the server exits 0 within the grace window."""
    env = chaos.repro_env(tmp_path)
    run_id = parse_characterize(MINIMAL_BODY).run_id
    port = free_port()
    proc = chaos.spawn_server(
        chaos.serve_argv(port, workers=1, grace=60), env)
    try:
        assert chaos.wait_for_server(port, proc=proc)
        result = {}

        def fire():
            result["resp"] = post(port, MINIMAL_BODY)

        thread = threading.Thread(target=fire)
        thread.start()
        assert chaos.wait_for_journal(
            tenant_cache(tmp_path), run_id, min_tasks=1, proc=proc)
        proc.send_signal(signal.SIGTERM)
        thread.join(timeout=120.0)
        status, payload, _ = result["resp"]
        assert status == 200, payload
        assert payload["status"] == "completed"
        outcome = chaos.finish(proc, timeout=90.0)
        assert outcome.returncode == 0, outcome.stderr
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)

    assert load_run(tenant_cache(tmp_path), run_id).status == "completed"
