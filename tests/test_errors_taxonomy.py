"""The machine-readable error taxonomy.

Every :class:`ReproError` subclass carries a stable ``code`` and a
``retryable`` flag, and renders a ``{type, code, message, retryable}``
record — the contract the service's JSON bodies and the manifest's
failure records are built on.
"""

from __future__ import annotations

from repro import errors
from repro.engine.manifest import RunManifest, TaskFailure
from repro.errors import (
    AdmissionRejected,
    CacheLockTimeout,
    DeadlineExceeded,
    InvalidRequest,
    QuotaExceeded,
    ReproError,
    RunInterrupted,
    ServeError,
    ServiceDraining,
    TaskTimeoutError,
    WorkerCrashError,
    error_code,
    error_payload,
)


def all_error_classes():
    """Every ReproError subclass defined in :mod:`repro.errors`."""
    seen = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return [cls for cls in seen if cls.__module__ == errors.__name__]


class TestTaxonomy:
    def test_every_class_has_a_dotted_code(self):
        for cls in all_error_classes():
            assert isinstance(cls.code, str) and "." in cls.code, cls

    def test_codes_are_unique_across_the_hierarchy(self):
        codes = [cls.code for cls in all_error_classes()]
        assert len(codes) == len(set(codes))

    def test_retryable_is_a_bool_class_attribute(self):
        for cls in all_error_classes():
            assert isinstance(cls.retryable, bool), cls

    def test_retryable_is_explicit_on_every_class(self):
        """Every class states its own ``retryable`` — a new error type
        must make the call, not silently inherit a default."""
        for cls in all_error_classes():
            assert "retryable" in cls.__dict__, (
                f"{cls.__name__} inherits retryable implicitly; "
                f"declare it explicitly")

    def test_code_is_explicit_on_every_class(self):
        for cls in all_error_classes():
            assert "code" in cls.__dict__, (
                f"{cls.__name__} inherits its code implicitly")

    def test_transient_failures_are_retryable(self):
        for cls in (TaskTimeoutError, CacheLockTimeout, RunInterrupted,
                    WorkerCrashError, AdmissionRejected, QuotaExceeded,
                    DeadlineExceeded, ServiceDraining):
            assert cls.retryable, cls

    def test_permanent_failures_are_not_retryable(self):
        for cls in (errors.ConfigError, errors.LayoutError,
                    errors.NetlistError, InvalidRequest):
            assert not cls.retryable, cls

    def test_remote_cache_family_registered(self):
        """The remote tier's fault model: every code dotted under
        ``cache.remote`` and transient by design (the tier is an
        optimisation — its failures must never fail a run)."""
        family = {
            errors.RemoteCacheError: "cache.remote.error",
            errors.RemoteCacheTimeout: "cache.remote.timeout",
            errors.RemoteCacheIntegrityError: "cache.remote.integrity",
            errors.RemoteCacheUnavailable: "cache.remote.unavailable",
        }
        for cls, code in family.items():
            assert cls.code == code
            assert cls.retryable is True
            assert issubclass(cls, errors.RemoteCacheError)

    def test_to_dict_shape(self):
        record = errors.MeshError("bad mesh").to_dict()
        assert record == {"type": "MeshError", "code": "tcad.mesh",
                          "message": "bad mesh", "retryable": False}

    def test_deadline_exceeded_carries_run_id(self):
        exc = DeadlineExceeded("too slow", run_id="req-abc")
        record = exc.to_dict()
        assert record["run_id"] == "req-abc"
        assert record["code"] == "serve.deadline_exceeded"
        assert record["retryable"] is True


class TestForeignExceptions:
    def test_error_code_namespaces_foreign_types(self):
        assert error_code(ValueError("x")) == "python.ValueError"
        assert error_code(errors.MeshError("x")) == "tcad.mesh"

    def test_error_payload_for_foreign_exception(self):
        payload = error_payload(KeyError("k"))
        assert payload["type"] == "KeyError"
        assert payload["code"] == "python.KeyError"
        assert payload["retryable"] is False

    def test_error_payload_delegates_to_repro_to_dict(self):
        exc = AdmissionRejected("full", retry_after=7)
        assert error_payload(exc) == exc.to_dict()


class TestServeErrorStatuses:
    def test_http_status_mapping(self):
        assert InvalidRequest("x").http_status == 400
        assert AdmissionRejected("x").http_status == 429
        assert QuotaExceeded("x").http_status == 429
        assert DeadlineExceeded("x").http_status == 504
        assert ServiceDraining("x").http_status == 503
        assert ServeError("x").http_status == 500

    def test_retry_after_attribute(self):
        assert AdmissionRejected("x", retry_after=12).retry_after == 12
        assert ServeError("x").retry_after is None


class TestManifestFailureRecords:
    def test_task_failure_carries_code_and_retryable(self):
        failure = TaskFailure(task_id="t", stage="s", key="k",
                              status="failed", code="engine.task_timeout",
                              retryable=True)
        assert failure.code == "engine.task_timeout"
        assert failure.retryable is True

    def test_old_manifests_without_codes_still_load(self):
        data = {"max_workers": 1, "records": [],
                "failures": [{"task_id": "t", "stage": "s", "key": "k",
                              "status": "failed"}]}
        manifest = RunManifest.from_dict(data)
        assert manifest.failures[0].code == ""
        assert manifest.failures[0].retryable is False

    def test_roundtrip_preserves_codes(self):
        manifest = RunManifest(max_workers=1)
        manifest.add_failure(TaskFailure(
            task_id="t", stage="s", key="k", status="failed",
            code="cache.lock_timeout", retryable=True))
        reloaded = RunManifest.from_dict(manifest.to_dict())
        assert reloaded.failures[0].code == "cache.lock_timeout"
        assert reloaded.failures[0].retryable is True


def test_engine_records_codes_on_task_failures():
    """A failing run's manifest failures carry the taxonomy fields."""
    from repro.engine import Engine, Task, register_stage, unregister_stage

    def _boom(payload, deps):
        raise errors.MeshError("no mesh")

    def _timeout(payload, deps):
        raise errors.TaskTimeoutError("too slow")

    register_stage("taxonomy_fail", version=1, compute=_boom, replace=True)
    register_stage("taxonomy_slow", version=1, compute=_timeout,
                   replace=True)
    try:
        run = Engine().run(
            [Task(id="boom", stage="taxonomy_fail"),
             Task(id="slow", stage="taxonomy_slow"),
             Task(id="child", stage="taxonomy_fail", deps=("boom",))],
            on_error="continue")
        assert run.failed["boom"].code == "tcad.mesh"
        assert run.failed["boom"].retryable is False
        assert run.failed["slow"].code == "engine.task_timeout"
        assert run.failed["slow"].retryable is True
        assert run.skipped["child"].code == "engine.task_skipped"
        assert run.skipped["child"].retryable is True
    finally:
        unregister_stage("taxonomy_fail")
        unregister_stage("taxonomy_slow")
