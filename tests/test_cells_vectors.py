"""Stimulus plans."""

import pytest

from repro.cells.library import get_cell
from repro.cells.vectors import StimulusRun, stimulus_plan_for


def test_one_run_per_input():
    for name in ("INV1X1", "NAND2X1", "MUX2X1"):
        cell = get_cell(name)
        plan = stimulus_plan_for(cell)
        assert len(plan.runs) == len(cell.inputs)
        assert plan.n_edges == 2 * len(cell.inputs)


def test_runs_cover_all_inputs():
    plan = stimulus_plan_for(get_cell("AOI2X1"))
    assert {run.toggled_input for run in plan.runs} == {"a", "b", "c"}


def test_static_levels_sensitize():
    cell = get_cell("NAND2X1")
    plan = stimulus_plan_for(cell)
    for run in plan.runs:
        low = cell.evaluate({**run.static_levels, run.toggled_input: False})
        high = cell.evaluate({**run.static_levels, run.toggled_input: True})
        assert low != high


def test_static_levels_exclude_toggled_input():
    plan = stimulus_plan_for(get_cell("NAND3X1"))
    for run in plan.runs:
        assert run.toggled_input not in run.static_levels


def test_pulse_kwargs_full_swing():
    run = StimulusRun(toggled_input="a", static_levels={})
    kwargs = run.pulse_kwargs(1.0)
    assert kwargs["v1"] == 0.0
    assert kwargs["v2"] == 1.0
    assert kwargs["delay"] < kwargs["width"]


def test_pulse_fits_in_observation_window():
    run = StimulusRun(toggled_input="a", static_levels={})
    # falling edge happens before t_stop so both edges are observed
    assert run.delay + run.width < run.t_stop
