"""The deterministic fault injector: spec grammar, rule semantics,
process-wide installation and env-var resolution."""

import pytest

from repro.errors import InjectedFault, ReproError
from repro.resilience import (
    FAULTS_ENV,
    ContinuationResult,
    FaultInjector,
    RetryPolicy,
    active_injector,
    clear_faults,
    continue_solve,
    draw_fault,
    install,
    maybe_inject,
)
from repro.errors import ConvergenceError


@pytest.fixture(autouse=True)
def _no_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_faults()
    yield
    clear_faults()


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_parse_multi_segment_spec():
    injector = FaultInjector.parse(
        "stage_exc:extract:p=0.5;worker_kill:ppa:n=1;"
        "convergence:newton:first=2,fatal=1,message=forced")
    kinds = [(r.kind, r.site) for r in injector.rules]
    assert kinds == [("stage_exc", "extract"), ("worker_kill", "ppa"),
                     ("convergence", "newton")]
    assert injector.rules[0].p == 0.5
    assert injector.rules[1].n == 1
    assert injector.rules[2].first == 2
    assert injector.rules[2].fatal
    assert injector.rules[2].message == "forced"


def test_parse_seed_segment():
    injector = FaultInjector.parse("seed=42;stage_exc:*:p=0.5")
    assert injector.seed == 42


@pytest.mark.parametrize("spec", [
    "bogus_kind:site",
    "stage_exc",              # no site
    "stage_exc::p=1",         # empty site
    "stage_exc:site:p=x",     # bad float
    "stage_exc:site:nope=1",  # unknown option
    "stage_exc:site:p",       # option without '='
    "seed=abc",
])
def test_bad_specs_rejected(spec):
    with pytest.raises(ReproError):
        FaultInjector.parse(spec)


def test_empty_spec_yields_no_rules():
    assert FaultInjector.parse("  ;  ").rules == []


# ----------------------------------------------------------------------
# rule semantics
# ----------------------------------------------------------------------
def test_site_substring_and_wildcard_matching():
    injector = FaultInjector.parse("stage_exc:extract")
    assert injector.draw("stage_exc", "extraction") is not None
    assert injector.draw("stage_exc", "cell_ppa") is None
    assert injector.draw("worker_kill", "extraction") is None
    wildcard = FaultInjector.parse("stage_exc:*")
    assert wildcard.draw("stage_exc", "anything") is not None


def test_first_k_fires_then_stops():
    injector = FaultInjector.parse("convergence:newton:first=2")
    outcomes = [injector.draw("convergence", "newton") is not None
                for _ in range(5)]
    assert outcomes == [True, True, False, False, False]


def test_n_caps_total_fires():
    injector = FaultInjector.parse("worker_kill:ppa:n=1")
    outcomes = [injector.draw("worker_kill", "cell_ppa") is not None
                for _ in range(4)]
    assert outcomes == [True, False, False, False]


def test_probability_is_seed_deterministic():
    a = FaultInjector.parse("stage_exc:*:p=0.5", seed=7)
    b = FaultInjector.parse("stage_exc:*:p=0.5", seed=7)
    seq_a = [a.draw("stage_exc", "s") is not None for _ in range(32)]
    seq_b = [b.draw("stage_exc", "s") is not None for _ in range(32)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_stats_reports_fires():
    injector = FaultInjector.parse("stage_exc:a:first=1;worker_kill:b")
    injector.draw("stage_exc", "a")
    injector.draw("stage_exc", "a")
    assert injector.stats() == {"stage_exc:a": 1, "worker_kill:b": 0}


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------
def test_install_and_clear():
    injector = FaultInjector.parse("stage_exc:x")
    assert install(injector) is None
    assert active_injector() is injector
    assert draw_fault("stage_exc", "x") is not None
    clear_faults()
    assert draw_fault("stage_exc", "x") is None


def test_env_spec_resolves_lazily(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "stage_exc:lazy:first=1")
    clear_faults()
    assert draw_fault("stage_exc", "lazy") is not None
    assert draw_fault("stage_exc", "lazy") is None  # first=1 consumed


def test_maybe_inject_raises_with_message():
    install(FaultInjector.parse("stage_exc:x:message=custom boom"))
    with pytest.raises(InjectedFault, match="custom boom"):
        maybe_inject("stage_exc", "x")
    # non-matching site passes through silently
    maybe_inject("stage_exc", "other")


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def test_retry_policy_backoff_caps():
    policy = RetryPolicy(retries=5, backoff=0.1, backoff_cap=0.3)
    assert policy.attempts == 6
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.3)   # capped
    assert policy.delay(10) == pytest.approx(0.3)
    assert RetryPolicy(backoff=0.0).delay(1) == 0.0


def test_retry_policy_env_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.5")
    policy = RetryPolicy.from_env()
    assert policy.retries == 3 and policy.timeout == 1.5
    monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
    with pytest.raises(ReproError, match="REPRO_TASK_RETRIES"):
        RetryPolicy.from_env()


def test_retry_policy_validation():
    with pytest.raises(ReproError):
        RetryPolicy(retries=-1)
    with pytest.raises(ReproError):
        RetryPolicy(timeout=0.0)


# ----------------------------------------------------------------------
# the continuation primitive
# ----------------------------------------------------------------------
def test_continue_solve_direct_hit_needs_no_splits():
    calls = []

    def solve(value, warm):
        calls.append(value)
        return value

    outcome = continue_solve(solve, target=1.0)
    assert outcome == ContinuationResult(solution=1.0, steps=1, splits=0)
    assert not outcome.rescued
    assert calls == [1.0]


def test_continue_solve_bisects_until_reachable():
    # Refuses any jump larger than 0.3 from the last converged value.
    state = {"value": 0.0}

    def solve(value, warm):
        if value - state["value"] > 0.3:
            raise ConvergenceError("too far")
        state["value"] = value
        return value

    outcome = continue_solve(solve, target=1.0)
    assert outcome.solution == 1.0
    assert outcome.rescued and outcome.splits >= 2
    # warm starts advanced monotonically
    assert state["value"] == 1.0


def test_continue_solve_exhausts_split_budget():
    def solve(value, warm):
        raise ConvergenceError("never")

    with pytest.raises(ConvergenceError):
        continue_solve(solve, target=1.0, max_splits=3)


def test_continue_solve_passes_warm_starts():
    seen = []

    def solve(value, warm):
        seen.append(warm)
        if value > 0.6 and (warm is None or warm < 0.4):
            raise ConvergenceError("cold start too far")
        return value

    outcome = continue_solve(solve, target=1.0, initial=None)
    assert outcome.solution == 1.0
    assert seen[0] is None          # first try is cold
    assert any(w is not None for w in seen[1:])
