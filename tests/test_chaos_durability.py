"""Chaos harness: kill -9 / SIGTERM real flow subprocesses and prove
the durability contract — resume loses at most in-flight work, the
store never serves a torn entry, and graceful shutdown exits 75 with
a resumable journal.

Marked ``chaos`` (and ``slow``): each scenario runs full
``python -m repro.flows`` subprocesses.  CI runs these in a dedicated
job; locally use ``pytest -m chaos``.
"""

import json

import pytest

from repro.engine.cache import ArtifactCache
from repro.engine.durability import EXIT_INTERRUPTED, load_run, run_dir
from repro.engine.manifest import (
    RunManifest,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
)
from repro.flows.durable import MANIFEST_FILENAME
from repro.resilience import chaos

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: The minimal flow (1 cell x 1 variant x 1 extraction) is 6 tasks.
MINIMAL_TASKS = 6


def _journal_state(cache_dir, run_id):
    return load_run(cache_dir, run_id)


def test_kill_resume_cycle_completes(tmp_path):
    """kill -9 after 3 journalled tasks; resume finishes the flow."""
    run_id = "chaos-kill"
    env = chaos.repro_env(tmp_path, faults="proc_kill:*:after=3")

    def make_argv(attempt, previous):
        if attempt == 0:
            return chaos.flow_argv(run_id=run_id, workers=1)
        # later attempts resume, without fault injection
        env.pop("REPRO_FAULTS", None)
        return chaos.flow_argv(resume=run_id, workers=1)

    report = chaos.run_until_complete(make_argv, env, max_invocations=4)
    assert report.kills >= 1, report.outcomes[-1].stderr
    assert report.completed, report.outcomes[-1].stderr

    state = _journal_state(tmp_path, run_id)
    assert state.status == "completed"
    assert state.resumes >= 1
    assert len(state.done()) == MINIMAL_TASKS

    manifest = RunManifest.load(
        run_dir(tmp_path, run_id) / MANIFEST_FILENAME)
    assert manifest.status == STATUS_COMPLETED
    # the kill lost at most the in-flight task: the resume found the
    # journalled completions in the cache
    assert manifest.summary()["cache_hits"] >= 3


def test_kill_mid_write_leaves_no_torn_entries(tmp_path):
    """write_kill dies between temp write and rename: every published
    entry must still parse, and the resume completes."""
    run_id = "chaos-torn"
    env = chaos.repro_env(tmp_path, faults="write_kill:*:after=2")
    outcome = chaos.run_flow(
        chaos.flow_argv(run_id=run_id, workers=1), env)
    assert outcome.killed, (outcome.returncode, outcome.stderr)

    cache = ArtifactCache(cache_dir=tmp_path)
    for path, _, _ in cache._disk_entries():
        record = json.loads(path.read_text(encoding="utf-8"))
        assert "artifact" in record, f"torn entry {path}"
    assert cache.quarantined() == []

    env.pop("REPRO_FAULTS", None)
    resumed = chaos.run_flow(chaos.flow_argv(resume=run_id, workers=1),
                             env)
    assert resumed.returncode == 0, resumed.stderr
    assert _journal_state(tmp_path, run_id).status == "completed"


def test_sigterm_drains_and_exits_75(tmp_path):
    """SIGTERM mid-flow: exit within grace with code 75, an
    ``interrupted`` manifest, and a journal ``--resume`` accepts."""
    run_id = "chaos-term"
    env = chaos.repro_env(tmp_path,
                          extra={"REPRO_SHUTDOWN_GRACE": "5.0"})
    proc = chaos.spawn_flow(chaos.flow_argv(run_id=run_id, workers=1),
                            env)
    assert chaos.wait_for_journal(tmp_path, run_id, min_tasks=2,
                                  proc=proc), "flow never reached task 2"
    outcome = chaos.terminate_gracefully(proc)
    assert outcome.returncode == EXIT_INTERRUPTED, outcome.stderr
    assert "resume" in outcome.stderr  # the hint names the run id

    state = _journal_state(tmp_path, run_id)
    assert state.status == "interrupted"
    assert len(state.done()) >= 2

    manifest = RunManifest.load(
        run_dir(tmp_path, run_id) / MANIFEST_FILENAME)
    assert manifest.status == STATUS_INTERRUPTED
    assert manifest.interrupted

    resumed = chaos.run_flow(chaos.flow_argv(resume=run_id, workers=1),
                             env)
    assert resumed.returncode == 0, resumed.stderr
    final = _journal_state(tmp_path, run_id)
    assert final.status == "completed"
    assert len(final.done()) == MINIMAL_TASKS


def test_concurrent_flows_share_cache_without_corruption(tmp_path):
    """Two simultaneous invocations over one store: both exit 0, the
    quarantine stays empty, and both journals complete."""
    env = chaos.repro_env(tmp_path)
    argvs = [chaos.flow_argv(run_id=f"chaos-conc-{i}", workers=1)
             for i in (1, 2)]
    outcomes = chaos.run_concurrent_flows(argvs, env, stagger_s=0.2)
    for outcome in outcomes:
        assert outcome.returncode == 0, outcome.stderr
    assert ArtifactCache(cache_dir=tmp_path).quarantined() == []
    for i in (1, 2):
        assert _journal_state(tmp_path,
                              f"chaos-conc-{i}").status == "completed"
