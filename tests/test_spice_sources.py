"""Source waveforms: DC, PULSE, PWL."""

import pytest

from repro.errors import NetlistError
from repro.spice.elements.vsource import (
    PulseSpec,
    PwlSpec,
    dc_source,
    pulse_source,
    pwl_source,
)


def test_dc_source_constant():
    src = dc_source("V1", "a", "0", 0.7)
    assert src.value(0.0) == 0.7
    assert src.value(1e-6) == 0.7
    assert src.breakpoints(1e-6) == []


def test_pulse_levels():
    spec = PulseSpec(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10, fall=1e-10,
                     width=2e-9, period=5e-9)
    assert spec.value(0.0) == 0.0
    assert spec.value(1e-9 + 5e-11) == pytest.approx(0.5)  # mid-rise
    assert spec.value(2e-9) == 1.0                          # plateau
    assert spec.value(1e-9 + 1e-10 + 2e-9 + 5e-11) == pytest.approx(0.5)
    assert spec.value(4.5e-9) == 0.0                        # back low


def test_pulse_periodicity():
    spec = PulseSpec(v1=0.0, v2=1.0, delay=0.0, rise=1e-10, fall=1e-10,
                     width=2e-9, period=5e-9)
    assert spec.value(1e-9) == spec.value(1e-9 + 5e-9)


def test_pulse_breakpoints_cover_edges():
    spec = PulseSpec(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10, fall=1e-10,
                     width=2e-9, period=10e-9)
    points = spec.breakpoints(5e-9)
    assert 1e-9 in points
    assert pytest.approx(1.1e-9) in points
    assert pytest.approx(3.1e-9) in points


def test_pulse_validation():
    with pytest.raises(NetlistError):
        PulseSpec(v1=0, v2=1, rise=0.0)
    with pytest.raises(NetlistError):
        PulseSpec(v1=0, v2=1, rise=1e-9, fall=1e-9, width=5e-9, period=2e-9)


def test_pwl_interpolation():
    spec = PwlSpec(((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)))
    assert spec.value(0.5e-9) == pytest.approx(0.5)
    assert spec.value(1.5e-9) == pytest.approx(0.75)


def test_pwl_clamped_outside():
    spec = PwlSpec(((1e-9, 0.2), (2e-9, 0.8)))
    assert spec.value(0.0) == 0.2
    assert spec.value(5e-9) == 0.8


def test_pwl_validation():
    with pytest.raises(NetlistError):
        PwlSpec(())
    with pytest.raises(NetlistError):
        PwlSpec(((1e-9, 0.0), (1e-9, 1.0)))


def test_pwl_breakpoints_window():
    spec = PwlSpec(((0.0, 0.0), (1e-9, 1.0), (9e-9, 0.0)))
    assert spec.breakpoints(5e-9) == [0.0, 1e-9]


def test_factory_helpers():
    pulse = pulse_source("VP", "a", "0", v1=0.0, v2=1.0)
    assert pulse.value(0.0) == 0.0
    pwl = pwl_source("VW", "a", "0", [(0.0, 0.1), (1e-9, 0.9)])
    assert pwl.value(0.5e-9) == pytest.approx(0.5)
    assert pwl.breakpoints(2e-9) == [0.0, 1e-9]
