"""Sweep drivers and characteristics containers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.tcad.characteristics import CVCurve, IdVdFamily, IVCurve
from repro.tcad.simulator import SweepSpec, TcadSimulator


def test_sweep_spec_defaults_match_paper():
    spec = SweepSpec()
    assert spec.vds_lin == pytest.approx(0.05)
    assert spec.vds_sat == pytest.approx(1.0)
    assert spec.idvd_gate_biases == (0.4, 0.6, 0.8, 1.0)


def test_sweep_spec_validation():
    with pytest.raises(SimulationError):
        SweepSpec(vg_start=1.0, vg_stop=0.0)
    with pytest.raises(SimulationError):
        SweepSpec(vg_points=2)
    with pytest.raises(SimulationError):
        SweepSpec(vds_lin=-0.05)


def test_vd_axis_starts_at_linear_bias():
    spec = SweepSpec()
    assert spec.vd_axis[0] == pytest.approx(spec.vds_lin)
    assert spec.vd_axis[-1] == pytest.approx(spec.vds_sat)


def test_id_vg_curves(nmos_targets):
    lin = nmos_targets.idvg_lin
    sat = nmos_targets.idvg_sat
    assert lin.kind == "idvg"
    assert lin.fixed_bias == pytest.approx(0.05)
    assert sat.fixed_bias == pytest.approx(1.0)
    # Saturation curve carries more current everywhere above threshold.
    assert sat.i[-1] > lin.i[-1]
    assert np.all(np.diff(lin.i) > 0)


def test_id_vd_family(nmos_targets):
    family = nmos_targets.idvd
    assert family.gate_biases == [0.4, 0.6, 0.8, 1.0]
    # Higher gate bias -> higher current at max vds.
    finals = [curve.i[-1] for curve in family.curves]
    assert all(b > a for a, b in zip(finals, finals[1:]))


def test_cv_curve_monotone_rise(nmos_targets):
    cv = nmos_targets.cv
    assert cv.c[-1] > cv.c[0] > 0


def test_id_vg_rejects_nonpositive_vds(nmos_traditional):
    sim = TcadSimulator(nmos_traditional)
    with pytest.raises(SimulationError):
        sim.id_vg(0.0)


def test_ivcurve_validation():
    with pytest.raises(SimulationError):
        IVCurve(np.array([0.0, 0.0]), np.array([1.0, 2.0]), 1.0, "idvg")
    with pytest.raises(SimulationError):
        IVCurve(np.array([0.0, 1.0]), np.array([1.0]), 1.0, "idvg")


def test_ivcurve_interpolation():
    curve = IVCurve(np.array([0.0, 1.0]), np.array([0.0, 2.0]), 1.0, "idvg")
    assert curve.interpolate(0.5) == pytest.approx(1.0)


def test_ivcurve_resample():
    curve = IVCurve(np.array([0.0, 1.0]), np.array([0.0, 2.0]), 1.0, "idvg")
    dense = curve.resampled(np.linspace(0, 1, 5))
    assert dense.v.size == 5
    assert dense.i[2] == pytest.approx(1.0)


def test_ivcurve_roundtrip():
    curve = IVCurve(np.array([0.0, 1.0]), np.array([1e-6, 2e-6]), 0.05,
                    "idvg", "x")
    again = IVCurve.from_dict(curve.to_dict())
    assert np.allclose(again.v, curve.v)
    assert np.allclose(again.i, curve.i)
    assert again.label == "x"


def test_family_requires_idvd_kind():
    curve = IVCurve(np.array([0.0, 1.0]), np.array([0.0, 1.0]), 1.0, "idvg")
    with pytest.raises(SimulationError):
        IdVdFamily([curve])
    with pytest.raises(SimulationError):
        IdVdFamily([])


def test_cv_roundtrip():
    cv = CVCurve(np.array([0.0, 0.5, 1.0]), np.array([1e-16, 2e-16, 3e-16]))
    again = CVCurve.from_dict(cv.to_dict())
    assert np.allclose(again.c, cv.c)


def test_targets_roundtrip(nmos_targets):
    from repro.extraction.targets import DeviceTargets
    again = DeviceTargets.from_dict(nmos_targets.to_dict())
    assert again.variant == nmos_targets.variant
    assert again.polarity == nmos_targets.polarity
    assert np.allclose(again.idvg_lin.i, nmos_targets.idvg_lin.i)
    assert np.allclose(again.cv.c, nmos_targets.cv.c)
