"""Figure-2 device layouts: width partitioning, MIV placement, edges."""

import pytest

from repro.errors import LayoutError
from repro.geometry.process import DEFAULT_PROCESS
from repro.geometry.transistor_layout import (
    ChannelCount,
    layout_for_variant,
)


@pytest.fixture(scope="module", params=list(ChannelCount),
                ids=lambda v: v.name.lower())
def layout(request):
    return layout_for_variant(request.param, DEFAULT_PROCESS)


def test_equivalent_width_is_192nm(layout):
    assert layout.total_width == pytest.approx(192e-9, rel=1e-6)


def test_channel_width_partitioning():
    expected = {ChannelCount.TRADITIONAL: 192e-9, ChannelCount.ONE: 192e-9,
                ChannelCount.TWO: 96e-9, ChannelCount.FOUR: 48e-9}
    for variant, width in expected.items():
        built = layout_for_variant(variant, DEFAULT_PROCESS)
        assert built.channel_width == pytest.approx(width)


def test_channel_counts():
    assert layout_for_variant(ChannelCount.TWO, DEFAULT_PROCESS).n_channels == 2
    assert layout_for_variant(ChannelCount.FOUR,
                              DEFAULT_PROCESS).n_channels == 4


def test_four_channel_respects_min_active_width():
    # Section III: the minimum active dimension is 48 nm.
    built = layout_for_variant(ChannelCount.FOUR, DEFAULT_PROCESS)
    assert built.channel_width >= 48e-9 - 1e-15


def test_four_channel_below_min_width_rejected():
    narrow = DEFAULT_PROCESS.with_updates(w_src=100e-9)
    with pytest.raises(LayoutError):
        layout_for_variant(ChannelCount.FOUR, narrow)


def test_footprint_contains_all_regions(layout):
    for region in layout.sd_regions + [layout.gate_region, layout.miv_rect]:
        assert layout.footprint.contains(region)


def test_miv_merging_shrinks_footprint_vs_traditional():
    # Eliminating the keep-out zone shrinks the 1- and 2-channel devices;
    # the 4-channel cross trades height for width (and a routing track).
    areas = {v: layout_for_variant(v, DEFAULT_PROCESS).area
             for v in ChannelCount}
    assert areas[ChannelCount.ONE] < areas[ChannelCount.TRADITIONAL]
    assert areas[ChannelCount.TWO] < areas[ChannelCount.ONE]


def test_traditional_is_tallest():
    heights = {v: layout_for_variant(v, DEFAULT_PROCESS).height
               for v in ChannelCount}
    assert heights[ChannelCount.TRADITIONAL] == max(heights.values())


def test_miv_gate_variants_have_coupled_edges():
    assert layout_for_variant(ChannelCount.TRADITIONAL,
                              DEFAULT_PROCESS).miv_coupled_edges == 0
    assert layout_for_variant(ChannelCount.ONE,
                              DEFAULT_PROCESS).miv_coupled_edges == 1
    assert layout_for_variant(ChannelCount.TWO,
                              DEFAULT_PROCESS).miv_coupled_edges == 2
    assert layout_for_variant(ChannelCount.FOUR,
                              DEFAULT_PROCESS).miv_coupled_edges == 4


def test_sd_region_counts():
    # 2-channel: two sources + two drains; 4-channel: four regions.
    assert len(layout_for_variant(ChannelCount.TWO,
                                  DEFAULT_PROCESS).sd_regions) == 4
    assert len(layout_for_variant(ChannelCount.FOUR,
                                  DEFAULT_PROCESS).sd_regions) == 4
    assert len(layout_for_variant(ChannelCount.ONE,
                                  DEFAULT_PROCESS).sd_regions) == 2


def test_only_four_channel_needs_extra_routing():
    for variant in ChannelCount:
        built = layout_for_variant(variant, DEFAULT_PROCESS)
        expected = 1 if variant is ChannelCount.FOUR else 0
        assert built.extra_routing_tracks == expected


def test_uses_miv_gate_flag():
    assert not ChannelCount.TRADITIONAL.uses_miv_gate
    assert ChannelCount.ONE.uses_miv_gate
    assert ChannelCount.TWO.uses_miv_gate
    assert ChannelCount.FOUR.uses_miv_gate


def test_sd_regions_do_not_overlap_gate(layout):
    for region in layout.sd_regions:
        assert not region.overlaps(layout.gate_region)
