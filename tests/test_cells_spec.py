"""Series/parallel networks and cell specs."""

import pytest

from repro.cells.spec import CellSpec, GateStage, inp, parallel, series
from repro.errors import CellLibraryError


def test_input_leaf():
    leaf = inp("a")
    assert leaf.inputs() == ["a"]
    assert leaf.transistor_count() == 1
    assert leaf.conducts({"a": True})
    assert not leaf.conducts({"a": False})


def test_series_conduction_is_and():
    net = series(inp("a"), inp("b"))
    assert net.conducts({"a": True, "b": True})
    assert not net.conducts({"a": True, "b": False})


def test_parallel_conduction_is_or():
    net = parallel(inp("a"), inp("b"))
    assert net.conducts({"a": False, "b": True})
    assert not net.conducts({"a": False, "b": False})


def test_dual_swaps_series_parallel():
    net = series(inp("a"), parallel(inp("b"), inp("c")))
    dual = net.dual()
    assert dual.kind == "parallel"
    assert dual.children[1].kind == "series"
    # double dual is identity (structurally)
    assert dual.dual() == net


def test_transistor_count_nested():
    net = parallel(series(inp("a"), inp("b")), inp("c"))
    assert net.transistor_count() == 3


def test_inputs_deduplicated_in_order():
    net = parallel(series(inp("a"), inp("b")), series(inp("a"), inp("c")))
    assert net.inputs() == ["a", "b", "c"]


def test_missing_input_value_raises():
    with pytest.raises(CellLibraryError):
        inp("a").conducts({})


def test_network_validation():
    with pytest.raises(CellLibraryError):
        series(inp("a"))
    with pytest.raises(CellLibraryError):
        inp("")


def test_stage_is_inverting():
    stage = GateStage("y", inp("a"))
    assert stage.evaluate({"a": False}) is True
    assert stage.evaluate({"a": True}) is False
    assert stage.transistor_count == 2


def test_cell_spec_multi_stage_evaluation():
    cell = CellSpec(
        name="AND2", inputs=("a", "b"), output="y",
        stages=(GateStage("yb", series(inp("a"), inp("b"))),
                GateStage("y", inp("yb"))))
    assert cell.evaluate({"a": True, "b": True}) is True
    assert cell.evaluate({"a": True, "b": False}) is False
    assert cell.transistor_count == 6
    assert cell.nmos_count == 3


def test_cell_spec_validation():
    with pytest.raises(CellLibraryError):
        CellSpec(name="x", inputs=(), output="y",
                 stages=(GateStage("y", inp("a")),))
    with pytest.raises(CellLibraryError):
        CellSpec(name="x", inputs=("a",), output="z",
                 stages=(GateStage("y", inp("a")),))
    with pytest.raises(CellLibraryError):  # undefined signal
        CellSpec(name="x", inputs=("a",), output="y",
                 stages=(GateStage("y", inp("b")),))
    with pytest.raises(CellLibraryError):  # duplicate stage outputs
        CellSpec(name="x", inputs=("a",), output="y",
                 stages=(GateStage("y", inp("a")), GateStage("y", inp("a"))))


def test_cell_missing_input_raises():
    cell = CellSpec(name="inv", inputs=("a",), output="y",
                    stages=(GateStage("y", inp("a")),))
    with pytest.raises(CellLibraryError):
        cell.evaluate({})


def test_logic_function_positional():
    cell = CellSpec(name="inv", inputs=("a",), output="y",
                    stages=(GateStage("y", inp("a")),))
    fn = cell.logic_function()
    assert fn(False) is True
    with pytest.raises(CellLibraryError):
        fn(True, False)
