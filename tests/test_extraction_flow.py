"""Staged extraction flow — the Table III integration test."""

import pytest

from repro.errors import ExtractionError
from repro.extraction.flow import ExtractionFlow, score_regions
from repro.extraction.results import ExtractionReport
from repro.extraction.stages import (
    capacitance_stage,
    default_stage_sequence,
    high_drain_stage,
    low_drain_stage,
)
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity


def test_stage_sequence_matches_figure3():
    stages = default_stage_sequence()
    assert [s.name for s in stages] == ["low_drain", "high_drain",
                                        "capacitance"]


def test_flow_validation():
    with pytest.raises(ExtractionError):
        ExtractionFlow(stages=[])
    with pytest.raises(ExtractionError):
        ExtractionFlow(passes=0)


def test_extraction_errors_below_paper_bound(extracted_nmos):
    # Table III: "overall extraction error was under 10% for all cases".
    for region in ("IDVG", "IDVD", "CV"):
        assert extracted_nmos.errors[region] < 10.0, region


def test_extraction_errors_below_bound_pmos(extracted_pmos):
    for region in ("IDVG", "IDVD", "CV"):
        assert extracted_pmos.errors[region] < 10.0, region


def test_stage_rms_recorded(extracted_nmos):
    for stage in ("low_drain", "high_drain", "capacitance"):
        assert stage in extracted_nmos.stage_rms
        assert extracted_nmos.stage_rms[stage] >= 0.0


def test_fitted_model_tracks_ion(extracted_nmos):
    targets = extracted_nmos.targets
    model = extracted_nmos.model
    ref = targets.idvg_sat.i[-1]
    sim = float(model.ids_magnitude(1.0, 1.0))
    assert sim == pytest.approx(ref, rel=0.15)


def test_fitted_model_polarity(extracted_pmos):
    assert extracted_pmos.model.polarity is Polarity.PMOS


def test_score_regions_keys(extracted_nmos):
    scores = score_regions(extracted_nmos.model, extracted_nmos.targets)
    assert set(scores) == {"IDVG", "IDVD", "CV"}


def test_max_error(extracted_nmos):
    assert extracted_nmos.max_error() == max(extracted_nmos.errors.values())


def test_single_stage_flow_runs(nmos_targets):
    flow = ExtractionFlow(stages=[low_drain_stage()], passes=1)
    result = flow.run(nmos_targets)
    assert result.stage_rms["low_drain"] >= 0


def test_capacitance_stage_only_touches_cap_parameters(nmos_targets):
    flow = ExtractionFlow(stages=[capacitance_stage()], passes=1)
    result = flow.run(nmos_targets)
    from repro.compact.parameters import PARAMETER_SPECS
    for name in ("VTH0", "U0", "VSAT"):
        assert result.model.p(name) == PARAMETER_SPECS[name].default


def test_report_assembly(extracted_nmos, extracted_pmos):
    report = ExtractionReport([extracted_nmos, extracted_pmos])
    rows = report.rows()
    assert [r.region for r in rows] == ["IDVG", "IDVD", "CV"]
    cell = rows[0].cell(ChannelCount.TRADITIONAL, Polarity.NMOS)
    assert cell == pytest.approx(extracted_nmos.errors["IDVG"])
    assert report.max_error() < 10.0


def test_report_rejects_duplicates(extracted_nmos):
    with pytest.raises(ExtractionError):
        ExtractionReport([extracted_nmos, extracted_nmos])


def test_report_render_contains_regions(extracted_nmos, extracted_pmos):
    report = ExtractionReport([extracted_nmos, extracted_pmos])
    text = report.render()
    for token in ("IDVG", "IDVD", "CV", "%"):
        assert token in text


def test_report_missing_device_raises(extracted_nmos):
    report = ExtractionReport([extracted_nmos])
    with pytest.raises(ExtractionError):
        report.device(ChannelCount.FOUR, Polarity.NMOS)
