"""The 14-cell library: membership and full truth-table verification."""

import itertools

import pytest

from repro.cells.library import CELL_NAMES, all_cells, get_cell
from repro.cells.logic import truth_table
from repro.errors import CellLibraryError

#: Reference logic functions (positional args in cell input order).
REFERENCE = {
    "INV1X1": lambda a: not a,
    "NAND2X1": lambda a, b: not (a and b),
    "NAND3X1": lambda a, b, c: not (a and b and c),
    "NOR2X1": lambda a, b: not (a or b),
    "NOR3X1": lambda a, b, c: not (a or b or c),
    "AND2X1": lambda a, b: a and b,
    "AND3X1": lambda a, b, c: a and b and c,
    "OR2X1": lambda a, b: a or b,
    "OR3X1": lambda a, b, c: a or b or c,
    "AOI2X1": lambda a, b, c: not ((a and b) or c),
    "OAI2X1": lambda a, b, c: not ((a or b) and c),
    "XOR2X1": lambda a, b: a != b,
    "XNOR2X1": lambda a, b: a == b,
    "MUX2X1": lambda a, b, s: a if s else b,
}


def test_paper_cell_list():
    assert CELL_NAMES == (
        "AND2X1", "AND3X1", "AOI2X1", "INV1X1", "MUX2X1", "NAND2X1",
        "NAND3X1", "NOR2X1", "NOR3X1", "OAI2X1", "OR2X1", "OR3X1",
        "XNOR2X1", "XOR2X1")


def test_fourteen_cells():
    assert len(all_cells()) == 14


def test_unknown_cell_raises():
    with pytest.raises(CellLibraryError):
        get_cell("NAND4X1")


@pytest.mark.parametrize("name", CELL_NAMES)
def test_truth_table_matches_reference(name):
    cell = get_cell(name)
    reference = REFERENCE[name]
    for bits in itertools.product((False, True), repeat=len(cell.inputs)):
        expected = bool(reference(*bits))
        measured = cell.evaluate(dict(zip(cell.inputs, bits)))
        assert measured == expected, f"{name}{bits}"


@pytest.mark.parametrize("name", CELL_NAMES)
def test_truth_table_helper_consistent(name):
    cell = get_cell(name)
    rows = truth_table(cell)
    assert len(rows) == 2 ** len(cell.inputs)
    for bits, value in rows:
        assert cell.evaluate(dict(zip(cell.inputs, bits))) == value


def test_transistor_counts():
    assert get_cell("INV1X1").transistor_count == 2
    assert get_cell("NAND2X1").transistor_count == 4
    assert get_cell("NAND3X1").transistor_count == 6
    assert get_cell("AND2X1").transistor_count == 6
    assert get_cell("AOI2X1").transistor_count == 6
    assert get_cell("XOR2X1").transistor_count == 12
    assert get_cell("MUX2X1").transistor_count == 12


def test_every_cell_output_is_y():
    for cell in all_cells():
        assert cell.output == "y"


def test_complementary_counts():
    for cell in all_cells():
        assert cell.transistor_count == 2 * cell.nmos_count
