"""Level-70 parameter table (Table II and Section III-B lists)."""

import pytest

from repro.compact.parameters import (
    EXTRACTION_STAGE_PARAMETERS,
    LEVEL70_CONSTANTS,
    PARAMETER_SPECS,
    STAGE_CAPACITANCE,
    STAGE_HIGH_DRAIN,
    STAGE_LOW_DRAIN,
    ParameterSet,
    default_parameters,
)
from repro.errors import ExtractionError


def test_table2_constants():
    assert LEVEL70_CONSTANTS["LEVEL"] == 70
    assert LEVEL70_CONSTANTS["MOBMOD"] == 4
    assert LEVEL70_CONSTANTS["CAPMOD"] == 3
    assert LEVEL70_CONSTANTS["IGCMOD"] == 0
    assert LEVEL70_CONSTANTS["SOIMOD"] == 2
    assert LEVEL70_CONSTANTS["TSI"] == pytest.approx(7e-9)
    assert LEVEL70_CONSTANTS["TOX"] == pytest.approx(1e-9)
    assert LEVEL70_CONSTANTS["TBOX"] == pytest.approx(100e-9)
    assert LEVEL70_CONSTANTS["W"] == pytest.approx(192e-9)
    assert LEVEL70_CONSTANTS["TNOM"] == pytest.approx(25.0)


def test_stage_parameter_lists_match_paper():
    # Section III-B, items 1-3.
    assert EXTRACTION_STAGE_PARAMETERS[STAGE_LOW_DRAIN] == [
        "CDSC", "U0", "UA", "UB", "UD", "UCS", "DVT0", "DVT1"]
    assert EXTRACTION_STAGE_PARAMETERS[STAGE_HIGH_DRAIN] == [
        "CDSC", "CDSCD", "U0", "UA", "VTH0", "PVAG", "DVT0", "DVT1",
        "ETAB", "VSAT"]
    assert EXTRACTION_STAGE_PARAMETERS[STAGE_CAPACITANCE] == [
        "CKAPPA", "DELVT", "CF", "CGSO", "CGDO", "MOIN", "CGSL", "CGDL"]


def test_every_stage_parameter_has_a_spec():
    for names in EXTRACTION_STAGE_PARAMETERS.values():
        for name in names:
            assert name in PARAMETER_SPECS


def test_defaults_inside_bounds():
    for spec in PARAMETER_SPECS.values():
        assert spec.lower <= spec.default <= spec.upper


def test_parameter_set_defaults():
    params = default_parameters()
    for name, spec in PARAMETER_SPECS.items():
        assert params[name] == spec.default


def test_unknown_parameter_rejected():
    with pytest.raises(ExtractionError):
        ParameterSet({"BOGUS": 1.0})
    with pytest.raises(ExtractionError):
        default_parameters()["BOGUS"]


def test_updated_is_functional():
    base = default_parameters()
    updated = base.updated({"VTH0": 0.5})
    assert updated["VTH0"] == pytest.approx(0.5)
    assert base["VTH0"] == PARAMETER_SPECS["VTH0"].default


def test_updated_bounds_checked():
    with pytest.raises(ExtractionError):
        default_parameters().updated({"VTH0": 99.0})


def test_subset():
    params = default_parameters()
    sub = params.subset(["U0", "UA"])
    assert set(sub) == {"U0", "UA"}


def test_as_dict_is_copy():
    params = default_parameters()
    d = params.as_dict()
    d["VTH0"] = 123.0
    assert params["VTH0"] != 123.0


def test_spec_rejects_default_outside_bounds():
    from repro.compact.parameters import ParameterSpec
    with pytest.raises(ExtractionError):
        ParameterSpec("X", 10.0, 0.0, 1.0, "-", "bad")
