"""Property-based tests for the parser, packing and DD building blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.placement import pack_rows
from repro.spice.parser import format_value, parse_value
from repro.tcad.dd1d import bernoulli

finite_values = st.floats(min_value=1e-18, max_value=1e12,
                          allow_nan=False, allow_infinity=False)


@given(value=finite_values)
@settings(max_examples=100, deadline=None)
def test_value_format_parse_roundtrip(value):
    """parse(format(v)) stays within formatting precision of v."""
    recovered = parse_value(format_value(value))
    assert recovered == 0 or abs(recovered - value) <= 1e-5 * abs(value)


@given(value=finite_values)
@settings(max_examples=60, deadline=None)
def test_value_roundtrip_negative(value):
    recovered = parse_value(format_value(-value))
    assert abs(recovered + value) <= 1e-5 * abs(value)


@given(widths=st.lists(st.floats(min_value=0.01, max_value=1.0),
                       min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_pack_rows_places_everything_once(widths):
    items = [(f"c{i}", w) for i, w in enumerate(widths)]
    placement = pack_rows(items, row_width=1.0, row_height=1.0)
    placed = [name for row in placement.rows for name, _ in row]
    assert sorted(placed) == sorted(name for name, _ in items)


@given(widths=st.lists(st.floats(min_value=0.01, max_value=1.0),
                       min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_pack_rows_respects_capacity(widths):
    items = [(f"c{i}", w) for i, w in enumerate(widths)]
    placement = pack_rows(items, row_width=1.0, row_height=1.0)
    for row in placement.rows:
        assert sum(w for _, w in row) <= 1.0 + 1e-12


@given(widths=st.lists(st.floats(min_value=0.01, max_value=1.0),
                       min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_pack_rows_at_most_optimal_times_two(widths):
    """FFD is within 2x of the area lower bound (loose but universal)."""
    items = [(f"c{i}", w) for i, w in enumerate(widths)]
    placement = pack_rows(items, row_width=1.0, row_height=1.0)
    lower_bound = max(1, int(np.ceil(sum(widths) - 1e-12)))
    assert placement.n_rows <= 2 * lower_bound


@given(x=st.floats(min_value=-300.0, max_value=300.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_bernoulli_positive(x):
    assert bernoulli(np.array(x)) >= 0.0


@given(x=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_bernoulli_functional_identity(x):
    """B(-x) - B(x) = x, the identity the SG flux relies on."""
    diff = float(bernoulli(np.array(-x)) - bernoulli(np.array(x)))
    assert diff == np.float64(x) or abs(diff - x) < 1e-9 * max(1.0, abs(x))


@given(x=st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_bernoulli_smooth_through_zero(x):
    """The series branch and the exact branch agree near 0."""
    value = float(bernoulli(np.array(x)))
    assert abs(value - (1.0 - x / 2.0)) < 1e-6
