"""Transient integrator: closed-form RC checks, grids, methods."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    dc_source,
    pulse_source,
    transient,
)
from repro.spice.transient import build_time_grid


def rc_circuit(tau_r=1e3, tau_c=1e-12):
    c = Circuit("rc")
    c.add(pulse_source("V1", "in", "0", v1=0.0, v2=1.0, delay=1e-10,
                       rise=1e-12, fall=1e-12, width=20e-9, period=50e-9))
    c.add(Resistor("R1", "in", "out", tau_r))
    c.add(Capacitor("C1", "out", "0", tau_c))
    return c


def test_rc_step_response_be():
    c = rc_circuit()
    res = transient(c, t_stop=4e-9, dt=2e-11, method="be")
    wf = res.waveform("out")
    for n_tau in (1.0, 2.0):
        expected = 1.0 - math.exp(-n_tau)
        measured = float(wf.value(1e-10 + n_tau * 1e-9))
        assert measured == pytest.approx(expected, abs=0.01)


def test_rc_step_response_trap_more_accurate():
    c = rc_circuit()
    t_probe = 1e-10 + 1e-9
    expected = 1.0 - math.exp(-1.0)
    err = {}
    for method in ("be", "trap"):
        res = transient(c, t_stop=2e-9, dt=4e-11, method=method)
        err[method] = abs(float(res.waveform("out").value(t_probe)) -
                          expected)
    assert err["trap"] < err["be"]


def test_initial_condition_from_dc():
    c = rc_circuit()
    res = transient(c, t_stop=5e-11, dt=1e-11)
    assert res.waveform("out").v[0] == pytest.approx(0.0, abs=1e-6)


def test_capacitor_current_charge_balance():
    """The supply charge delivered equals C*V after a full charge."""
    c = rc_circuit()
    res = transient(c, t_stop=10e-9, dt=2e-11)
    i_src = res.current("V1")
    delivered = -i_src.integral()  # source current is negative of branch
    assert delivered == pytest.approx(1e-12 * 1.0, rel=0.02)


def test_record_nodes_subset():
    c = rc_circuit()
    res = transient(c, t_stop=1e-9, dt=1e-10, record_nodes=["out"])
    assert "out" in res.node_voltages
    assert "in" not in res.node_voltages
    with pytest.raises(SimulationError):
        res.waveform("in")


def test_ground_waveform_is_zero():
    c = rc_circuit()
    res = transient(c, t_stop=1e-9, dt=1e-10)
    assert res.waveform("0").maximum() == 0.0


def test_unknown_source_current_raises():
    c = rc_circuit()
    res = transient(c, t_stop=1e-9, dt=1e-10)
    with pytest.raises(SimulationError):
        res.current("VX")


def test_method_validation():
    with pytest.raises(SimulationError):
        transient(rc_circuit(), t_stop=1e-9, dt=1e-10, method="euler")


def test_grid_refines_around_breakpoints():
    grid = build_time_grid(1e-9, 1e-10, [0.5e-9])
    steps = np.diff(grid)
    idx = np.searchsorted(grid, 0.5e-9)
    assert steps[idx] < 1e-11  # refined after the edge
    assert steps[0] == pytest.approx(1e-10)


def test_grid_spans_zero_to_stop():
    grid = build_time_grid(1e-9, 1e-10, [])
    assert grid[0] == 0.0
    assert grid[-1] == pytest.approx(1e-9)
    assert np.all(np.diff(grid) > 0)


def test_grid_validation():
    with pytest.raises(SimulationError):
        build_time_grid(0.0, 1e-10, [])
    with pytest.raises(SimulationError):
        build_time_grid(1e-9, 0.0, [])


def test_pulse_propagates_through_rc():
    c = rc_circuit(tau_r=100.0, tau_c=1e-13)  # tau = 10 ps, fast
    res = transient(c, t_stop=3e-9, dt=2e-11)
    out = res.waveform("out")
    assert out.maximum() > 0.99
