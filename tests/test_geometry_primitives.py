"""Rect / bounding-box primitives."""

import pytest

from repro.errors import LayoutError
from repro.geometry.primitives import BoundingBox, Rect, bounding_rect


def test_rect_dimensions():
    r = Rect(0, 0, 3, 2)
    assert r.width == 3
    assert r.height == 2
    assert r.area == 6


def test_rect_negative_extent_rejected():
    with pytest.raises(LayoutError):
        Rect(1, 0, 0, 1)


def test_rect_zero_area_allowed():
    assert Rect(1, 1, 1, 1).area == 0


def test_translated():
    r = Rect(0, 0, 1, 1).translated(5, -2)
    assert (r.x0, r.y0, r.x1, r.y1) == (5, -2, 6, -1)


def test_expanded_grows_all_sides():
    r = Rect(0, 0, 2, 2).expanded(1)
    assert (r.x0, r.y0, r.x1, r.y1) == (-1, -1, 3, 3)


def test_expanded_negative_margin_shrinks():
    r = Rect(0, 0, 4, 4).expanded(-1)
    assert r.area == pytest.approx(4)


def test_expanded_too_much_shrink_rejected():
    with pytest.raises(LayoutError):
        Rect(0, 0, 1, 1).expanded(-1)


def test_overlaps():
    a = Rect(0, 0, 2, 2)
    assert a.overlaps(Rect(1, 1, 3, 3))
    assert not a.overlaps(Rect(2, 0, 3, 1))  # touching is not overlap
    assert not a.overlaps(Rect(5, 5, 6, 6))


def test_contains():
    outer = Rect(0, 0, 10, 10)
    assert outer.contains(Rect(1, 1, 2, 2))
    assert outer.contains(outer)
    assert not outer.contains(Rect(9, 9, 11, 11))


def test_bounding_rect():
    box = bounding_rect([Rect(0, 0, 1, 1), Rect(5, -1, 6, 3)])
    assert (box.x0, box.y0, box.x1, box.y1) == (0, -1, 6, 3)


def test_bounding_rect_empty_rejected():
    with pytest.raises(LayoutError):
        bounding_rect([])


def test_bounding_box_accumulation():
    box = BoundingBox().including(Rect(0, 0, 1, 1))
    box = box.including(Rect(-2, 0, 0, 5))
    r = box.to_rect()
    assert (r.x0, r.y0, r.x1, r.y1) == (-2, 0, 1, 5)


def test_empty_bounding_box_rejected():
    with pytest.raises(LayoutError):
        BoundingBox().to_rect()
