"""Circuit container and validation."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, Resistor, dc_source
from repro.spice.elements.capacitor import Capacitor


def divider():
    c = Circuit("div")
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "mid", 1e3))
    c.add(Resistor("R2", "mid", "0", 1e3))
    return c


def test_nodes_in_registration_order():
    c = divider()
    assert c.nodes == ["in", "mid"]


def test_ground_not_a_node():
    assert "0" not in divider().nodes


def test_duplicate_element_rejected():
    c = divider()
    with pytest.raises(NetlistError):
        c.add(Resistor("R1", "a", "0", 1.0))


def test_element_lookup():
    c = divider()
    assert c.element("R1").resistance == 1e3
    with pytest.raises(NetlistError):
        c.element("R9")


def test_contains_and_len():
    c = divider()
    assert "V1" in c
    assert "X" not in c
    assert len(c) == 3


def test_unknowns_count_includes_branches():
    c = divider()
    # 2 nodes + 1 voltage-source branch current.
    assert c.n_unknowns == 3


def test_branch_index_after_nodes():
    c = divider()
    assert c.branch_index() == {"V1": 2}


def test_validate_ok():
    divider().validate()


def test_validate_empty():
    with pytest.raises(NetlistError):
        Circuit().validate()


def test_validate_no_ground():
    c = Circuit()
    c.add(Resistor("R1", "a", "b", 1.0))
    with pytest.raises(NetlistError):
        c.validate()


def test_validate_dangling_node():
    c = Circuit()
    c.add(dc_source("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "dangling", 1.0))
    with pytest.raises(NetlistError) as err:
        c.validate()
    assert "dangling" in str(err.value)


def test_bad_node_name_rejected():
    with pytest.raises(NetlistError):
        Circuit().add(Resistor("R1", "", "0", 1.0))


def test_element_validation():
    with pytest.raises(NetlistError):
        Resistor("R1", "a", "0", -5.0)
    with pytest.raises(NetlistError):
        Capacitor("C1", "a", "0", 0.0)
    with pytest.raises(NetlistError):
        Resistor("", "a", "0", 1.0)


def test_summary_mentions_counts():
    text = divider().summary()
    assert "3 elements" in text
    assert "2 nodes" in text
