"""SRH recombination model."""

import numpy as np
import pytest

from repro.constants import Q
from repro.tcad.srh import SrhParameters, generation_leakage, srh_rate

NI = 1e16


def test_equilibrium_has_zero_net_rate():
    params = SrhParameters(n1=NI, p1=NI)
    assert srh_rate(NI, NI, NI, params) == pytest.approx(0.0, abs=1e-20)


def test_excess_carriers_recombine():
    params = SrhParameters(n1=NI, p1=NI)
    assert srh_rate(1e20, 1e20, NI, params) > 0


def test_depletion_generates():
    params = SrhParameters(n1=NI, p1=NI)
    assert srh_rate(1e10, 1e10, NI, params) < 0


def test_full_depletion_generation_rate_limit():
    # n, p -> 0: U -> -ni / (tau_n + tau_p) for midgap traps.
    params = SrhParameters(tau_n=1e-7, tau_p=1e-7, n1=NI, p1=NI)
    rate = srh_rate(0.0, 0.0, NI, params)
    assert rate == pytest.approx(-NI / 2e-7, rel=1e-6)


def test_generation_leakage_scales_with_volume():
    params = SrhParameters()
    i1 = generation_leakage(1e-24, NI, params)
    i2 = generation_leakage(2e-24, NI, params)
    assert i2 == pytest.approx(2 * i1)
    assert i1 == pytest.approx(Q * NI / (params.tau_n + params.tau_p) * 1e-24)


def test_leakage_magnitude_is_small():
    # Device-scale volume gives a deeply sub-pA floor.
    params = SrhParameters()
    volume = 192e-9 * 24e-9 * 7e-9
    assert generation_leakage(volume, NI, params) < 1e-12


def test_vectorised_rate():
    params = SrhParameters()
    n = np.array([1e10, 1e16, 1e20])
    p = np.array([1e10, 1e16, 1e20])
    rates = srh_rate(n, p, NI, params)
    assert rates.shape == (3,)
    assert rates[0] < 0 < rates[2]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SrhParameters(tau_n=0.0)
    with pytest.raises(ValueError):
        SrhParameters(n1=-1.0)
    with pytest.raises(ValueError):
        generation_leakage(-1.0, NI, SrhParameters())
