"""Validated environment/parameter resolution.

Every timing knob in the library (lock timeouts, lease TTLs, drain
windows, service queue bounds) flows through these helpers so that a
zero, negative, non-numeric, NaN or infinite value is rejected with a
clear :class:`~repro.errors.ConfigError` *at startup* — before it can
propagate into a ``flock`` wait loop (where ``deadline = now + nan``
never triggers), a lease heartbeat, or a drain window.

Explicit arguments are validated exactly like environment values:
``FileLock(path, timeout=-1)`` is as wrong as
``REPRO_LOCK_TIMEOUT=-1`` and fails the same way.
"""

from __future__ import annotations

import math
import os
from typing import Optional

from repro.errors import ConfigError


def require_finite_float(name: str, value, *,
                         minimum: Optional[float] = None,
                         positive: bool = False) -> float:
    """Validate one float setting; :class:`ConfigError` when unusable.

    ``name`` labels the error message (an env-var name or parameter
    name).  ``positive`` demands ``> 0``; ``minimum`` demands
    ``>= minimum``.  NaN and infinities are always rejected — both
    parse as floats but turn wait-loop deadlines into never/always.
    """
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{name} must be a number, got {value!r}") from None
    if math.isnan(number) or math.isinf(number):
        raise ConfigError(
            f"{name} must be finite, got {value!r}")
    if positive and number <= 0:
        raise ConfigError(
            f"{name} must be positive, got {value!r}")
    if minimum is not None and number < minimum:
        raise ConfigError(
            f"{name} must be >= {minimum:g}, got {value!r}")
    return number


def resolve_float(env_name: str, default: float,
                  explicit=None, *,
                  minimum: Optional[float] = None,
                  positive: bool = False) -> float:
    """Resolve a float: explicit > environment > default.

    Both the explicit value and the environment value are validated;
    the default is trusted (it is library code, not user input).
    """
    if explicit is not None:
        return require_finite_float(env_name, explicit,
                                    minimum=minimum, positive=positive)
    raw = os.environ.get(env_name)
    if raw:
        return require_finite_float(env_name, raw,
                                    minimum=minimum, positive=positive)
    return default


def require_int(name: str, value, *,
                minimum: Optional[int] = None,
                positive: bool = False) -> int:
    """Validate one integer setting; :class:`ConfigError` when unusable."""
    if isinstance(value, bool):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    try:
        number = int(value)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{name} must be an integer, got {value!r}") from None
    if positive and number <= 0:
        raise ConfigError(
            f"{name} must be positive, got {value!r}")
    if minimum is not None and number < minimum:
        raise ConfigError(
            f"{name} must be >= {minimum}, got {value!r}")
    return number


def resolve_int(env_name: str, default: int,
                explicit=None, *,
                minimum: Optional[int] = None,
                positive: bool = False) -> int:
    """Resolve an integer: explicit > environment > default."""
    if explicit is not None:
        return require_int(env_name, explicit,
                           minimum=minimum, positive=positive)
    raw = os.environ.get(env_name)
    if raw:
        return require_int(env_name, raw,
                           minimum=minimum, positive=positive)
    return default
