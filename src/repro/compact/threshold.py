"""Threshold voltage with short-channel corrections (VTH0/DVT0/DVT1/ETAB).

Follows the BSIM characteristic-length formulation:

    dVth_SCE = 0.5 * DVT0 / (cosh(DVT1 * L / lt) - 1) * Vbi_eff
    Vth      = VTH0 - dVth_SCE - ETAB * Vds

with ``lt = sqrt(eps_si/eps_ox * TSI * TOX)`` the SOI natural length.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import cosh, sqrt

import numpy as np

from repro.materials import SILICON, SILICON_DIOXIDE

#: Effective junction built-in potential entering the roll-off term [V].
BUILT_IN_EFFECTIVE = 0.55


@dataclass(frozen=True)
class ThresholdModel:
    """Threshold evaluator bound to a geometry (L, TSI, TOX)."""

    l_gate: float
    t_si: float
    t_ox: float

    def __post_init__(self) -> None:
        if min(self.l_gate, self.t_si, self.t_ox) <= 0:
            raise ValueError("geometry must be positive")

    @property
    def natural_length(self) -> float:
        """SOI characteristic length lt [m]."""
        ratio = SILICON.permittivity / SILICON_DIOXIDE.permittivity
        return sqrt(ratio * self.t_si * self.t_ox)

    def sce_shift(self, dvt0: float, dvt1: float) -> float:
        """Short-channel V_th reduction [V] (bias independent part)."""
        arg = dvt1 * self.l_gate / self.natural_length
        denom = cosh(min(arg, 300.0)) - 1.0
        if denom < 1e-12:
            denom = 1e-12
        return 0.5 * dvt0 / denom * BUILT_IN_EFFECTIVE

    def vth(self, vth0: float, dvt0: float, dvt1: float,
            etab: float, vds) -> np.ndarray:
        """Threshold voltage [V] versus drain bias (vectorised in vds)."""
        vds = np.asarray(vds, dtype=float)
        return vth0 - self.sce_shift(dvt0, dvt1) - etab * vds
