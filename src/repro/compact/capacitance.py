"""CAPMOD=3-style capacitance / charge model.

Total gate capacitance at Vds = 0 (the C-V extraction condition):

    Cgg(Vg) = W L Cox * f(Vg)                       intrinsic channel
            + W (CGSO + CGDO + CF)                  overlap + outer fringe
            + W (CGSL + CGDL) * g(Vg)               bias-dependent inner fringe

with ``f`` the logistic inversion transition centred at ``Vth + DELVT``
with width ``MOIN * kT/q``, and ``g`` a tanh turn-on with transition
voltage CKAPPA controlling the lower-biased region (exactly the roles the
paper assigns to CKAPPA/CGSL/CGDL/DELVT/MOIN/CF/CGSO/CGDO).

For transient simulation the same expressions are integrated into terminal
charges: the intrinsic channel charge uses the soft-plus antiderivative of
``f`` partitioned 50/50 between source and drain, and overlap charges are
linear in their controlling voltages — a conservative charge model, so the
circuit simulator's charge balance is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compact.subthreshold import soft_plus

_EXP_CLIP = 80.0


@dataclass(frozen=True)
class CapacitanceParameters:
    """Capacitance-stage parameters (see Table II / Section III-B)."""

    ckappa: float
    delvt: float
    cf: float
    cgso: float
    cgdo: float
    moin: float
    cgsl: float
    cgdl: float


def inversion_transition(vg, vth: float, delvt: float, moin: float,
                         vt: float) -> np.ndarray:
    """Logistic transition factor f(Vg) in [0, 1]."""
    vg = np.asarray(vg, dtype=float)
    width = max(moin, 0.1) * vt
    x = np.clip((vg - (vth + delvt)) / width, -_EXP_CLIP, _EXP_CLIP)
    return 1.0 / (1.0 + np.exp(-x))


def fringe_turn_on(vg, ckappa: float) -> np.ndarray:
    """Bias-dependent inner-fringe activation g(Vg) in [0, 1]."""
    vg = np.asarray(vg, dtype=float)
    return 0.5 * (1.0 + np.tanh(vg / max(ckappa, 1e-3)))


def gate_capacitance(vg, params: CapacitanceParameters, vth: float,
                     cox: float, width: float, length: float,
                     vt: float) -> np.ndarray:
    """Total Cgg(Vg) [F] at Vds = 0."""
    f = inversion_transition(vg, vth, params.delvt, params.moin, vt)
    g = fringe_turn_on(vg, params.ckappa)
    intrinsic = width * length * cox * f
    static = width * (params.cgso + params.cgdo + params.cf)
    dynamic = width * (params.cgsl + params.cgdl) * g
    return intrinsic + static + dynamic


def intrinsic_channel_charge(vg, params: CapacitanceParameters, vth: float,
                             cox: float, width: float, length: float,
                             vt: float) -> np.ndarray:
    """Gate-side intrinsic channel charge [C]: the antiderivative of the
    intrinsic part of :func:`gate_capacitance` (soft-plus form)."""
    width_v = max(params.moin, 0.1) * vt
    q = soft_plus(np.asarray(vg, dtype=float) - (vth + params.delvt), width_v)
    return width * length * cox * q


def fringe_charge(vg, params: CapacitanceParameters, width: float,
                  side: str) -> np.ndarray:
    """Bias-dependent inner-fringe charge [C] for ``side`` in {'s', 'd'}.

    Antiderivative of ``c * g(v)``: c * (v + CKAPPA ln cosh(v/CKAPPA)) / 2.
    """
    vg = np.asarray(vg, dtype=float)
    c = params.cgsl if side == "s" else params.cgdl
    k = max(params.ckappa, 1e-3)
    ratio = np.clip(vg / k, -_EXP_CLIP, _EXP_CLIP)
    anti = 0.5 * (vg + k * (np.logaddexp(ratio, -ratio) - np.log(2.0)))
    return width * c * anti
