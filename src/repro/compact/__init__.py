"""BSIMSOI4-lite: a level-70-style compact model.

Implements the paper's named SPICE parameters (Table II constants and the
Section III-B extraction parameters) with BSIM-class analytic equations:
a unified smooth overdrive, MOBMOD=4-style mobility degradation,
characteristic-length short-channel corrections (DVT0/DVT1), DIBL (ETAB),
velocity saturation (VSAT), gate-bias-dependent Early voltage (PVAG) and
a CAPMOD=3-style capacitance model (CKAPPA/DELVT/CF/CGSO/CGDO/MOIN/
CGSL/CGDL).  The model is analytic and vectorised — this is what makes
standard-cell SPICE simulation tractable, exactly the role BSIMSOI4 plays
in the paper.
"""

from repro.compact.parameters import (
    EXTRACTION_STAGE_PARAMETERS,
    LEVEL70_CONSTANTS,
    ParameterSet,
    ParameterSpec,
    default_parameters,
)
from repro.compact.model import BsimSoi4Lite
from repro.compact.cards import parse_model_card, render_model_card

__all__ = [
    "ParameterSpec",
    "ParameterSet",
    "default_parameters",
    "LEVEL70_CONSTANTS",
    "EXTRACTION_STAGE_PARAMETERS",
    "BsimSoi4Lite",
    "render_model_card",
    "parse_model_card",
]
