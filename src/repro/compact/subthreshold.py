"""Subthreshold swing and the unified overdrive (CDSC/CDSCD).

The swing ideality factor is

    n = 1 + (CDSC + CDSCD * Vds) / Cox

and the smooth overdrive that unifies weak and strong inversion is the
standard BSIM soft-plus form

    Vgsteff = n * vt * ln(1 + exp((Vgs - Vth) / (n * vt))).
"""

from __future__ import annotations

import numpy as np

#: Clip for exponential arguments.
_EXP_CLIP = 80.0


def ideality_factor(cdsc: float, cdscd: float, cox: float, vds) -> np.ndarray:
    """Swing ideality factor n (dimensionless, >= 1)."""
    vds = np.asarray(vds, dtype=float)
    n = 1.0 + (cdsc + cdscd * vds) / cox
    return np.maximum(n, 1.0)


def soft_plus(x: np.ndarray, scale) -> np.ndarray:
    """Numerically safe ``scale * ln(1 + exp(x / scale))`` (vectorised).

    ``scale`` may be a scalar or an array broadcastable against ``x``.
    """
    x = np.asarray(x, dtype=float)
    scale = np.asarray(scale, dtype=float)
    ratio = x / scale
    out = np.where(
        ratio > _EXP_CLIP,
        x,
        scale * np.log1p(np.exp(np.clip(ratio, -_EXP_CLIP, _EXP_CLIP))),
    )
    return out


def effective_overdrive(vgs, vth, n, vt: float) -> np.ndarray:
    """Unified overdrive Vgsteff [V] (always positive)."""
    vgs = np.asarray(vgs, dtype=float)
    vth = np.asarray(vth, dtype=float)
    n = np.asarray(n, dtype=float)
    return soft_plus(vgs - vth, n * vt)


def overdrive_derivative(vgs, vth, n, vt: float) -> np.ndarray:
    """d(Vgsteff)/d(Vgs) — the logistic transition factor in [0, 1]."""
    vgs = np.asarray(vgs, dtype=float)
    vth = np.asarray(vth, dtype=float)
    n = np.asarray(n, dtype=float)
    ratio = np.clip((vgs - vth) / (n * vt), -_EXP_CLIP, _EXP_CLIP)
    return 1.0 / (1.0 + np.exp(-ratio))
