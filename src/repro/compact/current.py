"""Unified drain-current expression (VSAT, PVAG, CLM).

Standard BSIM-class structure:

    Esat    = 2 VSAT / mu_eff
    Vdsat   = Esat L Vgsteff / (Esat L + Vgsteff) + 3 vt      (smooth)
    Vdseff  = smooth-min(Vds, Vdsat)
    Ids0    = mu_eff Cox (W/L) Vgsteff (1 - Vdseff/(2(Vgsteff+2vt)))
                  * Vdseff / (1 + Vdseff/(Esat L))
    VA      = VA0 (1 + PVAG Vgsteff / (Esat L))
    Ids     = Ids0 (1 + (Vds - Vdseff) / VA)

plus a fixed generation-leakage floor so the log-scale subthreshold fit
is well posed at Vgs = 0 (the paper's TCAD includes SRH generation).
"""

from __future__ import annotations

import numpy as np

#: Base Early voltage [V] before the PVAG correction.
VA_BASE = 4.0

#: Smoothing voltage for the Vdseff clamp [V].
DELTA_VDSEFF = 0.01

#: Below this |Vds| [V] the textbook Vdseff expression loses all its
#: significant bits (it subtracts two O(Vdsat) numbers agreeing to
#: ~eps*Vdsat ~ 1e-17 V) and is evaluated through the conjugate form
#: instead.  Above it the textbook form is accurate to <~1e-5 relative
#: and is kept bit-for-bit so committed goldens stay byte-identical.
VDS_CONJUGATE_SWITCH = 1e-12

#: Leakage floor per unit width [A/m] (SRH generation surrogate).
LEAKAGE_PER_WIDTH = 1.2e-7


def saturation_voltage(vgsteff, esat_l, vt: float) -> np.ndarray:
    """Smooth saturation voltage [V].

    Classic velocity-saturation form evaluated on the bulk-charge
    voltage (Vgsteff + 2 vt): reduces to ~2 vt in subthreshold (the
    diffusion saturation voltage) and to the Esat-limited overdrive in
    strong inversion, and — unlike an additive +3 vt floor — never lets
    Vdseff run past the point where the triode expression would start
    decreasing.
    """
    vgsteff = np.asarray(vgsteff, dtype=float)
    esat_l = np.asarray(esat_l, dtype=float)
    v_bulk = vgsteff + 2.0 * vt
    return esat_l * v_bulk / (esat_l + v_bulk)


def effective_vds(vds, vdsat) -> np.ndarray:
    """Smooth minimum of Vds and Vdsat (BSIM Vdseff).

    The textbook form ``vdsat - (diff + sqrt(diff^2 + 4 delta
    vdsat)) / 2`` subtracts two nearly equal O(vdsat) numbers when
    ``vds << eps * vdsat``, rounding Vdseff (hence Ids) to zero and
    breaking monotonicity in Vgs at vanishing drain bias.  Its exact
    algebraic conjugate ``2 vdsat vds / (vdsat + vds + delta + root)``
    keeps every term positive and stays accurate down to denormal Vds,
    so it takes over below :data:`VDS_CONJUGATE_SWITCH`.
    """
    vds = np.asarray(vds, dtype=float)
    vdsat = np.asarray(vdsat, dtype=float)
    delta = DELTA_VDSEFF
    diff = vdsat - vds - delta
    root = np.sqrt(diff * diff + 4.0 * delta * vdsat)
    smooth = vdsat - 0.5 * (diff + root)
    conjugate = 2.0 * vdsat * vds / (vdsat + vds + delta + root)
    smooth = np.where(np.abs(vds) < VDS_CONJUGATE_SWITCH,
                      conjugate, smooth)
    # Exactly zero at vds = 0; negative vds clamps to 0.
    return np.maximum(smooth, 0.0)


def drain_current(vgsteff, vds, mu_eff, cox: float, width: float,
                  length: float, vsat: float, pvag: float,
                  vt: float) -> np.ndarray:
    """Drain current [A] (vectorised; all voltage args broadcastable)."""
    vgsteff = np.asarray(vgsteff, dtype=float)
    vds = np.asarray(vds, dtype=float)
    mu_eff = np.asarray(mu_eff, dtype=float)

    esat_l = 2.0 * vsat / np.maximum(mu_eff, 1e-12) * length
    vdsat = saturation_voltage(vgsteff, esat_l, vt)
    vdseff = effective_vds(vds, vdsat)

    # BSIM bulk-charge form: stays positive down to deep subthreshold.
    # The linearisation term is clamped at its saturation value (1/2)
    # so the current cannot dip with rising Vds once Vdseff exceeds the
    # bulk-charge voltage (deep-subthreshold artefact otherwise).
    v_bulk = vgsteff + 2.0 * vt
    bulk_term = 1.0 - np.minimum(vdseff, v_bulk) / (2.0 * v_bulk)
    ids0 = (mu_eff * cox * (width / length) *
            vgsteff * bulk_term *
            vdseff / (1.0 + vdseff / esat_l))

    va = VA_BASE * (1.0 + pvag * vgsteff / esat_l)
    va = np.maximum(va, 0.3)
    clm = 1.0 + np.maximum(vds - vdseff, 0.0) / va

    floor = LEAKAGE_PER_WIDTH * width * vds / (vds + vt + 1e-12)
    return ids0 * clm + floor
