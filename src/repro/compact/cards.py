""".model card rendering and parsing.

The extraction flow emits HSPICE-style level-70 model cards; this module
round-trips them so extracted devices can be stored as plain text, the
way a real PDK ships its transistor models.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from repro.errors import ExtractionError
from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import (
    LEVEL70_CONSTANTS,
    PARAMETER_SPECS,
    ParameterSet,
)
from repro.tcad.device import Polarity


def render_model_card(model: BsimSoi4Lite) -> str:
    """Render an HSPICE-style ``.model`` card for a fitted model."""
    kind = "nmos" if model.polarity is Polarity.NMOS else "pmos"
    lines = [f".model {model.name} {kind}"]
    constants = dict(LEVEL70_CONSTANTS)
    constants["W"] = model.width
    constants["L"] = model.length
    constants["TSI"] = model.t_si
    constants["TOX"] = model.t_ox
    for name, value in constants.items():
        lines.append(f"+ {name.lower()}={value:g}")
    for name in sorted(PARAMETER_SPECS):
        lines.append(f"+ {name.lower()}={model.p(name):.6g}")
    return "\n".join(lines) + "\n"


_MODEL_RE = re.compile(r"^\.model\s+(\S+)\s+(nmos|pmos)\s*$", re.IGNORECASE)
_ASSIGN_RE = re.compile(r"([A-Za-z0-9_]+)\s*=\s*([-+0-9.eE]+)")


def parse_model_card(text: str) -> BsimSoi4Lite:
    """Parse a card produced by :func:`render_model_card`."""
    lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
    if not lines:
        raise ExtractionError("empty model card")
    header = _MODEL_RE.match(lines[0])
    if header is None:
        raise ExtractionError(f"bad model header: {lines[0]!r}")
    name = header.group(1)
    polarity = (Polarity.NMOS if header.group(2).lower() == "nmos"
                else Polarity.PMOS)

    assignments: Dict[str, float] = {}
    for line in lines[1:]:
        if not line.startswith("+"):
            raise ExtractionError(f"bad continuation line: {line!r}")
        for key, value in _ASSIGN_RE.findall(line):
            assignments[key.upper()] = float(value)

    extractable = {k: v for k, v in assignments.items()
                   if k in PARAMETER_SPECS}
    params = ParameterSet(extractable)
    return BsimSoi4Lite(
        params=params,
        polarity=polarity,
        width=assignments.get("W", LEVEL70_CONSTANTS["W"]),
        length=assignments.get("L", 24e-9),
        t_si=assignments.get("TSI", LEVEL70_CONSTANTS["TSI"]),
        t_ox=assignments.get("TOX", LEVEL70_CONSTANTS["TOX"]),
        name=name,
    )


def card_roundtrip_equal(a: BsimSoi4Lite, b: BsimSoi4Lite,
                         tol: float = 1e-9) -> Tuple[bool, str]:
    """Compare two models parameter-by-parameter (testing helper)."""
    for name in PARAMETER_SPECS:
        if abs(a.p(name) - b.p(name)) > tol * max(1.0, abs(a.p(name))):
            return False, name
    if a.polarity is not b.polarity:
        return False, "polarity"
    return True, ""
