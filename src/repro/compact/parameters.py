"""Level-70 parameter table for the BSIMSOI4-lite model.

Two groups, mirroring the paper:

* :data:`LEVEL70_CONSTANTS` — the Table II constants and flags that are
  *set*, not extracted (LEVEL, MOBMOD, CAPMOD, IGCMOD, SOIMOD, TSI, TOX,
  TBOX, L, W, TNOM);
* the extractable parameters of Section III-B, each tagged with the
  extraction stage(s) that fit it and bounded for the optimiser.

The "lite" semantics of each parameter are documented per entry; they
follow the BSIMSOI4 intent (mobility law, short-channel V_th, subthreshold
coupling, saturation, overlap capacitance) with simplified equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from repro.errors import ExtractionError

#: Stage names (Figure 3 of the paper).
STAGE_LOW_DRAIN = "low_drain"
STAGE_HIGH_DRAIN = "high_drain"
STAGE_CAPACITANCE = "capacitance"


@dataclass(frozen=True)
class ParameterSpec:
    """Specification of one extractable model parameter.

    Attributes
    ----------
    name:
        Level-70 parameter name (upper case).
    default:
        Starting value before extraction.
    lower, upper:
        Optimiser bounds.
    unit:
        Physical unit string (documentation only).
    description:
        One-line meaning in the lite model.
    stages:
        Extraction stages that are allowed to adjust this parameter.
    """

    name: str
    default: float
    lower: float
    upper: float
    unit: str
    description: str
    stages: tuple = ()

    def __post_init__(self) -> None:
        if not self.lower <= self.default <= self.upper:
            raise ExtractionError(
                f"{self.name}: default {self.default} outside bounds "
                f"[{self.lower}, {self.upper}]")


#: Table II — constants and flags used in extraction (not fitted).
LEVEL70_CONSTANTS: Dict[str, float] = {
    "LEVEL": 70,       # Spice model selector
    "MOBMOD": 4,       # mobility model selector
    "CAPMOD": 3,       # short-channel capacitance model flag
    "IGCMOD": 0,       # gate-to-channel tunnelling off
    "SOIMOD": 2,       # ideal fully-depleted SOI
    "TSI": 7e-9,       # silicon thickness [m]
    "TOX": 1e-9,       # oxide thickness [m]
    "TBOX": 100e-9,    # buried oxide thickness [m]
    "L": 48e-9,        # channel length entry of Table II [m]
    "W": 192e-9,       # channel width [m]
    "TNOM": 25.0,      # nominal temperature [C]
}

#: Drawn gate length used by the model equations (Table I, L_G = 24 nm).
#: Table II's L refers to the S/D-to-S/D printed length; the transport
#: length is the gate length.
DRAWN_GATE_LENGTH = 24e-9


_SPECS: List[ParameterSpec] = [
    # ---- threshold / short channel -------------------------------------
    ParameterSpec("VTH0", 0.40, 0.05, 0.80, "V",
                  "long-channel threshold voltage",
                  (STAGE_HIGH_DRAIN,)),
    ParameterSpec("DVT0", 1.0, 0.0, 12.0, "-",
                  "short-channel Vth roll-off magnitude",
                  (STAGE_LOW_DRAIN, STAGE_HIGH_DRAIN)),
    ParameterSpec("DVT1", 0.8, 0.15, 4.0, "-",
                  "short-channel roll-off length sensitivity",
                  (STAGE_LOW_DRAIN, STAGE_HIGH_DRAIN)),
    ParameterSpec("ETAB", 0.02, 0.0, 0.35, "V/V",
                  "drain coupling to the barrier (DIBL)",
                  (STAGE_HIGH_DRAIN,)),
    # ---- subthreshold slope --------------------------------------------
    ParameterSpec("CDSC", 1.0e-4, 0.0, 5.0e-2, "F/m^2",
                  "channel-to-S/D coupling capacitance (swing)",
                  (STAGE_LOW_DRAIN, STAGE_HIGH_DRAIN)),
    ParameterSpec("CDSCD", 0.0, 0.0, 5.0e-2, "F/m^2/V",
                  "drain-bias dependence of CDSC",
                  (STAGE_HIGH_DRAIN,)),
    # ---- mobility -------------------------------------------------------
    ParameterSpec("U0", 0.045, 0.005, 0.2, "m^2/Vs",
                  "low-field mobility",
                  (STAGE_LOW_DRAIN, STAGE_HIGH_DRAIN)),
    ParameterSpec("UA", 1.5e-9, 0.0, 1.0e-7, "m/V",
                  "first-order vertical-field mobility degradation",
                  (STAGE_LOW_DRAIN, STAGE_HIGH_DRAIN)),
    ParameterSpec("UB", 1.0e-18, 0.0, 1.0e-16, "m^2/V^2",
                  "second-order vertical-field mobility degradation",
                  (STAGE_LOW_DRAIN,)),
    ParameterSpec("UD", 0.0, 0.0, 2.0, "-",
                  "Coulomb-scattering mobility term weight",
                  (STAGE_LOW_DRAIN,)),
    ParameterSpec("UCS", 1.0, 0.3, 3.0, "-",
                  "Coulomb-scattering exponent",
                  (STAGE_LOW_DRAIN,)),
    # ---- saturation / output conductance --------------------------------
    ParameterSpec("VSAT", 9.0e4, 2.0e4, 4.0e5, "m/s",
                  "carrier saturation velocity",
                  (STAGE_HIGH_DRAIN,)),
    ParameterSpec("PVAG", 0.0, -0.9, 20.0, "-",
                  "gate-bias dependence of the Early voltage",
                  (STAGE_HIGH_DRAIN,)),
    # ---- capacitance -----------------------------------------------------
    ParameterSpec("CKAPPA", 0.6, 0.05, 3.0, "V",
                  "bias-transition voltage of the inner fringe caps",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("DELVT", 0.0, -0.3, 0.3, "V",
                  "threshold shift applied to the C-V transition",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("CF", 5.0e-11, 0.0, 5.0e-10, "F/m",
                  "outer fringe capacitance per width",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("CGSO", 5.0e-11, 0.0, 8.0e-10, "F/m",
                  "gate-source overlap capacitance per width",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("CGDO", 5.0e-11, 0.0, 8.0e-10, "F/m",
                  "gate-drain overlap capacitance per width",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("MOIN", 3.0, 0.5, 15.0, "-",
                  "moderate-inversion C-V transition width (in kT/q)",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("CGSL", 0.0, 0.0, 5.0e-10, "F/m",
                  "bias-dependent gate-source inner fringe",
                  (STAGE_CAPACITANCE,)),
    ParameterSpec("CGDL", 0.0, 0.0, 5.0e-10, "F/m",
                  "bias-dependent gate-drain inner fringe",
                  (STAGE_CAPACITANCE,)),
]

PARAMETER_SPECS: Dict[str, ParameterSpec] = {spec.name: spec for spec in _SPECS}

#: Stage -> parameter names fitted in that stage (Section III-B lists).
EXTRACTION_STAGE_PARAMETERS: Dict[str, List[str]] = {
    STAGE_LOW_DRAIN: ["CDSC", "U0", "UA", "UB", "UD", "UCS", "DVT0", "DVT1"],
    STAGE_HIGH_DRAIN: ["CDSC", "CDSCD", "U0", "UA", "VTH0", "PVAG",
                       "DVT0", "DVT1", "ETAB", "VSAT"],
    STAGE_CAPACITANCE: ["CKAPPA", "DELVT", "CF", "CGSO", "CGDO", "MOIN",
                        "CGSL", "CGDL"],
}


@dataclass
class ParameterSet:
    """A concrete assignment of every extractable parameter.

    Behaves like a mapping restricted to known parameter names; unknown
    names raise :class:`ExtractionError` immediately, which catches typos
    in extraction stage definitions.
    """

    values: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        merged = {name: spec.default for name, spec in PARAMETER_SPECS.items()}
        for name, value in self.values.items():
            if name not in PARAMETER_SPECS:
                raise ExtractionError(f"unknown parameter {name!r}")
            merged[name] = float(value)
        self.values = merged

    def __getitem__(self, name: str) -> float:
        try:
            return self.values[name]
        except KeyError:
            raise ExtractionError(f"unknown parameter {name!r}") from None

    def updated(self, updates: Mapping[str, float]) -> "ParameterSet":
        """Return a copy with ``updates`` applied (bounds-checked)."""
        for name, value in updates.items():
            spec = PARAMETER_SPECS.get(name)
            if spec is None:
                raise ExtractionError(f"unknown parameter {name!r}")
            if not (spec.lower <= value <= spec.upper):
                raise ExtractionError(
                    f"{name}={value} outside bounds "
                    f"[{spec.lower}, {spec.upper}]")
        new_values = dict(self.values)
        new_values.update({k: float(v) for k, v in updates.items()})
        return ParameterSet(new_values)

    def subset(self, names: Iterable[str]) -> Dict[str, float]:
        """Extract a {name: value} dict for the given names."""
        return {name: self[name] for name in names}

    def as_dict(self) -> Dict[str, float]:
        """Full parameter dictionary (copy)."""
        return dict(self.values)


def default_parameters() -> ParameterSet:
    """A parameter set at the documented defaults."""
    return ParameterSet()
