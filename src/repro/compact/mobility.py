"""MOBMOD=4-style effective mobility (U0/UA/UB/UD/UCS).

    mu_eff = U0 / (1 + UA * Eeff + UB * Eeff^2
                     + UD * (vt / (Vgsteff + 2 vt))^UCS)

with the effective vertical field estimated from the overdrive,
``Eeff = (Vgsteff + 2 Vth_ref) / (6 TOX)`` — the standard BSIM surrogate.
"""

from __future__ import annotations

import numpy as np

#: Reference voltage entering the Eeff surrogate [V].
EEFF_VTH_REF = 0.4


def effective_field(vgsteff, t_ox: float) -> np.ndarray:
    """Vertical effective field surrogate [V/m]."""
    vgsteff = np.asarray(vgsteff, dtype=float)
    return (vgsteff + 2.0 * EEFF_VTH_REF) / (6.0 * t_ox)


def effective_mobility(vgsteff, t_ox: float, u0: float, ua: float,
                       ub: float, ud: float, ucs: float,
                       vt: float) -> np.ndarray:
    """Effective mobility [m^2/Vs] (vectorised in vgsteff)."""
    vgsteff = np.asarray(vgsteff, dtype=float)
    e_eff = effective_field(vgsteff, t_ox)
    denom = 1.0 + ua * e_eff + ub * e_eff * e_eff
    if ud > 0.0:
        coulomb = (vt / (vgsteff + 2.0 * vt)) ** ucs
        denom = denom + ud * coulomb
    return u0 / np.maximum(denom, 1e-6)
