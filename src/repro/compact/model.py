"""The BSIMSOI4-lite model facade.

Combines the threshold, subthreshold, mobility, current and capacitance
submodules into a single evaluator with the interface the circuit
simulator and the extraction flow consume:

* :meth:`BsimSoi4Lite.ids` — polarity-aware drain current (SPICE signs),
* :meth:`BsimSoi4Lite.ids_magnitude` — vectorised magnitude-space current
  (extraction fitting),
* :meth:`BsimSoi4Lite.cgg` — total gate capacitance at Vds = 0,
* :meth:`BsimSoi4Lite.charges` — conservative terminal charges (qg, qd,
  qs) for transient analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.constants import thermal_voltage
from repro.errors import SimulationError
from repro.materials import SILICON_DIOXIDE
from repro.compact import capacitance as cap_mod
from repro.compact import current as cur_mod
from repro.compact import mobility as mob_mod
from repro.compact.parameters import (
    DRAWN_GATE_LENGTH,
    LEVEL70_CONSTANTS,
    ParameterSet,
)
from repro.compact.subthreshold import effective_overdrive, ideality_factor
from repro.compact.threshold import ThresholdModel
from repro.tcad.device import Polarity


@dataclass
class BsimSoi4Lite:
    """A level-70-lite transistor model instance.

    Parameters
    ----------
    params:
        Extractable parameter values.
    polarity:
        NMOS or PMOS; the analytic core works in magnitude space and this
        class mirrors the signs.
    width:
        Electrical width [m] (Table II: 192 nm).
    length:
        Transport gate length [m] (Table I: L_G = 24 nm).
    temperature:
        Kelvin (Table II TNOM is 25 C).
    name:
        Model-card name.
    """

    params: ParameterSet
    polarity: Polarity = Polarity.NMOS
    width: float = float(LEVEL70_CONSTANTS["W"])
    length: float = DRAWN_GATE_LENGTH
    t_si: float = float(LEVEL70_CONSTANTS["TSI"])
    t_ox: float = float(LEVEL70_CONSTANTS["TOX"])
    temperature: float = 298.15
    name: str = "m_lite"

    def __post_init__(self) -> None:
        if min(self.width, self.length, self.t_si, self.t_ox) <= 0:
            raise SimulationError("model geometry must be positive")
        self.vt_thermal = thermal_voltage(self.temperature)
        self.cox = SILICON_DIOXIDE.permittivity / self.t_ox
        self._threshold = ThresholdModel(self.length, self.t_si, self.t_ox)

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------
    def with_params(self, updates: Dict[str, float]) -> "BsimSoi4Lite":
        """Return a copy with updated extractable parameters."""
        return replace(self, params=self.params.updated(updates))

    def p(self, name: str) -> float:
        """Shorthand parameter accessor."""
        return self.params[name]

    def to_dict(self) -> Dict:
        """JSON-compatible representation (for on-disk caching)."""
        return {
            "params": self.params.as_dict(),
            "polarity": self.polarity.value,
            "width": self.width,
            "length": self.length,
            "t_si": self.t_si,
            "t_ox": self.t_ox,
            "temperature": self.temperature,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BsimSoi4Lite":
        """Inverse of :meth:`to_dict`."""
        return cls(
            params=ParameterSet(dict(data["params"])),
            polarity=Polarity(data["polarity"]),
            width=data["width"],
            length=data["length"],
            t_si=data["t_si"],
            t_ox=data["t_ox"],
            temperature=data.get("temperature", 298.15),
            name=data.get("name", "m_lite"),
        )

    # ------------------------------------------------------------------
    # DC current
    # ------------------------------------------------------------------
    def vth(self, vds=0.0) -> np.ndarray:
        """Threshold voltage [V] vs (magnitude-space) drain bias."""
        return self._threshold.vth(self.p("VTH0"), self.p("DVT0"),
                                   self.p("DVT1"), self.p("ETAB"), vds)

    def ids_magnitude(self, vgs, vds) -> np.ndarray:
        """|I_D| [A] in magnitude space (vectorised, vds >= 0)."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vth = self.vth(vds)
        n = ideality_factor(self.p("CDSC"), self.p("CDSCD"), self.cox, vds)
        vgsteff = effective_overdrive(vgs, vth, n, self.vt_thermal)
        mu = mob_mod.effective_mobility(
            vgsteff, self.t_ox, self.p("U0"), self.p("UA"),
            self.p("UB"), self.p("UD"), self.p("UCS"), self.vt_thermal)
        return cur_mod.drain_current(
            vgsteff, vds, mu, self.cox, self.width, self.length,
            self.p("VSAT"), self.p("PVAG"), self.vt_thermal)

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current [A] with SPICE signs (PMOS takes negative biases).

        Negative magnitude-space ``vds`` (reverse operation) is handled by
        source/drain exchange symmetry.
        """
        sign = self.polarity.sign
        vgs_m = sign * vgs
        vds_m = sign * vds
        if vds_m >= 0:
            return sign * float(self.ids_magnitude(vgs_m, vds_m))
        return -sign * float(self.ids_magnitude(vgs_m - vds_m, -vds_m))

    def ids_batch(self, vgs, vds) -> np.ndarray:
        """Vectorised :meth:`ids` over arrays of bias points.

        Used by the circuit simulator to evaluate the nominal point and
        all finite-difference points in one call.
        """
        sign = self.polarity.sign
        vgs_m = sign * np.asarray(vgs, dtype=float)
        vds_m = sign * np.asarray(vds, dtype=float)
        reverse = vds_m < 0
        vgs_eff = np.where(reverse, vgs_m - vds_m, vgs_m)
        vds_eff = np.abs(vds_m)
        magnitude = self.ids_magnitude(vgs_eff, vds_eff)
        return sign * np.where(reverse, -magnitude, magnitude)

    # ------------------------------------------------------------------
    # capacitance / charge
    # ------------------------------------------------------------------
    def _cap_params(self) -> cap_mod.CapacitanceParameters:
        return cap_mod.CapacitanceParameters(
            ckappa=self.p("CKAPPA"), delvt=self.p("DELVT"),
            cf=self.p("CF"), cgso=self.p("CGSO"), cgdo=self.p("CGDO"),
            moin=self.p("MOIN"), cgsl=self.p("CGSL"), cgdl=self.p("CGDL"))

    def cgg(self, vg) -> np.ndarray:
        """Total gate capacitance [F] at Vds = 0, magnitude space."""
        return cap_mod.gate_capacitance(
            vg, self._cap_params(), float(self.vth(0.0)), self.cox,
            self.width, self.length, self.vt_thermal)

    def charges(self, vgs: float, vds: float) -> Tuple[float, float, float]:
        """Conservative terminal charges (qg, qd, qs) [C], SPICE signs.

        The intrinsic channel charge is evaluated at the source-side bias
        and partitioned 50/50; overlap and fringe charges are linear /
        soft functions of their controlling voltages.  qg + qd + qs = 0.
        """
        sign = self.polarity.sign
        vgs_m = sign * vgs
        vgd_m = sign * (vgs - vds)
        params = self._cap_params()
        vth0 = float(self.vth(0.0))

        q_int = float(cap_mod.intrinsic_channel_charge(
            vgs_m, params, vth0, self.cox, self.width, self.length,
            self.vt_thermal))
        q_ov_s = (self.width * (params.cgso + 0.5 * params.cf) * vgs_m +
                  float(cap_mod.fringe_charge(vgs_m, params, self.width, "s")))
        q_ov_d = (self.width * (params.cgdo + 0.5 * params.cf) * vgd_m +
                  float(cap_mod.fringe_charge(vgd_m, params, self.width, "d")))

        qg = q_int + q_ov_s + q_ov_d
        qd = -(0.5 * q_int + q_ov_d)
        qs = -(0.5 * q_int + q_ov_s)
        return sign * qg, sign * qd, sign * qs

    def charges_batch(self, vgs, vds) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """Vectorised :meth:`charges` over arrays of bias points."""
        sign = self.polarity.sign
        vgs_m = sign * np.asarray(vgs, dtype=float)
        vgd_m = sign * (np.asarray(vgs, dtype=float) -
                        np.asarray(vds, dtype=float))
        params = self._cap_params()
        vth0 = float(self.vth(0.0))

        q_int = cap_mod.intrinsic_channel_charge(
            vgs_m, params, vth0, self.cox, self.width, self.length,
            self.vt_thermal)
        q_ov_s = (self.width * (params.cgso + 0.5 * params.cf) * vgs_m +
                  cap_mod.fringe_charge(vgs_m, params, self.width, "s"))
        q_ov_d = (self.width * (params.cgdo + 0.5 * params.cf) * vgd_m +
                  cap_mod.fringe_charge(vgd_m, params, self.width, "d"))

        qg = q_int + q_ov_s + q_ov_d
        qd = -(0.5 * q_int + q_ov_d)
        qs = -(0.5 * q_int + q_ov_s)
        return sign * qg, sign * qd, sign * qs

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, float]:
        """Operating summary used by reports and tests."""
        return {
            "vth_lin": float(self.vth(0.05)),
            "vth_sat": float(self.vth(1.0)),
            "ion": float(self.ids_magnitude(1.0, 1.0)),
            "ioff": float(self.ids_magnitude(0.0, 1.0)),
            "cgg_max_fF": float(self.cgg(1.0)) * 1e15,
        }
