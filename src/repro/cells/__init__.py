"""Standard-cell library: the paper's 14 cells in four implementations.

Cells are declared as series/parallel pull-down networks (the pull-up is
derived as the dual), composed into stages for the compound cells
(AND/OR/XOR/MUX).  The netlist builder instantiates them with the
extracted compact models and the paper's parasitic assumptions: MIV 7 Ohm,
interconnect 3 Ohm, supply rails 5 Ohm, 1 fF output load.
"""

from repro.cells.spec import (
    CellSpec,
    GateStage,
    Network,
    inp,
    parallel,
    series,
)
from repro.cells.library import CELL_NAMES, all_cells, get_cell
from repro.cells.variants import DeviceVariant, ModelSet, extracted_model_set
from repro.cells.netlist_builder import CellNetlist, Parasitics, build_cell_circuit
from repro.cells.logic import sensitizing_assignments, truth_table
from repro.cells.vectors import StimulusPlan, stimulus_plan_for

__all__ = [
    "Network",
    "inp",
    "series",
    "parallel",
    "GateStage",
    "CellSpec",
    "CELL_NAMES",
    "get_cell",
    "all_cells",
    "DeviceVariant",
    "ModelSet",
    "extracted_model_set",
    "Parasitics",
    "CellNetlist",
    "build_cell_circuit",
    "truth_table",
    "sensitizing_assignments",
    "StimulusPlan",
    "stimulus_plan_for",
]
