"""Boolean analysis of cells: truth tables and input sensitization."""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import CellLibraryError
from repro.cells.spec import CellSpec


def truth_table(spec: CellSpec) -> List[Tuple[Tuple[bool, ...], bool]]:
    """All (input assignment, output) rows in binary counting order."""
    rows = []
    for bits in itertools.product((False, True), repeat=len(spec.inputs)):
        rows.append((bits, spec.evaluate(dict(zip(spec.inputs, bits)))))
    return rows


def sensitizing_assignments(spec: CellSpec,
                            input_name: str) -> List[Dict[str, bool]]:
    """Assignments of the *other* inputs that make the output toggle when
    ``input_name`` toggles (the delay-measurement side conditions)."""
    if input_name not in spec.inputs:
        raise CellLibraryError(
            f"{spec.name}: no input named {input_name!r}")
    others = [i for i in spec.inputs if i != input_name]
    result = []
    for bits in itertools.product((False, True), repeat=len(others)):
        assignment = dict(zip(others, bits))
        low = spec.evaluate({**assignment, input_name: False})
        high = spec.evaluate({**assignment, input_name: True})
        if low != high:
            result.append(assignment)
    return result


def first_sensitizing_assignment(spec: CellSpec,
                                 input_name: str) -> Dict[str, bool]:
    """The lowest-order sensitizing assignment (deterministic choice)."""
    options = sensitizing_assignments(spec, input_name)
    if not options:
        raise CellLibraryError(
            f"{spec.name}: input {input_name!r} cannot be sensitised")
    return options[0]


def is_inverting_path(spec: CellSpec, input_name: str,
                      assignment: Dict[str, bool]) -> bool:
    """True when a rising input produces a falling output under the
    given side assignment."""
    high = spec.evaluate({**assignment, input_name: True})
    return not high
