"""Implementation variants and their extracted model sets.

The paper compares four implementations of each cell, differing only in
the *top-layer n-type* device (the bottom-layer p-type device is always
the conventional 2-D FDSOI transistor):

* ``TWO_D``   — two-layer 2-D FDSOI baseline ("2D" in Figure 5),
* ``MIV_1CH`` — 1-channel MIV-transistor n-type,
* ``MIV_2CH`` — 2-channel MIV-transistor n-type,
* ``MIV_4CH`` — 4-channel MIV-transistor n-type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compact.model import BsimSoi4Lite
from repro.geometry.process import ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity


class DeviceVariant(enum.Enum):
    """Cell implementation variant (Figure 5 legend)."""

    TWO_D = "2D"
    MIV_1CH = "1-ch"
    MIV_2CH = "2-ch"
    MIV_4CH = "4-ch"

    @property
    def n_channel_count(self) -> ChannelCount:
        """The top-layer n-type device used by this variant."""
        return {
            DeviceVariant.TWO_D: ChannelCount.TRADITIONAL,
            DeviceVariant.MIV_1CH: ChannelCount.ONE,
            DeviceVariant.MIV_2CH: ChannelCount.TWO,
            DeviceVariant.MIV_4CH: ChannelCount.FOUR,
        }[self]

    @property
    def p_channel_count(self) -> ChannelCount:
        """The bottom-layer p-type device (always traditional 2-D)."""
        return ChannelCount.TRADITIONAL

    @property
    def uses_miv_gate(self) -> bool:
        """True when the n-type gate is the MIV itself."""
        return self is not DeviceVariant.TWO_D


@dataclass(frozen=True)
class ModelSet:
    """The (nmos, pmos) compact models a cell variant instantiates."""

    variant: DeviceVariant
    nmos: BsimSoi4Lite
    pmos: BsimSoi4Lite

    def __post_init__(self) -> None:
        if self.nmos.polarity is not Polarity.NMOS:
            raise ValueError("nmos model has wrong polarity")
        if self.pmos.polarity is not Polarity.PMOS:
            raise ValueError("pmos model has wrong polarity")

    def to_dict(self) -> Dict:
        """JSON-compatible representation (for on-disk caching)."""
        return {
            "variant": self.variant.value,
            "nmos": self.nmos.to_dict(),
            "pmos": self.pmos.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ModelSet":
        """Inverse of :meth:`to_dict`."""
        return cls(
            variant=DeviceVariant(data["variant"]),
            nmos=BsimSoi4Lite.from_dict(data["nmos"]),
            pmos=BsimSoi4Lite.from_dict(data["pmos"]),
        )


def extracted_model_set(variant: DeviceVariant,
                        process: Optional[ProcessParameters] = None,
                        ) -> ModelSet:
    """Run (or reuse) the extraction flow and return the variant's models.

    The n-type model is extracted from the variant's TCAD device; the
    p-type model is always the traditional 2-D FDSOI PMOS.  Thin shim
    over the execution engine: the artefact is content-addressed on the
    full process record, so two processes can never share models, and
    repeated in-process calls return the identical cached object.
    Extraction costs a couple of seconds per device when cold.
    """
    from repro.engine.pipeline import model_set
    return model_set(variant, process)
