"""Implementation variants and their extracted model sets.

The paper compares four implementations of each cell, differing only in
the *top-layer n-type* device (the bottom-layer p-type device is always
the conventional 2-D FDSOI transistor):

* ``TWO_D``   — two-layer 2-D FDSOI baseline ("2D" in Figure 5),
* ``MIV_1CH`` — 1-channel MIV-transistor n-type,
* ``MIV_2CH`` — 2-channel MIV-transistor n-type,
* ``MIV_4CH`` — 4-channel MIV-transistor n-type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compact.model import BsimSoi4Lite
from repro.extraction.flow import ExtractionFlow
from repro.extraction.targets import cached_targets
from repro.geometry.process import ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity


class DeviceVariant(enum.Enum):
    """Cell implementation variant (Figure 5 legend)."""

    TWO_D = "2D"
    MIV_1CH = "1-ch"
    MIV_2CH = "2-ch"
    MIV_4CH = "4-ch"

    @property
    def n_channel_count(self) -> ChannelCount:
        """The top-layer n-type device used by this variant."""
        return {
            DeviceVariant.TWO_D: ChannelCount.TRADITIONAL,
            DeviceVariant.MIV_1CH: ChannelCount.ONE,
            DeviceVariant.MIV_2CH: ChannelCount.TWO,
            DeviceVariant.MIV_4CH: ChannelCount.FOUR,
        }[self]

    @property
    def p_channel_count(self) -> ChannelCount:
        """The bottom-layer p-type device (always traditional 2-D)."""
        return ChannelCount.TRADITIONAL

    @property
    def uses_miv_gate(self) -> bool:
        """True when the n-type gate is the MIV itself."""
        return self is not DeviceVariant.TWO_D


@dataclass(frozen=True)
class ModelSet:
    """The (nmos, pmos) compact models a cell variant instantiates."""

    variant: DeviceVariant
    nmos: BsimSoi4Lite
    pmos: BsimSoi4Lite

    def __post_init__(self) -> None:
        if self.nmos.polarity is not Polarity.NMOS:
            raise ValueError("nmos model has wrong polarity")
        if self.pmos.polarity is not Polarity.PMOS:
            raise ValueError("pmos model has wrong polarity")


_MODEL_CACHE: Dict[str, ModelSet] = {}


def extracted_model_set(variant: DeviceVariant,
                        process: Optional[ProcessParameters] = None,
                        ) -> ModelSet:
    """Run (or reuse) the extraction flow and return the variant's models.

    The n-type model is extracted from the variant's TCAD device; the
    p-type model is always the traditional 2-D FDSOI PMOS.  Results are
    cached — extraction costs a couple of seconds per device.
    """
    key = (f"{variant.value}:"
           f"{id(process) if process is not None else 'default'}")
    if key not in _MODEL_CACHE:
        flow = ExtractionFlow()
        n_targets = cached_targets(variant.n_channel_count, Polarity.NMOS,
                                   process)
        p_targets = cached_targets(variant.p_channel_count, Polarity.PMOS,
                                   process)
        _MODEL_CACHE[key] = ModelSet(
            variant=variant,
            nmos=flow.run(n_targets).model,
            pmos=flow.run(p_targets).model,
        )
    return _MODEL_CACHE[key]
