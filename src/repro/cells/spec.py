"""Cell specifications: series/parallel networks and gate stages.

A static CMOS stage is fully described by its pull-down network (PDN)
over the stage inputs; the pull-up network is the series/parallel dual.
Compound cells chain stages through intermediate nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import CellLibraryError


@dataclass(frozen=True)
class Network:
    """A series/parallel network over named inputs.

    ``kind`` is ``"input"`` (leaf), ``"series"`` or ``"parallel"``.
    """

    kind: str
    input_name: str = ""
    children: Tuple["Network", ...] = ()

    def __post_init__(self) -> None:
        if self.kind == "input":
            if not self.input_name:
                raise CellLibraryError("input leaf needs a name")
            if self.children:
                raise CellLibraryError("input leaf cannot have children")
        elif self.kind in ("series", "parallel"):
            if len(self.children) < 2:
                raise CellLibraryError(
                    f"{self.kind} network needs at least two children")
        else:
            raise CellLibraryError(f"unknown network kind {self.kind!r}")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def dual(self) -> "Network":
        """Series <-> parallel dual (PDN -> PUN transformation)."""
        if self.kind == "input":
            return self
        swapped = "parallel" if self.kind == "series" else "series"
        return Network(swapped, children=tuple(c.dual() for c in self.children))

    def inputs(self) -> List[str]:
        """All referenced input names, in first-appearance order."""
        if self.kind == "input":
            return [self.input_name]
        seen: List[str] = []
        for child in self.children:
            for name in child.inputs():
                if name not in seen:
                    seen.append(name)
        return seen

    def transistor_count(self) -> int:
        """Number of transistors the network instantiates."""
        if self.kind == "input":
            return 1
        return sum(c.transistor_count() for c in self.children)

    # ------------------------------------------------------------------
    # logic
    # ------------------------------------------------------------------
    def conducts(self, values: Dict[str, bool]) -> bool:
        """Does the network conduct for the given input values?

        For a PDN built of NMOS devices, an input at logic 1 conducts.
        """
        if self.kind == "input":
            try:
                return values[self.input_name]
            except KeyError:
                raise CellLibraryError(
                    f"missing value for input {self.input_name!r}") from None
        if self.kind == "series":
            return all(c.conducts(values) for c in self.children)
        return any(c.conducts(values) for c in self.children)


def inp(name: str) -> Network:
    """Input leaf."""
    return Network("input", input_name=name)


def series(*children: Network) -> Network:
    """Series composition (AND of conduction)."""
    return Network("series", children=tuple(children))


def parallel(*children: Network) -> Network:
    """Parallel composition (OR of conduction)."""
    return Network("parallel", children=tuple(children))


@dataclass(frozen=True)
class GateStage:
    """One complementary CMOS stage: output = NOT(pdn conducts).

    Stage inputs may be cell inputs or outputs of earlier stages.
    """

    output: str
    pdn: Network

    def evaluate(self, values: Dict[str, bool]) -> bool:
        """Logic value of the stage output."""
        return not self.pdn.conducts(values)

    @property
    def transistor_count(self) -> int:
        """NMOS + PMOS transistors of the stage."""
        return 2 * self.pdn.transistor_count()


@dataclass(frozen=True)
class CellSpec:
    """A standard cell: ordered stages from cell inputs to one output."""

    name: str
    inputs: Tuple[str, ...]
    output: str
    stages: Tuple[GateStage, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.inputs:
            raise CellLibraryError(f"{self.name}: cell needs inputs")
        if not self.stages:
            raise CellLibraryError(f"{self.name}: cell needs stages")
        outputs = [stage.output for stage in self.stages]
        if len(set(outputs)) != len(outputs):
            raise CellLibraryError(f"{self.name}: duplicate stage outputs")
        if self.output != self.stages[-1].output:
            raise CellLibraryError(
                f"{self.name}: cell output must be the last stage's output")
        known = set(self.inputs)
        for stage in self.stages:
            for name in stage.pdn.inputs():
                if name not in known:
                    raise CellLibraryError(
                        f"{self.name}: stage {stage.output!r} uses undefined "
                        f"signal {name!r}")
            known.add(stage.output)

    # ------------------------------------------------------------------
    # logic evaluation
    # ------------------------------------------------------------------
    def evaluate(self, values: Dict[str, bool]) -> bool:
        """Evaluate the cell output for a full input assignment."""
        missing = [i for i in self.inputs if i not in values]
        if missing:
            raise CellLibraryError(f"{self.name}: missing inputs {missing}")
        state = dict(values)
        for stage in self.stages:
            state[stage.output] = stage.evaluate(state)
        return state[self.output]

    def logic_function(self) -> Callable[..., bool]:
        """The cell as a positional boolean function (testing oracle)."""
        def fn(*args: bool) -> bool:
            if len(args) != len(self.inputs):
                raise CellLibraryError(
                    f"{self.name}: expected {len(self.inputs)} args")
            return self.evaluate(dict(zip(self.inputs, args)))
        return fn

    @property
    def transistor_count(self) -> int:
        """Total transistors over all stages."""
        return sum(stage.transistor_count for stage in self.stages)

    @property
    def nmos_count(self) -> int:
        """Total NMOS (= half the total, complementary stages)."""
        return self.transistor_count // 2
