"""SPICE-level functional verification of cell implementations.

The logic oracle (:mod:`repro.cells.logic`) says what a cell *should*
compute; this module proves the generated transistor netlist actually
computes it: every input combination is applied as DC levels, the
circuit is solved, and the output is compared against the oracle with
noise-margin thresholds.  A systematic netlisting bug (swapped PUN/PDN,
missing dual, bad series chain) is caught here long before PPA numbers
would look subtly wrong.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cells.library import all_cells
from repro.cells.netlist_builder import CellNetlist, Parasitics, build_cell_circuit
from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant, ModelSet, extracted_model_set
from repro.errors import CellLibraryError
from repro.spice.dcop import solve_dc

#: Output must exceed this fraction of VDD to read as logic 1.
HIGH_THRESHOLD = 0.9

#: Output must stay below this fraction of VDD to read as logic 0.
LOW_THRESHOLD = 0.1


@dataclass
class RowCheck:
    """One truth-table row: applied inputs, expected and measured."""

    inputs: Tuple[bool, ...]
    expected: bool
    measured_voltage: float
    vdd: float

    @property
    def measured_level(self) -> Optional[bool]:
        """Logic reading of the output, None if in the forbidden band."""
        if self.measured_voltage >= HIGH_THRESHOLD * self.vdd:
            return True
        if self.measured_voltage <= LOW_THRESHOLD * self.vdd:
            return False
        return None

    @property
    def passed(self) -> bool:
        """Row verdict."""
        return self.measured_level is not None and \
            self.measured_level == self.expected


@dataclass
class VerificationReport:
    """All rows of one cell implementation."""

    cell_name: str
    variant: DeviceVariant
    rows: List[RowCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Cell verdict."""
        return bool(self.rows) and all(row.passed for row in self.rows)

    @property
    def failures(self) -> List[RowCheck]:
        """The failing rows (for diagnostics)."""
        return [row for row in self.rows if not row.passed]

    def worst_high(self) -> float:
        """Lowest voltage produced for a logic-1 output [V]."""
        highs = [r.measured_voltage for r in self.rows if r.expected]
        if not highs:
            raise CellLibraryError(f"{self.cell_name}: no high outputs")
        return min(highs)

    def worst_low(self) -> float:
        """Highest voltage produced for a logic-0 output [V]."""
        lows = [r.measured_voltage for r in self.rows if not r.expected]
        if not lows:
            raise CellLibraryError(f"{self.cell_name}: no low outputs")
        return max(lows)


def verify_cell(spec: CellSpec, models: ModelSet,
                parasitics: Parasitics = Parasitics(),
                ) -> VerificationReport:
    """DC-verify one cell implementation against its logic oracle."""
    netlist = build_cell_circuit(spec, models, parasitics)
    report = VerificationReport(cell_name=spec.name,
                                variant=models.variant)
    vdd = netlist.vdd
    x_prev = None
    for bits in itertools.product((False, True), repeat=len(spec.inputs)):
        _apply_levels(netlist, dict(zip(spec.inputs, bits)))
        op = solve_dc(netlist.circuit, x0=x_prev)
        x_prev = op.x
        report.rows.append(RowCheck(
            inputs=bits,
            expected=spec.evaluate(dict(zip(spec.inputs, bits))),
            measured_voltage=op.voltage(netlist.output_node),
            vdd=vdd,
        ))
    return report


def _apply_levels(netlist: CellNetlist, levels: Dict[str, bool]) -> None:
    for input_name, source_name in netlist.input_sources.items():
        source = netlist.circuit.element(source_name)
        source.waveform = netlist.vdd if levels[input_name] else 0.0


def verify_library(variant: DeviceVariant,
                   cells: Optional[List[CellSpec]] = None,
                   ) -> Dict[str, VerificationReport]:
    """Verify every (requested) cell of the library in one variant."""
    models = extracted_model_set(variant)
    reports = {}
    for spec in (cells if cells is not None else all_cells()):
        reports[spec.name] = verify_cell(spec, models)
    return reports
