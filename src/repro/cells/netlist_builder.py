"""Cell netlist construction with the paper's parasitic assumptions.

Topology of one stage in the 2-layer M3D arrangement (Section IV):

* PMOS pull-up network on the bottom tier between the VDD rail and the
  stage's bottom output node;
* NMOS pull-down network on the top tier between the stage's top output
  node and the ground rail;
* an internal-contact MIV (7 Ohm) joins the two output nodes;
* supply rails reach the ideal sources through 5 Ohm;
* every signal reaches bottom-tier PMOS gates through an MIV (7 Ohm);
  top-tier NMOS gates are reached through a 3 Ohm M1 wire in the 2-D
  baseline, or directly when the MIV itself is the gate (MIV-transistor
  variants) — the layout-level benefit of merging MIV and gate;
* the cell output drives a 1 fF load through a 3 Ohm interconnect.

Internal metal coupling/fringing capacitances are ignored, as the paper
does ("to limit the complexity of the design").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import CellLibraryError
from repro.cells.spec import CellSpec, Network
from repro.cells.variants import ModelSet
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.vsource import dc_source
from repro.spice.netlist import Circuit


@dataclass(frozen=True)
class Parasitics:
    """The paper's fixed parasitic values (Section IV).

    ``c_keepout_wire`` is the extra M1 wiring capacitance the 2-D
    baseline pays on every stage output: its gate-contact MIV keep-out
    zone forces the output route to detour around it (the "wire length"
    overhead the MIV-transistor eliminates).  MIV-transistor variants do
    not carry this capacitance.
    """

    r_miv: float = 7.0
    r_interconnect: float = 3.0
    r_rail: float = 5.0
    c_load: float = 1e-15
    c_keepout_wire: float = 1.5e-17
    vdd: float = 1.0


@dataclass
class CellNetlist:
    """A built cell circuit plus the handles measurements need."""

    circuit: Circuit
    spec: CellSpec
    model_set: ModelSet
    parasitics: Parasitics
    input_sources: Dict[str, str]   # input name -> source element name
    output_node: str
    vdd_source: str = "VDD"
    transistor_names: List[str] = field(default_factory=list)

    @property
    def vdd(self) -> float:
        """Supply voltage [V]."""
        return self.parasitics.vdd


class _Builder:
    """Stateful helper that emits one cell's elements."""

    def __init__(self, spec: CellSpec, models: ModelSet,
                 parasitics: Parasitics):
        self.spec = spec
        self.models = models
        self.par = parasitics
        self.circuit = Circuit(f"{spec.name}:{models.variant.value}")
        self._counter = 0
        self._gate_nodes: Dict[str, Dict[str, str]] = {}
        self.transistors: List[str] = []

    # ------------------------------------------------------------------
    # identifiers
    # ------------------------------------------------------------------
    def _unique(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # ------------------------------------------------------------------
    # rails, sources, gate routing
    # ------------------------------------------------------------------
    def build_rails(self) -> None:
        """Supply/ground rails behind their 5 Ohm distribution R."""
        self.circuit.add(dc_source("VDD", "vdd", "0", self.par.vdd))
        self.circuit.add(Resistor("Rvdd", "vdd", "vddr", self.par.r_rail))
        self.circuit.add(Resistor("Rgnd", "gndr", "0", self.par.r_rail))

    def signal_node(self, signal: str) -> str:
        """The top-tier node carrying a signal (input or stage output)."""
        if signal in self.spec.inputs:
            return f"in_{signal}"
        return f"{signal}_t"

    def gate_nodes(self, signal: str) -> Dict[str, str]:
        """(Create and) return the n/p gate nodes for a signal.

        The p-gate always hangs off the signal through the 7 Ohm MIV.
        The n-gate is the signal node itself for MIV-transistor variants
        (the MIV *is* the gate) or a 3 Ohm M1 hop for the 2-D baseline.
        """
        if signal in self._gate_nodes:
            return self._gate_nodes[signal]
        src = self.signal_node(signal)
        p_gate = f"{signal}_gp"
        self.circuit.add(Resistor(f"Rmiv_{signal}", src, p_gate,
                                  self.par.r_miv))
        if self.models.variant.uses_miv_gate:
            n_gate = src
        else:
            n_gate = f"{signal}_gn"
            self.circuit.add(Resistor(f"Rint_{signal}", src, n_gate,
                                      self.par.r_interconnect))
        nodes = {"n": n_gate, "p": p_gate}
        self._gate_nodes[signal] = nodes
        return nodes

    def add_input_source(self, name: str) -> str:
        """DC placeholder source for an input (stimulus replaces it)."""
        source_name = f"V{name}"
        self.circuit.add(dc_source(source_name, f"in_{name}", "0", 0.0))
        return source_name

    # ------------------------------------------------------------------
    # transistor networks
    # ------------------------------------------------------------------
    def emit_network(self, network: Network, hi: str, lo: str,
                     polarity: str, stage: str) -> None:
        """Instantiate a series/parallel network between ``hi`` and ``lo``.

        ``polarity`` is "n" (PDN, conduction at input high) or "p" (PUN).
        For both, ``hi`` is the output side and ``lo`` the rail side.
        """
        if network.kind == "input":
            gates = self.gate_nodes(network.input_name)
            name = f"M{stage}_{polarity}{self._unique('')}"
            model = (self.models.nmos if polarity == "n"
                     else self.models.pmos)
            # NMOS: drain at the output side, source toward ground.
            # PMOS: source toward VDD (the rail side), drain at output.
            if polarity == "n":
                fet = Mosfet(name, hi, gates["n"], lo, model)
            else:
                fet = Mosfet(name, hi, gates["p"], lo, model)
            self.circuit.add(fet)
            self.transistors.append(name)
            return
        if network.kind == "series":
            nodes = [hi]
            for _ in network.children[:-1]:
                nodes.append(f"{stage}_{polarity}{self._unique('x')}")
            nodes.append(lo)
            for child, (n_hi, n_lo) in zip(network.children,
                                           zip(nodes, nodes[1:])):
                self.emit_network(child, n_hi, n_lo, polarity, stage)
            return
        for child in network.children:  # parallel
            self.emit_network(child, hi, lo, polarity, stage)

    def emit_stage(self, stage_output: str, pdn: Network) -> None:
        """One complementary stage with the inter-tier output MIV."""
        top = f"{stage_output}_t"
        bottom = f"{stage_output}_b"
        self.emit_network(pdn, top, "gndr", "n", stage_output)
        self.emit_network(pdn.dual(), bottom, "vddr", "p", stage_output)
        self.circuit.add(Resistor(f"Rmivout_{stage_output}", top, bottom,
                                  self.par.r_miv))
        # The 2-D baseline's output route detours around the gate-MIV
        # keep-out zone: extra wire capacitance on the stage output.
        if (not self.models.variant.uses_miv_gate
                and self.par.c_keepout_wire > 0):
            self.circuit.add(Capacitor(f"Ckoz_{stage_output}", top, "0",
                                       self.par.c_keepout_wire))


def build_cell_circuit(spec: CellSpec, models: ModelSet,
                       parasitics: Parasitics = Parasitics()) -> CellNetlist:
    """Build the full simulatable circuit of one cell implementation."""
    builder = _Builder(spec, models, parasitics)
    builder.build_rails()

    input_sources = {name: builder.add_input_source(name)
                     for name in spec.inputs}
    for stage in spec.stages:
        builder.emit_stage(stage.output, stage.pdn)

    # Output load through the output interconnect.
    out_top = f"{spec.output}_t"
    builder.circuit.add(Resistor("Rout", out_top, "out",
                                 parasitics.r_interconnect))
    builder.circuit.add(Capacitor("CL", "out", "0", parasitics.c_load))

    netlist = CellNetlist(
        circuit=builder.circuit,
        spec=spec,
        model_set=models,
        parasitics=parasitics,
        input_sources=input_sources,
        output_node="out",
        transistor_names=builder.transistors,
    )
    expected = spec.transistor_count
    if len(netlist.transistor_names) != expected:
        raise CellLibraryError(
            f"{spec.name}: emitted {len(netlist.transistor_names)} "
            f"transistors, expected {expected}")
    return netlist
