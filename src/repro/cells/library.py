"""The paper's 14 standard cells (Section IV).

AND2X1, AND3X1, AOI2X1, INV1X1, MUX2X1, NAND2X1, NAND3X1, NOR2X1,
NOR3X1, OAI2X1, OR2X1, OR3X1, XNOR2X1, XOR2X1 — all static complementary
CMOS, X1 drive.  AOI2X1/OAI2X1 are the three-input AOI21/OAI21 forms.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CellLibraryError
from repro.cells.spec import CellSpec, GateStage, inp, parallel, series


def _inv(name: str = "INV1X1") -> CellSpec:
    return CellSpec(
        name=name,
        inputs=("a",),
        output="y",
        stages=(GateStage("y", inp("a")),),
        description="inverter",
    )


def _nand(n: int, name: str) -> CellSpec:
    inputs = tuple("abc"[:n])
    return CellSpec(
        name=name,
        inputs=inputs,
        output="y",
        stages=(GateStage("y", series(*(inp(i) for i in inputs))),),
        description=f"{n}-input NAND",
    )


def _nor(n: int, name: str) -> CellSpec:
    inputs = tuple("abc"[:n])
    return CellSpec(
        name=name,
        inputs=inputs,
        output="y",
        stages=(GateStage("y", parallel(*(inp(i) for i in inputs))),),
        description=f"{n}-input NOR",
    )


def _and(n: int, name: str) -> CellSpec:
    inputs = tuple("abc"[:n])
    return CellSpec(
        name=name,
        inputs=inputs,
        output="y",
        stages=(
            GateStage("yb", series(*(inp(i) for i in inputs))),
            GateStage("y", inp("yb")),
        ),
        description=f"{n}-input AND (NAND + INV)",
    )


def _or(n: int, name: str) -> CellSpec:
    inputs = tuple("abc"[:n])
    return CellSpec(
        name=name,
        inputs=inputs,
        output="y",
        stages=(
            GateStage("yb", parallel(*(inp(i) for i in inputs))),
            GateStage("y", inp("yb")),
        ),
        description=f"{n}-input OR (NOR + INV)",
    )


def _aoi21() -> CellSpec:
    return CellSpec(
        name="AOI2X1",
        inputs=("a", "b", "c"),
        output="y",
        stages=(GateStage("y", parallel(series(inp("a"), inp("b")),
                                        inp("c"))),),
        description="AND-OR-invert: y = !(a b + c)",
    )


def _oai21() -> CellSpec:
    return CellSpec(
        name="OAI2X1",
        inputs=("a", "b", "c"),
        output="y",
        stages=(GateStage("y", series(parallel(inp("a"), inp("b")),
                                      inp("c"))),),
        description="OR-AND-invert: y = !((a + b) c)",
    )


def _xor2() -> CellSpec:
    return CellSpec(
        name="XOR2X1",
        inputs=("a", "b"),
        output="y",
        stages=(
            GateStage("an", inp("a")),
            GateStage("bn", inp("b")),
            GateStage("y", parallel(series(inp("a"), inp("b")),
                                    series(inp("an"), inp("bn")))),
        ),
        description="XOR: y = !(a b + !a !b)",
    )


def _xnor2() -> CellSpec:
    return CellSpec(
        name="XNOR2X1",
        inputs=("a", "b"),
        output="y",
        stages=(
            GateStage("an", inp("a")),
            GateStage("bn", inp("b")),
            GateStage("y", parallel(series(inp("a"), inp("bn")),
                                    series(inp("an"), inp("b")))),
        ),
        description="XNOR: y = !(a !b + !a b)",
    )


def _mux2() -> CellSpec:
    # y = s ? a : b, built as INV(s) + AOI + INV (static CMOS).
    return CellSpec(
        name="MUX2X1",
        inputs=("a", "b", "s"),
        output="y",
        stages=(
            GateStage("sn", inp("s")),
            GateStage("yb", parallel(series(inp("a"), inp("s")),
                                     series(inp("b"), inp("sn")))),
            GateStage("y", inp("yb")),
        ),
        description="2:1 mux: y = s a + !s b",
    )


def _build_library() -> Dict[str, CellSpec]:
    cells = [
        _and(2, "AND2X1"),
        _and(3, "AND3X1"),
        _aoi21(),
        _inv(),
        _mux2(),
        _nand(2, "NAND2X1"),
        _nand(3, "NAND3X1"),
        _nor(2, "NOR2X1"),
        _nor(3, "NOR3X1"),
        _oai21(),
        _or(2, "OR2X1"),
        _or(3, "OR3X1"),
        _xnor2(),
        _xor2(),
    ]
    return {cell.name: cell for cell in cells}


_LIBRARY = _build_library()

#: The 14 cell names, in the paper's (alphabetical) order.
CELL_NAMES = tuple(sorted(_LIBRARY))


def get_cell(name: str) -> CellSpec:
    """Lookup one cell by name."""
    try:
        return _LIBRARY[name]
    except KeyError:
        raise CellLibraryError(
            f"unknown cell {name!r}; known: {', '.join(CELL_NAMES)}") from None


def all_cells() -> List[CellSpec]:
    """All 14 cells in library order."""
    return [_LIBRARY[name] for name in CELL_NAMES]
