"""Liberty-lite characterisation: NLDM-style tables per cell.

Produces what a downstream digital flow actually consumes from a
standard-cell library: for each cell and each input, a delay and an
output-transition table over (input slew x output load), plus the
input capacitance (small-signal, via AC analysis) and the average
leakage power (DC, over all static input states).  A ``.lib``-flavoured
text renderer serialises the result.

This goes one step beyond the paper's single-point PPA (1 fF load,
10 ps slew) and is the natural packaging of its standard-cell study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import itertools

import numpy as np

from repro.cells.netlist_builder import Parasitics, build_cell_circuit
from repro.cells.spec import CellSpec
from repro.cells.variants import ModelSet
from repro.cells.vectors import StimulusRun, stimulus_plan_for
from repro.errors import CellLibraryError
from repro.ppa.delay import run_delays
from repro.spice.ac import input_capacitance
from repro.spice.dcop import solve_dc
from repro.spice.elements.vsource import PulseSpec
from repro.spice.transient import transient


@dataclass(frozen=True)
class CharacterizationGrid:
    """The (input slew, output load) characterisation grid."""

    slews: Tuple[float, ...] = (1e-11, 4e-11)
    loads: Tuple[float, ...] = (0.5e-15, 1e-15, 2e-15)

    def __post_init__(self) -> None:
        if not self.slews or not self.loads:
            raise CellLibraryError("grid needs slews and loads")
        if any(s <= 0 for s in self.slews) or any(l <= 0 for l in self.loads):
            raise CellLibraryError("grid values must be positive")


@dataclass
class TimingTable:
    """A 2-D NLDM table: rows = slews, columns = loads."""

    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    values: np.ndarray  # shape (n_slews, n_loads), seconds

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation (clamped at the grid edges)."""
        slews = np.asarray(self.slews)
        loads = np.asarray(self.loads)
        slew = float(np.clip(slew, slews[0], slews[-1]))
        load = float(np.clip(load, loads[0], loads[-1]))
        by_load = np.array([np.interp(load, loads, row)
                            for row in self.values])
        return float(np.interp(slew, slews, by_load))


@dataclass
class PinTiming:
    """Timing of one input pin: delay and output-transition tables."""

    input_name: str
    delay: TimingTable
    transition: TimingTable


@dataclass
class CellCharacterization:
    """Full characterisation of one cell implementation."""

    cell_name: str
    variant_label: str
    pins: Dict[str, PinTiming] = field(default_factory=dict)
    input_caps: Dict[str, float] = field(default_factory=dict)
    leakage_power: float = 0.0

    def delay_at(self, input_name: str, slew: float, load: float) -> float:
        """Interpolated delay [s] for one arc."""
        return self.pins[input_name].delay.lookup(slew, load)


def _measure_point(spec: CellSpec, models: ModelSet, run: StimulusRun,
                   slew: float, load: float, vdd: float
                   ) -> Tuple[float, float]:
    """(delay, output transition) for one grid point."""
    netlist = build_cell_circuit(spec, models, Parasitics(c_load=load))
    for input_name, source_name in netlist.input_sources.items():
        source = netlist.circuit.element(source_name)
        if input_name == run.toggled_input:
            kwargs = run.pulse_kwargs(vdd)
            kwargs["rise"] = kwargs["fall"] = slew
            source.waveform = PulseSpec(**kwargs)
        else:
            level = run.static_levels.get(input_name, False)
            source.waveform = vdd if level else 0.0
    record = [f"in_{run.toggled_input}", netlist.output_node]
    result = transient(netlist.circuit, t_stop=run.t_stop, dt=2e-11,
                       record_nodes=record)
    delays = run_delays(netlist, run, result)
    if not delays:
        raise CellLibraryError(
            f"{spec.name}/{run.toggled_input}: no output transition at "
            f"slew={slew:g}, load={load:g}")
    out = result.waveform(netlist.output_node)
    transition = out.transition_time(0.1 * vdd, 0.9 * vdd, "rise")
    return sum(delays) / len(delays), transition


def _leakage_power(spec: CellSpec, models: ModelSet, vdd: float) -> float:
    """Average static power over all input states [W]."""
    netlist = build_cell_circuit(spec, models)
    powers = []
    x_prev = None
    for bits in itertools.product((False, True), repeat=len(spec.inputs)):
        for name, source_name in netlist.input_sources.items():
            level = dict(zip(spec.inputs, bits))[name]
            netlist.circuit.element(source_name).waveform = \
                vdd if level else 0.0
        op = solve_dc(netlist.circuit, x0=x_prev)
        x_prev = op.x
        powers.append(-vdd * op.current(netlist.vdd_source))
    return sum(powers) / len(powers)


def _pin_capacitance(spec: CellSpec, models: ModelSet, input_name: str,
                     vdd: float) -> float:
    """Small-signal input capacitance at mid-rail bias [F]."""
    netlist = build_cell_circuit(spec, models)
    for name, source_name in netlist.input_sources.items():
        netlist.circuit.element(source_name).waveform = \
            vdd / 2 if name == input_name else 0.0
    return input_capacitance(netlist.circuit,
                             netlist.input_sources[input_name])


def characterize_cell(spec: CellSpec, models: ModelSet,
                      grid: Optional[CharacterizationGrid] = None,
                      vdd: float = 1.0) -> CellCharacterization:
    """Characterise one cell implementation over the NLDM grid."""
    grid = grid or CharacterizationGrid()
    plan = stimulus_plan_for(spec)
    result = CellCharacterization(cell_name=spec.name,
                                  variant_label=models.variant.value)
    for run in plan.runs:
        delays = np.zeros((len(grid.slews), len(grid.loads)))
        transitions = np.zeros_like(delays)
        for i, slew in enumerate(grid.slews):
            for j, load in enumerate(grid.loads):
                delays[i, j], transitions[i, j] = _measure_point(
                    spec, models, run, slew, load, vdd)
        result.pins[run.toggled_input] = PinTiming(
            input_name=run.toggled_input,
            delay=TimingTable(grid.slews, grid.loads, delays),
            transition=TimingTable(grid.slews, grid.loads, transitions),
        )
        result.input_caps[run.toggled_input] = _pin_capacitance(
            spec, models, run.toggled_input, vdd)
    result.leakage_power = _leakage_power(spec, models, vdd)
    return result


def render_liberty(cells: Sequence[CellCharacterization],
                   library_name: str = "repro_m3d") -> str:
    """Render characterisations as a .lib-flavoured text block."""
    if not cells:
        raise CellLibraryError("nothing to render")
    lines = [f"library ({library_name}) {{",
             "  time_unit : 1ps;",
             "  capacitive_load_unit (1, ff);",
             "  leakage_power_unit : 1nW;"]
    for cell in cells:
        lines.append(f"  cell ({cell.cell_name}__{cell.variant_label}) {{")
        lines.append(f"    cell_leakage_power : "
                     f"{cell.leakage_power * 1e9:.4f};")
        for name, cap in cell.input_caps.items():
            lines.append(f"    pin ({name}) {{ direction : input; "
                         f"capacitance : {cap * 1e15:.4f}; }}")
        lines.append("    pin (y) { direction : output;")
        for name, timing in cell.pins.items():
            table = timing.delay
            lines.append(f"      timing () {{ related_pin : \"{name}\";")
            index1 = ", ".join(f"{s * 1e12:.1f}" for s in table.slews)
            index2 = ", ".join(f"{l * 1e15:.2f}" for l in table.loads)
            lines.append(f"        index_1 (\"{index1}\");")
            lines.append(f"        index_2 (\"{index2}\");")
            for row in table.values:
                cells_text = ", ".join(f"{v * 1e12:.3f}" for v in row)
                lines.append(f"        values (\"{cells_text}\");")
            lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
