"""Stimulus plans for cell delay/power simulation.

For every cell input, one transient run: that input gets a full-swing
pulse (one rising and one falling edge) while the other inputs sit at a
sensitising assignment, so the output toggles on both edges.  Averaging
over all runs and both edges gives the paper's "average propagation
delay of the outputs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cells.logic import first_sensitizing_assignment
from repro.cells.spec import CellSpec

#: Default pulse timing [s].
EDGE_DELAY = 2.0e-10
PULSE_WIDTH = 1.0e-9
PULSE_RISE = 1.0e-11
PERIOD = 2.4e-9
T_STOP = 2.3e-9


@dataclass(frozen=True)
class StimulusRun:
    """One transient run: which input pulses, what the others hold."""

    toggled_input: str
    static_levels: Dict[str, bool]
    delay: float = EDGE_DELAY
    rise: float = PULSE_RISE
    width: float = PULSE_WIDTH
    period: float = PERIOD
    t_stop: float = T_STOP

    def pulse_kwargs(self, vdd: float) -> Dict[str, float]:
        """PULSE spec arguments for the toggled input."""
        return {
            "v1": 0.0,
            "v2": vdd,
            "delay": self.delay,
            "rise": self.rise,
            "fall": self.rise,
            "width": self.width,
            "period": self.period,
        }


@dataclass(frozen=True)
class StimulusPlan:
    """The full set of runs that characterises one cell."""

    cell_name: str
    runs: Tuple[StimulusRun, ...]

    @property
    def n_edges(self) -> int:
        """Total measured edges (two per run)."""
        return 2 * len(self.runs)


def stimulus_plan_for(spec: CellSpec) -> StimulusPlan:
    """Build the per-input sensitised stimulus plan of a cell."""
    runs: List[StimulusRun] = []
    for input_name in spec.inputs:
        assignment = first_sensitizing_assignment(spec, input_name)
        runs.append(StimulusRun(
            toggled_input=input_name,
            static_levels=dict(assignment),
        ))
    return StimulusPlan(cell_name=spec.name, runs=tuple(runs))
