"""Figure data regeneration.

Figures are produced as plain data series (dicts of numpy arrays) plus a
CSV renderer — the repository is plotting-library-free by design, and
every benchmark prints the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cells.variants import DeviceVariant
from repro.errors import SimulationError
from repro.extraction.flow import ExtractedDevice
from repro.ppa.comparison import PpaComparison

#: Figure 5 variant order.
VARIANT_ORDER = (DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
                 DeviceVariant.MIV_2CH, DeviceVariant.MIV_4CH)


def fig4_curves(extracted: ExtractedDevice) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 4: TCAD vs extracted-SPICE curves for one device.

    Returns panels ``idvg_lin``, ``idvg_sat``, ``idvd@<vg>`` and ``cv``,
    each mapping ``{"x", "tcad", "spice"}`` to arrays.
    """
    model = extracted.model
    targets = extracted.targets
    panels: Dict[str, Dict[str, np.ndarray]] = {}
    for key, curve in (("idvg_lin", targets.idvg_lin),
                       ("idvg_sat", targets.idvg_sat)):
        panels[key] = {
            "x": curve.v,
            "tcad": curve.i,
            "spice": model.ids_magnitude(curve.v, curve.fixed_bias),
        }
    for curve in targets.idvd.curves:
        panels[f"idvd@{curve.fixed_bias:g}"] = {
            "x": curve.v,
            "tcad": curve.i,
            "spice": model.ids_magnitude(curve.fixed_bias, curve.v),
        }
    panels["cv"] = {
        "x": targets.cv.v,
        "tcad": targets.cv.c,
        "spice": model.cgg(targets.cv.v),
    }
    return panels


def fig5_series(comparison: PpaComparison,
                metric: str, scale: float = 1.0) -> Dict[str, List[float]]:
    """Figure 5 panel data: per-cell bars for the four implementations.

    Returns ``{"cells": [...], "<variant>": [values...]}``.
    """
    if not comparison.cell_names:
        raise SimulationError("comparison holds no cells")
    out: Dict[str, List] = {"cells": list(comparison.cell_names)}
    for variant in VARIANT_ORDER:
        out[variant.value] = [
            comparison.value(cell, variant, metric) * scale
            for cell in comparison.cell_names
        ]
    return out


def render_csv(series: Dict[str, List], float_format: str = "{:.6g}",
               x_key: Optional[str] = None) -> str:
    """Render a series dict as CSV text (first key is the x column)."""
    keys = list(series)
    if x_key is not None:
        if x_key not in series:
            raise SimulationError(f"no column {x_key!r}")
        keys = [x_key] + [k for k in keys if k != x_key]
    columns = [series[k] for k in keys]
    n = len(columns[0])
    if any(len(c) != n for c in columns):
        raise SimulationError("series columns have unequal length")
    lines = [",".join(keys)]
    for i in range(n):
        cells = []
        for column in columns:
            value = column[i]
            if isinstance(value, str):
                cells.append(value)
            else:
                cells.append(float_format.format(float(value)))
        lines.append(",".join(cells))
    return "\n".join(lines)
