"""EXPERIMENTS.md generation: paper-vs-measured for every artefact.

``python -m repro.reporting.experiments`` runs the full pipeline (about
five minutes) and writes EXPERIMENTS.md at the repository root (or the
path given as argv[1]).
"""

from __future__ import annotations

import sys
from typing import List

from repro.analysis.ring_oscillator import measure_ring_frequency
from repro.analysis.variation import advantage_yield, corner_drive_study
from repro.cells.variants import DeviceVariant
from repro.flows.full_flow import FullFlowResult, run_full_flow
from repro.geometry.transistor_layout import ChannelCount
from repro.layout.placement import Placer, demo_netlist
from repro.layout.report import build_area_report
from repro.reporting.paper import FIG5_REFERENCE, TABLE3_REFERENCE
from repro.tcad.device import Polarity

MIV_VARIANTS = (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                DeviceVariant.MIV_4CH)


def _table3_section(result: FullFlowResult) -> List[str]:
    lines = ["## Table III — TCAD-to-SPICE extraction error", ""]
    lines.append("| Region | Device | Paper n / p | Measured n / p |")
    lines.append("|---|---|---|---|")
    for region in ("IDVG", "IDVD", "CV"):
        for device in ("FOUR", "TWO", "ONE", "TRADITIONAL"):
            paper = TABLE3_REFERENCE[region][device]
            n_meas = result.extraction.device(
                ChannelCount[device], Polarity.NMOS).errors[region]
            p_meas = result.extraction.device(
                ChannelCount[device], Polarity.PMOS).errors[region]
            lines.append(
                f"| {region} | {device.lower()} "
                f"| {paper['n']:.1f}% / {paper['p']:.1f}% "
                f"| {n_meas:.1f}% / {p_meas:.1f}% |")
    lines.append("")
    lines.append(f"Paper bound: every cell < 10%. Measured worst cell: "
                 f"**{result.extraction.max_error():.1f}%** — bound holds.")
    lines.append("")
    return lines


def _fig5_section(result: FullFlowResult) -> List[str]:
    lines = ["## Figure 5 — PPA averages vs the 2-D baseline", ""]
    lines.append("| Metric | Variant | Paper | Measured |")
    lines.append("|---|---|---|---|")
    for metric in ("delay", "power", "area"):
        for variant in MIV_VARIANTS:
            paper = FIG5_REFERENCE[metric][variant.value]
            measured = result.ppa.average_change_percent(variant, metric)
            lines.append(f"| {metric} | {variant.value} "
                         f"| {paper:+.1f}% | {measured:+.2f}% |")
    lines.append("")
    pdp = result.ppa.average_change_percent(DeviceVariant.MIV_2CH, "pdp")
    lines.append(f"Summary claim — 2-ch power-delay product: paper -3%, "
                 f"measured **{pdp:+.1f}%**.")
    lines.append("")
    return lines


def _per_cell_extremes(result: FullFlowResult) -> List[str]:
    lines = ["### Per-cell extremes quoted in the text", ""]
    rows = [
        ("AND2X1 delay, 4-ch", "+6%", result.ppa.change_percent(
            "AND2X1", DeviceVariant.MIV_4CH, "delay")),
        ("INV1X1 delay, 2-ch", "-11% (up to)", result.ppa.change_percent(
            "INV1X1", DeviceVariant.MIV_2CH, "delay")),
        ("INV1X1 power, 2-ch", "+3%", result.ppa.change_percent(
            "INV1X1", DeviceVariant.MIV_2CH, "power")),
        ("OR3X1 power, 4-ch", "-3% (up to)", result.ppa.change_percent(
            "OR3X1", DeviceVariant.MIV_4CH, "power")),
    ]
    lines.append("| Quantity | Paper | Measured |")
    lines.append("|---|---|---|")
    for label, paper, measured in rows:
        lines.append(f"| {label} | {paper} | {measured:+.2f}% |")
    lines.append("")
    lines.append(
        "The per-cell extremes depend on each cell's internal structure "
        "and are where our simulator diverges most from the authors' "
        "testbed; the library-average shape is the reproduced result.")
    lines.append("")
    return lines


def _substrate_section() -> List[str]:
    lines = ["## Section IV-3 — substrate area and placement", ""]
    areas = build_area_report()
    top_best = 100 * areas.best_reduction(DeviceVariant.MIV_4CH,
                                          metric="top")
    lines.append(f"* Paper: total substrate area reduction *up to 31%* "
                 f"with separate per-layer placement.")
    lines.append(f"* Measured top-layer (independent placement bound) "
                 f"best case, 4-ch: **{top_best:.1f}%**.")
    placer = Placer(demo_netlist(scale=4), row_width=3e-6)
    lines.append("* Implemented row-based per-layer placement "
                 "(the paper's future work):")
    for variant in MIV_VARIANTS:
        savings = placer.substrate_savings(variant)
        lines.append(f"  * {variant.value}: joint "
                     f"{100 * savings['joint']:.1f}% -> separate "
                     f"{100 * savings['separate']:.1f}%")
    lines.append("")
    return lines


def _extension_section() -> List[str]:
    lines = ["## Extension studies (beyond the paper)", ""]
    corners = corner_drive_study()
    lines.append(f"* **Process corners**: the qualitative finding "
                 f"(1-/2-ch stronger, 4-ch weaker) holds in "
                 f"{100 * advantage_yield(corners):.0f}% of ±5–10% "
                 f"geometry corners.")
    base = None
    ring_rows = []
    for variant in DeviceVariant:
        ring = measure_ring_frequency(variant)
        if base is None:
            base = ring.frequency
        ring_rows.append(f"  * {variant.value}: "
                         f"{ring.frequency / 1e9:.2f} GHz "
                         f"({ring.frequency / base - 1:+.1%} vs 2D)")
    lines.append("* **5-stage ring oscillators** (self-generated slow "
                 "slews; the n-only V_th shift lowers the switching "
                 "threshold and penalises rising edges, so the ordering "
                 "differs from the driven-edge Figure 5a deltas — an "
                 "adoption caveat for weakly driven timing paths):")
    lines.extend(ring_rows)
    lines.append("")
    return lines


def _engine_section(result: FullFlowResult) -> List[str]:
    """How the run was produced: cache hits, workers, wall time."""
    if result.manifest is None:
        return []
    summary = result.manifest.summary()
    lines = ["## Execution engine run manifest", ""]
    backend = (f", backend={summary['backend']}" if summary.get("backend")
               else "")
    lines.append(f"* {summary['tasks']} tasks: {summary['cache_hits']} "
                 f"cache hits, {summary['computed']} computed "
                 f"({summary['total_wall_time']:.1f}s wall, "
                 f"max_workers={summary['max_workers']}{backend}).")
    for stage, row in summary["stages"].items():
        lines.append(f"  * `{stage}`: {row['tasks']} tasks, "
                     f"{row['hits']} hit / {row['computed']} computed, "
                     f"{row['wall_span']:.1f}s span "
                     f"({row['task_seconds']:.1f}s task time).")
    lines.append("")
    return lines


def build_experiments_markdown() -> str:
    """Run everything and render the EXPERIMENTS.md content."""
    result = run_full_flow()
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerate this file with "
        "`python -m repro.reporting.experiments` (about five minutes); "
        "each claim is also asserted by a benchmark in `benchmarks/`.",
        "",
        "Absolute values are not expected to match (our substrate is a "
        "from-scratch simulator, not the authors' Sentaurus/HSPICE "
        "testbed); the reproduced quantities are the *shapes*: who wins, "
        "by roughly what factor, and where the orderings fall.",
        "",
    ]
    lines += _table3_section(result)
    lines += _fig5_section(result)
    lines += _per_cell_extremes(result)
    lines += _substrate_section()
    lines += _extension_section()
    lines += _engine_section(result)
    lines += [
        "## Known deviations",
        "",
        "* The paper's per-variant **delay ordering** between 1-ch "
        "(-3%) and 2-ch (-2%) is within 1%; our pipeline lands both "
        "near -4% with 2-ch marginally ahead.",
        "* The paper reports the **4-ch power** saving as the largest "
        "(-2%); ours is the smallest of the three (~-1%) — all variants "
        "agree in sign and ~1% magnitude.",
        "* Our joint-placement **area averages** (-7.6 / -15.2 / -14.0%) "
        "sit 2-4 points below the paper's (-9 / -18 / -12%) with the "
        "same ordering; the rule constants (Table I + 7 nm-PDK M1 "
        "assumptions) fully determine them.",
        "",
    ]
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """CLI entry: write EXPERIMENTS.md."""
    path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    content = build_experiments_markdown()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {path} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
