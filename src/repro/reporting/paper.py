"""The paper's reported numbers, for paper-vs-measured comparison.

Transcribed from the SOCC 2023 text: Table III extraction errors and the
Figure-5 / summary percentages.  Used by EXPERIMENTS.md generation and by
shape-checking tests (we compare signs/orderings, not absolute values).
"""

from __future__ import annotations

#: Table III — extraction error percent, region -> device -> polarity.
TABLE3_REFERENCE = {
    "IDVG": {
        "FOUR": {"n": 7.2, "p": 7.1},
        "TWO": {"n": 6.6, "p": 7.0},
        "ONE": {"n": 6.4, "p": 8.5},
        "TRADITIONAL": {"n": 7.9, "p": 5.5},
    },
    "IDVD": {
        "FOUR": {"n": 3.5, "p": 7.2},
        "TWO": {"n": 3.4, "p": 6.8},
        "ONE": {"n": 3.2, "p": 7.5},
        "TRADITIONAL": {"n": 3.7, "p": 5.2},
    },
    "CV": {
        "FOUR": {"n": 7.0, "p": 5.7},
        "TWO": {"n": 4.7, "p": 6.0},
        "ONE": {"n": 5.0, "p": 7.3},
        "TRADITIONAL": {"n": 9.6, "p": 8.6},
    },
}

#: Figure 5 / summary — average percent change vs the 2-D baseline.
FIG5_REFERENCE = {
    "delay": {"1-ch": -3.0, "2-ch": -2.0, "4-ch": +2.0},
    "power": {"1-ch": -0.5, "2-ch": -1.0, "4-ch": -2.0},
    "area": {"1-ch": -9.0, "2-ch": -18.0, "4-ch": -12.0},
}

#: Per-cell extremes quoted in the text.
TEXT_CLAIMS = {
    "and2_4ch_delay_increase_percent": 6.0,    # AND2X1, 4-ch, delay
    "inv_2ch_delay_reduction_percent": 11.0,   # INV1X1, 2-ch, delay (up to)
    "inv_2ch_power_increase_percent": 3.0,     # INV1X1, 2-ch, power
    "or3_4ch_power_reduction_percent": 3.0,    # OR3X1, 4-ch, power (up to)
    "substrate_area_reduction_percent": 31.0,  # separate placement bound
    "area_4ch_best_case_percent": 25.0,        # "if delay can be leveraged"
    "pdp_reduction_2ch_percent": 3.0,          # summary
    "extraction_error_bound_percent": 10.0,    # Table III bound
}

PAPER_REFERENCE = {
    "table3": TABLE3_REFERENCE,
    "fig5": FIG5_REFERENCE,
    "text": TEXT_CLAIMS,
}
