"""Text renderings of Tables I, II and III."""

from __future__ import annotations

from typing import Optional

from repro.compact.parameters import LEVEL70_CONSTANTS
from repro.extraction.results import ExtractionReport
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters

#: Human-readable descriptions for the Table I rows.
_TABLE1_DESCRIPTIONS = {
    "t_Si [nm]": "Silicon Thickness",
    "h_src [nm]": "Height of source/drain region",
    "t_ox [nm]": "Thickness of oxide liner",
    "n_src [cm^-3]": "Source/Drain doping",
    "t_spacer [nm]": "Spacer Thickness",
    "t_BOX [nm]": "Buried Oxide Thickness",
    "t_miv [nm]": "MIV thickness",
    "l_src [nm]": "Length of Source/Drain region",
    "w_src [nm]": "Width of Source/Drain region",
    "L_G [nm]": "Length of Gate",
}

#: Descriptions for the Table II rows.
_TABLE2_DESCRIPTIONS = {
    "LEVEL": "Spice model selector",
    "MOBMOD": "Mobility model selector",
    "CAPMOD": "Flag for the short channel capacitance model",
    "IGCMOD": "Gate-to-channel tunneling current model selector",
    "SOIMOD": "SOI model selector",
    "TSI": "Silicon Thickness (m)",
    "TOX": "Oxide Thickness (m)",
    "TBOX": "Buried Oxide Thickness (m)",
    "L": "Channel Length (m)",
    "W": "Channel Width (m)",
    "TNOM": "Nominal Temperature (C)",
}


def render_table1(process: Optional[ProcessParameters] = None) -> str:
    """Table I: process and design parameters used in the study."""
    process = process or DEFAULT_PROCESS
    lines = ["Parameter\tDescription\tValue"]
    for key, value in process.as_table1().items():
        description = _TABLE1_DESCRIPTIONS.get(key, "")
        lines.append(f"{key}\t{description}\t{value:g}")
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: level-70 constants and flags used in extraction."""
    lines = ["Parameter\tDescription\tValue"]
    for key, value in LEVEL70_CONSTANTS.items():
        description = _TABLE2_DESCRIPTIONS.get(key, "")
        lines.append(f"{key}\t{description}\t{value:g}")
    return "\n".join(lines)


def render_table3(report: ExtractionReport) -> str:
    """Table III: TCAD-to-SPICE extraction errors."""
    return report.render()
