"""Regeneration of every table and figure in the paper."""

from repro.reporting.paper import PAPER_REFERENCE
from repro.reporting.tables import render_table1, render_table2, render_table3
from repro.reporting.figures import fig4_curves, fig5_series

__all__ = [
    "PAPER_REFERENCE",
    "render_table1",
    "render_table2",
    "render_table3",
    "fig4_curves",
    "fig5_series",
]
