"""Three-state circuit breaker for flaky dependencies.

The remote cache tier (and any future network dependency) talks to an
endpoint that can fail *slowly* — every timeout costs a full
``REPRO_REMOTE_TIMEOUT`` budget.  A :class:`CircuitBreaker` bounds that
cost: after ``failure_threshold`` consecutive failures the breaker
*opens* and every call is refused instantly; after ``reset_timeout``
seconds it goes *half-open* and admits exactly one probe call; the
probe's outcome decides between closing the circuit (dependency
recovered — normal operation resumes) and re-opening it (another full
``reset_timeout`` of instant refusals).

So a dead endpoint costs one failed probe per reset window instead of
one timeout per task — the difference between a run that finishes a few
seconds late and one that spends minutes waiting on a black hole.

The breaker is deliberately mechanism-only: it never sleeps, never
retries, never knows what a "call" is.  Callers ask :meth:`allow`
before attempting the operation and report the outcome through
:meth:`record_success` / :meth:`record_failure`.  The clock is
injectable so the state machine is testable (and property-testable)
without real waiting.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.config import require_finite_float, require_int

#: Breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: Consecutive failures that trip the breaker (default).
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds an open breaker refuses calls before probing (default).
DEFAULT_RESET_TIMEOUT = 10.0


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (in ``closed``) that open the circuit.
    reset_timeout:
        Seconds an open circuit refuses every call before admitting
        one half-open probe.
    clock:
        Monotonic time source (injectable for tests).

    Thread-safe: the service layer shares one remote-cache client
    between worker threads.
    """

    def __init__(self,
                 failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 reset_timeout: float = DEFAULT_RESET_TIMEOUT,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = require_int(
            "failure_threshold", failure_threshold, positive=True)
        self.reset_timeout = require_finite_float(
            "reset_timeout", reset_timeout, positive=True)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: True while the single half-open probe is outstanding.
        self._probe_inflight = False
        self.opened_total = 0
        self.reattached_total = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``).

        An ``open`` circuit whose reset window has elapsed reports
        ``half-open`` — the state a call at this instant would see.
        """
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (self._state == STATE_OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            return STATE_HALF_OPEN
        return self._state

    @property
    def closed(self) -> bool:
        return self.state == STATE_CLOSED

    def snapshot(self) -> Dict[str, object]:
        """State + counters for metrics/diagnostics."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "opened_total": self.opened_total,
                "reattached_total": self.reattached_total,
            }

    # ------------------------------------------------------------------
    # the protocol: allow -> attempt -> record
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the caller attempt the operation right now?

        ``closed``: always.  ``open``: never, until ``reset_timeout``
        elapses.  ``half-open``: exactly one caller gets True (the
        probe); everyone else is refused until the probe's outcome is
        recorded.
        """
        with self._lock:
            state = self._state_locked()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN:
                if self._probe_inflight:
                    return False
                self._state = STATE_HALF_OPEN
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """The attempted operation succeeded: close the circuit."""
        with self._lock:
            if self._state != STATE_CLOSED:
                self.reattached_total += 1
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._opened_at = None

    def record_failure(self) -> None:
        """The attempted operation failed.

        In ``closed``, counts toward the threshold; from ``half-open``
        (a failed probe) the circuit re-opens for a fresh reset window.
        """
        with self._lock:
            if self._state == STATE_HALF_OPEN or self._probe_inflight:
                self._trip_locked()
                return
            if self._state == STATE_OPEN:
                # Late failure report from before the trip: no-op.
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self._consecutive_failures = self.failure_threshold
        self.opened_total += 1

    def reset(self) -> None:
        """Force the breaker closed (tests / manual re-attach)."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._opened_at = None
