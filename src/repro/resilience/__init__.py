"""Fault tolerance: retry policies, rescue ladders, fault injection.

The failure-domain layer of the pipeline.  Three pieces:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, the engine's
  per-task retry/backoff/timeout knobs (``REPRO_TASK_RETRIES``,
  ``REPRO_TASK_TIMEOUT``), plus jittered backoff for network callers;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  three-state (closed/open/half-open) breaker bounding the cost of a
  dead dependency to one failed probe per reset window;
* :mod:`repro.resilience.netchaos` — :class:`ChaosProxy`, the
  fault-injecting HTTP proxy (drop, delay, truncate, corrupt,
  500-burst) that chaos-tests the remote cache tier;
* :mod:`repro.resilience.rescue` — :func:`continue_solve`, the adaptive
  parameter-continuation primitive the solver rescue ladders share;
* :mod:`repro.resilience.faults` — :class:`FaultInjector`, the
  deterministic seeded injector (``REPRO_FAULTS``) that drives every
  recovery path under test: stage exceptions, SIGKILLed pool workers,
  forced solver non-convergence, driver ``kill -9`` at task
  boundaries and mid-cache-write;
* :mod:`repro.resilience.chaos` — the subprocess chaos harness that
  turns those faults into whole-process experiments (kill/resume
  cycles, SIGTERM drains, K concurrent invocations on one cache).

See the "Fault tolerance" sections of README.md / DESIGN.md for the
end-to-end semantics (retry → continue → resume).
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosReport,
    FlowOutcome,
    flow_argv,
    finish,
    repro_env,
    run_concurrent_flows,
    run_flow,
    run_until_complete,
    spawn_flow,
    terminate_gracefully,
)
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultRule,
    active_injector,
    clear_faults,
    draw_fault,
    install,
    kill_current_process,
    maybe_inject,
)
from repro.resilience.rescue import (
    MAX_SPLITS,
    ContinuationResult,
    continue_solve,
)
from repro.resilience.retry import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    RetryPolicy,
    resolve_retry_policy,
)

from repro.resilience.netchaos import (
    ChaosProxy,
    NetFaultPlan,
)

__all__ = [
    "ChaosProxy",
    "ChaosReport",
    "CircuitBreaker",
    "NetFaultPlan",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "ContinuationResult",
    "FAULTS_ENV",
    "FlowOutcome",
    "FaultInjector",
    "FaultRule",
    "MAX_SPLITS",
    "RetryPolicy",
    "TASK_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "active_injector",
    "clear_faults",
    "continue_solve",
    "draw_fault",
    "finish",
    "flow_argv",
    "install",
    "kill_current_process",
    "maybe_inject",
    "repro_env",
    "resolve_retry_policy",
    "run_concurrent_flows",
    "run_flow",
    "run_until_complete",
    "spawn_flow",
    "terminate_gracefully",
]
