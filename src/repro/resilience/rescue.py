"""Parameter continuation: the shared rescue primitive of the solvers.

Nonlinear solves that fail cold often succeed when walked there: solve
an easy nearby problem first (zero bias, scaled-down sources, extra
gmin), then use each solution as the initial guess for a harder one.
:func:`continue_solve` implements the adaptive bisection version of
that walk once, so Newton source continuation (``spice.newton``) and
TCAD corner-bias sweeps (``tcad.dd1d``) share one tested primitive
instead of two ad-hoc loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConvergenceError

#: Default bound on bisection refinements before giving up.
MAX_SPLITS = 8


@dataclass(frozen=True)
class ContinuationResult:
    """Solution of the target problem plus how hard it was to reach."""

    solution: Any
    steps: int      # successful intermediate + final solves
    splits: int     # bisections forced by non-convergence

    @property
    def rescued(self) -> bool:
        """True when intermediate problems were needed (splits > 0)."""
        return self.splits > 0


def continue_solve(solve: Callable[[float, Any], Any], target: float,
                   start: float = 0.0, initial: Any = None,
                   max_splits: int = MAX_SPLITS) -> ContinuationResult:
    """Walk ``solve`` from ``start`` to ``target`` with adaptive steps.

    ``solve(value, warm)`` must solve the problem at parameter ``value``
    starting from ``warm`` (a previous solution, or ``initial`` for the
    first call) and raise :class:`ConvergenceError` on failure.  The
    walk first attempts ``target`` directly; every failure bisects the
    remaining interval (up to ``max_splits`` times total), every success
    advances the warm start.  The final :class:`ConvergenceError` is
    re-raised when the split budget runs out.
    """
    goals = [target]
    value = start
    warm = initial
    steps = splits = 0
    while goals:
        goal = goals[-1]
        try:
            warm = solve(goal, warm)
        except ConvergenceError:
            if splits >= max_splits:
                raise
            splits += 1
            goals.append(value + (goal - value) / 2.0)
            continue
        value = goal
        goals.pop()
        steps += 1
    return ContinuationResult(solution=warm, steps=steps, splits=splits)
