"""Chaos harness: drive real ``python -m repro.flows`` subprocesses.

The durability guarantees worth having are the ones that survive a
*real* ``kill -9`` — not a mocked one.  This module spawns actual CLI
invocations with fault specs in their environment
(:data:`~repro.resilience.faults.FAULTS_ENV`), so a test can:

* kill the driver at a chosen task boundary (``proc_kill`` with
  ``after=k``) and assert that ``--resume`` completes the run with
  bit-identical artefacts;
* kill it *mid disk-cache write* (``write_kill``) and assert the cache
  never serves a torn entry;
* run K invocations concurrently against one shared cache directory
  and assert single-flight bounded the duplicate work;
* deliver SIGTERM and assert the graceful-shutdown contract (exit code
  :data:`~repro.engine.durability.EXIT_INTERRUPTED`, a journalled
  ``interrupted`` end record, a resumable manifest).

Everything here is plain subprocess plumbing — the deterministic fault
*placement* comes from the seeded injector, so chaos runs are
reproducible.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.resilience.faults import FAULTS_ENV

#: Default per-invocation wall clock bound [s]; chaos tests must never
#: hang CI, so every wait in this module is bounded.
DEFAULT_TIMEOUT_S = 300.0


def repro_env(cache_dir: os.PathLike,
              faults: str = "",
              extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Environment for a subprocess invocation of this checkout.

    Points ``PYTHONPATH`` at the package root (so the child imports
    the same code under test), ``REPRO_CACHE_DIR`` at the shared cache
    and ``REPRO_FAULTS`` at the chaos spec.
    """
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (src_root + os.pathsep + existing
                         if existing else src_root)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    # Chaos invocations are local-only unless the experiment wires a
    # remote endpoint back in via ``extra``.
    env.pop("REPRO_REMOTE_CACHE", None)
    if faults:
        env[FAULTS_ENV] = faults
    else:
        env.pop(FAULTS_ENV, None)
    env.update(extra or {})
    return env


def flow_argv(cells: Sequence[str] = ("INV1X1",),
              variants: Sequence[str] = ("2D",),
              extraction_variants: Sequence[str] = ("TRADITIONAL",),
              run_id: Optional[str] = None,
              resume: Optional[str] = None,
              workers: Optional[int] = None,
              backend: Optional[str] = None,
              extra: Sequence[str] = ()) -> List[str]:
    """``python -m repro.flows ...`` argv for a (small) chaos flow."""
    argv = [sys.executable, "-m", "repro.flows"]
    if resume is not None:
        argv += ["resume", resume]
    else:
        argv += ["run",
                 "--cells", ",".join(cells),
                 "--variants", ",".join(variants),
                 "--extraction-variants", ",".join(extraction_variants)]
        if run_id is not None:
            argv += ["--run-id", run_id]
    if workers is not None:
        argv += ["--workers", str(workers)]
    if backend is not None:
        argv += ["--backend", backend]
    argv += list(extra)
    return argv


@dataclass
class FlowOutcome:
    """What one chaos subprocess did."""

    argv: List[str]
    returncode: int
    stdout: str = ""
    stderr: str = ""
    wall_s: float = 0.0

    @property
    def killed(self) -> bool:
        """True when the process died on a signal (e.g. SIGKILL)."""
        return self.returncode < 0

    @property
    def signal(self) -> Optional[int]:
        return -self.returncode if self.returncode < 0 else None


def spawn_flow(argv: Sequence[str],
               env: Dict[str, str]) -> subprocess.Popen:
    """Start a flow invocation without waiting (for signal delivery).

    stdout/stderr go to temp *files*, not pipes: a ``kill -9``'d
    driver leaves orphaned pool workers that inherit its streams, and
    a pipe would keep a waiter blocked until those orphans exit.  With
    files, :func:`finish` only waits for the driver process itself.
    The child gets its own session so cleanup can kill the whole tree.
    """
    out = tempfile.TemporaryFile(mode="w+", encoding="utf-8")
    err = tempfile.TemporaryFile(mode="w+", encoding="utf-8")
    proc = subprocess.Popen(list(argv), env=env, stdout=out, stderr=err,
                            text=True, start_new_session=True)
    proc._chaos_streams = (out, err)  # type: ignore[attr-defined]
    return proc


def _kill_tree(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (OSError, AttributeError):  # pragma: no cover - already gone
        try:
            proc.kill()
        except OSError:
            pass


def finish(proc: subprocess.Popen,
           timeout: float = DEFAULT_TIMEOUT_S) -> FlowOutcome:
    """Collect a spawned invocation into a :class:`FlowOutcome`.

    Waits only for the driver process (orphaned pool workers do not
    block collection) and always reaps the child's process group.
    """
    start = time.monotonic()
    try:
        returncode = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        _kill_tree(proc)
        proc.wait()
        raise
    stdout = stderr = ""
    streams = getattr(proc, "_chaos_streams", None)
    if streams is not None:
        for name, stream in zip(("stdout", "stderr"), streams):
            stream.seek(0)
            text = stream.read()
            stream.close()
            if name == "stdout":
                stdout = text
            else:
                stderr = text
    # Reap any orphaned workers of a killed driver.
    if returncode < 0:
        _kill_tree(proc)
    return FlowOutcome(argv=list(proc.args), returncode=returncode,
                       stdout=stdout, stderr=stderr,
                       wall_s=time.monotonic() - start)


def run_flow(argv: Sequence[str], env: Dict[str, str],
             timeout: float = DEFAULT_TIMEOUT_S) -> FlowOutcome:
    """Run one flow invocation to completion (or its fault-kill)."""
    return finish(spawn_flow(argv, env), timeout=timeout)


def run_concurrent_flows(argvs: Sequence[Sequence[str]],
                         env: Dict[str, str],
                         stagger_s: float = 0.0,
                         timeout: float = DEFAULT_TIMEOUT_S,
                         ) -> List[FlowOutcome]:
    """Run K invocations concurrently against one shared environment.

    ``stagger_s`` optionally offsets the starts (0 = simultaneous).
    All processes are reaped even when one fails.
    """
    procs: List[subprocess.Popen] = []
    try:
        for i, argv in enumerate(argvs):
            if i and stagger_s:
                time.sleep(stagger_s)
            procs.append(spawn_flow(argv, env))
        return [finish(proc, timeout=timeout) for proc in procs]
    finally:
        for proc in procs:
            if proc.poll() is None:
                _kill_tree(proc)
                proc.wait()


def wait_for_journal(cache_dir: os.PathLike, run_id: str,
                     min_tasks: int = 0,
                     timeout: float = DEFAULT_TIMEOUT_S,
                     proc: Optional[subprocess.Popen] = None) -> bool:
    """Wait until a run's journal exists with >= ``min_tasks`` records.

    The way a chaos test synchronises signal delivery with run
    progress: "SIGTERM it once task 2 has landed" is deterministic,
    "SIGTERM it after 2.5 seconds" races interpreter start-up.
    Returns False on timeout or when ``proc`` exits first.
    """
    from repro.engine.durability import (JournalState, RunJournal,
                                         replay_journal, run_dir)
    path = run_dir(cache_dir, run_id) / RunJournal.FILENAME
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc is not None and proc.poll() is not None:
            return False
        if path.is_file():
            state = JournalState.from_records(replay_journal(path))
            if state.begun and len(state.tasks) >= min_tasks:
                return True
        time.sleep(0.02)
    return False


def terminate_gracefully(proc: subprocess.Popen,
                         after_s: float = 0.0,
                         sig: int = signal.SIGTERM,
                         timeout: float = DEFAULT_TIMEOUT_S) -> FlowOutcome:
    """Deliver a signal after a delay, then collect the outcome."""
    if after_s > 0:
        deadline = time.monotonic() + after_s
        while time.monotonic() < deadline and proc.poll() is None:
            time.sleep(0.02)
    if proc.poll() is None:
        proc.send_signal(sig)
    return finish(proc, timeout=timeout)


@dataclass
class ChaosReport:
    """Aggregate of one chaos scenario (kills + final completion)."""

    outcomes: List[FlowOutcome] = field(default_factory=list)

    @property
    def kills(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def completed(self) -> bool:
        return bool(self.outcomes) and self.outcomes[-1].returncode == 0


# ----------------------------------------------------------------------
# server chaos: drive real ``python -m repro.serve`` subprocesses
# ----------------------------------------------------------------------
def serve_argv(port: int,
               queue: Optional[int] = None,
               workers: Optional[int] = None,
               tenant_rps: Optional[float] = None,
               tenant_burst: Optional[float] = None,
               grace: Optional[float] = None,
               extra: Sequence[str] = ()) -> List[str]:
    """``python -m repro.serve ...`` argv for a chaos server."""
    argv = [sys.executable, "-m", "repro.serve", "--port", str(port)]
    if queue is not None:
        argv += ["--queue", str(queue)]
    if workers is not None:
        argv += ["--workers", str(workers)]
    if tenant_rps is not None:
        argv += ["--tenant-rps", str(tenant_rps)]
    if tenant_burst is not None:
        argv += ["--tenant-burst", str(tenant_burst)]
    if grace is not None:
        argv += ["--grace", str(grace)]
    argv += list(extra)
    return argv


def spawn_server(argv: Sequence[str],
                 env: Dict[str, str]) -> subprocess.Popen:
    """Start a service invocation (same stream/session handling as
    :func:`spawn_flow`); pair with :func:`wait_for_server`."""
    return spawn_flow(argv, env)


def wait_for_server(port: int,
                    proc: Optional[subprocess.Popen] = None,
                    host: str = "127.0.0.1",
                    timeout: float = 30.0) -> bool:
    """Poll ``/healthz`` until the server answers (False on timeout
    or when ``proc`` exits first)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc is not None and proc.poll() is not None:
            return False
        try:
            status, _, _ = http_request(
                "GET", f"http://{host}:{port}/healthz", timeout=1.0)
            if status == 200:
                return True
        except OSError:
            pass
        time.sleep(0.05)
    return False


def http_request(method: str, url: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None,
                 timeout: float = DEFAULT_TIMEOUT_S):
    """One JSON request -> ``(status, payload, headers)``.

    Error statuses (4xx/5xx) are returned, not raised — chaos tests
    assert on them.  Connection-level failures raise ``OSError``.
    """
    import json
    import urllib.error
    import urllib.request

    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method,
                                     headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        with exc:
            try:
                payload = json.load(exc)
            except ValueError:
                payload = {}
        return exc.code, payload, dict(exc.headers or {})


def run_until_complete(make_argv, env: Dict[str, str],
                       max_invocations: int = 10,
                       timeout: float = DEFAULT_TIMEOUT_S) -> ChaosReport:
    """Invoke, and re-invoke on kill, until a run completes.

    ``make_argv(attempt, previous)`` returns the argv for each attempt
    (``previous`` is the prior :class:`FlowOutcome` or ``None``) — the
    caller decides how to thread the run id into a ``resume``.  Stops
    on the first clean exit, a non-signal failure, or after
    ``max_invocations``.
    """
    report = ChaosReport()
    previous: Optional[FlowOutcome] = None
    for attempt in range(max_invocations):
        outcome = run_flow(make_argv(attempt, previous), env,
                           timeout=timeout)
        report.outcomes.append(outcome)
        previous = outcome
        if not outcome.killed:
            break
    return report
