"""Deterministic, seeded fault injection for the pipeline.

A :class:`FaultInjector` holds a list of :class:`FaultRule` entries and
answers one question — :meth:`FaultInjector.draw`: "should fault *kind*
fire at *site* on this occasion?".  Every recovery path in the engine
and the solvers consults the active injector at its decision point, so
the whole failure domain (task retries, pool rebuilds, solver rescue
ladders, timestep rejection) can be driven deterministically from a
single spec string — no monkeypatching, no flaky timing.

Spec grammar (``REPRO_FAULTS`` environment variable or
:meth:`FaultInjector.parse`)::

    spec    = segment (";" segment)*
    segment = "seed=" int
            | kind ":" site [":" opt ("," opt)*]
    opt     = key "=" value

    stage_exc:extract:p=0.5;worker_kill:ppa:n=1;convergence:newton:first=2

Kinds
-----
``stage_exc``
    Raise :class:`~repro.errors.InjectedFault` inside the stage compute
    of any task whose stage name contains *site*.
``worker_kill``
    SIGKILL the pool worker assigned a matching task (parallel engine
    runs only) — the mechanism for exercising ``BrokenProcessPool``
    recovery.
``convergence``
    Force a solver to report non-convergence.  Without ``fatal=1`` the
    solver's *primary* path fails and its rescue ladder engages; with
    ``fatal=1`` the whole solve raises, exercising the caller's
    recovery (e.g. transient timestep rejection).
``proc_kill``
    SIGKILL the *driver* process itself, drawn at a task boundary just
    after the completed task was journalled — the chaos-harness
    mechanism for "kill -9 at a random task, then resume"
    (:mod:`repro.resilience.chaos`).
``write_kill``
    SIGKILL the process *mid disk-cache write* — between the temp-file
    write and the atomic rename — exercising the crash window of the
    cache publish protocol.

Options
-------
``first=k``   fire on the first *k* draws at the site, then never again.
``after=k``   fire exactly once, on draw number *k* (1-based) — how the
              chaos harness places one kill at a chosen task boundary.
``n=k``       fire at most *k* times total (combines with ``p``).
``p=x``       per-draw probability (seeded — deterministic for a seed).
``fatal=1``   see ``convergence`` above.
``message=s`` message carried by the injected exception.

Site matching is by substring (``extract`` matches the ``extraction``
stage, ``ppa`` matches ``cell_ppa``); ``*`` matches every site.

The engine consults the injector in the *parent* process at submit
time, so engine-level faults (``stage_exc``, ``worker_kill``) are
deterministic regardless of worker scheduling.  Solver-level
``convergence`` faults are drawn in whatever process runs the solver.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InjectedFault, ReproError

#: Environment variable carrying the fault spec (empty/unset = no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: Recognised fault kinds.
KINDS = ("stage_exc", "worker_kill", "convergence", "proc_kill",
         "write_kill")


@dataclass
class FaultRule:
    """One parsed spec segment plus its firing state."""

    kind: str
    site: str
    p: float = 1.0
    n: Optional[int] = None
    first: Optional[int] = None
    after: Optional[int] = None
    fatal: bool = False
    message: str = ""
    draws: int = 0
    fires: int = 0

    def matches(self, kind: str, site: str) -> bool:
        return self.kind == kind and (self.site == "*" or self.site in site)

    def decide(self, rng: random.Random) -> bool:
        """Advance this rule's state by one draw; True = fire."""
        self.draws += 1
        if self.after is not None:
            fire = self.draws == self.after
        elif self.first is not None:
            fire = self.draws <= self.first
        elif self.n is not None and self.fires >= self.n:
            fire = False
        else:
            fire = self.p >= 1.0 or rng.random() < self.p
        if fire:
            self.fires += 1
        return fire


def _parse_segment(segment: str) -> FaultRule:
    parts = segment.split(":")
    if len(parts) < 2:
        raise ReproError(f"bad fault segment {segment!r}: expected "
                         f"'kind:site[:opts]'")
    kind, site = parts[0].strip(), parts[1].strip()
    if kind not in KINDS:
        raise ReproError(f"unknown fault kind {kind!r} "
                         f"(expected one of {', '.join(KINDS)})")
    if not site:
        raise ReproError(f"bad fault segment {segment!r}: empty site")
    rule = FaultRule(kind=kind, site=site)
    if len(parts) > 2:
        for opt in ":".join(parts[2:]).split(","):
            opt = opt.strip()
            if not opt:
                continue
            if "=" not in opt:
                raise ReproError(f"bad fault option {opt!r} in {segment!r}")
            key, value = (s.strip() for s in opt.split("=", 1))
            try:
                if key == "p":
                    rule.p = float(value)
                elif key == "n":
                    rule.n = int(value)
                elif key == "first":
                    rule.first = int(value)
                elif key == "after":
                    rule.after = int(value)
                elif key == "fatal":
                    rule.fatal = value not in ("0", "false", "no", "")
                elif key == "message":
                    rule.message = value
                else:
                    raise ReproError(f"unknown fault option {key!r} "
                                     f"in {segment!r}")
            except ValueError:
                raise ReproError(f"bad fault option value {opt!r} "
                                 f"in {segment!r}") from None
    return rule


class FaultInjector:
    """Deterministic fault oracle: rules + a seeded RNG.

    Two injectors built from the same spec and seed make identical
    decisions for identical draw sequences.
    """

    def __init__(self, rules: Optional[List[FaultRule]] = None, seed: int = 0):
        self.rules: List[FaultRule] = list(rules or [])
        self.seed = seed
        self._rng = random.Random(seed)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Build an injector from a spec string (see module docstring)."""
        rules = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[5:])
                except ValueError:
                    raise ReproError(
                        f"bad fault seed {segment!r}") from None
                continue
            rules.append(_parse_segment(segment))
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """Injector described by ``REPRO_FAULTS``, or None when unset."""
        spec = os.environ.get(FAULTS_ENV, "")
        return cls.parse(spec) if spec.strip() else None

    def draw(self, kind: str, site: str) -> Optional[FaultRule]:
        """First matching rule that fires on this occasion, else None."""
        for rule in self.rules:
            if rule.matches(kind, site):
                if rule.decide(self._rng):
                    return rule
                return None
        return None

    def stats(self) -> Dict[str, int]:
        """Total draws/fires per ``kind:site`` (diagnostics)."""
        out: Dict[str, int] = {}
        for rule in self.rules:
            out[f"{rule.kind}:{rule.site}"] = rule.fires
        return out


# ----------------------------------------------------------------------
# the process-wide active injector
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None
_ENV_CHECKED = False


def install(injector: Optional[FaultInjector],
            ) -> Optional[FaultInjector]:
    """Install the process-wide injector (returns the previous one)."""
    global _ACTIVE, _ENV_CHECKED
    previous = _ACTIVE
    _ACTIVE = injector
    _ENV_CHECKED = True
    return previous


def clear_faults() -> None:
    """Remove the active injector (``REPRO_FAULTS`` is re-read lazily)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, lazily created from ``REPRO_FAULTS``."""
    global _ACTIVE, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ACTIVE = FaultInjector.from_env()
        _ENV_CHECKED = True
    return _ACTIVE


def draw_fault(kind: str, site: str) -> Optional[FaultRule]:
    """Consult the active injector; None when no fault fires."""
    injector = active_injector()
    if injector is None:
        return None
    return injector.draw(kind, site)


def maybe_inject(kind: str, site: str) -> None:
    """Raise :class:`InjectedFault` when a matching fault fires."""
    rule = draw_fault(kind, site)
    if rule is not None:
        raise InjectedFault(rule.message
                            or f"injected {kind} fault at {site}")


def kill_current_process() -> None:  # pragma: no cover - kills the caller
    """SIGKILL this process (the ``worker_kill`` payload, run pool-side)."""
    os.kill(os.getpid(), signal.SIGKILL)
