"""Retry policies for engine tasks: capped exponential backoff.

A :class:`RetryPolicy` bundles the three knobs of task-level fault
tolerance: how many extra attempts a failing task gets (``retries``,
env ``REPRO_TASK_RETRIES``), how long to wait between attempts
(``backoff`` doubling per attempt, capped at ``backoff_cap``), and an
optional per-task wall-time budget (``timeout``, env
``REPRO_TASK_TIMEOUT``) enforced by the parallel engine (a serial
in-process run cannot preempt a compute function).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

#: Extra attempts a failed task gets (default 0 — fail on first error).
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"

#: Per-task wall-time budget in seconds (default: none).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries failing tasks.

    Attributes
    ----------
    retries:
        Extra attempts after the first failure (0 = no retry).
    backoff:
        Delay before the first retry [s]; doubles per further attempt.
    backoff_cap:
        Upper bound on any single backoff delay [s].
    timeout:
        Per-task wall-time budget [s]; ``None`` disables.  Enforced on
        preemption-capable backends (the pool kills and respawns the
        overdue worker); in-process backends cannot preempt a running
        compute function.
    """

    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ReproError("backoff delays must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(f"timeout must be positive, got {self.timeout}")

    @property
    def attempts(self) -> int:
        """Total attempts a task gets (first try + retries)."""
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff * (2.0 ** (attempt - 1)))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy resolved from ``REPRO_TASK_RETRIES`` / ``_TIMEOUT``."""
        retries = 0
        env = os.environ.get(TASK_RETRIES_ENV)
        if env:
            try:
                retries = int(env)
            except ValueError:
                raise ReproError(f"{TASK_RETRIES_ENV} must be an integer, "
                                 f"got {env!r}") from None
        timeout: Optional[float] = None
        env = os.environ.get(TASK_TIMEOUT_ENV)
        if env:
            try:
                timeout = float(env)
            except ValueError:
                raise ReproError(f"{TASK_TIMEOUT_ENV} must be a number, "
                                 f"got {env!r}") from None
        return cls(retries=retries, timeout=timeout)


def resolve_retry_policy(policy: Optional[RetryPolicy]) -> RetryPolicy:
    """Explicit policy, else the env-resolved default."""
    return policy if policy is not None else RetryPolicy.from_env()
