"""Retry policies for engine tasks: capped exponential backoff.

A :class:`RetryPolicy` bundles the three knobs of task-level fault
tolerance: how many extra attempts a failing task gets (``retries``,
env ``REPRO_TASK_RETRIES``), how long to wait between attempts
(``backoff`` doubling per attempt, capped at ``backoff_cap``), and an
optional per-task wall-time budget (``timeout``, env
``REPRO_TASK_TIMEOUT``) enforced by the parallel engine (a serial
in-process run cannot preempt a compute function).

Network callers (the remote cache tier) additionally set ``jitter``:
a fraction of each delay randomised away so N clients that fail
together do not retry together (a thundering herd against a recovering
endpoint).  A jittered delay always stays within ``[backoff,
backoff_cap]`` — jitter de-synchronises retries, it never makes one
earlier than the base delay or later than the cap.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

#: Extra attempts a failed task gets (default 0 — fail on first error).
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"

#: Per-task wall-time budget in seconds (default: none).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries failing tasks.

    Attributes
    ----------
    retries:
        Extra attempts after the first failure (0 = no retry).
    backoff:
        Delay before the first retry [s]; doubles per further attempt.
    backoff_cap:
        Upper bound on any single backoff delay [s].
    timeout:
        Per-task wall-time budget [s]; ``None`` disables.  Enforced on
        preemption-capable backends (the pool kills and respawns the
        overdue worker); in-process backends cannot preempt a running
        compute function.
    jitter:
        Fraction of each backoff delay randomised away (``0`` = fully
        deterministic delays, ``0.5`` = each delay lands uniformly in
        the upper half of its exponential rung).  The jittered delay is
        always clamped to ``[backoff, backoff_cap]``.
    """

    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0
    timeout: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ReproError("backoff delays must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(f"timeout must be positive, got {self.timeout}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be within [0, 1], "
                             f"got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total attempts a task gets (first try + retries)."""
        return self.retries + 1

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        With ``jitter`` set and an ``rng`` supplied, the exponential
        rung ``min(cap, backoff * 2**(attempt-1))`` is scaled down by
        up to ``jitter`` of itself, then clamped back into
        ``[backoff, backoff_cap]`` so a jittered retry never fires
        before the base delay nor after the cap.  Without an ``rng``
        the delay is the deterministic rung (engine-task retries stay
        reproducible).
        """
        if self.backoff <= 0:
            return 0.0
        rung = min(self.backoff_cap, self.backoff * (2.0 ** (attempt - 1)))
        if self.jitter <= 0 or rng is None:
            return rung
        scaled = rung * (1.0 - self.jitter * rng.random())
        return min(self.backoff_cap, max(self.backoff, scaled))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy resolved from ``REPRO_TASK_RETRIES`` / ``_TIMEOUT``."""
        retries = 0
        env = os.environ.get(TASK_RETRIES_ENV)
        if env:
            try:
                retries = int(env)
            except ValueError:
                raise ReproError(f"{TASK_RETRIES_ENV} must be an integer, "
                                 f"got {env!r}") from None
        timeout: Optional[float] = None
        env = os.environ.get(TASK_TIMEOUT_ENV)
        if env:
            try:
                timeout = float(env)
            except ValueError:
                raise ReproError(f"{TASK_TIMEOUT_ENV} must be a number, "
                                 f"got {env!r}") from None
        return cls(retries=retries, timeout=timeout)


def resolve_retry_policy(policy: Optional[RetryPolicy]) -> RetryPolicy:
    """Explicit policy, else the env-resolved default."""
    return policy if policy is not None else RetryPolicy.from_env()
