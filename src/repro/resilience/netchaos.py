"""Fault-injecting HTTP proxy: the network's chaos harness.

Where :mod:`repro.resilience.faults` injects failures *inside* the
process and :mod:`repro.resilience.chaos` kills whole processes, this
module breaks the *wire*.  A :class:`ChaosProxy` sits between a
:class:`~repro.engine.remote.RemoteCache` client and a
``repro.cachesrv`` endpoint and injects the five ways a network tier
actually fails:

* ``drop`` — close the connection without any response (a black hole /
  RST; the client sees a dropped connection);
* ``delay`` — stall past the client's ``REPRO_REMOTE_TIMEOUT`` budget
  before answering (the slow-failure mode that motivates per-operation
  budgets in the first place);
* ``truncate`` — send the full ``Content-Length`` but only half the
  body, then close (a torn response: the client must detect the short
  read, never parse half an entry);
* ``corrupt`` — flip bytes mid-body with the length intact (only the
  integrity digest can catch this one);
* ``error500`` — answer ``500`` without consulting upstream (a
  crashing/overloaded server; bursts of these must trip the breaker).

Faults draw from a seeded :class:`random.Random` in request order, so
a chaos experiment replays exactly given the same seed and traffic —
the same determinism contract as ``REPRO_FAULTS``.  A
:class:`NetFaultPlan` parses ``"drop=0.2,corrupt=0.1,seed=7"`` specs
(mirroring the fault-rule grammar) for CLI/CI use.

The proxy asserts nothing itself: the experiment is "run the flow
through the proxy, then assert artifacts are bit-identical to the
serial local-only baseline" (see ``remote-flaky`` in
:mod:`repro.verify.parity`).
"""

from __future__ import annotations

import random
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.config import require_finite_float, require_int
from repro.errors import ConfigError

#: Fault kinds in deterministic draw order.
FAULT_KINDS = ("drop", "delay", "truncate", "corrupt", "error500")

#: Default stall of a ``delay`` fault [s] — must exceed the client's
#: per-operation budget to exercise the timeout path.
DEFAULT_DELAY_S = 5.0

#: Hop-by-hop headers never forwarded by a proxy.
_HOP_HEADERS = {"connection", "keep-alive", "transfer-encoding",
                "te", "trailer", "upgrade", "proxy-authorization",
                "proxy-connection", "host", "content-length"}


class NetFaultPlan:
    """Per-request fault probabilities + the seeded draw.

    Each incoming request draws once per fault kind, in the fixed
    :data:`FAULT_KINDS` order, and the first winning kind fires — so a
    plan's behaviour is a pure function of ``(seed, request index)``.
    """

    def __init__(self, drop: float = 0.0, delay: float = 0.0,
                 truncate: float = 0.0, corrupt: float = 0.0,
                 error500: float = 0.0, delay_s: float = DEFAULT_DELAY_S,
                 seed: int = 0):
        probabilities = {"drop": drop, "delay": delay,
                         "truncate": truncate, "corrupt": corrupt,
                         "error500": error500}
        for kind, value in probabilities.items():
            number = require_finite_float(kind, value, minimum=0.0)
            if number > 1.0:
                raise ConfigError(f"{kind} must be a probability "
                                  f"within [0, 1], got {value!r}")
            probabilities[kind] = number
        self.probabilities = probabilities
        self.delay_s = require_finite_float("delay_s", delay_s,
                                            positive=True)
        self.seed = require_int("seed", seed, minimum=0)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "NetFaultPlan":
        """Parse ``"drop=0.2,corrupt=0.1,seed=7"`` style specs."""
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(f"bad net-fault option {part!r}: "
                                  f"expected key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in FAULT_KINDS + ("delay_s", "seed"):
                raise ConfigError(f"unknown net-fault option {key!r} "
                                  f"(have {', '.join(FAULT_KINDS)}, "
                                  f"delay_s, seed)")
            kwargs[key] = int(value) if key == "seed" else float(value)
        return cls(**kwargs)  # type: ignore[arg-type]

    def draw(self) -> Optional[str]:
        """The fault this request suffers, or None (forward cleanly)."""
        with self._lock:
            for kind in FAULT_KINDS:
                p = self.probabilities[kind]
                if p > 0 and self._rng.random() < p:
                    return kind
        return None


class _ProxyHandler(BaseHTTPRequestHandler):
    """Forward one request upstream, through the fault plan."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-chaosproxy"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def proxy(self) -> "ChaosProxy":
        return self.server.proxy  # type: ignore[attr-defined]

    def _handle(self) -> None:
        try:
            self._handle_inner()
        except (BrokenPipeError, ConnectionResetError):
            # The client gave up (timed out) before the response made
            # it out — exactly what a delay fault is for.  Not an
            # error worth a stderr traceback.
            self.close_connection = True

    def _handle_inner(self) -> None:
        proxy = self.proxy
        fault = proxy.plan.draw()
        if fault is not None:
            proxy.count(fault)
        if fault == "drop":
            # No response at all: the client sees the connection die.
            self.close_connection = True
            return
        if fault == "error500":
            body = b'{"error": "injected 500"}'
            self.send_response(500)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if fault == "delay":
            # Stall past the client's budget, then answer normally —
            # the client must already have given up; if it didn't, the
            # response is still well-formed.
            time.sleep(proxy.plan.delay_s)
        status, body, headers = self._forward()
        if fault == "corrupt" and body:
            # Flip a byte mid-body, length intact: only the digest
            # check can catch this.
            middle = len(body) // 2
            body = (body[:middle] + bytes([body[middle] ^ 0xFF])
                    + body[middle + 1:])
        self.send_response(status)
        for name, value in headers.items():
            if name.lower() not in _HOP_HEADERS:
                self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        if fault == "truncate" and len(body) > 1:
            # Full Content-Length, half the bytes, then a dead socket.
            self.end_headers()
            self.wfile.write(body[:len(body) // 2])
            self.wfile.flush()
            self.close_connection = True
            return
        self.end_headers()
        if body:
            self.wfile.write(body)
        proxy.forwarded += 1

    def _forward(self):
        """One clean upstream exchange (status, body, headers)."""
        length = int(self.headers.get("Content-Length") or 0)
        payload = self.rfile.read(length) if length else None
        headers = {name: value for name, value in self.headers.items()
                   if name.lower() not in _HOP_HEADERS}
        request = urllib.request.Request(
            self.proxy.upstream + self.path, data=payload,
            method=self.command, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return (response.status, response.read(),
                        dict(response.headers.items()))
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read(), dict(exc.headers.items())
        except OSError as exc:
            body = (f'{{"error": "upstream unreachable: '
                    f'{type(exc).__name__}"}}').encode("utf-8")
            return 502, body, {}

    do_GET = _handle    # noqa: N815 - stdlib naming
    do_PUT = _handle    # noqa: N815 - stdlib naming
    do_DELETE = _handle  # noqa: N815 - stdlib naming
    do_POST = _handle   # noqa: N815 - stdlib naming


class ChaosProxy:
    """A bound fault-injecting proxy in front of ``upstream``."""

    def __init__(self, upstream: str, plan: NetFaultPlan,
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream = upstream.rstrip("/")
        self.plan = plan
        self.forwarded = 0
        self.faults: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._counter_lock = threading.Lock()
        self.httpd = ThreadingHTTPServer((host, port), _ProxyHandler)
        self.httpd.proxy = self  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    def count(self, kind: str) -> None:
        with self._counter_lock:
            self.faults[kind] += 1

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_thread(self) -> "ChaosProxy":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-chaosproxy",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
