"""Material record types.

Materials are small frozen dataclasses: a common :class:`Material` base with
relative permittivity, and specialised records for semiconductors (band
structure, mobility), insulators (breakdown field) and conductors
(resistivity, workfunction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import EPS_0, thermal_voltage
from repro.errors import MaterialError


@dataclass(frozen=True)
class Material:
    """Base material record.

    Attributes
    ----------
    name:
        Human readable identifier (unique within the library).
    eps_r:
        Relative permittivity.
    """

    name: str
    eps_r: float

    def __post_init__(self) -> None:
        if self.eps_r <= 0:
            raise MaterialError(
                f"{self.name}: relative permittivity must be positive, "
                f"got {self.eps_r}")

    @property
    def permittivity(self) -> float:
        """Absolute permittivity [F/m]."""
        return self.eps_r * EPS_0


@dataclass(frozen=True)
class Semiconductor(Material):
    """Semiconductor with band structure and bulk transport parameters.

    Attributes
    ----------
    bandgap:
        Bandgap [eV] at 300 K.
    affinity:
        Electron affinity [eV].
    nc, nv:
        Effective density of states of the conduction/valence band [m^-3].
    mu_n, mu_p:
        Low-field bulk mobility of electrons/holes [m^2/Vs].
    tau_n, tau_p:
        SRH carrier lifetimes [s].
    """

    bandgap: float = 1.12
    affinity: float = 4.05
    nc: float = 2.86e25
    nv: float = 2.66e25
    mu_n: float = 0.14
    mu_p: float = 0.045
    tau_n: float = 1e-7
    tau_p: float = 1e-7

    def __post_init__(self) -> None:
        super().__post_init__()
        for field_name in ("bandgap", "nc", "nv", "mu_n", "mu_p",
                           "tau_n", "tau_p"):
            value = getattr(self, field_name)
            if value <= 0:
                raise MaterialError(
                    f"{self.name}: {field_name} must be positive, got {value}")

    def intrinsic_density(self, temperature: float = 298.15) -> float:
        """Intrinsic carrier density [m^-3] at the given temperature."""
        scale = (temperature / 300.0) ** 1.5
        vt = thermal_voltage(temperature)
        return math.sqrt(self.nc * self.nv) * scale * math.exp(
            -self.bandgap / (2.0 * vt))


@dataclass(frozen=True)
class Insulator(Material):
    """Insulator with a breakdown field for liner-thickness sanity checks."""

    breakdown_field: float = 1e9  # V/m

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.breakdown_field <= 0:
            raise MaterialError(
                f"{self.name}: breakdown_field must be positive, "
                f"got {self.breakdown_field}")

    def capacitance_per_area(self, thickness: float) -> float:
        """Parallel-plate capacitance per unit area [F/m^2]."""
        if thickness <= 0:
            raise MaterialError(
                f"{self.name}: thickness must be positive, got {thickness}")
        return self.permittivity / thickness


@dataclass(frozen=True)
class Conductor(Material):
    """Conductor with resistivity and workfunction (for gate/MIV metal)."""

    resistivity: float = 1.7e-8  # Ohm m
    workfunction: float = 4.6  # eV

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistivity <= 0:
            raise MaterialError(
                f"{self.name}: resistivity must be positive, "
                f"got {self.resistivity}")

    def wire_resistance(self, length: float, width: float,
                        thickness: float) -> float:
        """Resistance [Ohm] of a rectangular wire."""
        if min(length, width, thickness) <= 0:
            raise MaterialError(
                f"{self.name}: wire dimensions must be positive")
        return self.resistivity * length / (width * thickness)
