"""The material library used by the paper's process (Section II).

Silicon for the thin film and active regions, SiO2 for every insulator
(BOX, ILD, gate oxide liner, interconnect dielectric), Si3N4 for spacers
and copper for the gate, MIV and interconnect layers.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import MaterialError
from repro.materials.material import Conductor, Insulator, Material, Semiconductor

#: Thin-film silicon (undoped channel; S/D doped separately).
SILICON = Semiconductor(
    name="Si",
    eps_r=11.7,
    bandgap=1.12,
    affinity=4.05,
    nc=2.86e25,
    nv=2.66e25,
    mu_n=0.14,   # 1400 cm^2/Vs bulk; thin-film degradation applied in tcad
    mu_p=0.045,  # 450 cm^2/Vs bulk
    tau_n=1e-7,
    tau_p=1e-7,
)

#: SiO2 — gate oxide liner, BOX, ILD, interconnect dielectric.
SILICON_DIOXIDE = Insulator(name="SiO2", eps_r=3.9, breakdown_field=1e9)

#: Si3N4 — spacer material.
SILICON_NITRIDE = Insulator(name="Si3N4", eps_r=7.5, breakdown_field=1e9)

#: Copper — gate, MIV, M1/M2 and via metal.  The workfunction is set to
#: near-midgap (4.65 eV) which is the usual choice for metal-gate FDSOI.
COPPER = Conductor(name="Cu", eps_r=1.0, resistivity=1.72e-8, workfunction=4.65)

MATERIALS: Dict[str, Material] = {
    material.name: material
    for material in (SILICON, SILICON_DIOXIDE, SILICON_NITRIDE, COPPER)
}


def get_material(name: str) -> Material:
    """Look up a material by name, raising :class:`MaterialError` if unknown."""
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise MaterialError(f"unknown material {name!r}; known: {known}") from None
