"""Doping profiles.

The paper dopes source/drain regions with Boron (p-type) or Arsenic
(n-type) at n_src = 1e19 cm^-3 and leaves the channel film undoped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import MaterialError
from repro.units import per_cm3


class DopantType(enum.Enum):
    """Polarity of a dopant species."""

    DONOR = "donor"        # e.g. Arsenic -> n-type
    ACCEPTOR = "acceptor"  # e.g. Boron   -> p-type

    @property
    def sign(self) -> int:
        """Signed contribution to net doping (donors positive)."""
        return 1 if self is DopantType.DONOR else -1


@dataclass(frozen=True)
class DopingProfile:
    """A 1-D doping profile along a spatial coordinate.

    Attributes
    ----------
    dopant:
        Donor (Arsenic) or acceptor (Boron).
    concentration:
        A callable mapping position [m] to concentration [m^-3].
    label:
        Description used in reports.
    """

    dopant: DopantType
    concentration: Callable[[float], float]
    label: str = "profile"

    def net_doping(self, position: float) -> float:
        """Signed net doping N_D - N_A [m^-3] at ``position``."""
        value = self.concentration(position)
        if value < 0:
            raise MaterialError(
                f"doping profile {self.label!r} returned negative "
                f"concentration {value} at x={position}")
        return self.dopant.sign * value


def uniform_doping(dopant: DopantType, concentration_cm3: float,
                   label: str = "uniform") -> DopingProfile:
    """Uniform profile at ``concentration_cm3`` [cm^-3] (paper: 1e19)."""
    if concentration_cm3 < 0:
        raise MaterialError(
            f"concentration must be non-negative, got {concentration_cm3}")
    value = per_cm3(concentration_cm3)
    return DopingProfile(
        dopant=dopant,
        concentration=lambda _position: value,
        label=label,
    )
