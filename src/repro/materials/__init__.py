"""Material models for the FDSOI M3D process.

The paper models all semiconducting regions with thin-film silicon, all
insulators (gate oxide liner, BOX, ILD, interconnect dielectric) with SiO2,
spacers with Si3N4, and all conductors (gate, MIV, M1/M2, vias) with copper.
"""

from repro.materials.material import (
    Conductor,
    Insulator,
    Material,
    Semiconductor,
)
from repro.materials.library import (
    COPPER,
    MATERIALS,
    SILICON,
    SILICON_DIOXIDE,
    SILICON_NITRIDE,
    get_material,
)
from repro.materials.doping import DopantType, DopingProfile, uniform_doping

__all__ = [
    "Material",
    "Semiconductor",
    "Insulator",
    "Conductor",
    "SILICON",
    "SILICON_DIOXIDE",
    "SILICON_NITRIDE",
    "COPPER",
    "MATERIALS",
    "get_material",
    "DopantType",
    "DopingProfile",
    "uniform_doping",
]
