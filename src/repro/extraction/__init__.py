"""TCAD-to-SPICE parameter extraction (Figure 3 of the paper).

Three sequential stages — Low Drain, High Drain, Capacitance — each
fitting the Section III-B parameter group against the corresponding TCAD
characteristics, with the fitted values handed to the next stage.
"""

from repro.extraction.targets import DeviceTargets, characterize_device
from repro.extraction.error import region_error_percent, relative_errors
from repro.extraction.stages import (
    ExtractionStage,
    capacitance_stage,
    high_drain_stage,
    low_drain_stage,
)
from repro.extraction.optimizer import fit_parameters
from repro.extraction.flow import ExtractionFlow, ExtractedDevice
from repro.extraction.results import ExtractionReport, Table3Row

__all__ = [
    "DeviceTargets",
    "characterize_device",
    "region_error_percent",
    "relative_errors",
    "ExtractionStage",
    "low_drain_stage",
    "high_drain_stage",
    "capacitance_stage",
    "fit_parameters",
    "ExtractionFlow",
    "ExtractedDevice",
    "ExtractionReport",
    "Table3Row",
]
