"""The sequential extraction flow (Figure 3) and its result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import ParameterSet, default_parameters
from repro.errors import ExtractionError
from repro.extraction.error import region_error_percent
from repro.extraction.optimizer import fit_parameters
from repro.extraction.stages import ExtractionStage, default_stage_sequence
from repro.extraction.targets import DeviceTargets
from repro.observe import get_tracer


@dataclass
class ExtractedDevice:
    """A fitted model plus its Table III regional errors.

    Attributes
    ----------
    model:
        The fitted compact model.
    targets:
        The TCAD characteristics it was fitted to.
    errors:
        Region -> error percent: ``{"IDVG": ..., "IDVD": ..., "CV": ...}``.
    stage_rms:
        Stage name -> final optimiser residual RMS (diagnostics).
    """

    model: BsimSoi4Lite
    targets: DeviceTargets
    errors: Dict[str, float] = field(default_factory=dict)
    stage_rms: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Device label (variant + polarity)."""
        return self.targets.label or self.model.name

    def max_error(self) -> float:
        """Worst regional error percent (paper claims < 10 everywhere)."""
        return max(self.errors.values())

    def to_dict(self) -> Dict:
        """JSON-compatible representation (for on-disk caching)."""
        return {
            "model": self.model.to_dict(),
            "targets": self.targets.to_dict(),
            "errors": dict(self.errors),
            "stage_rms": dict(self.stage_rms),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExtractedDevice":
        """Inverse of :meth:`to_dict`."""
        return cls(
            model=BsimSoi4Lite.from_dict(data["model"]),
            targets=DeviceTargets.from_dict(data["targets"]),
            errors=dict(data.get("errors", {})),
            stage_rms=dict(data.get("stage_rms", {})),
        )


class ExtractionFlow:
    """Runs the staged extraction against one device's targets.

    Parameters
    ----------
    stages:
        Stage sequence; defaults to the paper's Low Drain -> High Drain ->
        Capacitance order.
    initial:
        Starting parameter set (defaults from the spec table).
    """

    def __init__(self, stages: Optional[List[ExtractionStage]] = None,
                 initial: Optional[ParameterSet] = None, passes: int = 2):
        self.stages = (default_stage_sequence() if stages is None
                       else list(stages))
        if not self.stages:
            raise ExtractionError("extraction flow needs at least one stage")
        if passes < 1:
            raise ExtractionError("need at least one pass")
        self.initial = initial or default_parameters()
        self.passes = passes

    def run(self, targets: DeviceTargets) -> ExtractedDevice:
        """Execute every stage sequentially and score the result.

        With ``passes > 1`` the whole sequence repeats, letting the
        low-drain stage re-tune mobility around the threshold/saturation
        values settled by the high-drain stage — the usual practice when
        stages share parameters (U0, UA, DVT0, DVT1 appear in both).
        """
        model = BsimSoi4Lite(
            params=self.initial,
            polarity=targets.polarity,
            name=f"{targets.variant.name.lower()}_{targets.polarity.value}",
        )
        stage_rms: Dict[str, float] = {}
        params = self.initial
        tracer = get_tracer()
        with tracer.span("extraction.device", device=model.name,
                         passes=self.passes):
            for stage in self.stages * self.passes:
                template = BsimSoi4Lite(params=params,
                                        polarity=model.polarity,
                                        width=model.width,
                                        length=model.length,
                                        t_si=model.t_si, t_ox=model.t_ox,
                                        name=model.name)
                residual_fn = stage.residual_fn(template, targets)
                with tracer.span("extraction.stage", stage=stage.name,
                                 device=model.name) as stage_span:
                    params, rms = fit_parameters(params,
                                                 stage.parameter_names,
                                                 residual_fn)
                    stage_span.set(rms=rms)
                stage_rms[stage.name] = rms

        fitted = BsimSoi4Lite(params=params, polarity=model.polarity,
                              width=model.width, length=model.length,
                              t_si=model.t_si, t_ox=model.t_ox,
                              name=model.name)
        return ExtractedDevice(
            model=fitted,
            targets=targets,
            errors=score_regions(fitted, targets),
            stage_rms=stage_rms,
        )


def score_regions(model: BsimSoi4Lite,
                  targets: DeviceTargets) -> Dict[str, float]:
    """Table III regional errors (percent) for a fitted model."""
    idvg_parts = []
    for curve in (targets.idvg_lin, targets.idvg_sat):
        sim = model.ids_magnitude(curve.v, curve.fixed_bias)
        idvg_parts.append(region_error_percent(sim, curve.i))
    idvg = sum(idvg_parts) / len(idvg_parts)

    idvd_parts = []
    for curve in targets.idvd.curves:
        sim = model.ids_magnitude(curve.fixed_bias, curve.v)
        idvd_parts.append(region_error_percent(sim, curve.i))
    idvd = sum(idvd_parts) / len(idvd_parts)

    cv = region_error_percent(model.cgg(targets.cv.v), targets.cv.c)
    return {"IDVG": idvg, "IDVD": idvd, "CV": cv}
