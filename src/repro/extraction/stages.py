"""The three extraction stages of Figure 3.

Each stage declares the Section III-B parameter list and builds the
residual vector from the relevant target curves:

1. **Low Drain** — Id-Vg at V_DS = 0.05 V; fits CDSC, U0, UA, UB, UD,
   UCS, DVT0, DVT1 (mobility + short-channel nominals).
2. **High Drain** — Id-Vg at V_DS = 1.0 V plus the Id-Vd family at
   V_GS = 0.4..1.0 V; fits CDSC, CDSCD, U0, UA, VTH0, PVAG, DVT0, DVT1,
   ETAB, VSAT.
3. **Capacitance** — C-V; fits CKAPPA, DELVT, CF, CGSO, CGDO, MOIN,
   CGSL, CGDL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import (
    EXTRACTION_STAGE_PARAMETERS,
    STAGE_CAPACITANCE,
    STAGE_HIGH_DRAIN,
    STAGE_LOW_DRAIN,
)
from repro.extraction.error import mixed_current_residuals, relative_errors
from repro.extraction.targets import DeviceTargets


@dataclass(frozen=True)
class ExtractionStage:
    """One stage: a name, its fit parameters, and a residual builder."""

    name: str
    parameter_names: List[str]
    residual_builder: Callable[[BsimSoi4Lite, DeviceTargets],
                               Callable[[Dict[str, float]], np.ndarray]]

    def residual_fn(self, model: BsimSoi4Lite,
                    targets: DeviceTargets) -> Callable[[Dict[str, float]],
                                                        np.ndarray]:
        """Bind the stage residuals to a model template and targets."""
        return self.residual_builder(model, targets)


def _low_drain_builder(model: BsimSoi4Lite, targets: DeviceTargets):
    curve = targets.idvg_lin

    def residuals(values: Dict[str, float]) -> np.ndarray:
        trial = model.with_params(values)
        sim = trial.ids_magnitude(curve.v, curve.fixed_bias)
        return mixed_current_residuals(sim, curve.i, log_weight=0.6)

    return residuals


def _high_drain_builder(model: BsimSoi4Lite, targets: DeviceTargets):
    sat = targets.idvg_sat
    lin = targets.idvg_lin
    family = targets.idvd
    # Stage 1 "passes U0, UA ... for fine-tuning" (Section III-B): tether
    # the shared mobility parameters to their incoming values so this
    # stage refines rather than refits them.
    incoming = {name: model.p(name) for name in ("U0", "UA")}

    def residuals(values: Dict[str, float]) -> np.ndarray:
        trial = model.with_params(values)
        parts = [mixed_current_residuals(
            trial.ids_magnitude(sat.v, sat.fixed_bias), sat.i,
            log_weight=0.6)]
        # Keep a light anchor on the low-drain curve so the linear region
        # fitted in stage 1 survives the saturation fit.
        parts.append(0.5 * relative_errors(
            trial.ids_magnitude(lin.v, lin.fixed_bias), lin.i))
        for curve in family.curves:
            sim = trial.ids_magnitude(curve.fixed_bias, curve.v)
            parts.append(relative_errors(sim, curve.i))
        tether = [2.0 * np.log(max(values.get(n, v), 1e-12) / max(v, 1e-12))
                  for n, v in incoming.items() if v > 0]
        parts.append(np.asarray(tether))
        return np.concatenate(parts)

    return residuals


def _capacitance_builder(model: BsimSoi4Lite, targets: DeviceTargets):
    curve = targets.cv

    def residuals(values: Dict[str, float]) -> np.ndarray:
        trial = model.with_params(values)
        sim = trial.cgg(curve.v)
        return relative_errors(sim, curve.c)

    return residuals


def low_drain_stage() -> ExtractionStage:
    """Stage 1 of Figure 3."""
    return ExtractionStage(STAGE_LOW_DRAIN,
                           EXTRACTION_STAGE_PARAMETERS[STAGE_LOW_DRAIN],
                           _low_drain_builder)


def high_drain_stage() -> ExtractionStage:
    """Stage 2 of Figure 3."""
    return ExtractionStage(STAGE_HIGH_DRAIN,
                           EXTRACTION_STAGE_PARAMETERS[STAGE_HIGH_DRAIN],
                           _high_drain_builder)


def capacitance_stage() -> ExtractionStage:
    """Stage 3 of Figure 3."""
    return ExtractionStage(STAGE_CAPACITANCE,
                           EXTRACTION_STAGE_PARAMETERS[STAGE_CAPACITANCE],
                           _capacitance_builder)


def default_stage_sequence() -> List[ExtractionStage]:
    """The paper's stage order."""
    return [low_drain_stage(), high_drain_stage(), capacitance_stage()]
