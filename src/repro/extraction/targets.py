"""Extraction target bundles: the TCAD curves a device is fitted against."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ExtractionError
from repro.geometry.process import ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.characteristics import CVCurve, IdVdFamily, IVCurve
from repro.tcad.device import DeviceDesign, Polarity
from repro.tcad.simulator import SweepSpec, TcadSimulator


@dataclass(frozen=True)
class DeviceTargets:
    """All characteristics of one device used by the three-stage flow.

    Magnitude-space curves (PMOS recorded as |I| / |V|), mirroring how
    extraction tools normalise polarity.
    """

    variant: ChannelCount
    polarity: Polarity
    idvg_lin: IVCurve
    idvg_sat: IVCurve
    idvd: IdVdFamily
    cv: CVCurve
    label: str = ""

    def __post_init__(self) -> None:
        if self.idvg_lin.kind != "idvg" or self.idvg_sat.kind != "idvg":
            raise ExtractionError("transfer targets must be idvg curves")

    def to_dict(self) -> Dict:
        """JSON-compatible representation (for on-disk caching)."""
        return {
            "variant": self.variant.name,
            "polarity": self.polarity.value,
            "idvg_lin": self.idvg_lin.to_dict(),
            "idvg_sat": self.idvg_sat.to_dict(),
            "idvd": self.idvd.to_dict(),
            "cv": self.cv.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceTargets":
        """Inverse of :meth:`to_dict`."""
        return cls(
            variant=ChannelCount[data["variant"]],
            polarity=Polarity(data["polarity"]),
            idvg_lin=IVCurve.from_dict(data["idvg_lin"]),
            idvg_sat=IVCurve.from_dict(data["idvg_sat"]),
            idvd=IdVdFamily.from_dict(data["idvd"]),
            cv=CVCurve.from_dict(data["cv"]),
            label=data.get("label", ""),
        )


def characterize_device(device: DeviceDesign,
                        spec: Optional[SweepSpec] = None) -> DeviceTargets:
    """Run the full TCAD sweep plan on a device and bundle the targets."""
    simulator = TcadSimulator(device, spec)
    return DeviceTargets(
        variant=device.variant,
        polarity=device.polarity,
        idvg_lin=simulator.id_vg_linear(),
        idvg_sat=simulator.id_vg_saturation(),
        idvd=simulator.id_vd(),
        cv=simulator.cv(),
        label=device.label,
    )


def cached_targets(variant: ChannelCount, polarity: Polarity,
                   process: Optional[ProcessParameters] = None,
                   spec: Optional[SweepSpec] = None) -> DeviceTargets:
    """Characterise (variant, polarity) once per inputs, then reuse.

    Thin shim over the execution engine: the artefact is content-
    addressed on the *full* process record and sweep plan (not object
    identity), cached in memory for the life of the process and in the
    on-disk store across processes.  The TCAD sweeps take ~1 s per
    device; the extraction flow, the PPA harness and many tests all
    need the same eight devices.
    """
    from repro.engine.pipeline import device_targets
    return device_targets(variant, polarity, process, spec)
