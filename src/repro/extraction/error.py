"""Error metrics for extraction fitting and Table III reporting.

Two distinct roles:

* **fit residuals** — what the optimiser minimises.  Current curves mix a
  log-space term (so the subthreshold decades matter) with a relative
  term (so the on-current matters);
* **report error** — the Table III number: mean absolute relative error
  in percent, with denominators floored at a fraction of the curve
  maximum so near-zero points cannot blow the metric up.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExtractionError

#: Denominator floor as a fraction of the curve maximum.
REPORT_FLOOR_FRACTION = 0.02

#: Current floor [A] for log-space residuals.
LOG_FLOOR = 1e-14


def relative_errors(simulated, reference,
                    floor_fraction: float = REPORT_FLOOR_FRACTION) -> np.ndarray:
    """Pointwise |sim - ref| / max(|ref|, floor) as a fraction."""
    simulated = np.asarray(simulated, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if simulated.shape != reference.shape:
        raise ExtractionError("shape mismatch between sim and reference")
    scale = float(np.max(np.abs(reference)))
    if scale <= 0:
        raise ExtractionError("reference curve is identically zero")
    denom = np.maximum(np.abs(reference), floor_fraction * scale)
    return np.abs(simulated - reference) / denom


def region_error_percent(simulated, reference) -> float:
    """The Table III regional error: mean relative error in percent."""
    return float(np.mean(relative_errors(simulated, reference))) * 100.0


def log_residuals(simulated, reference) -> np.ndarray:
    """log10-space residuals with a floor (subthreshold fitting)."""
    simulated = np.asarray(simulated, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return (np.log10(np.maximum(simulated, LOG_FLOOR)) -
            np.log10(np.maximum(reference, LOG_FLOOR)))


def mixed_current_residuals(simulated, reference,
                            log_weight: float = 0.5) -> np.ndarray:
    """Concatenated log-space and relative residuals for current curves."""
    rel = relative_errors(simulated, reference)
    logr = log_residuals(simulated, reference) * log_weight
    return np.concatenate([rel, logr])
