"""Bounded least-squares wrapper used by every extraction stage.

Parameters are normalised to [0, 1] against their spec bounds before the
scipy trust-region-reflective solve; this keeps the numerical Jacobian
well scaled even though the raw parameters span fifteen orders of
magnitude (CDSC ~ 1e-4 F/m^2 vs UB ~ 1e-18 m^2/V^2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.errors import ExtractionError
from repro.compact.parameters import PARAMETER_SPECS, ParameterSet
from repro.observe import EVALUATION_BUCKETS, get_tracer

ResidualFn = Callable[[Dict[str, float]], np.ndarray]


def _bounds_for(names: List[str]) -> Tuple[np.ndarray, np.ndarray]:
    lower = np.array([PARAMETER_SPECS[n].lower for n in names])
    upper = np.array([PARAMETER_SPECS[n].upper for n in names])
    return lower, upper


def fit_parameters(base: ParameterSet, names: List[str],
                   residual_fn: ResidualFn,
                   max_evaluations: int = 2000) -> Tuple[ParameterSet, float]:
    """Fit ``names`` starting from ``base`` to minimise ``residual_fn``.

    Returns the updated parameter set and the final residual RMS.
    """
    if not names:
        raise ExtractionError("no parameters to fit")
    unknown = [n for n in names if n not in PARAMETER_SPECS]
    if unknown:
        raise ExtractionError(f"unknown parameters: {unknown}")

    lower, upper = _bounds_for(names)
    span = upper - lower
    x0 = (np.array([base[n] for n in names]) - lower) / span
    x0 = np.clip(x0, 0.0, 1.0)

    evaluations = 0

    def wrapped(x: np.ndarray) -> np.ndarray:
        nonlocal evaluations
        evaluations += 1
        values = dict(zip(names, lower + np.clip(x, 0.0, 1.0) * span))
        residuals = residual_fn(values)
        if not np.all(np.isfinite(residuals)):
            # Penalise non-finite model output instead of crashing TRF.
            residuals = np.nan_to_num(residuals, nan=1e3,
                                      posinf=1e3, neginf=-1e3)
        return residuals

    tracer = get_tracer()
    with tracer.span("extraction.fit",
                     parameters=",".join(names)) as fit_span:
        result = least_squares(
            wrapped, x0, bounds=(np.zeros_like(x0), np.ones_like(x0)),
            max_nfev=max_evaluations, xtol=1e-10, ftol=1e-10, gtol=1e-10,
            diff_step=1e-4)
        fitted = dict(zip(names, lower + np.clip(result.x, 0.0, 1.0) * span))
        rms = (float(np.sqrt(np.mean(result.fun ** 2)))
               if result.fun.size else 0.0)
        if tracer.enabled:
            fit_span.set(evaluations=evaluations, rms=rms)
            tracer.counter("extraction.optimizer.fits").inc()
            tracer.counter("extraction.optimizer.evaluations").inc(
                evaluations)
            tracer.histogram("extraction.optimizer.evaluations_per_fit",
                             EVALUATION_BUCKETS).observe(evaluations)
    return base.updated(fitted), rms
