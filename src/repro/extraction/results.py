"""Table III assembly: extraction errors across devices and regions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ExtractionError
from repro.extraction.flow import ExtractedDevice
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity

#: Column order of Table III.
TABLE3_DEVICE_ORDER = (ChannelCount.FOUR, ChannelCount.TWO,
                       ChannelCount.ONE, ChannelCount.TRADITIONAL)
TABLE3_REGIONS = ("IDVG", "IDVD", "CV")


@dataclass(frozen=True)
class Table3Row:
    """One region row of Table III: error percent per (device, polarity)."""

    region: str
    errors: Dict[str, float]  # key: "<variant>:<polarity>"

    def cell(self, variant: ChannelCount, polarity: Polarity) -> float:
        """Lookup one cell of the row."""
        key = f"{variant.name}:{polarity.value}"
        if key not in self.errors:
            raise ExtractionError(f"missing Table III cell {key}")
        return self.errors[key]


class ExtractionReport:
    """Aggregates :class:`ExtractedDevice` results into Table III."""

    def __init__(self, devices: Iterable[ExtractedDevice]):
        self.devices: List[ExtractedDevice] = list(devices)
        if not self.devices:
            raise ExtractionError("report needs at least one device")
        self._index: Dict[str, ExtractedDevice] = {}
        for dev in self.devices:
            key = f"{dev.targets.variant.name}:{dev.targets.polarity.value}"
            if key in self._index:
                raise ExtractionError(f"duplicate device {key}")
            self._index[key] = dev

    def device(self, variant: ChannelCount,
               polarity: Polarity) -> ExtractedDevice:
        """Lookup one extracted device."""
        key = f"{variant.name}:{polarity.value}"
        if key not in self._index:
            raise ExtractionError(f"no extracted device {key}")
        return self._index[key]

    def rows(self) -> List[Table3Row]:
        """Build the three region rows from the available devices."""
        rows = []
        for region in TABLE3_REGIONS:
            errors = {key: dev.errors[region]
                      for key, dev in self._index.items()}
            rows.append(Table3Row(region, errors))
        return rows

    def max_error(self) -> float:
        """Worst cell in the table (paper: < 10 %)."""
        return max(dev.max_error() for dev in self.devices)

    def render(self) -> str:
        """Text rendering in the Table III arrangement."""
        present = [v for v in TABLE3_DEVICE_ORDER
                   if any(k.startswith(v.name + ":") for k in self._index)]
        header = ["Region"]
        for variant in present:
            for pol in (Polarity.NMOS, Polarity.PMOS):
                header.append(f"{variant.name.lower()[:4]}-{pol.value}")
        lines = ["\t".join(header)]
        for row in self.rows():
            cells = [row.region]
            for variant in present:
                for pol in (Polarity.NMOS, Polarity.PMOS):
                    key = f"{variant.name}:{pol.value}"
                    value = row.errors.get(key)
                    cells.append("-" if value is None else f"{value:.1f}%")
            lines.append("\t".join(cells))
        return "\n".join(lines)
