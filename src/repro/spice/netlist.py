"""Circuit container: nodes, elements and validity checks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import NetlistError
from repro.spice.elements.base import Element

#: The ground node name (SPICE convention).
GROUND = "0"


class Circuit:
    """A flat netlist of elements over named nodes.

    Node ``"0"`` is ground.  Element names must be unique; nodes are
    created implicitly when elements reference them.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._elements: Dict[str, Element] = {}
        self._node_order: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add an element (returns it, for chaining)."""
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        for node in element.nodes:
            self._register_node(node)
        self._elements[element.name] = element
        return element

    def _register_node(self, node: str) -> None:
        if not isinstance(node, str) or not node:
            raise NetlistError(f"invalid node name {node!r}")
        if node != GROUND and node not in self._node_order:
            self._node_order.append(node)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        """Non-ground nodes in registration order."""
        return list(self._node_order)

    @property
    def elements(self) -> List[Element]:
        """All elements in insertion order."""
        return list(self._elements.values())

    def element(self, name: str) -> Element:
        """Lookup an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self._elements)

    # ------------------------------------------------------------------
    # indexing for MNA
    # ------------------------------------------------------------------
    def node_index(self) -> Dict[str, int]:
        """Map node name -> matrix row (ground excluded)."""
        return {node: i for i, node in enumerate(self._node_order)}

    def branch_index(self, start: Optional[int] = None) -> Dict[str, int]:
        """Map element name -> extra-unknown row, for branch elements."""
        offset = len(self._node_order) if start is None else start
        index: Dict[str, int] = {}
        for element in self._elements.values():
            if element.n_branch:
                index[element.name] = offset
                offset += element.n_branch
        return index

    @property
    def n_unknowns(self) -> int:
        """Total MNA unknowns (node voltages + branch currents)."""
        extra = sum(e.n_branch for e in self._elements.values())
        return len(self._node_order) + extra

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` for structurally bad circuits."""
        if not self._elements:
            raise NetlistError("circuit has no elements")
        touches_ground = any(GROUND in e.nodes for e in self._elements.values())
        if not touches_ground:
            raise NetlistError("no element connects to ground ('0')")
        # Every node must touch at least two element terminals, otherwise
        # its KCL row is a single dangling current.
        counts: Dict[str, int] = {}
        for element in self._elements.values():
            for node in element.nodes:
                counts[node] = counts.get(node, 0) + 1
        dangling = [n for n in self._node_order if counts.get(n, 0) < 2]
        if dangling:
            raise NetlistError(f"dangling nodes: {dangling}")

    def summary(self) -> str:
        """One-line description for logs."""
        return (f"{self.title}: {len(self._elements)} elements, "
                f"{len(self._node_order)} nodes")
