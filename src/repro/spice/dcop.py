"""DC operating-point analysis with a source-stepping fallback."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.mna import MnaAssembler, scale_sources
from repro.spice.netlist import Circuit
from repro.spice.newton import newton_solve


@dataclass(frozen=True)
class OperatingPoint:
    """Result of a DC solve.

    Attributes
    ----------
    voltages:
        Node name -> voltage [V].
    branch_currents:
        Voltage-source name -> current [A] (positive into the + node).
    x:
        Raw solution vector (for warm-starting transient).
    """

    voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    x: np.ndarray

    def voltage(self, node: str) -> float:
        """Voltage of one node (ground returns 0)."""
        if node == "0":
            return 0.0
        return self.voltages[node]

    def current(self, source_name: str) -> float:
        """Branch current of one voltage source."""
        return self.branch_currents[source_name]


def _package(assembler: MnaAssembler, x: np.ndarray) -> OperatingPoint:
    currents = {name: float(x[row])
                for name, row in assembler.branch_index.items()}
    return OperatingPoint(assembler.voltages_from(x), currents, x)


def solve_dc(circuit: Circuit, time: float = 0.0,
             x0: Optional[np.ndarray] = None,
             source_steps: int = 8) -> OperatingPoint:
    """Find the DC operating point (sources evaluated at ``time``).

    Tries a direct Newton solve first; on failure falls back to source
    stepping: solve with all sources scaled to 0 (trivial), then continue
    the solution as the scale ramps to 1.
    """
    assembler = MnaAssembler(circuit)
    x = x0.copy() if x0 is not None else np.zeros(assembler.n_unknowns)
    try:
        return _package(assembler, newton_solve(assembler, x, time))
    except ConvergenceError:
        pass

    x = np.zeros(assembler.n_unknowns)
    for step in range(1, source_steps + 1):
        factor = step / source_steps
        with scale_sources(circuit, factor):
            try:
                x = newton_solve(assembler, x, time)
            except ConvergenceError as exc:
                raise ConvergenceError(
                    f"source stepping failed at factor {factor:.2f} "
                    f"for {circuit.summary()}",
                    iterations=exc.iterations,
                    residual=exc.residual) from exc
    # Final solve with the true (time-dependent) source values.
    return _package(assembler, newton_solve(assembler, x, time))
