"""DC sweep: step a source value and record the operating points."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.spice.dcop import OperatingPoint, solve_dc
from repro.spice.netlist import Circuit
from repro.spice.elements.vsource import VoltageSource


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float]) -> List[OperatingPoint]:
    """Sweep a voltage source and return one operating point per value.

    Each point warm-starts from the previous solution, which is both
    faster and more robust than independent solves.
    """
    values = list(values)
    if not values:
        raise SimulationError("dc_sweep needs at least one value")
    element = circuit.element(source_name)
    if not isinstance(element, VoltageSource):
        raise SimulationError(f"{source_name!r} is not a voltage source")

    saved = element.waveform
    results: List[OperatingPoint] = []
    x_prev = None
    try:
        for value in values:
            element.waveform = float(value)
            op = solve_dc(circuit, x0=x_prev)
            results.append(op)
            x_prev = op.x
    finally:
        element.waveform = saved
    return results


def sweep_voltages(results: List[OperatingPoint],
                   node: str) -> np.ndarray:
    """Extract one node's voltage across sweep results."""
    return np.array([op.voltage(node) for op in results])


def sweep_currents(results: List[OperatingPoint],
                   source_name: str) -> np.ndarray:
    """Extract one source's current across sweep results."""
    return np.array([op.current(source_name) for op in results])


def transfer_curve(circuit: Circuit, in_source: str, out_node: str,
                   v_start: float, v_stop: float,
                   n_points: int = 41) -> Dict[str, np.ndarray]:
    """Voltage transfer curve of a gate: sweep input, record output."""
    if n_points < 2:
        raise SimulationError("transfer curve needs >= 2 points")
    vin = np.linspace(v_start, v_stop, n_points)
    ops = dc_sweep(circuit, in_source, vin)
    return {"vin": vin, "vout": sweep_voltages(ops, out_node)}
