"""Small-signal AC analysis.

Linearises the circuit at a DC operating point and solves the complex
MNA system

    (G + j w C) x = b

over a frequency sweep.  ``G`` is the static Jacobian produced by the
same element stamps the DC solver uses (evaluated at the operating
point), ``C`` the capacitance Jacobian from the charge stamps, and ``b``
carries the AC excitations (unit-magnitude sources by convention).

Used for input-capacitance extraction of cells (``C_in = Im(I)/w``) and
inverter gain/bandwidth studies — the small-signal artefacts a standard-
cell characterisation flow produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.spice.dcop import OperatingPoint, solve_dc
from repro.spice.elements.vsource import VoltageSource
from repro.spice.mna import MnaAssembler
from repro.spice.netlist import Circuit


@dataclass(frozen=True)
class AcResult:
    """Complex node voltages / branch currents over frequency."""

    frequencies: np.ndarray
    node_phasors: Dict[str, np.ndarray]
    branch_phasors: Dict[str, np.ndarray]
    operating_point: OperatingPoint

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasor of one node across the sweep."""
        if node == "0":
            return np.zeros_like(self.frequencies, dtype=complex)
        try:
            return self.node_phasors[node]
        except KeyError:
            raise SimulationError(f"no node {node!r} in AC result") from None

    def current(self, source_name: str) -> np.ndarray:
        """Complex branch current of a voltage source."""
        try:
            return self.branch_phasors[source_name]
        except KeyError:
            raise SimulationError(
                f"no source {source_name!r} in AC result") from None

    def gain_db(self, out_node: str, in_node: str) -> np.ndarray:
        """20 log10 |V(out)/V(in)|."""
        vin = self.voltage(in_node)
        vout = self.voltage(out_node)
        ratio = np.abs(vout) / np.maximum(np.abs(vin), 1e-30)
        return 20.0 * np.log10(np.maximum(ratio, 1e-30))


def ac_analysis(circuit: Circuit, ac_source: str,
                frequencies, magnitude: float = 1.0,
                x_op: Optional[np.ndarray] = None) -> AcResult:
    """Run an AC sweep with ``ac_source`` as the unit excitation.

    All other independent sources are AC-grounded (their small-signal
    value is zero), as in SPICE ``.ac`` semantics.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise SimulationError("frequencies must be a non-empty 1-D array")
    if np.any(frequencies <= 0):
        raise SimulationError("frequencies must be positive")

    element = circuit.element(ac_source)
    if not isinstance(element, VoltageSource):
        raise SimulationError(f"{ac_source!r} is not a voltage source")

    op = solve_dc(circuit, x0=x_op)
    assembler = MnaAssembler(circuit)
    stamper = assembler.assemble_static(op.x, time=0.0)

    # The static stamp's matrix *is* G: conductances plus source rows.
    g_matrix = stamper.matrix.copy()
    _, c_matrix = assembler.assemble_dynamic(op.x)

    # AC excitation vector: 'magnitude' volts on the chosen source's
    # branch equation, zero everywhere else.
    rhs = np.zeros(assembler.n_unknowns, dtype=complex)
    rhs[assembler.branch_index[ac_source]] = magnitude

    n_points = frequencies.size
    solutions = np.empty((n_points, assembler.n_unknowns), dtype=complex)
    for k, freq in enumerate(frequencies):
        omega = 2.0 * np.pi * freq
        matrix = g_matrix + 1j * omega * c_matrix
        try:
            solutions[k] = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                f"AC system singular at f={freq:g} Hz ({exc})") from None

    node_phasors = {node: solutions[:, idx]
                    for node, idx in assembler.node_index.items()}
    branch_phasors = {name: solutions[:, idx]
                      for name, idx in assembler.branch_index.items()}
    return AcResult(frequencies, node_phasors, branch_phasors, op)


def input_capacitance(circuit: Circuit, source_name: str,
                      frequency: float = 1e8) -> float:
    """Small-signal capacitance seen by a voltage source [F].

    C = Im(I) / (w |V|) with the source as the only AC excitation; the
    probe frequency defaults to 100 MHz, far below device poles.
    """
    result = ac_analysis(circuit, source_name, np.array([frequency]))
    current = result.current(source_name)[0]
    omega = 2.0 * np.pi * frequency
    # Branch current flows *into* the + terminal in MNA convention; the
    # current delivered by the source into the circuit is its negative.
    return float(np.imag(-current)) / omega


def unity_gain_frequency(result: AcResult, out_node: str,
                         in_node: str) -> float:
    """First frequency where the gain falls to 0 dB (interpolated)."""
    gain = result.gain_db(out_node, in_node)
    if gain[0] <= 0:
        raise SimulationError("gain already below unity at the first point")
    below = np.nonzero(gain <= 0.0)[0]
    if below.size == 0:
        raise SimulationError("gain never crosses unity in the sweep")
    k = below[0]
    f1, f2 = result.frequencies[k - 1], result.frequencies[k]
    g1, g2 = gain[k - 1], gain[k]
    # log-linear interpolation
    frac = g1 / (g1 - g2)
    return float(f1 * (f2 / f1) ** frac)
