"""SPICE deck parsing and serialisation.

The paper's flow hands HSPICE decks around; this module lets the
generated cell netlists round-trip through plain text:

* :func:`serialize_circuit` — Circuit -> HSPICE-style deck (R/C/V/I/M
  cards, ``.model`` cards for every distinct MOSFET model, ``.end``);
* :func:`parse_deck` — deck text -> Circuit (with model resolution).

Supported element cards::

    Rname n1 n2 value
    Cname n1 n2 value
    Vname n+ n- DC value
    Vname n+ n- PULSE(v1 v2 td tr tf pw per)
    Vname n+ n- PWL(t1 v1 t2 v2 ...)
    Iname n+ n- DC value
    Mname d g s model_name

Values accept engineering suffixes (f p n u m k meg g, case-insensitive).
Continuation lines start with ``+``; comments with ``*`` (full line) or
``$`` (trailing).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.compact.cards import parse_model_card, render_model_card
from repro.compact.model import BsimSoi4Lite
from repro.errors import NetlistError
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.isource import CurrentSource
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.vsource import (
    PulseSpec,
    PwlSpec,
    VoltageSource,
)
from repro.spice.netlist import Circuit

_SUFFIXES = {
    "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
    "k": 1e3, "meg": 1e6, "g": 1e9, "t": 1e12,
}

_NUMBER_RE = re.compile(
    r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[fpnumkgt])?$",
    re.IGNORECASE)


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    match = _NUMBER_RE.match(token.strip())
    if match is None:
        raise NetlistError(f"cannot parse value {token!r}")
    value = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return value * _SUFFIXES.get(suffix, 1.0)


def format_value(value: float) -> str:
    """Format a number compactly with an engineering suffix."""
    for suffix, scale in (("t", 1e12), ("g", 1e9), ("meg", 1e6),
                          ("k", 1e3)):
        if abs(value) >= scale:
            return f"{value / scale:.6g}{suffix}"
    if value == 0:
        return "0"
    for suffix, scale in (("m", 1e-3), ("u", 1e-6), ("n", 1e-9),
                          ("p", 1e-12), ("f", 1e-15)):
        if abs(value) >= scale:
            return f"{value / scale:.6g}{suffix}"
    return f"{value:.6g}"


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------
def _source_card(element: VoltageSource) -> str:
    waveform = element.waveform
    n_plus, n_minus = element.nodes
    head = f"{element.name} {n_plus} {n_minus}"
    if isinstance(waveform, PulseSpec):
        args = " ".join(format_value(v) for v in (
            waveform.v1, waveform.v2, waveform.delay, waveform.rise,
            waveform.fall, waveform.width, waveform.period))
        return f"{head} PULSE({args})"
    if isinstance(waveform, PwlSpec):
        pairs = " ".join(f"{format_value(t)} {format_value(v)}"
                         for t, v in waveform.points)
        return f"{head} PWL({pairs})"
    return f"{head} DC {format_value(float(element.value(0.0)))}"


def serialize_circuit(circuit: Circuit) -> str:
    """Render a circuit as an HSPICE-style deck."""
    lines = [f"* {circuit.title}"]
    models: Dict[str, BsimSoi4Lite] = {}
    for element in circuit:
        if isinstance(element, Resistor):
            lines.append(f"{element.name} {element.nodes[0]} "
                         f"{element.nodes[1]} {format_value(element.resistance)}")
        elif isinstance(element, Capacitor):
            lines.append(f"{element.name} {element.nodes[0]} "
                         f"{element.nodes[1]} "
                         f"{format_value(element.capacitance)}")
        elif isinstance(element, VoltageSource):
            lines.append(_source_card(element))
        elif isinstance(element, CurrentSource):
            lines.append(f"{element.name} {element.nodes[0]} "
                         f"{element.nodes[1]} DC "
                         f"{format_value(float(element.value(0.0)))}")
        elif isinstance(element, Mosfet):
            d, g, s = element.nodes
            lines.append(f"{element.name} {d} {g} {s} {element.model.name}")
            models[element.model.name] = element.model
        else:
            raise NetlistError(
                f"cannot serialise element type {type(element).__name__}")
    for model in models.values():
        lines.append("")
        lines.append(render_model_card(model).rstrip())
    lines.append(".end")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
def _strip_comments(text: str) -> List[str]:
    """Split into logical lines: joins '+' continuations, drops comments."""
    logical: List[str] = []
    for raw in text.splitlines():
        line = raw.split("$", 1)[0].rstrip()
        if not line or line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+") and logical:
            logical[-1] += " " + line.lstrip()[1:].strip()
        else:
            logical.append(line.strip())
    return logical


def _split_function_call(text: str) -> Optional[Tuple[str, List[str]]]:
    """Recognise ``NAME(arg arg ...)`` source waveforms."""
    match = re.match(r"^(PULSE|PWL)\s*\((.*)\)$", text.strip(),
                     re.IGNORECASE)
    if match is None:
        return None
    args = match.group(2).replace(",", " ").split()
    return match.group(1).upper(), args


def _parse_vsource(name: str, tokens: List[str]) -> VoltageSource:
    n_plus, n_minus = tokens[0], tokens[1]
    rest = " ".join(tokens[2:])
    call = _split_function_call(rest)
    if call is not None:
        kind, args = call
        values = [parse_value(a) for a in args]
        if kind == "PULSE":
            if len(values) != 7:
                raise NetlistError(f"{name}: PULSE needs 7 arguments")
            v1, v2, td, tr, tf, pw, per = values
            return VoltageSource(name, n_plus, n_minus,
                                 PulseSpec(v1, v2, td, tr, tf, pw, per))
        if len(values) < 2 or len(values) % 2:
            raise NetlistError(f"{name}: PWL needs time/value pairs")
        points = tuple(zip(values[::2], values[1::2]))
        return VoltageSource(name, n_plus, n_minus, PwlSpec(points))
    rest_tokens = rest.split()
    if rest_tokens and rest_tokens[0].upper() == "DC":
        rest_tokens = rest_tokens[1:]
    if len(rest_tokens) != 1:
        raise NetlistError(f"{name}: cannot parse source value {rest!r}")
    return VoltageSource(name, n_plus, n_minus, parse_value(rest_tokens[0]))


def parse_deck(text: str) -> Circuit:
    """Parse a deck produced by :func:`serialize_circuit` (or written by
    hand with the supported cards)."""
    lines = _strip_comments(text)
    if not lines:
        raise NetlistError("empty deck")

    # First pass: collect .model cards.
    models: Dict[str, BsimSoi4Lite] = {}
    element_lines: List[str] = []
    title = "deck"
    index = 0
    while index < len(lines):
        line = lines[index]
        lowered = line.lower()
        if lowered.startswith(".model"):
            # Continuations were merged into one line; rebuild the
            # header + assignment form parse_model_card expects.
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"bad .model card: {line!r}")
            header = " ".join(tokens[:3])
            assignments = " ".join(tokens[3:])
            card = header if not assignments else \
                f"{header}\n+ {assignments}"
            model = parse_model_card(card)
            models[model.name] = model
            index += 1
            continue
        if lowered == ".end" or lowered.startswith(".end "):
            break
        element_lines.append(line)
        index += 1

    circuit = Circuit(title)
    for line in element_lines:
        tokens = line.split()
        name = tokens[0]
        kind = name[0].upper()
        if kind == "R":
            circuit.add(Resistor(name, tokens[1], tokens[2],
                                 parse_value(tokens[3])))
        elif kind == "C":
            circuit.add(Capacitor(name, tokens[1], tokens[2],
                                  parse_value(tokens[3])))
        elif kind == "V":
            circuit.add(_parse_vsource(name, tokens[1:]))
        elif kind == "I":
            value_token = tokens[4] if tokens[3].upper() == "DC" else tokens[3]
            circuit.add(CurrentSource(name, tokens[1], tokens[2],
                                      parse_value(value_token)))
        elif kind == "M":
            if len(tokens) != 5:
                raise NetlistError(f"{name}: MOSFET card needs d g s model")
            model_name = tokens[4]
            if model_name not in models:
                raise NetlistError(f"{name}: unknown model {model_name!r}")
            circuit.add(Mosfet(name, tokens[1], tokens[2], tokens[3],
                               models[model_name]))
        else:
            raise NetlistError(f"unsupported card: {line!r}")
    return circuit
