"""Damped Newton iteration on the static MNA system, with rescues.

The solve is a ladder: each rung only runs after the previous one
failed, so circuits that converge on the first rung (everything the
paper's flow produces) take *exactly* the same arithmetic path as
before the ladder existed — bit-identical artefacts.

1. lightly damped Newton (the fast path);
2. strongly damped Newton (sharp transition regions can limit-cycle
   between two linearisations);
3. gmin stepping: solve with a large extra conductance from every node
   to ground (nearly linear), then walk it down to zero, warm-starting
   each solve from the last;
4. source continuation: ramp all independent sources from zero (where
   the solution is trivial) to full value via
   :func:`repro.resilience.rescue.continue_solve`, the same adaptive
   continuation primitive the TCAD bias sweeps use.

Raises :class:`ConvergenceError` with diagnostics when every rung
fails.  The deterministic fault injector (``convergence:newton``) can
force the damped rungs to fail — exercising the rescue ladder — or,
with ``fatal=1``, force the whole solve to fail, exercising callers'
recovery (DC source stepping, transient timestep rejection).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, SingularMatrixError
from repro.observe import get_tracer
from repro.resilience.faults import draw_fault
from repro.resilience.rescue import continue_solve
from repro.spice.mna import MnaAssembler, scale_sources

#: Maximum Newton iterations.
MAX_ITERATIONS = 120

#: Voltage update convergence threshold [V].
V_TOLERANCE = 1e-7

#: Maximum per-iteration voltage update (damping) [V].
MAX_STEP = 0.4

#: Extra node-to-ground conductances of the gmin-stepping rescue rung,
#: walked from nearly-linear down to the true system [S].
GMIN_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, 1e-11)


def _damped_iteration(assembler: MnaAssembler, x0: np.ndarray, time: float,
                      extra_system: Optional[Callable], max_step: float,
                      iterations: int,
                      ) -> Tuple[np.ndarray, int, bool, float]:
    """One damped-Newton attempt: ``(x, iterations used, converged,
    last residual)``."""
    x = x0.copy()
    residual = float("inf")
    for i in range(iterations):
        stamper = assembler.assemble_static(x, time)
        if extra_system is not None:
            extra_system(x, stamper)
        x_new = assembler.solve_system(stamper.matrix, stamper.rhs)
        delta = x_new - x
        residual = float(np.max(np.abs(delta))) if delta.size else 0.0
        if residual <= V_TOLERANCE:
            return x_new, i + 1, True, residual
        # Damp only node voltages; branch currents may move freely.
        step = delta.copy()
        n = assembler.n_nodes
        step[:n] = np.clip(step[:n], -max_step, max_step)
        x = x + step
    return x, iterations, False, residual


def _with_gmin(assembler: MnaAssembler, extra_system: Optional[Callable],
               gmin: float) -> Callable:
    """Wrap ``extra_system`` to add ``gmin`` from every node to ground."""
    def wrapped(x: np.ndarray, stamper) -> None:
        if extra_system is not None:
            extra_system(x, stamper)
        idx = np.arange(assembler.n_nodes)
        stamper.matrix[idx, idx] += gmin
    return wrapped


def _rescue_gmin(assembler: MnaAssembler, x0: np.ndarray, time: float,
                 extra_system: Optional[Callable],
                 ) -> Tuple[Optional[np.ndarray], int, float]:
    """Gmin stepping: heavy shunt conductance walked down to zero."""
    x = x0.copy()
    total = 0
    residual = float("inf")
    for gmin in GMIN_LADDER:
        x, used, converged, residual = _damped_iteration(
            assembler, x, time, _with_gmin(assembler, extra_system, gmin),
            MAX_STEP / 8.0, MAX_ITERATIONS)
        total += used
        if not converged:
            return None, total, residual
    x, used, converged, residual = _damped_iteration(
        assembler, x, time, extra_system, MAX_STEP / 8.0,
        2 * MAX_ITERATIONS)
    total += used
    return (x if converged else None), total, residual


def _rescue_source(assembler: MnaAssembler, x0: np.ndarray, time: float,
                   extra_system: Optional[Callable],
                   ) -> Tuple[Optional[np.ndarray], int, float]:
    """Source continuation: ramp sources 0 -> 1 with adaptive steps."""
    counters = {"iterations": 0, "residual": float("inf")}

    def solve_at(factor: float, warm: Optional[np.ndarray]) -> np.ndarray:
        x_init = warm if warm is not None else np.zeros_like(x0)
        with scale_sources(assembler.circuit, factor):
            x, used, converged, residual = _damped_iteration(
                assembler, x_init, time, extra_system, MAX_STEP / 8.0,
                MAX_ITERATIONS)
        counters["iterations"] += used
        counters["residual"] = residual
        if not converged:
            raise ConvergenceError(
                f"source continuation failed at factor {factor:.3f}",
                iterations=used, residual=residual)
        return x

    try:
        outcome = continue_solve(solve_at, target=1.0, start=0.0)
    except ConvergenceError:
        return None, counters["iterations"], counters["residual"]
    return outcome.solution, counters["iterations"], counters["residual"]


def _count_converged(tracer, total_iterations: int, residual: float) -> None:
    if tracer.enabled:
        tracer.counter("spice.newton.solves").inc()
        tracer.counter("spice.newton.iterations").inc(total_iterations)
        tracer.histogram("spice.newton.iterations_per_solve").observe(
            total_iterations)
        tracer.gauge("spice.newton.last_residual").set(residual)


def newton_solve(assembler: MnaAssembler, x0: np.ndarray, time: float,
                 extra_system: Optional[Callable] = None,
                 site: str = "newton") -> np.ndarray:
    """Solve the nonlinear MNA system starting from ``x0``.

    ``extra_system(x, stamper)`` lets the transient integrator add its
    charge-companion terms to the freshly assembled static system.
    ``site`` names this solve for the fault injector (the transient
    loop uses ``"transient.newton"`` so injected faults can target
    timestep solves without touching the DC operating point).

    Tries the two damped rungs first; only when both fail (or an
    injected ``convergence`` fault forces them to) does the rescue
    ladder — gmin stepping, then source continuation — engage.  Raises
    :class:`ConvergenceError` with diagnostics when everything fails.
    """
    tracer = get_tracer()
    total_iterations = 0
    residual = float("inf")
    singular: Optional[SingularMatrixError] = None
    rule = draw_fault("convergence", site)
    if rule is not None and rule.fatal:
        raise ConvergenceError(
            rule.message or f"injected non-convergence at t={time:g}s "
                            f"({site})",
            iterations=0, residual=float("inf"))
    if rule is None:
        for max_step, iterations in ((MAX_STEP, MAX_ITERATIONS),
                                     (MAX_STEP / 8.0, 4 * MAX_ITERATIONS)):
            # A singular system on a damped rung is treated like
            # non-convergence: the gmin rescue's extra shunt
            # conductance regularises exactly-singular linearisations
            # (e.g. every transistor of a stage cut off at the current
            # estimate), so the ladder gets its chance before the
            # diagnosis propagates.
            try:
                x, used, converged, residual = _damped_iteration(
                    assembler, x0, time, extra_system, max_step, iterations)
            except SingularMatrixError as exc:
                singular = exc
                if tracer.enabled:
                    tracer.counter("spice.newton.singular_systems").inc()
                continue
            total_iterations += used
            if converged:
                _count_converged(tracer, total_iterations, residual)
                return x

    for rung, rescue in (("gmin", _rescue_gmin),
                         ("source", _rescue_source)):
        try:
            x, used, rescue_residual = rescue(assembler, x0, time,
                                              extra_system)
        except SingularMatrixError as exc:
            singular = exc
            continue
        total_iterations += used
        if np.isfinite(rescue_residual):
            residual = rescue_residual
        if x is not None:
            if tracer.enabled:
                tracer.counter("spice.newton.rescues").inc()
                tracer.counter(f"spice.newton.rescues.{rung}").inc()
                tracer.event("spice.newton.rescue", rung=rung, t=time,
                             iterations=total_iterations)
            _count_converged(tracer, total_iterations, rescue_residual)
            return x

    if singular is not None:
        # Every rung failed and at least one saw a singular system:
        # the structural diagnosis (floating subcircuit, source loop)
        # is more actionable than a generic non-convergence.
        raise singular
    raise ConvergenceError(
        f"Newton failed at t={time:g}s", iterations=total_iterations,
        residual=residual)
