"""Damped Newton iteration on the static MNA system."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.observe import get_tracer
from repro.spice.mna import MnaAssembler

#: Maximum Newton iterations.
MAX_ITERATIONS = 120

#: Voltage update convergence threshold [V].
V_TOLERANCE = 1e-7

#: Maximum per-iteration voltage update (damping) [V].
MAX_STEP = 0.4


def newton_solve(assembler: MnaAssembler, x0: np.ndarray, time: float,
                 extra_system: Optional[Callable] = None) -> np.ndarray:
    """Solve the nonlinear MNA system starting from ``x0``.

    ``extra_system(x, stamper)`` lets the transient integrator add its
    charge-companion terms to the freshly assembled static system.
    Tries a lightly damped iteration first; if that limit-cycles (sharp
    transition regions can bounce between two linearisations), restarts
    with strong damping.  Raises :class:`ConvergenceError` with
    diagnostics when both fail.
    """
    tracer = get_tracer()
    total_iterations = 0
    residual = float("inf")
    for max_step, iterations in ((MAX_STEP, MAX_ITERATIONS),
                                 (MAX_STEP / 8.0, 4 * MAX_ITERATIONS)):
        x = x0.copy()
        for _ in range(iterations):
            total_iterations += 1
            stamper = assembler.assemble_static(x, time)
            if extra_system is not None:
                extra_system(x, stamper)
            x_new = assembler.solve_linear(stamper.matrix, stamper.rhs)
            delta = x_new - x
            residual = float(np.max(np.abs(delta))) if delta.size else 0.0
            if residual <= V_TOLERANCE:
                if tracer.enabled:
                    tracer.counter("spice.newton.solves").inc()
                    tracer.counter("spice.newton.iterations").inc(
                        total_iterations)
                    tracer.histogram(
                        "spice.newton.iterations_per_solve").observe(
                        total_iterations)
                    tracer.gauge("spice.newton.last_residual").set(residual)
                return x_new
            # Damp only node voltages; branch currents may move freely.
            step = delta.copy()
            n = assembler.n_nodes
            step[:n] = np.clip(step[:n], -max_step, max_step)
            x = x + step
    raise ConvergenceError(
        f"Newton failed at t={time:g}s", iterations=5 * MAX_ITERATIONS,
        residual=residual)
