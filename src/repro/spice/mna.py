"""MNA system assembly shared by the DC and transient solvers."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SingularMatrixError
from repro.observe import get_tracer
from repro.spice.netlist import Circuit
from repro.spice.elements.base import Stamper

#: Leak conductance from every node to ground — keeps cut-off transistor
#: networks non-singular, as real simulators do.
GMIN = 1e-12


class MnaAssembler:
    """Builds linearised MNA systems for a circuit."""

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self.node_index = circuit.node_index()
        self.branch_index = circuit.branch_index()
        self.n_unknowns = circuit.n_unknowns
        self.n_nodes = len(self.node_index)

    # ------------------------------------------------------------------
    # vector <-> dict conversions
    # ------------------------------------------------------------------
    def voltages_from(self, x: np.ndarray) -> Dict[str, float]:
        """Node-voltage dict from a solution vector."""
        return {node: float(x[i]) for node, i in self.node_index.items()}

    def branch_current(self, x: np.ndarray, element_name: str) -> float:
        """Branch current of a voltage source from a solution vector."""
        return float(x[self.branch_index[element_name]])

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble_static(self, x: np.ndarray, time: float) -> Stamper:
        """Stamp all static (memoryless) element behaviour at estimate x."""
        stamper = Stamper(self.node_index, self.branch_index, self.n_unknowns)
        voltages = self.voltages_from(x)
        for element in self.circuit:
            element.stamp_static(stamper, voltages, time)
        for i in range(self.n_nodes):
            stamper.matrix[i, i] += GMIN
        return stamper

    def assemble_dynamic(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Charge vector q(x) and capacitance Jacobian C(x) = dq/dx."""
        stamper = Stamper(self.node_index, self.branch_index, self.n_unknowns)
        voltages = self.voltages_from(x)
        charge = np.zeros(self.n_unknowns)
        cap = np.zeros((self.n_unknowns, self.n_unknowns))
        for element in self.circuit:
            element.stamp_dynamic(stamper, voltages, charge, cap)
        return charge, cap

    @staticmethod
    def solve_linear(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Dense solve with a clear diagnosis of singular systems."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("spice.mna.solves").inc()
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular MNA matrix ({exc}); check for floating "
                f"subcircuits or voltage-source loops") from None


def scale_sources(circuit: Circuit, factor: float) -> "ScaledSourceContext":
    """Context manager scaling all voltage sources (source stepping)."""
    return ScaledSourceContext(circuit, factor)


class ScaledSourceContext:
    """Temporarily replaces VoltageSource waveforms with scaled DC values.

    Used by the source-stepping fallback: at factor 0 the circuit is
    trivially solvable, and the solution continues smoothly to factor 1.
    """

    def __init__(self, circuit: Circuit, factor: float):
        self.circuit = circuit
        self.factor = factor
        self._saved: Dict[str, object] = {}

    def __enter__(self) -> "ScaledSourceContext":
        from repro.spice.elements.vsource import VoltageSource

        for element in self.circuit:
            if isinstance(element, VoltageSource):
                self._saved[element.name] = element.waveform
                element.waveform = element.value(0.0) * self.factor
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        for name, waveform in self._saved.items():
            self.circuit.element(name).waveform = waveform
        return None
