"""MNA system assembly shared by the DC and transient solvers.

Two linear-algebra kernels live here (``REPRO_SOLVER_KERNEL``, see
:mod:`repro.kernels`):

* ``dense`` — the legacy oracle: every Newton iteration stamps every
  element from scratch and solves with ``np.linalg.solve``;
* ``sparse`` — the fast kernel: elements are partitioned into a linear
  part (stamped once per assembler and reused as a cached base matrix)
  and a varying part (re-stamped per iteration), and solves go through
  SuperLU with the CSC sparsity pattern cached while the structure is
  unchanged and the numeric factorisation reused while the matrix
  values are unchanged (linear circuits factor once per transient).

The sparse kernel silently degrades to the dense oracle below
``REPRO_SPARSE_THRESHOLD`` unknowns and when SciPy is unavailable, so
small systems — every committed golden and the whole standard-cell
flow — keep bit-identical legacy arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.errors import SingularMatrixError
from repro.observe import get_tracer
from repro.spice.netlist import Circuit
from repro.spice.elements.base import Element, Stamper

#: Leak conductance from every node to ground — keeps cut-off transistor
#: networks non-singular, as real simulators do.
GMIN = 1e-12


def _singular(exc: Exception) -> SingularMatrixError:
    """The shared diagnosis both kernels raise for singular systems."""
    return SingularMatrixError(
        f"singular MNA matrix ({exc}); check for floating "
        f"subcircuits or voltage-source loops")


class _LazyVoltages(dict):
    """Node-voltage view over a solution vector, materialised on demand.

    The sparse kernel re-stamps only the varying elements, which touch
    a handful of nodes — building the full ``{node: float}`` dict every
    Newton iteration (the dense kernel's behaviour) would dominate the
    assembly cost on large circuits.
    """

    def __init__(self, x: np.ndarray, node_index: Dict[str, int]):
        super().__init__()
        self._x = x
        self._index = node_index

    def get(self, node, default=0.0):
        idx = self._index.get(node)
        if idx is None:
            return default
        return float(self._x[idx])

    def __missing__(self, node):
        idx = self._index.get(node)
        if idx is None:
            raise KeyError(node)
        return float(self._x[idx])


class _SparseLinearSolver:
    """CSC pattern cache and LU factorisation reuse for one assembler.

    The pattern (``indices``/``indptr`` plus the dense positions each
    stored entry refills from) is rebuilt only when the matrix grows a
    nonzero outside it; the numeric factorisation is reused verbatim
    whenever the refilled data is bit-identical to the last factorised
    data — which makes linear circuits factor exactly once per
    (transient timestep size), with every further Newton iteration and
    timestep a cheap triangular solve.
    """

    def __init__(self):
        self.n: Optional[int] = None
        self.indices: Optional[np.ndarray] = None
        self.indptr: Optional[np.ndarray] = None
        self.rows: Optional[np.ndarray] = None
        self.cols: Optional[np.ndarray] = None
        self.last_data: Optional[np.ndarray] = None
        self.lu = None

    def _rebuild_pattern(self, matrix: np.ndarray) -> None:
        from scipy import sparse

        pattern = sparse.csc_matrix(matrix)
        pattern.sort_indices()
        self.n = matrix.shape[0]
        self.indices = pattern.indices.astype(np.int64, copy=True)
        self.indptr = pattern.indptr.astype(np.int64, copy=True)
        self.rows = self.indices
        self.cols = np.repeat(np.arange(self.n), np.diff(self.indptr))
        self.last_data = None
        self.lu = None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("spice.mna.pattern_rebuilds").inc()

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        from scipy import sparse
        from scipy.sparse.linalg import splu

        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("spice.mna.solves").inc()
            tracer.counter("spice.mna.sparse_solves").inc()
        if self.indices is None or matrix.shape[0] != self.n:
            self._rebuild_pattern(matrix)
        data = matrix[self.rows, self.cols]
        # The cached pattern is valid only while it covers every
        # nonzero of the matrix (a new coupling — e.g. a transistor
        # leaving cut-off — shows up as a nonzero the extraction
        # missed).  Entries *inside* the pattern going to zero are
        # harmless explicit zeros.
        if np.count_nonzero(matrix) != np.count_nonzero(data):
            self._rebuild_pattern(matrix)
            data = matrix[self.rows, self.cols]
        if self.lu is not None and np.array_equal(data, self.last_data):
            if tracer.enabled:
                tracer.counter("spice.mna.factor_reuse").inc()
        else:
            system = sparse.csc_matrix(
                (data, self.indices, self.indptr), shape=(self.n, self.n))
            try:
                self.lu = splu(system)
            except RuntimeError as exc:
                self.lu = None
                self.last_data = None
                raise _singular(exc) from None
            self.last_data = data
            if tracer.enabled:
                tracer.counter("spice.mna.factorizations").inc()
        return self.lu.solve(rhs)


class MnaAssembler:
    """Builds linearised MNA systems for a circuit.

    Parameters
    ----------
    circuit:
        The circuit to assemble.
    kernel:
        Optional MNA kernel override (``"sparse"``/``"dense"`` or a
        full ``REPRO_SOLVER_KERNEL`` spec); default resolves the
        environment.
    sparse_threshold:
        Optional minimum unknown count for the sparse path; default
        resolves ``REPRO_SPARSE_THRESHOLD``.

    The effective kernel is exposed as :attr:`kernel`; element
    parameters must not change over the assembler's lifetime when the
    sparse kernel is active (the linear partition is cached) — the
    solver stack honours this: source stepping swaps *waveforms* of
    voltage sources, which sit in the varying partition.
    """

    def __init__(self, circuit: Circuit, kernel: Optional[str] = None,
                 sparse_threshold: Optional[int] = None):
        circuit.validate()
        self.circuit = circuit
        self.node_index = circuit.node_index()
        self.branch_index = circuit.branch_index()
        self.n_unknowns = circuit.n_unknowns
        self.n_nodes = len(self.node_index)
        requested = kernels.mna_kernel(kernel)
        self.kernel = "dense"
        if (requested == "sparse"
                and self.n_unknowns >= kernels.sparse_threshold(
                    sparse_threshold)
                and kernels.scipy_sparse_available()):
            self.kernel = "sparse"
            self._prepare_sparse()

    def _prepare_sparse(self) -> None:
        """Partition elements and cache the linear stamps."""
        self._static_varying: List[Element] = [
            e for e in self.circuit
            if not e.static_linear
            and type(e).stamp_static is not Element.stamp_static]
        self._dynamic_varying: List[Element] = [
            e for e in self.circuit
            if not e.dynamic_linear
            and type(e).stamp_dynamic is not Element.stamp_dynamic]
        zero_voltages = {node: 0.0 for node in self.node_index}
        base = Stamper(self.node_index, self.branch_index, self.n_unknowns)
        for element in self.circuit:
            if element.static_linear:
                element.stamp_static(base, zero_voltages, 0.0)
        for i in range(self.n_nodes):
            base.matrix[i, i] += GMIN
        self._static_base = base.matrix
        self._static_base_rhs = base.rhs
        cap_stamper = Stamper(self.node_index, self.branch_index,
                              self.n_unknowns)
        self._cap_base = np.zeros((self.n_unknowns, self.n_unknowns))
        scratch = np.zeros(self.n_unknowns)
        for element in self.circuit:
            if element.dynamic_linear:
                element.stamp_dynamic(cap_stamper, zero_voltages, scratch,
                                      self._cap_base)
        self._sparse = _SparseLinearSolver()

    # ------------------------------------------------------------------
    # vector <-> dict conversions
    # ------------------------------------------------------------------
    def voltages_from(self, x: np.ndarray) -> Dict[str, float]:
        """Node-voltage dict from a solution vector."""
        return {node: float(x[i]) for node, i in self.node_index.items()}

    def branch_current(self, x: np.ndarray, element_name: str) -> float:
        """Branch current of a voltage source from a solution vector."""
        return float(x[self.branch_index[element_name]])

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble_static(self, x: np.ndarray, time: float) -> Stamper:
        """Stamp all static (memoryless) element behaviour at estimate x."""
        if self.kernel == "dense":
            stamper = Stamper(self.node_index, self.branch_index,
                              self.n_unknowns)
            voltages = self.voltages_from(x)
            for element in self.circuit:
                element.stamp_static(stamper, voltages, time)
            for i in range(self.n_nodes):
                stamper.matrix[i, i] += GMIN
            return stamper
        # Sparse kernel: start from the cached linear base (already
        # including GMIN) and re-stamp only the varying elements.
        stamper = Stamper.from_base(self.node_index, self.branch_index,
                                    self._static_base.copy(),
                                    self._static_base_rhs.copy())
        if self._static_varying:
            voltages = _LazyVoltages(x, self.node_index)
            for element in self._static_varying:
                element.stamp_static(stamper, voltages, time)
        return stamper

    def assemble_dynamic(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Charge vector q(x) and capacitance Jacobian C(x) = dq/dx.

        Under the sparse kernel the returned Jacobian may be the cached
        linear base itself (no per-call copy): callers must treat it as
        read-only, which the DC and transient solvers do.
        """
        if self.kernel == "dense":
            stamper = Stamper(self.node_index, self.branch_index,
                              self.n_unknowns)
            voltages = self.voltages_from(x)
            charge = np.zeros(self.n_unknowns)
            cap = np.zeros((self.n_unknowns, self.n_unknowns))
            for element in self.circuit:
                element.stamp_dynamic(stamper, voltages, charge, cap)
            return charge, cap
        # Sparse kernel: linear charges are exactly C x with the cached
        # capacitance base; only nonlinear elements re-stamp.
        charge = self._cap_base @ x
        if not self._dynamic_varying:
            return charge, self._cap_base
        cap = self._cap_base.copy()
        stamper = Stamper(self.node_index, self.branch_index,
                          self.n_unknowns)
        voltages = _LazyVoltages(x, self.node_index)
        for element in self._dynamic_varying:
            element.stamp_dynamic(stamper, voltages, charge, cap)
        return charge, cap

    def solve_system(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve A x = z under this assembler's kernel.

        Dense assemblers defer to the legacy :meth:`solve_linear`
        oracle; sparse assemblers go through the cached-pattern SuperLU
        path with factorisation reuse.  Both raise the same
        :class:`~repro.errors.SingularMatrixError` (code
        ``spice.singular_matrix``) on singular systems.
        """
        if self.kernel == "dense":
            return self.solve_linear(matrix, rhs)
        return self._sparse.solve(matrix, rhs)

    @staticmethod
    def solve_linear(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Dense solve with a clear diagnosis of singular systems."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("spice.mna.solves").inc()
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise _singular(exc) from None


def scale_sources(circuit: Circuit, factor: float) -> "ScaledSourceContext":
    """Context manager scaling all voltage sources (source stepping)."""
    return ScaledSourceContext(circuit, factor)


class ScaledSourceContext:
    """Temporarily replaces VoltageSource waveforms with scaled DC values.

    Used by the source-stepping fallback: at factor 0 the circuit is
    trivially solvable, and the solution continues smoothly to factor 1.
    """

    def __init__(self, circuit: Circuit, factor: float):
        self.circuit = circuit
        self.factor = factor
        self._saved: Dict[str, object] = {}

    def __enter__(self) -> "ScaledSourceContext":
        from repro.spice.elements.vsource import VoltageSource

        for element in self.circuit:
            if isinstance(element, VoltageSource):
                self._saved[element.name] = element.waveform
                element.waveform = element.value(0.0) * self.factor
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        for name, waveform in self._saved.items():
            self.circuit.element(name).waveform = waveform
        return None
