""".measure-style post-processing: delays, transitions, power, PDP."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.spice.waveform import Waveform


@dataclass(frozen=True)
class DelayMeasurement:
    """One input-edge-to-output-edge propagation measurement."""

    t_in: float
    t_out: float
    in_direction: str
    out_direction: str

    @property
    def delay(self) -> float:
        """Propagation delay [s]."""
        return self.t_out - self.t_in


def propagation_delays(input_wf: Waveform, output_wf: Waveform,
                       vdd: float, threshold_fraction: float = 0.5,
                       settle: float = 0.0) -> List[DelayMeasurement]:
    """All input-edge -> next-output-edge delays at the 50% thresholds.

    For every input crossing (either direction) after ``settle``, the
    first subsequent output crossing (either direction) is paired with
    it.  Input edges that produce no output transition (non-controlling
    input patterns) are skipped.
    """
    level = threshold_fraction * vdd
    measurements: List[DelayMeasurement] = []
    in_edges = [(t, "rise") for t in input_wf.crossings(level, "rise")]
    in_edges += [(t, "fall") for t in input_wf.crossings(level, "fall")]
    in_edges.sort()
    out_rise = output_wf.crossings(level, "rise")
    out_fall = output_wf.crossings(level, "fall")

    for t_in, direction in in_edges:
        if t_in < settle:
            continue
        candidates = [(t, "rise") for t in out_rise if t > t_in]
        candidates += [(t, "fall") for t in out_fall if t > t_in]
        if not candidates:
            continue
        t_out, out_dir = min(candidates)
        # Pair only if the output moves before the next input edge.
        next_inputs = [t for t, _ in in_edges if t > t_in]
        if next_inputs and t_out > next_inputs[0]:
            continue
        measurements.append(DelayMeasurement(t_in, t_out, direction, out_dir))
    return measurements


def average_propagation_delay(input_wf: Waveform, output_wf: Waveform,
                              vdd: float, settle: float = 0.0) -> float:
    """Mean 50%-to-50% propagation delay [s] over all paired edges."""
    measurements = propagation_delays(input_wf, output_wf, vdd,
                                      settle=settle)
    if not measurements:
        raise SimulationError("no input/output edge pairs found")
    return sum(m.delay for m in measurements) / len(measurements)


def average_power(supply_current: Waveform, vdd: float,
                  t0: Optional[float] = None,
                  t1: Optional[float] = None) -> float:
    """Average power [W] drawn from a supply.

    ``supply_current`` is the branch current of the VDD source (positive
    into its + terminal per MNA convention, hence the sign flip).
    """
    if vdd <= 0:
        raise SimulationError("vdd must be positive")
    wf = supply_current
    if t0 is not None or t1 is not None:
        wf = wf.window(t0 if t0 is not None else wf.t[0],
                       t1 if t1 is not None else wf.t[-1])
    return -vdd * wf.mean()


def energy(supply_current: Waveform, vdd: float, t0: float,
           t1: float) -> float:
    """Energy [J] drawn from the supply over a window."""
    return average_power(supply_current, vdd, t0, t1) * (t1 - t0)


def power_delay_product(power: float, delay: float) -> float:
    """PDP [J] — the paper's summary figure of merit."""
    if power < 0 or delay < 0:
        raise SimulationError("power and delay must be non-negative")
    return power * delay
