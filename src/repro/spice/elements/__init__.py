"""Circuit elements."""

from repro.spice.elements.base import Element, Stamper
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.vsource import VoltageSource
from repro.spice.elements.isource import CurrentSource
from repro.spice.elements.mosfet import Mosfet

__all__ = [
    "Element",
    "Stamper",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
]
