"""MOSFET element wrapping the BSIMSOI4-lite compact model.

Three terminals (drain, gate, source).  The static stamp linearises the
drain current with numerically differentiated gm/gds (robust against any
future change in the model equations); the dynamic stamp provides the
model's conservative terminal charges with a numerical 3x3 capacitance
Jacobian.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.compact.model import BsimSoi4Lite
from repro.errors import NetlistError
from repro.spice.elements.base import Element, Stamper

#: Finite-difference step for gm/gds/capacitances [V].
FD_DELTA = 1e-4


class Mosfet(Element):
    """Compact-model MOSFET (nodes: drain, gate, source)."""

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: BsimSoi4Lite):
        super().__init__(name, (drain, gate, source))
        if not isinstance(model, BsimSoi4Lite):
            raise NetlistError(f"{name}: model must be a BsimSoi4Lite")
        self.model = model

    # ------------------------------------------------------------------
    # evaluations
    # ------------------------------------------------------------------
    def _bias(self, voltages: Dict[str, float]):
        vd, vg, vs = self.terminal_voltages(voltages)
        return vg - vs, vd - vs

    def drain_current(self, voltages: Dict[str, float]) -> float:
        """I_D [A] flowing into the drain terminal."""
        vgs, vds = self._bias(voltages)
        return self.model.ids(vgs, vds)

    # ------------------------------------------------------------------
    # stamps
    # ------------------------------------------------------------------
    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        vgs, vds = self._bias(voltages)
        d = FD_DELTA
        batch = self.model.ids_batch(
            np.array([vgs, vgs + d, vgs - d, vgs, vgs]),
            np.array([vds, vds, vds, vds + d, vds - d]))
        ids = float(batch[0])
        gm = float(batch[1] - batch[2]) / (2.0 * d)
        gds = float(batch[3] - batch[4]) / (2.0 * d)

        drain, gate, source = self.nodes
        # Companion: i = ids + gm * d(vgs) + gds * d(vds), flowing d->s.
        stamper.stamp_transconductance(drain, source, gate, source, gm)
        stamper.stamp_conductance(drain, source, gds)
        stamper.stamp_current(drain, source, ids - gm * vgs - gds * vds)

    def stamp_dynamic(self, stamper: Stamper, voltages: Dict[str, float],
                      charge_vector: np.ndarray,
                      cap_matrix: np.ndarray) -> None:
        drain, gate, source = self.nodes
        rows = [stamper.row(n) for n in (gate, drain, source)]
        vgs, vds = self._bias(voltages)

        d = FD_DELTA
        qg_b, qd_b, qs_b = self.model.charges_batch(
            np.array([vgs, vgs + d, vgs]),
            np.array([vds, vds, vds + d]))
        q0 = np.array([qg_b[0], qd_b[0], qs_b[0]])
        # dq/dvg (vs fixed), dq/dvd, and dq/dvs = -(dq/dvg + dq/dvd).
        dq_dvg = (np.array([qg_b[1], qd_b[1], qs_b[1]]) - q0) / d
        dq_dvd = (np.array([qg_b[2], qd_b[2], qs_b[2]]) - q0) / d
        dq_dvs = -(dq_dvg + dq_dvd)

        for i, row in enumerate(rows):
            if row is None:
                continue
            charge_vector[row] += q0[i]
            for deriv, node in ((dq_dvg[i], gate), (dq_dvd[i], drain),
                                (dq_dvs[i], source)):
                col = stamper.row(node)
                if col is not None:
                    cap_matrix[row, col] += deriv
