"""Element interface and the MNA stamper.

Every element linearises itself around the current solution estimate and
*stamps* companion conductances/currents into the system:

* :meth:`Element.stamp_static` — resistive currents and their Jacobian
  (used by DC and transient alike);
* :meth:`Element.stamp_dynamic` — terminal charges and their capacitance
  Jacobian (used by the transient integrator only).

The :class:`Stamper` hides matrix indexing: elements talk in node names.
Ground ("0") maps to no row/column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError

GROUND = "0"


class Stamper:
    """Accumulates the linearised MNA system A x = z.

    ``x`` is [node voltages..., branch currents...].  For the transient
    integrator a separate charge vector / capacitance matrix is built with
    the same indexing.
    """

    def __init__(self, node_index: Dict[str, int],
                 branch_index: Dict[str, int], n_unknowns: int):
        self.node_index = node_index
        self.branch_index = branch_index
        self.matrix = np.zeros((n_unknowns, n_unknowns))
        self.rhs = np.zeros(n_unknowns)

    @classmethod
    def from_base(cls, node_index: Dict[str, int],
                  branch_index: Dict[str, int], matrix: np.ndarray,
                  rhs: np.ndarray) -> "Stamper":
        """Stamper over caller-owned system arrays (no fresh allocation).

        The sparse MNA kernel seeds each Newton iteration with a copy
        of its cached linear base instead of re-stamping from zeros.
        """
        stamper = cls.__new__(cls)
        stamper.node_index = node_index
        stamper.branch_index = branch_index
        stamper.matrix = matrix
        stamper.rhs = rhs
        return stamper

    def row(self, node: str) -> Optional[int]:
        """Matrix row of a node, or None for ground."""
        if node == GROUND:
            return None
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def branch_row(self, element_name: str) -> int:
        """Matrix row of an element's branch-current unknown."""
        try:
            return self.branch_index[element_name]
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch unknown") from None

    # ------------------------------------------------------------------
    # primitive stamps
    # ------------------------------------------------------------------
    def add_matrix(self, row_node: str, col_node: str, value: float) -> None:
        """A[row, col] += value (no-op if either maps to ground)."""
        r = self.row(row_node)
        c = self.row(col_node)
        if r is not None and c is not None:
            self.matrix[r, c] += value

    def add_matrix_rowcol(self, r: Optional[int], c: Optional[int],
                          value: float) -> None:
        """Raw-index variant (rows may be branch rows)."""
        if r is not None and c is not None:
            self.matrix[r, c] += value

    def add_rhs(self, node: str, value: float) -> None:
        """z[row(node)] += value."""
        r = self.row(node)
        if r is not None:
            self.rhs[r] += value

    def add_rhs_row(self, r: Optional[int], value: float) -> None:
        """Raw-index right-hand-side stamp."""
        if r is not None:
            self.rhs[r] += value

    # ------------------------------------------------------------------
    # composite stamps
    # ------------------------------------------------------------------
    def stamp_conductance(self, n1: str, n2: str, g: float) -> None:
        """Two-terminal conductance between n1 and n2."""
        self.add_matrix(n1, n1, g)
        self.add_matrix(n2, n2, g)
        self.add_matrix(n1, n2, -g)
        self.add_matrix(n2, n1, -g)

    def stamp_current(self, n_from: str, n_to: str, i: float) -> None:
        """Independent current i flowing from n_from to n_to."""
        self.add_rhs(n_from, -i)
        self.add_rhs(n_to, i)

    def stamp_transconductance(self, out_p: str, out_n: str,
                               ctrl_p: str, ctrl_n: str, gm: float) -> None:
        """Current gm * (v(ctrl_p) - v(ctrl_n)) flowing out_p -> out_n."""
        for out, sign in ((out_p, 1.0), (out_n, -1.0)):
            self.add_matrix(out, ctrl_p, sign * gm)
            self.add_matrix(out, ctrl_n, -sign * gm)


class Element:
    """Base class for all circuit elements."""

    #: Number of extra (branch-current) unknowns this element adds.
    n_branch = 0

    #: True when :meth:`stamp_static` depends on neither the solution
    #: estimate nor time — the stamp can be assembled once per circuit
    #: and reused across Newton iterations and timesteps (the sparse
    #: MNA kernel's linear/nonlinear partition).
    static_linear = False

    #: True when :meth:`stamp_dynamic` is a linear charge ``q = C x``
    #: with a constant capacitance matrix — ``C`` can be cached and the
    #: charge recovered as a matrix-vector product.
    dynamic_linear = False

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("element needs a non-empty name")
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(nodes)
        if len(self.nodes) < 2:
            raise NetlistError(f"{name}: element needs at least two nodes")

    # ------------------------------------------------------------------
    # voltage helpers
    # ------------------------------------------------------------------
    @staticmethod
    def node_voltage(voltages: Dict[str, float], node: str) -> float:
        """Voltage of a node (ground is 0 by definition)."""
        if node == GROUND:
            return 0.0
        return voltages.get(node, 0.0)

    def terminal_voltages(self, voltages: Dict[str, float]) -> List[float]:
        """Voltages of this element's terminals, in node order."""
        return [self.node_voltage(voltages, n) for n in self.nodes]

    # ------------------------------------------------------------------
    # stamping interface
    # ------------------------------------------------------------------
    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        """Stamp resistive (memoryless) behaviour; default: nothing."""

    def stamp_dynamic(self, stamper: Stamper, voltages: Dict[str, float],
                      charge_vector: np.ndarray,
                      cap_matrix: np.ndarray) -> None:
        """Accumulate terminal charges and capacitance Jacobian."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.nodes}>"
