"""Linear controlled sources: VCVS (E) and VCCS (G).

Used for behavioural load modelling (e.g. emulating a driver or a
receiver without instantiating transistors) and in testbenches.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import NetlistError
from repro.spice.elements.base import Element, Stamper


class Vcvs(Element):
    """Voltage-controlled voltage source: v(out) = gain * v(ctrl).

    Nodes: (out+, out-, ctrl+, ctrl-).  Adds one branch unknown.
    """

    n_branch = 1
    static_linear = True

    def __init__(self, name: str, out_p: str, out_n: str,
                 ctrl_p: str, ctrl_n: str, gain: float):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        if gain == 0:
            raise NetlistError(f"{name}: zero gain makes a useless VCVS")
        self.gain = float(gain)

    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.nodes
        branch = stamper.branch_row(self.name)
        rp, rn = stamper.row(out_p), stamper.row(out_n)
        cp, cn = stamper.row(ctrl_p), stamper.row(ctrl_n)
        stamper.add_matrix_rowcol(rp, branch, 1.0)
        stamper.add_matrix_rowcol(rn, branch, -1.0)
        # Branch equation: v(out+) - v(out-) - gain*(v(c+) - v(c-)) = 0.
        stamper.add_matrix_rowcol(branch, rp, 1.0)
        stamper.add_matrix_rowcol(branch, rn, -1.0)
        stamper.add_matrix_rowcol(branch, cp, -self.gain)
        stamper.add_matrix_rowcol(branch, cn, self.gain)


class Vccs(Element):
    """Voltage-controlled current source: i(out+ -> out-) = gm * v(ctrl).

    Nodes: (out+, out-, ctrl+, ctrl-).  Pure transconductance stamp.
    """

    static_linear = True

    def __init__(self, name: str, out_p: str, out_n: str,
                 ctrl_p: str, ctrl_n: str, transconductance: float):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        if transconductance == 0:
            raise NetlistError(f"{name}: zero gm makes a useless VCCS")
        self.transconductance = float(transconductance)

    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.nodes
        stamper.stamp_transconductance(out_p, out_n, ctrl_p, ctrl_n,
                                       self.transconductance)
