"""Linear capacitor (charge-based, exact for the integrator)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import NetlistError
from repro.spice.elements.base import Element, Stamper


class Capacitor(Element):
    """Two-terminal linear capacitor.

    Contributes nothing to DC (open circuit) and a charge
    ``q = C (v1 - v2)`` to the transient system.
    """

    static_linear = True
    dynamic_linear = True

    def __init__(self, name: str, n1: str, n2: str, capacitance: float):
        super().__init__(name, (n1, n2))
        if capacitance <= 0:
            raise NetlistError(
                f"{name}: capacitance must be positive, got {capacitance}")
        self.capacitance = float(capacitance)

    def charge(self, voltages: Dict[str, float]) -> float:
        """Stored charge q(v) [C] referenced to terminal n1."""
        v1, v2 = self.terminal_voltages(voltages)
        return self.capacitance * (v1 - v2)

    def stamp_dynamic(self, stamper: Stamper, voltages: Dict[str, float],
                      charge_vector: np.ndarray,
                      cap_matrix: np.ndarray) -> None:
        q = self.charge(voltages)
        r1 = stamper.row(self.nodes[0])
        r2 = stamper.row(self.nodes[1])
        c = self.capacitance
        if r1 is not None:
            charge_vector[r1] += q
            cap_matrix[r1, r1] += c
            if r2 is not None:
                cap_matrix[r1, r2] -= c
        if r2 is not None:
            charge_vector[r2] -= q
            cap_matrix[r2, r2] += c
            if r1 is not None:
                cap_matrix[r2, r1] -= c
