"""Independent voltage sources: DC, PULSE and PWL waveforms."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import NetlistError
from repro.spice.elements.base import Element, Stamper


@dataclass(frozen=True)
class PulseSpec:
    """SPICE PULSE(v1 v2 td tr tf pw per) specification."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def __post_init__(self) -> None:
        if min(self.rise, self.fall) <= 0:
            raise NetlistError("pulse rise/fall must be positive")
        if self.width < 0 or self.period <= 0:
            raise NetlistError("pulse width/period invalid")
        if self.rise + self.width + self.fall > self.period:
            raise NetlistError("pulse edges exceed the period")

    def value(self, time: float) -> float:
        """Waveform value at ``time``."""
        if time < self.delay:
            return self.v1
        t = (time - self.delay) % self.period
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1

    def breakpoints(self, t_stop: float) -> List[float]:
        """Times where the slope changes (timestep control)."""
        points: List[float] = []
        t0 = self.delay
        while t0 < t_stop:
            for offset in (0.0, self.rise, self.rise + self.width,
                           self.rise + self.width + self.fall):
                t = t0 + offset
                if 0.0 <= t <= t_stop:
                    points.append(t)
            t0 += self.period
        return points


@dataclass(frozen=True)
class PwlSpec:
    """Piecewise-linear waveform: sorted (time, value) points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise NetlistError("PWL needs at least one point")
        times = [p[0] for p in self.points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise NetlistError("PWL times must be strictly increasing")

    def value(self, time: float) -> float:
        """Waveform value at ``time`` (clamped at the ends)."""
        times = [p[0] for p in self.points]
        if time <= times[0]:
            return self.points[0][1]
        if time >= times[-1]:
            return self.points[-1][1]
        i = bisect.bisect_right(times, time)
        t0, v0 = self.points[i - 1]
        t1, v1 = self.points[i]
        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)

    def breakpoints(self, t_stop: float) -> List[float]:
        """Corner times within the window."""
        return [t for t, _ in self.points if 0.0 <= t <= t_stop]


class VoltageSource(Element):
    """Independent voltage source with an MNA branch-current unknown.

    The branch current unknown makes the source current directly
    observable — which the power measurements rely on.
    """

    n_branch = 1

    def __init__(self, name: str, n_plus: str, n_minus: str, waveform):
        super().__init__(name, (n_plus, n_minus))
        self.waveform = waveform

    def value(self, time: float) -> float:
        """Source voltage at ``time``."""
        if hasattr(self.waveform, "value"):
            return float(self.waveform.value(time))
        return float(self.waveform)

    def breakpoints(self, t_stop: float) -> List[float]:
        """Slope-change times for the integrator."""
        if hasattr(self.waveform, "breakpoints"):
            return self.waveform.breakpoints(t_stop)
        return []

    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        branch = stamper.branch_row(self.name)
        r_plus = stamper.row(self.nodes[0])
        r_minus = stamper.row(self.nodes[1])
        stamper.add_matrix_rowcol(r_plus, branch, 1.0)
        stamper.add_matrix_rowcol(r_minus, branch, -1.0)
        stamper.add_matrix_rowcol(branch, r_plus, 1.0)
        stamper.add_matrix_rowcol(branch, r_minus, -1.0)
        stamper.add_rhs_row(branch, self.value(time))


def dc_source(name: str, n_plus: str, n_minus: str,
              voltage: float) -> VoltageSource:
    """Constant source."""
    return VoltageSource(name, n_plus, n_minus, float(voltage))


def pulse_source(name: str, n_plus: str, n_minus: str,
                 **kwargs) -> VoltageSource:
    """PULSE source; kwargs feed :class:`PulseSpec`."""
    return VoltageSource(name, n_plus, n_minus, PulseSpec(**kwargs))


def pwl_source(name: str, n_plus: str, n_minus: str,
               points: Sequence[Tuple[float, float]]) -> VoltageSource:
    """PWL source from (time, value) pairs."""
    return VoltageSource(name, n_plus, n_minus, PwlSpec(tuple(points)))
