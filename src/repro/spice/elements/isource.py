"""Independent current source."""

from __future__ import annotations

from typing import Dict

from repro.spice.elements.base import Element, Stamper


class CurrentSource(Element):
    """DC (or waveform-driven) current source, flowing n_plus -> n_minus
    through the source externally (SPICE convention: current flows from
    the + terminal through the circuit to the - terminal)."""

    def __init__(self, name: str, n_plus: str, n_minus: str, waveform):
        super().__init__(name, (n_plus, n_minus))
        self.waveform = waveform

    def value(self, time: float) -> float:
        """Source current at ``time`` [A]."""
        if hasattr(self.waveform, "value"):
            return float(self.waveform.value(time))
        return float(self.waveform)

    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        i = self.value(time)
        stamper.add_rhs(self.nodes[0], -i)
        stamper.add_rhs(self.nodes[1], i)
