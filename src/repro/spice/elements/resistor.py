"""Linear resistor."""

from __future__ import annotations

from typing import Dict

from repro.errors import NetlistError
from repro.spice.elements.base import Element, Stamper


class Resistor(Element):
    """Two-terminal linear resistor.

    Parameters
    ----------
    name:
        Unique element name (conventionally ``R...``).
    n1, n2:
        Terminal nodes.
    resistance:
        Ohms; must be positive.
    """

    static_linear = True

    def __init__(self, name: str, n1: str, n2: str, resistance: float):
        super().__init__(name, (n1, n2))
        if resistance <= 0:
            raise NetlistError(
                f"{name}: resistance must be positive, got {resistance}")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """1/R [S]."""
        return 1.0 / self.resistance

    def current(self, voltages: Dict[str, float]) -> float:
        """Current flowing n1 -> n2 [A]."""
        v1, v2 = self.terminal_voltages(voltages)
        return (v1 - v2) * self.conductance

    def stamp_static(self, stamper: Stamper, voltages: Dict[str, float],
                     time: float) -> None:
        stamper.stamp_conductance(self.nodes[0], self.nodes[1],
                                  self.conductance)
