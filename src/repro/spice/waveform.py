"""Time-domain waveforms: interpolation, crossings, integrals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class Waveform:
    """A sampled signal v(t) with strictly increasing time points."""

    t: np.ndarray
    v: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        t = np.asarray(self.t, dtype=float)
        v = np.asarray(self.v, dtype=float)
        if t.ndim != 1 or t.size < 2 or t.shape != v.shape:
            raise SimulationError("waveform needs matching 1-D t/v arrays")
        if np.any(np.diff(t) <= 0):
            raise SimulationError("waveform times must be strictly increasing")
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "v", v)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def value(self, time) -> np.ndarray:
        """Linear interpolation at arbitrary times (clamped at ends)."""
        return np.interp(np.asarray(time, dtype=float), self.t, self.v)

    @property
    def duration(self) -> float:
        """Total time span [s]."""
        return float(self.t[-1] - self.t[0])

    def window(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform on [t0, t1] with exact interpolated endpoints."""
        if not (self.t[0] <= t0 < t1 <= self.t[-1]):
            raise SimulationError(
                f"window [{t0:g}, {t1:g}] outside waveform span "
                f"[{self.t[0]:g}, {self.t[-1]:g}]")
        inside = (self.t > t0) & (self.t < t1)
        times = np.concatenate([[t0], self.t[inside], [t1]])
        return Waveform(times, self.value(times), self.name)

    # ------------------------------------------------------------------
    # crossings and edges
    # ------------------------------------------------------------------
    def crossings(self, level: float,
                  direction: Optional[str] = None) -> List[float]:
        """Times where the waveform crosses ``level``.

        ``direction`` restricts to ``"rise"`` or ``"fall"`` crossings.
        Uses linear interpolation between samples.
        """
        if direction not in (None, "rise", "fall"):
            raise SimulationError(f"bad direction {direction!r}")
        above = self.v >= level
        out: List[float] = []
        for i in range(len(self.t) - 1):
            if above[i] == above[i + 1]:
                continue
            rising = not above[i]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            dv = self.v[i + 1] - self.v[i]
            frac = 0.0 if dv == 0 else (level - self.v[i]) / dv
            out.append(float(self.t[i] + frac * (self.t[i + 1] - self.t[i])))
        return out

    def first_crossing_after(self, time: float, level: float,
                             direction: Optional[str] = None) -> float:
        """First crossing strictly after ``time``; raises if none."""
        for crossing in self.crossings(level, direction):
            if crossing > time:
                return crossing
        raise SimulationError(
            f"{self.name or 'waveform'}: no {direction or 'any'} crossing "
            f"of {level:g} after t={time:g}")

    def transition_time(self, v_low: float, v_high: float,
                        direction: str = "rise") -> float:
        """10/90-style transition time between two levels (first edge)."""
        if direction == "rise":
            t_start = self.first_crossing_after(self.t[0], v_low, "rise")
            t_end = self.first_crossing_after(t_start, v_high, "rise")
        else:
            t_start = self.first_crossing_after(self.t[0], v_high, "fall")
            t_end = self.first_crossing_after(t_start, v_low, "fall")
        return t_end - t_start

    # ------------------------------------------------------------------
    # integrals / statistics
    # ------------------------------------------------------------------
    def integral(self) -> float:
        """Trapezoidal integral of v over t."""
        return float(np.trapezoid(self.v, self.t))

    def mean(self) -> float:
        """Time-weighted average value."""
        return self.integral() / self.duration

    def minimum(self) -> float:
        """Smallest sample value."""
        return float(np.min(self.v))

    def maximum(self) -> float:
        """Largest sample value."""
        return float(np.max(self.v))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "Waveform":
        """Return factor * v(t)."""
        return Waveform(self.t, self.v * factor, self.name)

    def shifted(self, offset: float) -> "Waveform":
        """Return v(t) + offset."""
        return Waveform(self.t, self.v + offset, self.name)

    def __add__(self, other: "Waveform") -> "Waveform":
        if not isinstance(other, Waveform):
            return NotImplemented
        if self.t.shape == other.t.shape and np.allclose(self.t, other.t):
            return Waveform(self.t, self.v + other.v, self.name)
        return Waveform(self.t, self.v + other.value(self.t), self.name)
