"""A SPICE-class circuit simulator (the paper's HSPICE substitute).

Modified nodal analysis with damped Newton iteration for DC, source
stepping as a convergence fallback, and backward-Euler / trapezoidal
transient with charge-conserving companion models.  Elements: resistor,
capacitor, independent voltage/current sources (DC, PULSE, PWL) and the
BSIMSOI4-lite MOSFET.
"""

from repro.spice.netlist import Circuit
from repro.spice.elements.resistor import Resistor
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.vsource import (
    VoltageSource,
    dc_source,
    pulse_source,
    pwl_source,
)
from repro.spice.elements.isource import CurrentSource
from repro.spice.elements.mosfet import Mosfet
from repro.spice.dcop import OperatingPoint, solve_dc
from repro.spice.dcsweep import dc_sweep
from repro.spice.transient import TransientResult, transient
from repro.spice.waveform import Waveform
from repro.spice import measure

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
    "dc_source",
    "pulse_source",
    "pwl_source",
    "OperatingPoint",
    "solve_dc",
    "dc_sweep",
    "transient",
    "TransientResult",
    "Waveform",
    "measure",
]
