"""Transient analysis: backward-Euler / trapezoidal with breakpoints.

The time grid is built from a base step refined around source
breakpoints (pulse edges), where standard-cell waveforms actually move.
Each step solves the nonlinear system

    f_static(x) + (q(x) - q_prev) / dt = 0          (backward Euler)
    f_static(x) + 2 (q(x) - q_prev)/dt - i_prev = 0  (trapezoidal)

with the charge companion folded into the Newton iteration.

Timestep rejection: when the Newton solve of a step fails to converge
(sharp edges can defeat even the rescue ladder), the step is *rejected*
— retried at half the size, repeatedly, down to ``h / 2**MAX_HALVINGS``
— instead of aborting the whole waveform.  Output is still sampled on
the original grid, so a run that needs no rejections is bit-identical
to one computed before this mechanism existed, and rescued runs keep
the same result shape.  Rejections are counted in the trace
(``spice.transient.rejected_steps``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConvergenceError, SimulationError
from repro.observe import get_tracer
from repro.spice.dcop import solve_dc
from repro.spice.elements.vsource import VoltageSource
from repro.spice.mna import MnaAssembler
from repro.spice.netlist import Circuit
from repro.spice.newton import newton_solve
from repro.spice.waveform import Waveform

#: Width of the refined window that follows every breakpoint [s].
EDGE_WINDOW = 1.5e-10

#: Refinement factor of the step inside edge windows.
EDGE_REFINE = 20

#: Maximum times one grid step may be halved before giving up.
MAX_HALVINGS = 7


@dataclass(frozen=True)
class TransientResult:
    """Sampled solution of a transient run."""

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray]

    def waveform(self, node: str) -> Waveform:
        """Voltage waveform of a node."""
        if node == "0":
            return Waveform(self.times, np.zeros_like(self.times), "0")
        if node not in self.node_voltages:
            raise SimulationError(f"no node {node!r} in transient result")
        return Waveform(self.times, self.node_voltages[node], node)

    def current(self, source_name: str) -> Waveform:
        """Branch-current waveform of a voltage source."""
        if source_name not in self.source_currents:
            raise SimulationError(f"no source {source_name!r} in result")
        return Waveform(self.times, self.source_currents[source_name],
                        source_name)


def build_time_grid(t_stop: float, dt: float,
                    breakpoints: List[float]) -> np.ndarray:
    """Non-uniform grid: coarse ``dt`` plus refined edge windows."""
    if t_stop <= 0 or dt <= 0:
        raise SimulationError("t_stop and dt must be positive")
    points = set(np.arange(0.0, t_stop + dt / 2, dt).tolist())
    fine = dt / EDGE_REFINE
    for bp in breakpoints:
        if bp >= t_stop:
            continue
        window_end = min(bp + EDGE_WINDOW, t_stop)
        points.update(np.arange(bp, window_end, fine).tolist())
        points.add(bp)
    points.add(t_stop)
    points.add(0.0)
    grid = np.array(sorted(p for p in points if 0.0 <= p <= t_stop))
    # Drop near-duplicate points that would produce tiny steps.  Drop
    # the *earlier* point of each too-close pair so named times —
    # breakpoints and above all t_stop — always survive; dropping the
    # latter could silently end the grid just short of t_stop when a
    # refined window point lands within fine/1000 of it.
    keep = np.ones(grid.size, dtype=bool)
    small = np.diff(grid) <= fine * 1e-3
    keep[:-1][small] = False
    # t = 0 anchors the DC operating point: keep it and sacrifice a
    # near-duplicate successor instead.
    if grid.size > 1:
        keep[0] = True
        if small[0]:
            keep[1] = False
    return grid[keep]


def transient(circuit: Circuit, t_stop: float, dt: float,
              method: str = "trap",
              record_nodes: Optional[List[str]] = None) -> TransientResult:
    """Run a transient analysis from the DC operating point at t = 0.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    t_stop:
        End time [s].
    dt:
        Base (coarse) step [s]; edges are refined automatically.
    method:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    record_nodes:
        Subset of nodes to record (default: all).
    """
    if method not in ("be", "trap"):
        raise SimulationError(f"unknown integration method {method!r}")
    with get_tracer().span("spice.transient", method=method,
                           t_stop=t_stop, dt=dt) as tspan:
        result = _transient_traced(circuit, t_stop, dt, method,
                                   record_nodes, tspan)
    return result


def _transient_traced(circuit: Circuit, t_stop: float, dt: float,
                      method: str, record_nodes: Optional[List[str]],
                      tspan) -> TransientResult:
    assembler = MnaAssembler(circuit)

    breakpoints: List[float] = []
    sources = [e for e in circuit if isinstance(e, VoltageSource)]
    for source in sources:
        breakpoints.extend(source.breakpoints(t_stop))
    grid = build_time_grid(t_stop, dt, breakpoints)

    op = solve_dc(circuit, time=0.0)
    x = op.x
    q_prev, _ = assembler.assemble_dynamic(x)
    i_prev = np.zeros_like(q_prev)

    nodes = record_nodes or circuit.nodes
    n_steps = len(grid)
    volts = {node: np.empty(n_steps) for node in nodes}
    currents = {s.name: np.empty(n_steps) for s in sources}

    def record(k: int, xk: np.ndarray) -> None:
        voltages = assembler.voltages_from(xk)
        for node in nodes:
            volts[node][k] = voltages.get(node, 0.0)
        for source in sources:
            currents[source.name][k] = assembler.branch_current(
                xk, source.name)

    def advance(x_from: np.ndarray, q_from: np.ndarray,
                i_from: np.ndarray, t_to: float):
        """One nonlinear solve advancing the state to ``t_to``."""
        t_from = float(t_cur[0])
        h = t_to - t_from
        coeff = 1.0 / h if method == "be" else 2.0 / h

        def charge_companion(x_est: np.ndarray, stamper) -> None:
            q, cap = assembler.assemble_dynamic(x_est)
            stamper.matrix += coeff * cap
            i_hist = coeff * q_from + (i_from if method == "trap" else 0.0)
            stamper.rhs += coeff * (cap @ x_est) - (coeff * q - i_hist)

        x_new = newton_solve(assembler, x_from, t_to,
                             extra_system=charge_companion,
                             site="transient.newton")
        q_new, _ = assembler.assemble_dynamic(x_new)
        i_new = (coeff * (q_new - q_from) - i_from if method == "trap"
                 else i_from)
        return x_new, q_new, i_new

    tracer = get_tracer()
    rejected_steps = 0
    record(0, x)
    t_cur = [0.0]
    for k in range(1, n_steps):
        t_k = grid[k]
        t_cur[0] = grid[k - 1]
        h_full = t_k - grid[k - 1]
        h_min = h_full / (2 ** MAX_HALVINGS)
        h = h_full
        # Sub-stepping engages only on rejection: the fault-free path
        # is a single advance to exactly grid[k] — bit-identical to the
        # rejection-free integrator.
        while True:
            t_target = t_k if t_cur[0] + h >= t_k - h_min * 1e-6 else \
                t_cur[0] + h
            try:
                x_new, q_new, i_new = advance(x, q_prev, i_prev, t_target)
            except ConvergenceError:
                if h / 2.0 < h_min:
                    raise
                h = h / 2.0
                rejected_steps += 1
                if tracer.enabled:
                    tracer.counter("spice.transient.rejected_steps").inc()
                    tracer.event("spice.transient.step_rejected",
                                 t=t_target, h=h)
                continue
            x, q_prev, i_prev = x_new, q_new, i_new
            t_cur[0] = t_target
            if t_target >= t_k:
                break
        record(k, x)

    if tracer.enabled:
        tspan.set(steps=n_steps, unknowns=assembler.n_unknowns,
                  rejected_steps=rejected_steps, kernel=assembler.kernel)
        tracer.counter("spice.transient.runs").inc()
        tracer.counter("spice.transient.timesteps").inc(n_steps)
        tracer.histogram("spice.transient.steps_per_run",
                         edges=(64, 128, 256, 512, 1024, 2048, 4096,
                                8192)).observe(n_steps)

    return TransientResult(
        times=grid,
        node_voltages=volts,
        source_currents=currents,
    )
