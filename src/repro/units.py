"""Unit helpers.

Internally everything is SI.  The paper quotes dimensions in nanometres and
doping in cm^-3; these helpers keep conversions explicit and greppable.
"""

from __future__ import annotations

#: One nanometre [m].
NM = 1e-9

#: One micrometre [m].
UM = 1e-6

#: One femtofarad [F].
FF = 1e-15

#: One picosecond [s].
PS = 1e-12

#: One nanosecond [s].
NS = 1e-9


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * NM


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * UM


def to_nm(value: float) -> float:
    """Convert metres to nanometres."""
    return value / NM


def per_cm3(value: float) -> float:
    """Convert a cm^-3 density to m^-3."""
    return value * 1e6


def to_per_cm3(value: float) -> float:
    """Convert a m^-3 density to cm^-3."""
    return value / 1e6


def fF(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * FF


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PS


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NS


_SI_PREFIXES = (
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
)


def eng_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an engineering SI prefix, e.g. 2.5e-11 -> '25p'."""
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    chosen_scale, chosen_prefix = _SI_PREFIXES[-1]
    for scale, prefix in _SI_PREFIXES:
        if magnitude < scale * 1000.0:
            chosen_scale, chosen_prefix = scale, prefix
            break
    scaled = value / chosen_scale
    return f"{scaled:.{digits}g}{chosen_prefix}{unit}"
