"""Nonlinear 1-D Poisson solver through the FDSOI gate stack.

Solves, vertically through oxide / silicon film / BOX,

    d/dx ( eps(x) dpsi/dx ) = -q (p - n + N_net)

with Dirichlet boundaries: ``psi = V_G - V_FB`` at the gate/oxide interface
and ``psi = V_back`` at the bottom of the BOX (grounded carrier wafer).
Carriers follow Boltzmann statistics with quasi-Fermi splitting: the
electron quasi-Fermi potential equals the local channel potential ``V``
(0 at source, V_DS at drain) while holes stay at the source reference.

The solver uses a damped Newton iteration on the finite-volume
discretisation; the Jacobian is tridiagonal and solved with the banded
LAPACK routine.  Outputs are the potential profile, the sheet inversion
charge (integral of the minority carrier density over the film) and the
gate charge per unit area (displacement field at the gate boundary), from
which C-V curves are differentiated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import solve_banded

from repro.constants import Q, thermal_voltage
from repro.errors import ConvergenceError
from repro.materials import SILICON, SILICON_DIOXIDE
from repro.observe import get_tracer
from repro.tcad.mesh import Mesh1D, Region
from repro.tcad.statistics import boltzmann_n, boltzmann_p, fermi_correction


@dataclass(frozen=True)
class StackSpec:
    """Vertical stack description for the 1-D solve.

    Attributes
    ----------
    t_ox:
        Front gate oxide thickness [m] (possibly reduced to model the MIV
        side-gate coupling boost; see :mod:`repro.tcad.device`).
    t_si:
        Silicon film thickness [m].
    t_box:
        Buried oxide thickness [m].
    flatband:
        Front-gate flat-band voltage V_FB [V] (workfunction difference).
    net_doping:
        Signed net doping N_D - N_A in the film [m^-3] (0 for the channel).
    temperature:
        Lattice temperature [K].
    n_cells_ox, n_cells_si, n_cells_box:
        Mesh resolution per region.
    """

    t_ox: float
    t_si: float
    t_box: float
    flatband: float = 0.0
    net_doping: float = 0.0
    temperature: float = 298.15
    n_cells_ox: int = 6
    n_cells_si: int = 28
    n_cells_box: int = 30


@dataclass(frozen=True)
class PoissonSolution:
    """Result of one 1-D Poisson solve.

    Attributes
    ----------
    psi:
        Electrostatic potential at every node [V].
    x:
        Node positions [m] (0 at the gate/oxide interface).
    q_inv:
        Sheet inversion (minority) charge magnitude [C/m^2].
    q_gate:
        Gate charge per area [C/m^2] (displacement field at the gate).
    surface_potential:
        Potential at the oxide/film interface [V].
    iterations:
        Newton iterations used.
    """

    psi: np.ndarray
    x: np.ndarray
    q_inv: float
    q_gate: float
    surface_potential: float
    iterations: int


class Poisson1D:
    """Newton solver for the vertical FDSOI electrostatics.

    Parameters
    ----------
    stack:
        Stack geometry and conditions.
    use_fermi_correction:
        Apply the first-order degeneracy correction to carrier densities.
    """

    #: Maximum Newton iterations before declaring failure.
    MAX_ITERATIONS = 80
    #: Convergence threshold on the potential update [V].
    TOLERANCE = 1e-9
    #: Maximum per-iteration potential update (damping) [V].
    MAX_UPDATE = 0.5

    def __init__(self, stack: StackSpec, use_fermi_correction: bool = True):
        self.stack = stack
        self.use_fermi_correction = use_fermi_correction
        self.vt = thermal_voltage(stack.temperature)
        self.ni = SILICON.intrinsic_density(stack.temperature)
        self.mesh = Mesh1D([
            Region("oxide", stack.t_ox, stack.n_cells_ox,
                   SILICON_DIOXIDE.permittivity),
            Region("film", stack.t_si, stack.n_cells_si,
                   SILICON.permittivity, has_charge=True),
            Region("box", stack.t_box, stack.n_cells_box,
                   SILICON_DIOXIDE.permittivity),
        ])
        self._film_mask = self.mesh.node_charged
        self._volumes = self.mesh.node_volumes
        self._surface_index = int(np.argmax(self.mesh.region_node_mask("film")))

    def solve(self, v_gate: float, v_channel: float = 0.0,
              v_back: float = 0.0,
              psi0: Optional[np.ndarray] = None) -> PoissonSolution:
        """Solve for the potential profile.

        Parameters
        ----------
        v_gate:
            Front gate voltage [V].
        v_channel:
            Local channel quasi-Fermi potential (0 at source, V_DS at the
            drain end) [V].
        v_back:
            Back-plane (carrier wafer) potential [V].
        psi0:
            Optional initial guess (e.g. the solution at a nearby bias).
        """
        mesh = self.mesh
        n_nodes = mesh.n_nodes
        psi_top = v_gate - self.stack.flatband

        if psi0 is not None and psi0.shape == (n_nodes,):
            psi = psi0.copy()
        else:
            psi = np.linspace(psi_top, v_back, n_nodes)
        psi[0] = psi_top
        psi[-1] = v_back

        cond = mesh.edge_eps / mesh.h  # edge conductances [F/m^2]
        residual = float("inf")
        for iteration in range(1, self.MAX_ITERATIONS + 1):
            n, p, dn, dp = self._carriers(psi, v_channel)
            rho = Q * (p - n + self.stack.net_doping) * self._film_mask
            drho = Q * (dp - dn) * self._film_mask

            # Residual F_i and tridiagonal Jacobian for interior nodes.
            flux = cond * (psi[1:] - psi[:-1])
            f = np.zeros(n_nodes)
            f[1:-1] = flux[1:] - flux[:-1] + rho[1:-1] * self._volumes[1:-1]

            diag = np.zeros(n_nodes)
            diag[1:-1] = -(cond[1:] + cond[:-1]) + drho[1:-1] * self._volumes[1:-1]

            # Dirichlet rows.
            diag[0] = diag[-1] = 1.0
            f[0] = f[-1] = 0.0
            # Banded storage: ab[0, i+1] = A[i, i+1], ab[2, i] = A[i+1, i].
            ab = np.zeros((3, n_nodes))
            ab[0, 2:] = cond[1:]     # row i couples right via cond[i]
            ab[1, :] = diag
            ab[2, :-2] = cond[:-1]   # row i couples left via cond[i-1]
            ab[0, 1] = 0.0           # top Dirichlet row has no coupling
            ab[2, -2] = 0.0          # bottom Dirichlet row has no coupling

            delta = solve_banded((1, 1), ab, -f)
            step = np.clip(delta, -self.MAX_UPDATE, self.MAX_UPDATE)
            psi += step
            residual = float(np.max(np.abs(delta)))
            if residual < self.TOLERANCE:
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.counter("tcad.poisson1d.solves").inc()
                    tracer.counter("tcad.poisson1d.iterations").inc(iteration)
                    tracer.histogram(
                        "tcad.poisson1d.iterations_per_solve").observe(
                        iteration)
                    tracer.gauge("tcad.poisson1d.last_residual").set(residual)
                return self._package(psi, v_channel, cond, iteration)

        raise ConvergenceError(
            f"Poisson1D failed at v_gate={v_gate:.3f} V, "
            f"v_channel={v_channel:.3f} V",
            iterations=self.MAX_ITERATIONS, residual=residual)

    def _carriers(self, psi: np.ndarray, v_channel: float):
        """Densities and their derivatives w.r.t. psi."""
        n = boltzmann_n(psi, v_channel, self.ni, self.vt)
        p = boltzmann_p(psi, 0.0, self.ni, self.vt)
        if self.use_fermi_correction:
            n = n * fermi_correction(n, SILICON.nc)
            p = p * fermi_correction(p, SILICON.nv)
        dn = n / self.vt
        dp = -p / self.vt
        return n, p, dn, dp

    def _package(self, psi: np.ndarray, v_channel: float,
                 cond: np.ndarray, iterations: int) -> PoissonSolution:
        n, p, _, _ = self._carriers(psi, v_channel)
        film = self._film_mask
        q_inv = float(Q * np.sum(n * self._volumes * film))
        # cond[0] * (psi0 - psi1) is eps_ox * E_ox = displacement [C/m^2].
        q_gate = float(cond[0] * (psi[0] - psi[1]))
        return PoissonSolution(
            psi=psi.copy(),
            x=self.mesh.x.copy(),
            q_inv=q_inv,
            q_gate=q_gate,
            surface_potential=float(psi[self._surface_index]),
            iterations=iterations,
        )

    def inversion_charge(self, v_gate: float, v_channel: float = 0.0,
                         psi0: Optional[np.ndarray] = None) -> float:
        """Sheet inversion charge [C/m^2] at a bias point."""
        return self.solve(v_gate, v_channel, psi0=psi0).q_inv

    def gate_capacitance(self, v_gate: float, delta: float = 2e-3) -> float:
        """Small-signal gate capacitance per area [F/m^2] by central
        differencing of the gate charge."""
        hi = self.solve(v_gate + delta)
        lo = self.solve(v_gate - delta)
        return (hi.q_gate - lo.q_gate) / (2.0 * delta)

    def oxide_capacitance(self) -> float:
        """Front-oxide parallel-plate capacitance per area [F/m^2]."""
        return SILICON_DIOXIDE.permittivity / self.stack.t_ox
