"""Sweep drivers producing the characteristics the extraction flow needs.

Reproduces the paper's TCAD measurement plan (Section III-B):

* Low-drain Id-Vg at V_DS = 0.05 V,
* High-drain Id-Vg at V_DS = 1.0 V,
* Id-Vd families for V_GS = 0.4 .. 1.0 V,
* C-V (gate capacitance vs gate voltage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.tcad.characteristics import CVCurve, IdVdFamily, IVCurve
from repro.tcad.device import DeviceDesign


@dataclass(frozen=True)
class SweepSpec:
    """Bias plan for characterising one device.

    Defaults mirror the paper: V_DS,lin = 0.05 V, V_DS,sat = 1.0 V,
    gate biases 0.4-1.0 V for the output family, 1 V supply.
    """

    vg_start: float = 0.0
    vg_stop: float = 1.0
    vg_points: int = 21
    vds_lin: float = 0.05
    vds_sat: float = 1.0
    vd_points: int = 17
    idvd_gate_biases: tuple = (0.4, 0.6, 0.8, 1.0)
    cv_points: int = 21

    def __post_init__(self) -> None:
        if self.vg_stop <= self.vg_start:
            raise SimulationError("vg_stop must exceed vg_start")
        if min(self.vg_points, self.vd_points, self.cv_points) < 3:
            raise SimulationError("sweeps need at least 3 points")
        if self.vds_lin <= 0 or self.vds_sat <= 0:
            raise SimulationError("drain biases must be positive")

    @property
    def vg_axis(self) -> np.ndarray:
        """Gate-voltage axis [V]."""
        return np.linspace(self.vg_start, self.vg_stop, self.vg_points)

    @property
    def vd_axis(self) -> np.ndarray:
        """Drain-voltage axis [V].

        Starts at the linear-region bias (0.05 V, the paper's V_DS,lin)
        rather than 0: below that the currents are noise-level in a real
        extraction and would dominate a relative-error metric.
        """
        return np.linspace(self.vds_lin, self.vds_sat, self.vd_points)


class TcadSimulator:
    """Runs the standard sweep plan on a :class:`DeviceDesign`.

    All outputs are magnitude-space (|I| vs |V|); the device handles
    polarity internally.
    """

    def __init__(self, device: DeviceDesign, spec: Optional[SweepSpec] = None):
        self.device = device
        self.spec = spec or SweepSpec()

    def id_vg(self, vds: float) -> IVCurve:
        """Transfer curve |I_D|(|V_GS|) at fixed |V_DS|."""
        if vds <= 0:
            raise SimulationError(f"vds must be positive, got {vds}")
        vg = self.spec.vg_axis
        currents = np.array(
            [self.device.ids_magnitude(float(v), vds) for v in vg])
        return IVCurve(vg, currents, vds, "idvg",
                       f"{self.device.label}:idvg@{vds:g}V")

    def id_vg_linear(self) -> IVCurve:
        """Low-drain transfer curve (V_DS = 0.05 V in the paper)."""
        return self.id_vg(self.spec.vds_lin)

    def id_vg_saturation(self) -> IVCurve:
        """High-drain transfer curve (V_DS = 1.0 V in the paper)."""
        return self.id_vg(self.spec.vds_sat)

    def id_vd(self) -> IdVdFamily:
        """Output family over the paper's V_GS = 0.4-1.0 V biases."""
        vd = self.spec.vd_axis
        curves: List[IVCurve] = []
        for vgs in self.spec.idvd_gate_biases:
            currents = np.array(
                [self.device.ids_magnitude(float(vgs), float(v)) for v in vd])
            curves.append(IVCurve(vd, currents, float(vgs), "idvd",
                                  f"{self.device.label}:idvd@vg={vgs:g}V"))
        return IdVdFamily(curves, f"{self.device.label}:idvd")

    def cv(self) -> CVCurve:
        """Gate C-V at V_DS = 0 over the gate axis."""
        vg = np.linspace(self.spec.vg_start, self.spec.vg_stop,
                         self.spec.cv_points)
        caps = np.array(
            [self.device.gate_capacitance(float(v)) for v in vg])
        return CVCurve(vg, caps, f"{self.device.label}:cv")
