"""Carrier statistics.

The paper's TCAD deck uses Fermi statistics; for the undoped thin film at
the inversion densities of interest, Boltzmann statistics with a smooth
Fermi-Dirac correction factor is an excellent and numerically benign
approximation.  Arguments are clipped to avoid overflow, which also acts
as a crude degeneracy limit.
"""

from __future__ import annotations

import numpy as np

#: Clip for exponential arguments (exp(60) ~ 1e26 keeps densities finite).
EXP_CLIP = 60.0


def _safe_exp(arg: np.ndarray) -> np.ndarray:
    """Exponential with argument clipping for numerical robustness."""
    return np.exp(np.clip(arg, -EXP_CLIP, EXP_CLIP))


def boltzmann_n(psi: np.ndarray, phi_n: float, ni: float, vt: float) -> np.ndarray:
    """Electron density [m^-3] at potential ``psi`` with electron
    quasi-Fermi potential ``phi_n`` (both in volts)."""
    return ni * _safe_exp((np.asarray(psi) - phi_n) / vt)


def boltzmann_p(psi: np.ndarray, phi_p: float, ni: float, vt: float) -> np.ndarray:
    """Hole density [m^-3] at potential ``psi`` with hole quasi-Fermi
    potential ``phi_p``."""
    return ni * _safe_exp((phi_p - np.asarray(psi)) / vt)


def fermi_correction(n: np.ndarray, nc: float) -> np.ndarray:
    """First-order Fermi-Dirac degeneracy correction factor.

    Returns a multiplicative factor <= 1 applied to Boltzmann densities,
    using the Joyce-Dixon style first term: n_FD ~ n_B / (1 + n_B/(8 Nc)).
    Negligible below ~0.1 Nc, which keeps the non-degenerate limit exact.
    """
    n = np.asarray(n, dtype=float)
    return 1.0 / (1.0 + n / (8.0 * nc))


def built_in_potential(n_doping: float, ni: float, vt: float) -> float:
    """Built-in potential [V] of an n+/intrinsic junction at doping
    ``n_doping`` [m^-3] — used for the S/D barrier and short-channel
    charge-sharing estimates."""
    if n_doping <= 0 or ni <= 0:
        raise ValueError("densities must be positive")
    return vt * float(np.log(n_doping / ni))
