"""Carrier velocity saturation and vertical-field mobility degradation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.materials import SILICON


@dataclass(frozen=True)
class MobilityModel:
    """Effective mobility with universal vertical-field degradation.

    mu_eff = mu_low / (1 + (E_eff / e_crit)^exponent)

    where E_eff ~ Q_inv / (2 eps_si) for an undoped film.

    Attributes
    ----------
    mu_low:
        Low-field mobility [m^2/Vs] (thin-film degraded value, not bulk).
    e_crit:
        Critical vertical field [V/m].
    exponent:
        Universal-curve exponent (~1.7 electrons, ~1.0 holes in bulk; the
        thin-film values used here are softer).
    v_sat:
        Saturation velocity [m/s].
    """

    mu_low: float
    e_crit: float = 9.0e7
    exponent: float = 1.3
    v_sat: float = 1.0e5

    def __post_init__(self) -> None:
        if self.mu_low <= 0 or self.e_crit <= 0 or self.v_sat <= 0:
            raise ValueError("mobility parameters must be positive")

    def effective_field(self, q_inv: float) -> float:
        """Effective vertical field [V/m] from the sheet charge [C/m^2]."""
        return max(q_inv, 0.0) / (2.0 * SILICON.permittivity)

    def effective_mobility(self, q_inv: float) -> float:
        """Effective channel mobility [m^2/Vs] at sheet charge ``q_inv``."""
        e_eff = self.effective_field(q_inv)
        return self.mu_low / (1.0 + (e_eff / self.e_crit) ** self.exponent)

    def saturation_field(self, q_inv: float) -> float:
        """Lateral critical field E_sat = 2 v_sat / mu_eff [V/m]."""
        return 2.0 * self.v_sat / self.effective_mobility(q_inv)


#: Default electron mobility model for the 7 nm film (values reflect the
#: strong thin-film phonon/roughness degradation relative to bulk Si).
ELECTRON_MOBILITY = MobilityModel(mu_low=0.060, e_crit=9.0e7,
                                  exponent=1.3, v_sat=1.0e5)

#: Default hole mobility model for the 7 nm film.
HOLE_MOBILITY = MobilityModel(mu_low=0.028, e_crit=7.0e7,
                              exponent=1.0, v_sat=8.0e4)


def narrow_width_factor(channel_width: float, edge_roughness: float = 3.0e-9,
                        edges_per_channel: int = 2) -> float:
    """Mobility degradation factor (<= 1) from channel-edge scattering.

    The etched sidewalls of narrow channels scatter carriers within a
    distance ``edge_roughness`` of each edge; the usable high-mobility
    fraction of the width shrinks accordingly.  The degradation is
    quadratic in the edge fraction, which makes very narrow (48 nm,
    4-channel) fingers markedly worse than wide (192 nm) ones — the paper
    attributes the 4-channel device's weaker drive to exactly such
    "differences in the transistor characteristics".
    """
    if channel_width <= 0:
        raise ValueError("channel width must be positive")
    fraction = min(edges_per_channel * edge_roughness / channel_width, 0.9)
    return (1.0 - fraction) * (1.0 - 0.5 * fraction)
