"""TCAD-lite: a numerical FDSOI device simulator.

This package replaces the paper's Sentaurus TCAD flow.  It solves the
nonlinear 1-D Poisson equation vertically through the gate / oxide / film /
BOX stack (Newton iteration, Boltzmann carriers), integrates drain current
with the Pao-Sah / charge-sheet formulation (with velocity saturation and
characteristic-length short-channel corrections), models SRH leakage and
produces the Id-Vg / Id-Vd / C-V characteristics the extraction flow needs.

A 2-D finite-difference Poisson solver is included for electrostatic
potential maps around the MIV (used by examples and validation tests).
"""

from repro.tcad.mesh import Mesh1D, Region
from repro.tcad.statistics import boltzmann_n, boltzmann_p
from repro.tcad.poisson1d import Poisson1D, PoissonSolution, StackSpec
from repro.tcad.charge_sheet import ChargeSheetModel
from repro.tcad.device import DeviceDesign, Polarity, design_for_variant
from repro.tcad.simulator import TcadSimulator, SweepSpec
from repro.tcad.characteristics import CVCurve, IVCurve, IdVdFamily

__all__ = [
    "Mesh1D",
    "Region",
    "boltzmann_n",
    "boltzmann_p",
    "Poisson1D",
    "PoissonSolution",
    "StackSpec",
    "ChargeSheetModel",
    "DeviceDesign",
    "Polarity",
    "design_for_variant",
    "TcadSimulator",
    "SweepSpec",
    "IVCurve",
    "IdVdFamily",
    "CVCurve",
]
