"""Pao-Sah / charge-sheet drain-current model on top of the 1-D Poisson.

The gradual-channel Pao-Sah reduction gives

    I_DS = (W / L) * mu_eff * integral_0^{V_DS} Q_inv(V_G, V) dV

where ``Q_inv(V_G, V)`` is the sheet inversion charge from the vertical
Poisson solve with the channel quasi-Fermi potential at ``V``.  Because
``Q_inv`` decays as ``exp(-V/V_t)`` in weak inversion, the integral
captures both drift and diffusion, and subthreshold saturation emerges
without special casing.  Velocity saturation is applied through a smooth
``V_DSeff`` clamp and a triode degradation factor, and channel-length
modulation as a linear post-factor — the same structure BSIM-class models
use, which keeps the later compact-model fit honest but not trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.tcad.poisson1d import Poisson1D
from repro.tcad.short_channel import ShortChannelModel
from repro.tcad.srh import SrhParameters, generation_leakage
from repro.tcad.velocity import MobilityModel


@dataclass
class ChargeSheetModel:
    """Drain current / gate charge evaluator for one device geometry.

    Attributes
    ----------
    poisson:
        Vertical electrostatics solver (already includes any MIV gate-
        coupling boost through its effective oxide thickness).
    mobility:
        Mobility model (already includes narrow-width degradation).
    short_channel:
        Characteristic-length corrections.
    width:
        Total electrical width [m].
    l_gate:
        Drawn gate length [m].
    l_eff_factor:
        Effective-length multiplier (> 1 for the 4-channel ring gate).
    clm_coefficient:
        Channel-length-modulation slope [1/V].
    quadrature_points:
        Gauss-Legendre points for the channel integral.
    """

    poisson: Poisson1D
    mobility: MobilityModel
    short_channel: ShortChannelModel
    width: float
    l_gate: float
    l_eff_factor: float = 1.0
    clm_coefficient: float = 0.06
    quadrature_points: int = 12
    srh: SrhParameters = SrhParameters()

    def __post_init__(self) -> None:
        if self.width <= 0 or self.l_gate <= 0:
            raise SimulationError("device dimensions must be positive")
        if self.l_eff_factor < 1.0:
            raise SimulationError("l_eff_factor must be >= 1")
        nodes, weights = np.polynomial.legendre.leggauss(self.quadrature_points)
        self._gl_nodes = nodes
        self._gl_weights = weights
        self._vt = self.poisson.vt

    @property
    def l_eff(self) -> float:
        """Effective channel length [m]."""
        return self.l_gate * self.l_eff_factor

    def _effective_gate_voltage(self, vgs: float, vds: float) -> float:
        """Apply DIBL and threshold roll-off as a gate-voltage shift."""
        sigma = self.short_channel.dibl(self.l_eff)
        rolloff = self.short_channel.vth_rolloff(self.l_eff)
        return vgs + sigma * vds + rolloff

    def _vdsat(self, vg_eff: float) -> float:
        """Smooth saturation voltage from velocity-saturation theory."""
        q0 = self.poisson.inversion_charge(vg_eff, 0.0)
        cox = self.poisson.oxide_capacitance()
        v_ov = q0 / cox
        esat_l = self.mobility.saturation_field(q0) * self.l_eff
        return 3.0 * self._vt + esat_l * v_ov / (esat_l + v_ov + 1e-12)

    def drain_current(self, vgs: float, vds: float) -> float:
        """Drain current [A] for non-negative ``vds`` (source-referenced).

        Negative ``vds`` is handled by source/drain exchange symmetry.
        """
        if vds < 0:
            return -self.drain_current(vgs - vds, -vds)
        if vds == 0:
            return 0.0

        vg_eff = self._effective_gate_voltage(vgs, vds)
        vdsat = self._vdsat(vg_eff)
        # Smooth clamp of the integration limit (velocity saturation).
        vdseff = vds / (1.0 + (vds / vdsat) ** 4) ** 0.25

        # Gauss-Legendre integral of Q over [0, vdseff], with the mobility
        # evaluated at the source-end charge (standard charge-sheet
        # simplification: one mu_eff per bias point, not per channel slice).
        half = vdseff / 2.0
        v_points = half * (self._gl_nodes + 1.0)
        integral = 0.0
        psi0 = None
        for v, w in zip(v_points, self._gl_weights):
            solution = self.poisson.solve(vg_eff, float(v), psi0=psi0)
            psi0 = solution.psi
            integral += w * solution.q_inv
        integral *= half

        q0 = self.poisson.inversion_charge(vg_eff, 0.0)
        integral *= self.mobility.effective_mobility(q0)
        esat_l = self.mobility.saturation_field(q0) * self.l_eff
        triode_factor = 1.0 / (1.0 + vdseff / esat_l)
        clm = 1.0 + self.clm_coefficient * max(vds - vdseff, 0.0)

        current = (self.width / self.l_eff) * integral * triode_factor * clm
        return current + self._leakage_floor(vds)

    def _leakage_floor(self, vds: float) -> float:
        """SRH generation leakage from the drain-side depleted film [A]."""
        depleted_volume = self.width * self.l_eff * self.poisson.stack.t_si
        floor = generation_leakage(depleted_volume, self.poisson.ni, self.srh)
        # Generation scales with the depletion bias; keep a soft V_DS factor.
        return floor * (vds / (vds + self._vt))

    def gate_charge_per_area(self, vgs: float) -> float:
        """Gate charge density [C/m^2] at V_DS = 0 (for C-V extraction)."""
        return self.poisson.solve(vgs, 0.0).q_gate

    def gate_capacitance_per_area(self, vgs: float,
                                  delta: float = 2e-3) -> float:
        """Small-signal C_GG per area [F/m^2] at V_DS = 0."""
        hi = self.gate_charge_per_area(vgs + delta)
        lo = self.gate_charge_per_area(vgs - delta)
        return (hi - lo) / (2.0 * delta)

    def transconductance(self, vgs: float, vds: float,
                         delta: float = 2e-3) -> float:
        """g_m [S] by central differencing."""
        return (self.drain_current(vgs + delta, vds) -
                self.drain_current(vgs - delta, vds)) / (2.0 * delta)

    def output_conductance(self, vgs: float, vds: float,
                           delta: float = 2e-3) -> float:
        """g_ds [S] by central differencing."""
        return (self.drain_current(vgs, vds + delta) -
                self.drain_current(vgs, max(vds - delta, 0.0))) / (2.0 * delta)

    def subthreshold_swing(self, vds: float = 0.05,
                           vg_low: float = 0.05, vg_high: float = 0.20) -> float:
        """Subthreshold swing [V/decade] between two weak-inversion biases."""
        i_low = self.drain_current(vg_low, vds)
        i_high = self.drain_current(vg_high, vds)
        if i_low <= 0 or i_high <= 0 or i_high <= i_low:
            raise SimulationError("invalid subthreshold window")
        decades = np.log10(i_high / i_low)
        return (vg_high - vg_low) / float(decades)
