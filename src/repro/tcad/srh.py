"""Shockley-Read-Hall recombination / generation.

The paper's TCAD deck enables the SRH model.  In the reproduction it sets
the off-state leakage floor of the Id-Vg characteristics: generation in
the drain-side depleted film contributes a bias-independent minimum
current that the charge-sheet transport model alone would not produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import Q


@dataclass(frozen=True)
class SrhParameters:
    """SRH model parameters.

    Attributes
    ----------
    tau_n, tau_p:
        Carrier lifetimes [s].
    n1, p1:
        Trap-level densities (``ni`` for midgap traps) [m^-3].
    """

    tau_n: float = 1e-7
    tau_p: float = 1e-7
    n1: float = 1.0e16
    p1: float = 1.0e16

    def __post_init__(self) -> None:
        if min(self.tau_n, self.tau_p) <= 0:
            raise ValueError("SRH lifetimes must be positive")
        if min(self.n1, self.p1) <= 0:
            raise ValueError("SRH trap densities must be positive")


def srh_rate(n: np.ndarray, p: np.ndarray, ni: float,
             params: SrhParameters) -> np.ndarray:
    """Net SRH recombination rate U [m^-3 s^-1].

    Positive U means recombination (np > ni^2); negative means generation
    (depleted regions), which is the leakage-relevant regime.
    """
    n = np.asarray(n, dtype=float)
    p = np.asarray(p, dtype=float)
    numerator = n * p - ni * ni
    denominator = (params.tau_p * (n + params.n1) +
                   params.tau_n * (p + params.p1))
    return numerator / denominator


def generation_leakage(volume: float, ni: float,
                       params: SrhParameters) -> float:
    """Worst-case generation current [A] from a fully depleted volume.

    In full depletion n ~ p ~ 0, so U -> -ni^2/(tau_p n1 + tau_n p1)
    = -ni/(tau_n + tau_p) for midgap traps; the leakage current is
    q |U| times the depleted volume.
    """
    if volume < 0:
        raise ValueError(f"volume must be non-negative, got {volume}")
    u_gen = ni / (params.tau_n + params.tau_p)
    return Q * u_gen * volume
