"""Short-channel electrostatics for thin-film FDSOI devices.

Uses the classical characteristic-length (natural length) theory: lateral
potential perturbations from source/drain decay into the channel as
``exp(-x / lambda)`` with

    lambda = sqrt( (eps_si / eps_ox) * t_si * t_ox * (1 + t_si/(4 lambda_f)) )

(we use the standard single-gate SOI form without the film correction for
clarity).  DIBL and threshold roll-off both scale with exp(-L / (2 lambda)).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, sqrt

from repro.materials import SILICON, SILICON_DIOXIDE


@dataclass(frozen=True)
class ShortChannelModel:
    """Characteristic-length based short-channel corrections.

    Attributes
    ----------
    t_si, t_ox:
        Film and front-oxide thickness [m].
    dibl_prefactor:
        Dimensionless prefactor mapping the decay term to DIBL [V/V].
    rolloff_prefactor:
        Prefactor mapping the decay term to threshold roll-off [V].
    swing_prefactor:
        Prefactor for subthreshold-swing degradation (fraction).
    """

    t_si: float
    t_ox: float
    dibl_prefactor: float = 0.45
    rolloff_prefactor: float = 0.25
    swing_prefactor: float = 0.6

    def __post_init__(self) -> None:
        if self.t_si <= 0 or self.t_ox <= 0:
            raise ValueError("film/oxide thickness must be positive")

    @property
    def natural_length(self) -> float:
        """Characteristic decay length lambda [m]."""
        ratio = SILICON.permittivity / SILICON_DIOXIDE.permittivity
        return sqrt(ratio * self.t_si * self.t_ox)

    def decay(self, l_gate: float) -> float:
        """Barrier-lowering decay factor exp(-L / (2 lambda))."""
        if l_gate <= 0:
            raise ValueError(f"gate length must be positive, got {l_gate}")
        return exp(-l_gate / (2.0 * self.natural_length))

    def dibl(self, l_gate: float) -> float:
        """Drain-induced barrier lowering coefficient sigma [V/V]:
        effective gate voltage becomes V_G + sigma * V_DS."""
        return self.dibl_prefactor * self.decay(l_gate)

    def vth_rolloff(self, l_gate: float, built_in: float = 0.55) -> float:
        """Threshold-voltage reduction [V] from charge sharing."""
        return self.rolloff_prefactor * built_in * self.decay(l_gate)

    def swing_degradation(self, l_gate: float) -> float:
        """Multiplicative subthreshold-swing degradation factor (>= 1)."""
        return 1.0 + self.swing_prefactor * self.decay(l_gate)
