"""1-D drift-diffusion solver (Gummel iteration, Scharfetter-Gummel flux).

The charge-sheet engine treats transport semi-analytically; this module
solves the *full* coupled Poisson + electron-continuity system on a 1-D
n-type structure (ohmic contact / doped bar / ohmic contact), the
workhorse validation problem of device simulation:

* equilibrium reproduces the analytic built-in potentials and carries
  zero current;
* the low-bias conductance of an n+ bar matches q mu N A / L;
* an n+/n-/n+ structure shows the series-resistance behaviour assumed
  for the transistor S/D extensions (see ``SD_SHEET_RESISTANCE``).

Electrons only (majority carriers of the n-type structures of interest);
the Scharfetter-Gummel exponential fitting keeps the discrete flux exact
for constant fields, which is what makes the method the industry
standard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy.linalg import solve_banded

from repro.constants import Q, thermal_voltage
from repro.errors import ConvergenceError, MeshError
from repro.kernels import dd1d_kernel
from repro.materials import SILICON
from repro.observe import get_tracer
from repro.resilience.faults import draw_fault
from repro.resilience.rescue import continue_solve


def bernoulli(x: np.ndarray) -> np.ndarray:
    """B(x) = x / (exp(x) - 1), series-expanded near 0 for stability."""
    x = np.asarray(x, dtype=float)
    small = np.abs(x) < 1e-4
    safe = np.where(small, 1.0, x)
    with np.errstate(over="ignore"):
        full = np.where(np.abs(safe) > 500.0,
                        np.where(safe > 0, 0.0, -safe),
                        safe / np.expm1(np.clip(safe, -500.0, 500.0)))
    return np.where(small, 1.0 - x / 2.0 + x * x / 12.0, full)


def _stacked_tridiagonal_solve(lower: np.ndarray, diag: np.ndarray,
                               upper: np.ndarray,
                               rhs: np.ndarray) -> np.ndarray:
    """Solve ``k`` independent tridiagonal systems in one LAPACK call.

    Inputs are ``(k, n)`` blocks: ``diag[s, i]`` is ``A_s[i, i]``,
    ``upper[s, i]`` is ``A_s[i, i+1]`` (``upper[:, -1]`` unused, must
    be 0) and ``lower[s, i]`` is ``A_s[i, i-1]`` (``lower[:, 0]``
    unused, must be 0).  Stacking the systems along the diagonal keeps
    the compound matrix tridiagonal — the cross-block couplings are the
    unused zero entries — so one banded factorisation of size ``k*n``
    does exactly the per-block elimination, with a Python/LAPACK call
    count independent of ``k``.
    """
    k, n = diag.shape
    up = upper.reshape(k * n)
    lo = lower.reshape(k * n)
    ab = np.zeros((3, k * n))
    ab[0, 1:] = up[:-1]
    ab[1, :] = diag.reshape(k * n)
    ab[2, :-1] = lo[1:]
    return solve_banded((1, 1), ab, rhs.reshape(k * n)).reshape(k, n)


@dataclass(frozen=True)
class Bar1D:
    """An n-type 1-D structure with position-dependent doping.

    Attributes
    ----------
    length:
        Bar length [m].
    area:
        Cross-section [m^2].
    doping:
        Callable x -> N_D(x) [m^-3] (donors only).
    n_nodes:
        Mesh nodes.
    mobility:
        Electron mobility [m^2/Vs] (constant; field dependence is not
        the point of this validation solver).
    temperature:
        Kelvin.
    """

    length: float
    area: float
    doping: Callable[[float], float]
    n_nodes: int = 101
    mobility: float = 0.05
    temperature: float = 298.15

    def __post_init__(self) -> None:
        if self.length <= 0 or self.area <= 0:
            raise MeshError("bar geometry must be positive")
        if self.n_nodes < 5:
            raise MeshError("need at least 5 nodes")
        if self.mobility <= 0:
            raise MeshError("mobility must be positive")


@dataclass
class DDSolution:
    """Solution of one bias point."""

    x: np.ndarray
    psi: np.ndarray
    n: np.ndarray
    current: float   # A, positive flowing from the x=L contact to x=0
    gummel_iterations: int


class DriftDiffusion1D:
    """Gummel-iteration DD solver for :class:`Bar1D` structures."""

    MAX_GUMMEL = 200
    MAX_NEWTON = 60
    TOL_PSI = 1e-10

    def __init__(self, bar: Bar1D):
        self.bar = bar
        self.vt = thermal_voltage(bar.temperature)
        self.ni = SILICON.intrinsic_density(bar.temperature)
        self.x = np.linspace(0.0, bar.length, bar.n_nodes)
        self.h = np.diff(self.x)
        self.nd = np.array([max(bar.doping(float(xi)), 0.0)
                            for xi in self.x])
        if np.any(self.nd <= 0):
            raise MeshError("this solver expects an n-type (N_D > 0) bar")
        self.eps = SILICON.permittivity

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _contact_potential(self, nd: float) -> float:
        """Equilibrium potential of an ohmic contact at doping nd."""
        return self.vt * np.log(nd / self.ni)

    def _solve_poisson(self, psi: np.ndarray, phi_n: np.ndarray,
                       psi_left: float, psi_right: float) -> np.ndarray:
        """Newton solve of Poisson with n = ni exp((psi - phi_n)/vt)."""
        n_nodes = psi.size
        psi = psi.copy()
        psi[0], psi[-1] = psi_left, psi_right
        cond = self.eps / self.h
        volumes = np.zeros(n_nodes)
        volumes[1:] += self.h / 2.0
        volumes[:-1] += self.h / 2.0

        for _ in range(self.MAX_NEWTON):
            n = self.ni * np.exp(np.clip((psi - phi_n) / self.vt, -60, 60))
            rho = Q * (self.nd - n)
            drho = -Q * n / self.vt

            f = np.zeros(n_nodes)
            flux = cond * (psi[1:] - psi[:-1])
            f[1:-1] = flux[1:] - flux[:-1] + rho[1:-1] * volumes[1:-1]
            diag = np.zeros(n_nodes)
            diag[1:-1] = -(cond[1:] + cond[:-1]) + drho[1:-1] * volumes[1:-1]
            diag[0] = diag[-1] = 1.0
            f[0] = f[-1] = 0.0

            ab = np.zeros((3, n_nodes))
            ab[0, 2:] = cond[1:]
            ab[1, :] = diag
            ab[2, :-2] = cond[:-1]
            ab[0, 1] = ab[2, -2] = 0.0
            delta = solve_banded((1, 1), ab, -f)
            psi += np.clip(delta, -0.5, 0.5)
            if np.max(np.abs(delta)) < self.TOL_PSI:
                return psi
        raise ConvergenceError("Poisson stage of Gummel did not converge",
                               iterations=self.MAX_NEWTON,
                               residual=float(np.max(np.abs(delta))))

    def _solve_continuity(self, psi: np.ndarray, n_left: float,
                          n_right: float) -> np.ndarray:
        """Linear SG electron-continuity solve for n at fixed psi."""
        n_nodes = psi.size
        d = self.bar.mobility * self.vt
        dpsi = (psi[1:] - psi[:-1]) / self.vt
        # SG flux J_{i+1/2} = (qD/h) [ n_{i+1} B(dpsi) - n_i B(-dpsi) ].
        b_plus = bernoulli(dpsi)
        b_minus = bernoulli(-dpsi)
        w = d / self.h

        ab = np.zeros((3, n_nodes))
        rhs = np.zeros(n_nodes)
        # Interior: flux_{i+1/2} - flux_{i-1/2} = 0 (steady state, no R).
        # Row i couples n_{i-1}, n_i, n_{i+1}.
        upper = w[1:] * b_plus[1:]            # coefficient of n_{i+1}
        lower = w[:-1] * b_minus[:-1]         # coefficient of n_{i-1}
        diag_interior = -(w[1:] * b_minus[1:] + w[:-1] * b_plus[:-1])
        ab[1, 1:-1] = diag_interior
        ab[0, 2:] = upper
        ab[2, :-2] = lower
        ab[1, 0] = ab[1, -1] = 1.0
        rhs[0], rhs[-1] = n_left, n_right
        ab[0, 1] = ab[2, -2] = 0.0
        n = solve_banded((1, 1), ab, rhs)
        return np.maximum(n, 1.0)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def solve(self, bias: float,
              initial: Optional[DDSolution] = None) -> DDSolution:
        """Solve at contact bias ``bias`` (applied to the x=L contact).

        Tries the direct Gummel solve first — the fault-free path is
        arithmetically unchanged.  When that fails to converge (or the
        fault injector forces it to, site ``"dd1d"``), the solve is
        rescued by bias continuation: ramp the contact bias from
        equilibrium (0 V, where Gummel always converges) towards the
        target with :func:`repro.resilience.rescue.continue_solve`,
        warm-starting each point from the last — the same adaptive
        continuation primitive the SPICE Newton rescue ladder uses.
        """
        rule = draw_fault("convergence", "dd1d")
        if rule is not None and rule.fatal:
            raise ConvergenceError(
                rule.message or f"injected non-convergence at bias "
                                f"{bias:g}V (dd1d)",
                iterations=0, residual=float("inf"))
        if rule is None:
            try:
                return self._solve_direct(bias, initial)
            except ConvergenceError:
                pass
        return self._solve_continuation(bias, initial)

    def _solve_continuation(self, bias: float,
                            initial: Optional[DDSolution]) -> DDSolution:
        """Bias-continuation rescue: walk 0 V -> ``bias`` adaptively."""

        def solve_at(b: float,
                     warm: Optional[DDSolution]) -> DDSolution:
            return self._solve_direct(b, warm if warm is not None
                                      else initial)

        outcome = continue_solve(solve_at, target=bias, start=0.0)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("tcad.dd1d.rescues").inc()
            tracer.counter("tcad.dd1d.continuation_steps").inc(
                outcome.steps)
            tracer.event("tcad.dd1d.rescue", bias=bias,
                         steps=outcome.steps, splits=outcome.splits)
        return outcome.solution

    def sweep(self, biases: Sequence[float],
              kernel: Optional[str] = None) -> List[DDSolution]:
        """Solve a bias sweep.

        ``kernel`` selects the implementation (explicit argument >
        ``REPRO_SOLVER_KERNEL`` > default ``"batched"``):

        * ``"batched"`` — one stacked Newton/Gummel iteration over all
          bias points at once (shared tridiagonal solves, per-point
          active-set dropout); bias points the batch cannot converge
          fall back to the legacy per-point solve with its
          continuation rescue, warm-started from the nearest converged
          neighbour.
        * ``"loop"`` — the legacy Python loop, warm-starting each
          point from the previous one; the differential oracle.

        Both kernels land on the same converged system (the Gummel
        fixed point is unique); they differ only in start strategy and
        solver arithmetic, bounded by the ``numeric`` tolerance class
        at finite bias and the solver noise floor (|I| < 1e-15 A) at
        equilibrium (see ``tests/test_solver_differential.py``).
        """
        if dd1d_kernel(kernel) == "loop":
            return self._sweep_loop(biases)
        return self._sweep_batched(biases)

    def _sweep_loop(self, biases: Sequence[float]) -> List[DDSolution]:
        """Legacy sweep: warm-start each point from the last."""
        solutions: List[DDSolution] = []
        previous: Optional[DDSolution] = None
        for bias in biases:
            previous = self.solve(float(bias), initial=previous)
            solutions.append(previous)
        return solutions

    # ------------------------------------------------------------------
    # batched kernel
    # ------------------------------------------------------------------
    def _sweep_batched(self, biases: Sequence[float]) -> List[DDSolution]:
        """Batched Newton/Gummel across all bias points of the sweep.

        Every point runs the same per-node arithmetic as a cold-started
        :meth:`_solve_direct`; the tridiagonal solves of all still-active
        points are stacked into one block-tridiagonal banded system (the
        blocks are decoupled — the stacked factorisation does exactly the
        per-block elimination), so the Python/LAPACK call count per
        Gummel iteration is independent of the number of bias points.
        Converged points drop out of the active batch; points the batch
        cannot converge fall back to :meth:`solve` (and its continuation
        rescue ladder), warm-started from the nearest converged
        neighbour.
        """
        biases = [float(b) for b in biases]
        m = len(biases)
        if m == 0:
            return []
        # Fault draws happen per bias point, in sweep order — the same
        # draw sequence the legacy loop makes — so injected convergence
        # faults target individual points under either kernel.
        rules = [draw_fault("convergence", "dd1d") for _ in biases]
        for bias, rule in zip(biases, rules):
            if rule is not None and rule.fatal:
                raise ConvergenceError(
                    rule.message or f"injected non-convergence at bias "
                                    f"{bias:g}V (dd1d)",
                    iterations=0, residual=float("inf"))
        batched = [i for i in range(m) if rules[i] is None]

        solutions: List[Optional[DDSolution]] = [None] * m
        iterations = np.zeros(m, dtype=int)
        fallbacks: List[int] = [i for i in range(m) if rules[i] is not None]

        if batched:
            b = np.array([biases[i] for i in batched])
            psi, n, iters, failed = self._gummel_batched(b)
            for j, i in enumerate(batched):
                if j in failed:
                    fallbacks.append(i)
                else:
                    solutions[i] = DDSolution(
                        self.x.copy(), psi[j], n[j],
                        self._current(psi[j], n[j]), int(iters[j]))
                    iterations[i] = iters[j]

        for i in sorted(fallbacks):
            warm = self._nearest_converged(solutions, biases, i)
            if rules[i] is not None:
                solutions[i] = self._solve_continuation(biases[i], warm)
            else:
                solutions[i] = self.solve(biases[i], initial=warm)

        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("tcad.dd1d.batch_sweeps").inc()
            tracer.counter("tcad.dd1d.batch_points").inc(m)
            tracer.counter("tcad.dd1d.batch_gummel_iterations").inc(
                int(iterations.max(initial=0)))
            if fallbacks:
                tracer.counter("tcad.dd1d.batch_fallbacks").inc(
                    len(fallbacks))
            tracer.histogram(
                "tcad.dd1d.batch_points_per_sweep").observe(m)
        return solutions  # type: ignore[return-value]

    @staticmethod
    def _nearest_converged(solutions: List[Optional[DDSolution]],
                           biases: List[float],
                           index: int) -> Optional[DDSolution]:
        """Warm-start donor for a fallback point: closest solved bias."""
        best: Optional[DDSolution] = None
        best_distance = float("inf")
        for j, solution in enumerate(solutions):
            if solution is None:
                continue
            distance = abs(biases[j] - biases[index])
            if distance < best_distance:
                best, best_distance = solution, distance
        return best

    def _gummel_batched(self, biases: np.ndarray):
        """Cold-started Gummel on a ``(m, n_nodes)`` state block.

        Returns ``(psi, n, iterations, failed)`` where ``failed`` is the
        set of batch rows that did not converge (Poisson Newton or the
        outer Gummel loop exhausted) — the caller rescues those
        per-point.
        """
        m = biases.size
        n_nodes = self.x.size
        psi_left = self._contact_potential(self.nd[0])
        psi_right = self._contact_potential(self.nd[-1]) + biases
        n_left, n_right = self.nd[0], self.nd[-1]

        # Cold start, identical per point to _solve_direct's cold branch.
        psi = np.linspace(np.full(m, psi_left), psi_right, n_nodes,
                          axis=-1)
        phi_n = np.linspace(np.zeros(m), biases, n_nodes, axis=-1)

        psi_out = np.empty((m, n_nodes))
        n_out = np.empty((m, n_nodes))
        iters_out = np.zeros(m, dtype=int)
        failed: set = set()
        active = np.arange(m)

        for iteration in range(1, self.MAX_GUMMEL + 1):
            psi_new, poisson_ok = self._solve_poisson_batched(
                psi[active], phi_n[active], psi_left, psi_right[active])
            if not np.all(poisson_ok):
                bad = active[~poisson_ok]
                failed.update(int(i) for i in bad)
                active = active[poisson_ok]
                psi_new = psi_new[poisson_ok]
                if active.size == 0:
                    break
            n_new = self._solve_continuity_batched(psi_new, n_left,
                                                   n_right)
            change = np.max(np.abs(psi_new - psi[active]), axis=1)
            psi[active] = psi_new
            phi_n[active] = psi_new - self.vt * np.log(n_new / self.ni)
            # Same rule as the loop kernel: the first pass only
            # establishes psi/phi_n self-consistency.
            done = (change < 1e-9) & (iteration > 1)
            if np.any(done):
                finished = active[done]
                psi_out[finished] = psi_new[done]
                n_out[finished] = n_new[done]
                iters_out[finished] = iteration
                active = active[~done]
            if active.size == 0:
                break
        failed.update(int(i) for i in active)
        return psi_out, n_out, iters_out, failed

    def _solve_poisson_batched(self, psi: np.ndarray, phi_n: np.ndarray,
                               psi_left: float, psi_right: np.ndarray):
        """Batched Newton solve of Poisson on a ``(k, n_nodes)`` block.

        Returns ``(psi, converged_mask)``; rows that exhaust
        ``MAX_NEWTON`` are reported unconverged rather than raising, so
        the rest of the batch keeps going.
        """
        k, n_nodes = psi.shape
        psi = psi.copy()
        psi[:, 0] = psi_left
        psi[:, -1] = psi_right
        cond = self.eps / self.h
        volumes = np.zeros(n_nodes)
        volumes[1:] += self.h / 2.0
        volumes[:-1] += self.h / 2.0

        converged = np.zeros(k, dtype=bool)
        active = np.arange(k)
        for _ in range(self.MAX_NEWTON):
            p = psi[active]
            n = self.ni * np.exp(
                np.clip((p - phi_n[active]) / self.vt, -60, 60))
            rho = Q * (self.nd - n)
            drho = -Q * n / self.vt

            f = np.zeros_like(p)
            flux = cond * (p[:, 1:] - p[:, :-1])
            f[:, 1:-1] = (flux[:, 1:] - flux[:, :-1] +
                          rho[:, 1:-1] * volumes[1:-1])
            diag = np.zeros_like(p)
            diag[:, 1:-1] = (-(cond[1:] + cond[:-1]) +
                             drho[:, 1:-1] * volumes[1:-1])
            diag[:, 0] = diag[:, -1] = 1.0

            upper = np.zeros_like(p)
            upper[:, 1:-1] = cond[1:]
            lower = np.zeros_like(p)
            lower[:, 1:-1] = cond[:-1]
            delta = _stacked_tridiagonal_solve(lower, diag, upper, -f)
            psi[active] += np.clip(delta, -0.5, 0.5)
            done = np.max(np.abs(delta), axis=1) < self.TOL_PSI
            if np.any(done):
                converged[active[done]] = True
                active = active[~done]
            if active.size == 0:
                break
        return psi, converged

    def _solve_continuity_batched(self, psi: np.ndarray, n_left: float,
                                  n_right: float) -> np.ndarray:
        """Batched SG electron-continuity solve at fixed psi block."""
        k, n_nodes = psi.shape
        d = self.bar.mobility * self.vt
        dpsi = (psi[:, 1:] - psi[:, :-1]) / self.vt
        b_plus = bernoulli(dpsi)
        b_minus = bernoulli(-dpsi)
        w = d / self.h

        diag = np.zeros_like(psi)
        diag[:, 1:-1] = -(w[1:] * b_minus[:, 1:] +
                          w[:-1] * b_plus[:, :-1])
        diag[:, 0] = diag[:, -1] = 1.0
        upper = np.zeros_like(psi)
        upper[:, 1:-1] = w[1:] * b_plus[:, 1:]
        lower = np.zeros_like(psi)
        lower[:, 1:-1] = w[:-1] * b_minus[:, :-1]
        rhs = np.zeros_like(psi)
        rhs[:, 0] = n_left
        rhs[:, -1] = n_right
        n = _stacked_tridiagonal_solve(lower, diag, upper, rhs)
        return np.maximum(n, 1.0)

    def _solve_direct(self, bias: float,
                      initial: Optional[DDSolution]) -> DDSolution:
        """One cold/warm-started Gummel solve (no rescue)."""
        psi_left = self._contact_potential(self.nd[0])
        psi_right = self._contact_potential(self.nd[-1]) + bias
        n_left, n_right = self.nd[0], self.nd[-1]

        if initial is not None:
            psi = initial.psi.copy()
            phi_n = psi - self.vt * np.log(
                np.maximum(initial.n, 1.0) / self.ni)
        else:
            psi = np.linspace(psi_left, psi_right, self.x.size)
            # Quasi-Fermi boundary conditions: 0 at x=0, bias at x=L.
            phi_n = np.linspace(0.0, bias, self.x.size)

        n = self.nd.copy()
        for iteration in range(1, self.MAX_GUMMEL + 1):
            psi_new = self._solve_poisson(psi, phi_n, psi_left, psi_right)
            n = self._solve_continuity(psi_new, n_left, n_right)
            phi_n = psi_new - self.vt * np.log(n / self.ni)
            change = float(np.max(np.abs(psi_new - psi)))
            psi = psi_new
            # The first pass only establishes self-consistency between
            # psi and phi_n; never declare convergence on it.
            if change < 1e-9 and iteration > 1:
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.counter("tcad.dd1d.solves").inc()
                    tracer.counter("tcad.dd1d.gummel_iterations").inc(
                        iteration)
                    tracer.histogram(
                        "tcad.dd1d.gummel_iterations_per_solve").observe(
                        iteration)
                return DDSolution(self.x.copy(), psi, n,
                                  self._current(psi, n), iteration)
        raise ConvergenceError("Gummel loop did not converge",
                               iterations=self.MAX_GUMMEL, residual=change)

    def _current(self, psi: np.ndarray, n: np.ndarray) -> float:
        """Terminal current [A] from the SG flux (edge-averaged).

        Sign convention: positive when conventional current flows from
        the biased (x = L) contact towards x = 0, i.e. for positive
        applied bias on an ohmic bar.
        """
        d = self.bar.mobility * self.vt
        dpsi = (psi[1:] - psi[:-1]) / self.vt
        flux = (d / self.h) * (n[1:] * bernoulli(dpsi) -
                               n[:-1] * bernoulli(-dpsi))
        return float(-Q * self.bar.area * np.mean(flux))

    def resistance(self, bias: float = 5e-3) -> float:
        """Small-signal resistance [Ohm] from a low-bias solve."""
        solution = self.solve(bias)
        if solution.current == 0:
            raise ConvergenceError("no current at finite bias")
        return bias / solution.current


def uniform_bar(nd_cm3: float = 1e19, length: float = 48e-9,
                area: float = 192e-9 * 7e-9,
                mobility: float = 0.01) -> Bar1D:
    """The paper's S/D extension as a DD problem: 48 nm long, 192 x 7 nm
    cross-section, 1e19 cm^-3 doping."""
    nd = nd_cm3 * 1e6
    return Bar1D(length=length, area=area, doping=lambda _x: nd,
                 mobility=mobility)
