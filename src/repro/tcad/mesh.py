"""One-dimensional nonuniform meshes for the vertical device stack."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import MeshError


@dataclass(frozen=True)
class Region:
    """A contiguous mesh region with uniform material properties.

    Attributes
    ----------
    name:
        Region label (``"oxide"``, ``"film"``, ``"box"``).
    thickness:
        Region thickness [m].
    n_cells:
        Number of mesh cells inside the region.
    eps:
        Absolute permittivity [F/m].
    has_charge:
        Whether the semiconductor charge model applies in this region.
    """

    name: str
    thickness: float
    n_cells: int
    eps: float
    has_charge: bool = False

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise MeshError(f"region {self.name!r}: thickness must be positive")
        if self.n_cells < 1:
            raise MeshError(f"region {self.name!r}: need at least one cell")
        if self.eps <= 0:
            raise MeshError(f"region {self.name!r}: permittivity must be positive")


class Mesh1D:
    """Node-centred 1-D mesh built from stacked regions.

    Nodes run from the top boundary (gate side, ``x = 0``) downwards.
    Region interfaces always coincide with mesh nodes; permittivity is
    stored per *edge* so interface discontinuities are handled exactly.
    """

    def __init__(self, regions: Sequence[Region]):
        if not regions:
            raise MeshError("mesh needs at least one region")
        self.regions: Tuple[Region, ...] = tuple(regions)

        nodes: List[float] = [0.0]
        edge_eps: List[float] = []
        charge_flags: List[bool] = []
        x = 0.0
        for region in self.regions:
            h = region.thickness / region.n_cells
            for _ in range(region.n_cells):
                x += h
                nodes.append(x)
                edge_eps.append(region.eps)
                charge_flags.append(region.has_charge)
        self.x = np.asarray(nodes)
        #: Permittivity on each edge (between node i and i+1).
        self.edge_eps = np.asarray(edge_eps)
        #: Edge lengths.
        self.h = np.diff(self.x)
        if np.any(self.h <= 0):
            raise MeshError("mesh nodes must be strictly increasing")
        #: True where the *edge* lies in a charged (semiconductor) region.
        self._edge_charged = np.asarray(charge_flags, dtype=bool)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (including both Dirichlet boundaries)."""
        return self.x.size

    @property
    def node_volumes(self) -> np.ndarray:
        """Control-volume length associated with each interior node [m]."""
        vol = np.zeros(self.n_nodes)
        vol[1:] += self.h / 2.0
        vol[:-1] += self.h / 2.0
        return vol

    @property
    def node_charged(self) -> np.ndarray:
        """Boolean per node: does the semiconductor charge model apply?

        A node is charged when *any* adjacent edge is charged; boundary
        nodes of the film therefore carry (half-volume) charge, which keeps
        the integrated inversion charge consistent.
        """
        charged = np.zeros(self.n_nodes, dtype=bool)
        charged[:-1] |= self._edge_charged
        charged[1:] |= self._edge_charged
        return charged

    def region_node_mask(self, name: str) -> np.ndarray:
        """Boolean mask of nodes lying inside (or on the edge of) a region."""
        x0 = 0.0
        for region in self.regions:
            x1 = x0 + region.thickness
            if region.name == name:
                tol = 1e-15
                return (self.x >= x0 - tol) & (self.x <= x1 + tol)
            x0 = x1
        raise MeshError(f"no region named {name!r}")

    def region_span(self, name: str) -> Tuple[float, float]:
        """(x0, x1) of a region."""
        x0 = 0.0
        for region in self.regions:
            x1 = x0 + region.thickness
            if region.name == name:
                return x0, x1
            x0 = x1
        raise MeshError(f"no region named {name!r}")
