"""2-D finite-difference Poisson/Laplace solver for electrostatic maps.

Used for qualitative validation of the MIV-transistor concept: with the
MIV held at gate potential and the surrounding film grounded, the
potential map shows the MIS side-gating action through the 1 nm liner
(Figure 2(a) side view).  The solver handles piecewise-constant
permittivity, Dirichlet electrode patches and fixed volume charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from repro.errors import MeshError, SimulationError
from repro.observe import get_tracer


@dataclass
class Grid2D:
    """Uniform rectangular grid for the 2-D solve."""

    width: float
    height: float
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise MeshError("grid extents must be positive")
        if self.nx < 3 or self.ny < 3:
            raise MeshError("grid needs at least 3x3 nodes")
        self.dx = self.width / (self.nx - 1)
        self.dy = self.height / (self.ny - 1)
        self.x = np.linspace(0.0, self.width, self.nx)
        self.y = np.linspace(0.0, self.height, self.ny)

    def index(self, i: int, j: int) -> int:
        """Flattened index of node (i, j) with i along x."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise MeshError(f"node ({i}, {j}) outside grid")
        return j * self.nx + i

    def nodes_in_box(self, x0: float, y0: float,
                     x1: float, y1: float) -> List[Tuple[int, int]]:
        """All (i, j) whose coordinates fall inside the closed box."""
        out = []
        for j, yv in enumerate(self.y):
            if y0 - 1e-15 <= yv <= y1 + 1e-15:
                for i, xv in enumerate(self.x):
                    if x0 - 1e-15 <= xv <= x1 + 1e-15:
                        out.append((i, j))
        return out


class Poisson2D:
    """Linear 2-D Poisson solver with electrode patches.

    Parameters
    ----------
    grid:
        The computational grid.
    """

    def __init__(self, grid: Grid2D):
        self.grid = grid
        self.eps = np.full((grid.ny, grid.nx), 1.0)
        self.rho = np.zeros((grid.ny, grid.nx))
        self._dirichlet = {}  # flat index -> potential

    def set_permittivity_box(self, x0: float, y0: float, x1: float,
                             y1: float, eps: float) -> None:
        """Assign absolute permittivity inside a box."""
        if eps <= 0:
            raise SimulationError("permittivity must be positive")
        for i, j in self.grid.nodes_in_box(x0, y0, x1, y1):
            self.eps[j, i] = eps

    def set_charge_box(self, x0: float, y0: float, x1: float,
                       y1: float, rho: float) -> None:
        """Assign fixed volume charge density [C/m^3] inside a box."""
        for i, j in self.grid.nodes_in_box(x0, y0, x1, y1):
            self.rho[j, i] = rho

    def add_electrode(self, x0: float, y0: float, x1: float, y1: float,
                      potential: float) -> None:
        """Pin all nodes inside a box to a fixed potential (Dirichlet)."""
        nodes = self.grid.nodes_in_box(x0, y0, x1, y1)
        if not nodes:
            raise SimulationError("electrode box contains no grid nodes")
        for i, j in nodes:
            self._dirichlet[self.grid.index(i, j)] = potential

    def solve(self) -> np.ndarray:
        """Solve and return the potential as an (ny, nx) array.

        Outer boundary nodes without an electrode get homogeneous Neumann
        (mirror) conditions.
        """
        g = self.grid
        n = g.nx * g.ny
        matrix = lil_matrix((n, n))
        rhs = np.zeros(n)

        for j in range(g.ny):
            for i in range(g.nx):
                k = g.index(i, j)
                if k in self._dirichlet:
                    matrix[k, k] = 1.0
                    rhs[k] = self._dirichlet[k]
                    continue
                diag = 0.0
                for (ii, jj, h) in ((i - 1, j, g.dx), (i + 1, j, g.dx),
                                    (i, j - 1, g.dy), (i, j + 1, g.dy)):
                    if not (0 <= ii < g.nx and 0 <= jj < g.ny):
                        continue  # Neumann: missing neighbour drops out
                    eps_edge = 0.5 * (self.eps[j, i] + self.eps[jj, ii])
                    w = eps_edge / (h * h)
                    matrix[k, g.index(ii, jj)] = w
                    diag -= w
                matrix[k, k] = diag
                rhs[k] = -self.rho[j, i]

        if not self._dirichlet:
            raise SimulationError("need at least one electrode to pin the "
                                  "potential (singular system otherwise)")
        with get_tracer().span("tcad.poisson2d.solve", nodes=n,
                               nx=g.nx, ny=g.ny,
                               electrodes=len(self._dirichlet)):
            solution = spsolve(matrix.tocsr(), rhs)
        return solution.reshape((g.ny, g.nx))

    def field_magnitude(self, psi: np.ndarray) -> np.ndarray:
        """|E| [V/m] from a solved potential map."""
        gy, gx = np.gradient(psi, self.grid.dy, self.grid.dx)
        return np.hypot(gx, gy)
