"""Containers for simulated device characteristics.

These are the artefacts exchanged between the TCAD substrate and the
extraction flow: Id-Vg curves at fixed V_DS, Id-Vd families over several
V_GS biases, and C-V curves.  All store magnitude-space data (PMOS curves
are recorded as |I| vs |V|, mirroring how extraction tools normalise
polarities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError


def _as_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise SimulationError(f"{name} must be a 1-D array with >= 2 points")
    return arr


@dataclass(frozen=True)
class IVCurve:
    """One current-voltage curve: I(v) at a fixed second bias.

    Attributes
    ----------
    v:
        Swept voltage axis [V] (V_GS for Id-Vg, V_DS for Id-Vd).
    i:
        Current [A] (same length as ``v``).
    fixed_bias:
        The non-swept bias [V].
    kind:
        ``"idvg"`` or ``"idvd"``.
    label:
        Device / condition label.
    """

    v: np.ndarray
    i: np.ndarray
    fixed_bias: float
    kind: str
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "v", _as_array(self.v, "v"))
        object.__setattr__(self, "i", _as_array(self.i, "i"))
        if self.v.size != self.i.size:
            raise SimulationError("v and i must have equal length")
        if not np.all(np.diff(self.v) > 0):
            raise SimulationError("voltage axis must be strictly increasing")

    def interpolate(self, v_query) -> np.ndarray:
        """Linear interpolation of the current at arbitrary voltages."""
        return np.interp(np.asarray(v_query, dtype=float), self.v, self.i)

    def resampled(self, v_new) -> "IVCurve":
        """Return a copy resampled on a new voltage axis."""
        v_new = _as_array(np.asarray(v_new, dtype=float), "v_new")
        return IVCurve(v_new, self.interpolate(v_new), self.fixed_bias,
                       self.kind, self.label)

    def to_dict(self) -> Dict:
        """JSON-compatible representation."""
        return {
            "v": self.v.tolist(),
            "i": self.i.tolist(),
            "fixed_bias": self.fixed_bias,
            "kind": self.kind,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "IVCurve":
        """Inverse of :meth:`to_dict`."""
        return cls(np.asarray(data["v"]), np.asarray(data["i"]),
                   data["fixed_bias"], data["kind"], data.get("label", ""))


@dataclass(frozen=True)
class IdVdFamily:
    """A family of Id-Vd curves at several gate biases."""

    curves: List[IVCurve] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.curves:
            raise SimulationError("IdVdFamily needs at least one curve")
        for curve in self.curves:
            if curve.kind != "idvd":
                raise SimulationError("family curves must be idvd kind")

    @property
    def gate_biases(self) -> List[float]:
        """The fixed V_GS of each member curve."""
        return [curve.fixed_bias for curve in self.curves]

    def to_dict(self) -> Dict:
        """JSON-compatible representation."""
        return {"curves": [c.to_dict() for c in self.curves],
                "label": self.label}

    @classmethod
    def from_dict(cls, data: Dict) -> "IdVdFamily":
        """Inverse of :meth:`to_dict`."""
        return cls([IVCurve.from_dict(c) for c in data["curves"]],
                   data.get("label", ""))


@dataclass(frozen=True)
class CVCurve:
    """Gate capacitance vs gate voltage at V_DS = 0."""

    v: np.ndarray
    c: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "v", _as_array(self.v, "v"))
        object.__setattr__(self, "c", _as_array(self.c, "c"))
        if self.v.size != self.c.size:
            raise SimulationError("v and c must have equal length")
        if not np.all(np.diff(self.v) > 0):
            raise SimulationError("voltage axis must be strictly increasing")

    def interpolate(self, v_query) -> np.ndarray:
        """Linear interpolation of the capacitance."""
        return np.interp(np.asarray(v_query, dtype=float), self.v, self.c)

    def to_dict(self) -> Dict:
        """JSON-compatible representation."""
        return {"v": self.v.tolist(), "c": self.c.tolist(),
                "label": self.label}

    @classmethod
    def from_dict(cls, data: Dict) -> "CVCurve":
        """Inverse of :meth:`to_dict`."""
        return cls(np.asarray(data["v"]), np.asarray(data["c"]),
                   data.get("label", ""))
