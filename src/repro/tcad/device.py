"""Device designs: traditional FDSOI and the 1/2/4-channel MIV-transistors.

This module is where the *physical* differences between the paper's device
variants enter the simulation — everything downstream (extraction, cell
simulation, PPA) just consumes the resulting characteristics:

* **MIV side-gate coupling** — the liner-isolated MIV gates the channel
  edges it touches, improving electrostatic control of the channel body.
  The coupled area fraction per edge is ``t_si / W_total``; acting on the
  body like a tied back-gate, it lowers the threshold voltage (saturating
  at ``MIV_VTH_MAX``) — a forward shift, not a C_ox increase, because the
  MIV couples through the channel *sidewall*, so the drive improves
  without a proportional gate-charge increase.
* **Narrow-width mobility degradation** — etched sidewall scattering,
  quadratic in the edge fraction (see :func:`repro.tcad.velocity.
  narrow_width_factor`), penalising the 48 nm fingers of the 4-channel
  device the most.
* **Ring-gate length stretch** — in the 4-channel cross layout, carriers
  in the corner channels travel around the MIV, lengthening the effective
  channel.
* **Parasitic capacitances** — gate/SD overlap through the spacers plus
  MIV-liner fringing onto adjacent S/D regions (largest for 4-channel).
* **S/D series resistance** — silicided sheet resistance over half the
  S/D length.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.geometry.miv import MivGeometry, MivRole
from repro.geometry.transistor_layout import (
    ChannelCount,
    DeviceLayout,
    layout_for_variant,
)
from repro.materials import COPPER, SILICON, SILICON_DIOXIDE
from repro.tcad.charge_sheet import ChargeSheetModel
from repro.tcad.poisson1d import Poisson1D, StackSpec
from repro.tcad.short_channel import ShortChannelModel
from repro.tcad.velocity import (
    ELECTRON_MOBILITY,
    HOLE_MOBILITY,
    MobilityModel,
    narrow_width_factor,
)

#: Saturation magnitude of the MIV side-gate threshold reduction [V].
MIV_VTH_MAX = 0.040

#: Coupled-width fraction at which the threshold shift saturates.
MIV_VTH_FRACTION_SCALE = 0.035

#: Fraction of the MIV perimeter that stretches the 4-channel ring gate.
RING_CORNER_FRACTION = 0.5

#: Effective (silicided) S/D sheet resistance [Ohm/sq].
SD_SHEET_RESISTANCE = 500.0

#: Gate-to-S/D overlap/fringe capacitance per metre of width [F/m],
#: from spacer fringing (2 eps_ox / pi * ln(1 + t_gate/t_ox) ~ 66 pF/m).
OVERLAP_CAP_PER_WIDTH = 6.6e-11


class Polarity(enum.Enum):
    """Transistor polarity."""

    NMOS = "n"
    PMOS = "p"

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS (terminal voltage/current convention)."""
        return 1 if self is Polarity.NMOS else -1


@dataclass
class DeviceDesign:
    """A fully specified device ready for simulation.

    Construct through :func:`design_for_variant`.  The drain-current and
    capacitance methods are polarity-aware: PMOS takes negative ``vgs`` /
    ``vds`` and returns negative drain current, as in SPICE conventions.
    """

    variant: ChannelCount
    polarity: Polarity
    process: ProcessParameters
    layout: DeviceLayout
    engine: ChargeSheetModel
    sd_resistance: float
    overlap_cap_source: float
    overlap_cap_drain: float
    miv_fringe_cap: float
    label: str = ""

    @property
    def width(self) -> float:
        """Total electrical width [m]."""
        return self.engine.width

    @property
    def l_gate(self) -> float:
        """Drawn gate length [m]."""
        return self.engine.l_gate

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current [A], SPICE sign convention.

        For PMOS, ``vgs``/``vds`` are expected negative in normal operation
        and the returned current is negative (flows out of the drain).
        """
        sign = self.polarity.sign
        return sign * self.engine.drain_current(sign * vgs, sign * vds)

    def ids_magnitude(self, vgs_mag: float, vds_mag: float) -> float:
        """|I_D| [A] for magnitude-space sweeps (extraction targets)."""
        return self.engine.drain_current(vgs_mag, vds_mag)

    def gate_capacitance(self, vgs_mag: float) -> float:
        """Total gate capacitance [F] at V_DS = 0 for a magnitude-space
        gate bias: intrinsic C_GG plus overlaps and MIV fringing."""
        per_area = self.engine.gate_capacitance_per_area(vgs_mag)
        intrinsic = per_area * self.width * self.l_gate
        return (intrinsic + self.overlap_cap_source + self.overlap_cap_drain +
                self.miv_fringe_cap)

    def describe(self) -> Dict[str, float]:
        """Summary of the derived design quantities (for reports/tests)."""
        return {
            "width_nm": self.width * 1e9,
            "l_gate_nm": self.l_gate * 1e9,
            "l_eff_nm": self.engine.l_eff * 1e9,
            "t_ox_eff_nm": self.engine.poisson.stack.t_ox * 1e9,
            "sd_resistance_ohm": self.sd_resistance,
            "overlap_cap_fF": (self.overlap_cap_source +
                               self.overlap_cap_drain) * 1e15,
            "miv_fringe_cap_fF": self.miv_fringe_cap * 1e15,
            "n_channels": float(self.layout.n_channels),
        }


def _coupling_vth_shift(layout: DeviceLayout,
                        process: ProcessParameters) -> float:
    """Threshold reduction [V] from MIV side-gating (>= 0).

    Saturating in the coupled fraction: once the side-gate controls the
    channel body, additional coupled edges add little (the body is
    already pinned), which is why the 2-channel device barely improves
    on the 1-channel one despite twice the coupled edges.
    """
    if layout.miv_coupled_edges == 0:
        return 0.0
    fraction = layout.miv_coupled_edges * process.t_si / process.w_src
    return MIV_VTH_MAX * (1.0 - math.exp(-fraction / MIV_VTH_FRACTION_SCALE))


def _length_factor(layout: DeviceLayout, process: ProcessParameters) -> float:
    """Effective-length multiplier (ring-gate stretch, 4-channel only)."""
    if layout.variant is not ChannelCount.FOUR:
        return 1.0
    miv = MivGeometry(process, MivRole.GATE_TRANSISTOR)
    stretch = RING_CORNER_FRACTION * (miv.outer_side / 2.0) / process.l_gate
    return 1.0 + stretch


def _flatband(polarity: Polarity) -> float:
    """Front-gate flat-band voltage [V] for the Cu metal gate over the
    undoped film: WF_metal - (affinity + Eg/2), mirrored for PMOS."""
    phi_semi = SILICON.affinity + SILICON.bandgap / 2.0
    phi_ms = COPPER.workfunction - phi_semi
    return phi_ms if polarity is Polarity.NMOS else -phi_ms


def _sd_resistance(layout: DeviceLayout, process: ProcessParameters) -> float:
    """One-side S/D series resistance [Ohm] (current crosses half l_src)."""
    squares = (process.l_src / 2.0) / process.w_src
    resistance = SD_SHEET_RESISTANCE * squares
    # The 4-channel device feeds split S/D arms through an extra M1 track.
    if layout.extra_routing_tracks:
        track_length = layout.footprint.width
        resistance += COPPER.wire_resistance(
            track_length, process.m1_width, process.m1_thickness)
    return resistance


def _miv_fringe_cap(layout: DeviceLayout, process: ProcessParameters) -> float:
    """MIV fringing capacitance onto nearby S/D regions [F].

    The MIV faces that gate channels are part of the intrinsic device;
    the remaining faces see the S/D regions through at least a spacer
    thickness of dielectric, so the parasitic is
    ``eps_ox * face_area / t_spacer`` per face — sub-attofarad, but kept
    for completeness (the 4-channel cross exposes the most faces).
    """
    if not layout.variant.uses_miv_gate:
        return 0.0
    miv = MivGeometry(process, MivRole.GATE_TRANSISTOR)
    facing_faces = {
        ChannelCount.ONE: 1.0,
        ChannelCount.TWO: 2.0,
        ChannelCount.FOUR: 4.0,
    }[layout.variant]
    face_area = miv.side * process.t_si
    spacer_cap = (SILICON_DIOXIDE.permittivity * face_area /
                  process.t_spacer)
    return facing_faces * spacer_cap


def design_for_variant(
    variant: ChannelCount,
    polarity: Polarity,
    process: Optional[ProcessParameters] = None,
    mesh_cells_film: int = 28,
) -> DeviceDesign:
    """Build the simulated device for one (variant, polarity) pair."""
    process = process or DEFAULT_PROCESS
    layout = layout_for_variant(variant, process)

    vth_shift = _coupling_vth_shift(layout, process)
    stack = StackSpec(
        t_ox=process.t_ox,
        t_si=process.t_si,
        t_box=process.t_box,
        flatband=abs(_flatband(polarity)) - vth_shift,
        net_doping=0.0,
        temperature=process.temperature,
        n_cells_si=mesh_cells_film,
    )
    poisson = Poisson1D(stack)

    base_mobility = (ELECTRON_MOBILITY if polarity is Polarity.NMOS
                     else HOLE_MOBILITY)
    nw = narrow_width_factor(layout.channel_width)
    mobility = MobilityModel(
        mu_low=base_mobility.mu_low * nw,
        e_crit=base_mobility.e_crit,
        exponent=base_mobility.exponent,
        v_sat=base_mobility.v_sat,
    )
    short_channel = ShortChannelModel(t_si=process.t_si, t_ox=process.t_ox)
    engine = ChargeSheetModel(
        poisson=poisson,
        mobility=mobility,
        short_channel=short_channel,
        width=process.w_src,
        l_gate=process.l_gate,
        l_eff_factor=_length_factor(layout, process),
    )

    overlap = OVERLAP_CAP_PER_WIDTH * process.w_src
    design = DeviceDesign(
        variant=variant,
        polarity=polarity,
        process=process,
        layout=layout,
        engine=engine,
        sd_resistance=_sd_resistance(layout, process),
        overlap_cap_source=overlap,
        overlap_cap_drain=overlap,
        miv_fringe_cap=_miv_fringe_cap(layout, process),
        label=f"{variant.name.lower()}-{polarity.value}",
    )
    return design
