"""Design-rule-driven layout area model (Figure 5(c) and Section IV-3).

Cell area is computed as max(top width, bottom width) x max(top height,
bottom height) — the paper's "maximum layout dimensions on both top-layer
and bottom-layer so that the standard cell placement treats both n-type
and p-type device layers together".  A second, unconstrained metric sums
the per-layer device footprints (the paper's "total substrate area"
discussion, up to 31% reduction with independent per-layer placement).
"""

from repro.layout.rules import DesignRules
from repro.layout.device_footprint import RowGeometry, row_geometry
from repro.layout.cell_layout import CellAreaModel, CellLayoutResult
from repro.layout.report import AreaReport, build_area_report

__all__ = [
    "DesignRules",
    "RowGeometry",
    "row_geometry",
    "CellAreaModel",
    "CellLayoutResult",
    "AreaReport",
    "build_area_report",
]
