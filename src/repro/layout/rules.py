"""Design rules derived from the Table I process values."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters


@dataclass(frozen=True)
class DesignRules:
    """Layout rules used by the cell area model (all in metres).

    Derived quantities follow the paper's assumptions: M1 width/spacing
    24 nm, via 24 nm, MIV 25 nm with a 1 nm liner, keep-out equal to the
    M1 spacing for external-contact MIVs.
    """

    process: ProcessParameters = DEFAULT_PROCESS

    @property
    def m1_track(self) -> float:
        """One routing/rail track: wire width plus spacing (48 nm)."""
        return self.process.m1_width + self.process.m1_spacing

    @property
    def gate_column(self) -> float:
        """Gate length plus both spacers (44 nm)."""
        return self.process.l_gate + 2.0 * self.process.t_spacer

    @property
    def miv_outer(self) -> float:
        """MIV including its liner on both sides (27 nm)."""
        return self.process.t_miv + 2.0 * self.process.t_ox

    @property
    def miv_keepout_side(self) -> float:
        """External-contact MIV footprint side including keep-out (75 nm)."""
        return self.miv_outer + 2.0 * self.process.m1_spacing

    @property
    def contact_strip(self) -> float:
        """Room for an S/D or gate contact landing (via size, 24 nm)."""
        return self.process.via_size

    @property
    def transistor_pitch(self) -> float:
        """Per-transistor x pitch in a diffusion-shared row (92 nm)."""
        return self.gate_column + self.process.l_src

    @property
    def row_base_width(self) -> float:
        """Leading S/D region of a diffusion-shared row (48 nm)."""
        return self.process.l_src

    def row_width(self, n_transistors: int,
                  pitch: float = 0.0) -> float:
        """Width of a diffusion-shared row of ``n_transistors`` [m]."""
        if n_transistors < 1:
            raise LayoutError("row needs at least one transistor")
        effective_pitch = pitch if pitch > 0 else self.transistor_pitch
        return self.row_base_width + n_transistors * effective_pitch
