"""Row-based placement: joint vs independent per-layer (Section IV-3).

The paper's cell-area metric ties the two tiers together ("the standard
cell placement treats both n-type and p-type device layers together") and
then observes that *separate* placement of the two layers could reduce
total substrate area by up to 31%, deferring the algorithm to future
work.  This module implements that future-work experiment:

* **joint placement** — every cell occupies ``max(top, bottom)`` width in
  rows of ``max(top, bottom)`` height (the Figure 5(c) regime);
* **per-layer placement** — each layer packs its own footprints into its
  own rows of its own height, and the substrate area is the sum of the
  two layer areas.

Packing uses first-fit-decreasing into fixed-width rows, the standard
row-based standard-cell placement abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.library import get_cell
from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.cell_layout import CellAreaModel


@dataclass(frozen=True)
class Instance:
    """One placed cell instance."""

    name: str
    spec: CellSpec

    @classmethod
    def of(cls, cell_name: str, index: int = 0) -> "Instance":
        """Instance of a library cell."""
        return cls(name=f"{cell_name}_{index}", spec=get_cell(cell_name))


@dataclass
class RowPlacement:
    """Cells assigned to rows of a fixed capacity."""

    row_width: float
    row_height: float
    rows: List[List[Tuple[str, float]]] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        """Number of rows used."""
        return len(self.rows)

    @property
    def area(self) -> float:
        """Occupied die area: full row width x rows x row height [m^2]."""
        return self.row_width * self.n_rows * self.row_height

    @property
    def used_width(self) -> float:
        """Sum of placed cell widths [m]."""
        return sum(width for row in self.rows for _, width in row)

    @property
    def utilization(self) -> float:
        """Used width fraction of the allocated rows."""
        if not self.rows:
            return 0.0
        return self.used_width / (self.row_width * self.n_rows)


def pack_rows(widths: Sequence[Tuple[str, float]], row_width: float,
              row_height: float) -> RowPlacement:
    """First-fit-decreasing packing of (name, width) into rows."""
    if row_width <= 0 or row_height <= 0:
        raise LayoutError("row dimensions must be positive")
    oversized = [name for name, width in widths if width > row_width]
    if oversized:
        raise LayoutError(f"cells wider than a row: {oversized}")

    placement = RowPlacement(row_width=row_width, row_height=row_height)
    remaining = [0.0]
    placement.rows.append([])
    for name, width in sorted(widths, key=lambda item: -item[1]):
        for index, used in enumerate(remaining):
            if used + width <= row_width + 1e-15:
                placement.rows[index].append((name, width))
                remaining[index] = used + width
                break
        else:
            placement.rows.append([(name, width)])
            remaining.append(width)
    return placement


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of placing a netlist in one implementation."""

    variant: DeviceVariant
    joint: RowPlacement
    top: RowPlacement
    bottom: RowPlacement

    @property
    def joint_area(self) -> float:
        """Joint-placement die area [m^2] (both layers share rows)."""
        return self.joint.area

    @property
    def separate_substrate_area(self) -> float:
        """Sum of independently placed layer areas [m^2]."""
        return self.top.area + self.bottom.area

    @property
    def joint_substrate_area(self) -> float:
        """Substrate consumed by joint placement: both layers span the
        same outline, so twice the joint die area."""
        return 2.0 * self.joint.area


class Placer:
    """Places a bag of cell instances for any implementation variant."""

    def __init__(self, instances: Sequence[Instance], row_width: float,
                 area_model: Optional[CellAreaModel] = None):
        if not instances:
            raise LayoutError("nothing to place")
        if row_width <= 0:
            raise LayoutError("row width must be positive")
        self.instances = list(instances)
        self.row_width = row_width
        self.model = area_model or CellAreaModel()

    def _layouts(self, variant: DeviceVariant) -> Dict[str, object]:
        return {inst.name: self.model.layout(inst.spec, variant)
                for inst in self.instances}

    def place(self, variant: DeviceVariant) -> PlacementResult:
        """Joint and per-layer placements of the instance bag."""
        layouts = self._layouts(variant)
        joint_widths = [(name, layout.width)
                        for name, layout in layouts.items()]
        top_widths = [(name, layout.top_width)
                      for name, layout in layouts.items()]
        bottom_widths = [(name, layout.bottom_width)
                         for name, layout in layouts.items()]

        any_layout = next(iter(layouts.values()))
        joint = pack_rows(joint_widths, self.row_width, any_layout.height)
        top = pack_rows(top_widths, self.row_width, any_layout.top_height)
        bottom = pack_rows(bottom_widths, self.row_width,
                           any_layout.bottom_height)
        return PlacementResult(variant=variant, joint=joint, top=top,
                               bottom=bottom)

    def substrate_savings(self, variant: DeviceVariant) -> Dict[str, float]:
        """The Section IV-3 numbers for one variant vs the 2-D baseline.

        Returns fractional reductions:
        ``joint``   — joint-placement die area vs the 2-D joint area,
        ``separate``— per-layer substrate sum vs the 2-D joint substrate.
        """
        baseline = self.place(DeviceVariant.TWO_D)
        candidate = self.place(variant)
        return {
            "joint": 1.0 - candidate.joint_area / baseline.joint_area,
            "separate": 1.0 - (candidate.separate_substrate_area /
                               baseline.joint_substrate_area),
        }


def demo_netlist(scale: int = 2) -> List[Instance]:
    """A representative mix of library cells (scale copies of each)."""
    if scale < 1:
        raise LayoutError("scale must be >= 1")
    mix = ["INV1X1"] * 4 + ["NAND2X1"] * 3 + ["NOR2X1"] * 2 + \
          ["AND2X1", "OR2X1", "AOI2X1", "OAI2X1", "XOR2X1", "MUX2X1",
           "NAND3X1", "NOR3X1"]
    instances = []
    for copy in range(scale):
        for index, name in enumerate(mix):
            instances.append(Instance.of(name, copy * len(mix) + index))
    return instances
