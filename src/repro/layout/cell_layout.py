"""Cell-level area computation across implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.device_footprint import RowGeometry, row_geometry
from repro.layout.rules import DesignRules


@dataclass(frozen=True)
class CellLayoutResult:
    """Areas of one (cell, variant) pair — all lengths in metres.

    Attributes
    ----------
    cell_area:
        The Figure 5(c) metric: max-width x max-height over both layers
        (placement treats the layers together).
    top_area / bottom_area:
        Per-layer bounding areas (width x that layer's height).
    substrate_area:
        Sum of the per-layer areas — the "total substrate area" of the
        paper's Section IV-3 discussion, which independent per-layer
        placement could realise.
    """

    cell_name: str
    variant: DeviceVariant
    width: float
    height: float
    top_width: float
    top_height: float
    bottom_width: float
    bottom_height: float

    @property
    def cell_area(self) -> float:
        """Joint-placement cell area [m^2] (Figure 5(c))."""
        return self.width * self.height

    @property
    def top_area(self) -> float:
        """Top (n-type) layer bounding area [m^2]."""
        return self.top_width * self.top_height

    @property
    def bottom_area(self) -> float:
        """Bottom (p-type) layer bounding area [m^2]."""
        return self.bottom_width * self.bottom_height

    @property
    def substrate_area(self) -> float:
        """Sum of per-layer areas [m^2] (independent placement bound)."""
        return self.top_area + self.bottom_area


class CellAreaModel:
    """Computes layout areas for cells across implementations."""

    def __init__(self, rules: DesignRules = DesignRules()):
        self.rules = rules
        self._geometry: Dict[DeviceVariant, RowGeometry] = {
            variant: row_geometry(variant, rules)
            for variant in DeviceVariant
        }

    def geometry(self, variant: DeviceVariant) -> RowGeometry:
        """Row geometry of one variant."""
        return self._geometry[variant]

    def layout(self, spec: CellSpec,
               variant: DeviceVariant) -> CellLayoutResult:
        """Areas of one cell in one implementation."""
        n_per_layer = spec.nmos_count
        if n_per_layer < 1:
            raise LayoutError(f"{spec.name}: no transistors")
        geo = self._geometry[variant]
        # Multi-stage cells break diffusion sharing between stages: one
        # routing track per stage boundary on both layers.
        stage_gap = (len(spec.stages) - 1) * self.rules.m1_track
        top_w = geo.top_width(n_per_layer) + stage_gap
        bot_w = geo.bottom_width(n_per_layer) + stage_gap
        return CellLayoutResult(
            cell_name=spec.name,
            variant=variant,
            width=max(top_w, bot_w),
            height=max(geo.top_height, geo.bottom_height),
            top_width=top_w,
            top_height=geo.top_height,
            bottom_width=bot_w,
            bottom_height=geo.bottom_height,
        )

    def reduction_vs_2d(self, spec: CellSpec, variant: DeviceVariant,
                        metric: str = "cell") -> float:
        """Fractional area reduction of ``variant`` vs the 2-D baseline.

        ``metric`` selects ``"cell"`` (Figure 5c), ``"substrate"`` (sum of
        layers) or ``"top"`` (top layer only).
        """
        baseline = self.layout(spec, DeviceVariant.TWO_D)
        candidate = self.layout(spec, variant)
        attr = {"cell": "cell_area", "substrate": "substrate_area",
                "top": "top_area"}.get(metric)
        if attr is None:
            raise LayoutError(f"unknown metric {metric!r}")
        base = getattr(baseline, attr)
        cand = getattr(candidate, attr)
        return 1.0 - cand / base
