"""Per-variant row geometry: heights and transistor pitches.

The top-layer (n-type) row height is where the MIV-transistor proposal
pays off — each variant's height follows directly from its Figure-2
geometry:

* **2D baseline** — full 192 nm active plus the external-contact MIV
  strip *with keep-out* (75 nm) plus the rail track;
* **1-channel** — MIV merged with the gate (27 nm, no keep-out) but the
  S/D contacts still need one M1 spacing to the MIV;
* **2-channel** — the MIV nests between the two 96 nm fingers inside the
  gate column; the stacked fingers plus a shared contact allowance fit
  under the bottom row's height;
* **4-channel** — two 48 nm channel stacks around the MIV plus the extra
  S/D routing track; by far the shortest row, but the MIV embedded in
  the gate line widens every gate column (the MIV outer side, 27 nm,
  exceeds the 24 nm gate length).

The bottom (p-type) row is identical for all variants: full active,
rail track and a contact landing (its gate is reached by the MIV from
above, so no keep-out strip is charged to the bottom layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.rules import DesignRules


@dataclass(frozen=True)
class RowGeometry:
    """Geometry of one device row in a standard cell (metres)."""

    variant: DeviceVariant
    top_height: float
    bottom_height: float
    top_pitch: float
    bottom_pitch: float
    base_width: float

    def __post_init__(self) -> None:
        for name in ("top_height", "bottom_height", "top_pitch",
                     "bottom_pitch", "base_width"):
            if getattr(self, name) <= 0:
                raise LayoutError(f"{name} must be positive")

    def top_width(self, n_transistors: int) -> float:
        """Top (n-type) row width for ``n_transistors`` devices [m]."""
        return self.base_width + n_transistors * self.top_pitch

    def bottom_width(self, n_transistors: int) -> float:
        """Bottom (p-type) row width [m]."""
        return self.base_width + n_transistors * self.bottom_pitch


def _top_height(variant: DeviceVariant, rules: DesignRules) -> float:
    process = rules.process
    rail = rules.m1_track
    if variant is DeviceVariant.TWO_D:
        return process.w_src + rules.miv_keepout_side + rail
    if variant is DeviceVariant.MIV_1CH:
        return (process.w_src + rules.miv_outer +
                process.m1_spacing + rail)
    if variant is DeviceVariant.MIV_2CH:
        # Two 96 nm fingers with the MIV nested in the gate column
        # between them; S/D contacts sit away from the MIV, so no extra
        # spacing strip is charged.
        return process.w_src + rules.miv_outer + rail
    if variant is DeviceVariant.MIV_4CH:
        # Two 48 nm channel stacks + MIV + the extra S/D routing track.
        return (process.w_src / 2.0 + rules.miv_outer +
                rules.m1_track + rail)
    raise LayoutError(f"unknown variant {variant!r}")


def row_geometry(variant: DeviceVariant,
                 rules: DesignRules = DesignRules()) -> RowGeometry:
    """Build the row geometry of one cell implementation."""
    process = rules.process
    bottom_height = process.w_src + rules.m1_track + rules.contact_strip

    top_pitch = rules.transistor_pitch
    if variant is DeviceVariant.MIV_4CH:
        # The MIV outer side (27 nm) exceeds the gate length (24 nm):
        # every gate column stretches by the difference.
        top_pitch += rules.miv_outer - process.l_gate

    return RowGeometry(
        variant=variant,
        top_height=_top_height(variant, rules),
        bottom_height=bottom_height,
        top_pitch=top_pitch,
        bottom_pitch=rules.transistor_pitch,
        base_width=rules.row_base_width,
    )
