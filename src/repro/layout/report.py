"""Area reporting across the cell library (Figure 5(c) data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cells.library import all_cells
from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant
from repro.errors import LayoutError
from repro.layout.cell_layout import CellAreaModel, CellLayoutResult

#: Variant order used in Figure 5.
VARIANT_ORDER = (DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
                 DeviceVariant.MIV_2CH, DeviceVariant.MIV_4CH)


@dataclass(frozen=True)
class AreaReport:
    """Per-cell areas plus the headline reductions."""

    layouts: Dict[str, Dict[DeviceVariant, CellLayoutResult]]

    def area_um2(self, cell: str, variant: DeviceVariant) -> float:
        """Cell area in um^2."""
        return self.layouts[cell][variant].cell_area * 1e12

    def reduction(self, cell: str, variant: DeviceVariant,
                  metric: str = "cell") -> float:
        """Fractional reduction vs the 2-D baseline for one cell."""
        base = self.layouts[cell][DeviceVariant.TWO_D]
        cand = self.layouts[cell][variant]
        attr = {"cell": "cell_area", "substrate": "substrate_area",
                "top": "top_area"}.get(metric)
        if attr is None:
            raise LayoutError(f"unknown metric {metric!r}")
        return 1.0 - getattr(cand, attr) / getattr(base, attr)

    def average_reduction(self, variant: DeviceVariant,
                          metric: str = "cell") -> float:
        """Library-average fractional reduction vs 2-D."""
        values = [self.reduction(c, variant, metric) for c in self.layouts]
        return sum(values) / len(values)

    def best_reduction(self, variant: DeviceVariant,
                       metric: str = "cell") -> float:
        """Best-case fractional reduction vs 2-D."""
        return max(self.reduction(c, variant, metric)
                   for c in self.layouts)

    def render(self) -> str:
        """Text table in the Figure 5(c) arrangement."""
        header = ["Cell"] + [v.value for v in VARIANT_ORDER]
        lines = ["\t".join(header + ["(areas in um^2)"])]
        for cell in sorted(self.layouts):
            cells = [cell] + [f"{self.area_um2(cell, v):.4f}"
                              for v in VARIANT_ORDER]
            lines.append("\t".join(cells))
        avg = ["avg reduction", "-"]
        for variant in VARIANT_ORDER[1:]:
            avg.append(f"-{100 * self.average_reduction(variant):.1f}%")
        lines.append("\t".join(avg))
        return "\n".join(lines)


def build_area_report(cells: Optional[List[CellSpec]] = None,
                      model: Optional[CellAreaModel] = None) -> AreaReport:
    """Compute the full library's areas for all four implementations."""
    cells = cells if cells is not None else all_cells()
    model = model or CellAreaModel()
    layouts: Dict[str, Dict[DeviceVariant, CellLayoutResult]] = {}
    for spec in cells:
        layouts[spec.name] = {variant: model.layout(spec, variant)
                              for variant in DeviceVariant}
    return AreaReport(layouts)
