"""Golden-regression and numerical-verification subsystem.

Every later optimisation PR is judged against this package.  It pins
the pipeline's quantitative behaviour in four independent ways:

* **goldens** (:mod:`repro.verify.goldens`) — versioned, tolerance-aware
  snapshots of solver outputs, extraction fit errors and per-cell PPA
  numbers, committed under ``tests/goldens/`` and diffed with per-
  quantity relative errors against declared tolerance classes;
* **numerics** (:mod:`repro.verify.mms`,
  :mod:`repro.verify.invariants`) — method-of-manufactured-solutions
  checks and observed grid/timestep convergence orders for the TCAD and
  SPICE solvers, plus conservation and monotonicity invariants;
* **paper gates** (:mod:`repro.verify.paper_gates`) — machine-readable
  expectations transcribed from the SOCC 2023 paper (Table III error
  ceilings, Figure 5 PPA-delta windows, the 31 % substrate-area bound)
  evaluated from real ``run_full_flow`` artifacts;
* **parity matrix** (:mod:`repro.verify.parity`) — a reduced flow run
  across {serial, parallel} x {traced, untraced} x {cold, warm cache}
  x {fault-injected}, asserting bit-identical (or documented
  tolerance-equal) artifacts.

Two front ends share the same checks:

* CLI — ``python -m repro.verify --suite fast --report
  verify_report.json`` (suites: ``fast``, ``all``, ``goldens``,
  ``mms``, ``invariants``, ``gates``, ``parity``);
* pytest — markers ``golden``, ``mms`` and ``parity`` plus the
  ``--update-goldens`` / ``--allow-widen`` options installed by the
  :mod:`repro.verify.plugin` plugin.

Verification runs accept ``observe=`` like every other entry point, so
they emit the same trace/metric artifacts as production runs.
"""

from repro.verify.goldens import GoldenDiff, GoldenStore, QuantityDiff, \
    default_golden_root
from repro.verify.mms import ConvergenceResult, observed_order
from repro.verify.paper_gates import PaperGate, paper_gates
from repro.verify.parity import PARITY_MATRIX, ParityCell, \
    run_parity_matrix
from repro.verify.report import CheckResult, VerifyReport
from repro.verify.tolerances import Tolerance, TOLERANCE_CLASSES, \
    tolerance_class

__all__ = [
    "CheckResult",
    "ConvergenceResult",
    "GoldenDiff",
    "GoldenStore",
    "PARITY_MATRIX",
    "PaperGate",
    "ParityCell",
    "QuantityDiff",
    "TOLERANCE_CLASSES",
    "Tolerance",
    "VerifyReport",
    "default_golden_root",
    "observed_order",
    "paper_gates",
    "run_parity_matrix",
    "tolerance_class",
]
