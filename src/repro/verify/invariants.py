"""Conservation and monotonicity invariants of the physics stack.

These are the checks that hold for *any* healthy parameterisation —
no golden values involved, so they survive deliberate recalibrations
that regenerate every golden:

* steady-state current continuity along the drift-diffusion channel
  (the Scharfetter-Gummel edge flux must be constant);
* zero current at equilibrium;
* I_D monotone in V_GS above threshold (TCAD characterisation and
  compact model);
* C-V bounds: the gate capacitance per area stays inside
  ``(0, C_ox]`` — the oxide capacitance is the series-limited ceiling;
* terminal-charge conservation of the compact model.
"""

from __future__ import annotations

import time
from typing import Callable, List

import numpy as np

from repro.verify.report import (
    CheckResult,
    STATUS_FAIL,
    STATUS_PASS,
)


def _check(name: str, passed: bool, measured=None, expected=None,
           tolerance: str = "", detail: str = "",
           wall_time_s: float = 0.0) -> CheckResult:
    return CheckResult(
        name=name, status=STATUS_PASS if passed else STATUS_FAIL,
        measured=measured, expected=expected, tolerance=tolerance,
        detail=detail, wall_time_s=wall_time_s)


def dd1d_current_continuity(bias: float = 0.1,
                            rtol: float = 1e-6) -> CheckResult:
    """SG edge flux constant along the bar in steady state."""
    from repro.constants import Q
    from repro.tcad.dd1d import DriftDiffusion1D, bernoulli, uniform_bar
    solver = DriftDiffusion1D(uniform_bar())
    solution = solver.solve(bias)
    d = solver.bar.mobility * solver.vt
    dpsi = (solution.psi[1:] - solution.psi[:-1]) / solver.vt
    flux = -Q * solver.bar.area * (d / solver.h) * (
        solution.n[1:] * bernoulli(dpsi) -
        solution.n[:-1] * bernoulli(-dpsi))
    spread = float(np.max(flux) - np.min(flux))
    mean = float(np.mean(np.abs(flux)))
    relative = spread / mean if mean else 0.0
    return _check(
        "invariant.dd1d.continuity", relative <= rtol,
        measured=relative, expected=f"<= {rtol:g}", tolerance="numeric",
        detail=f"edge-flux spread {spread:.3e} A over mean "
               f"{mean:.3e} A at {bias} V")


def dd1d_equilibrium_current(atol_ratio: float = 1e-10) -> CheckResult:
    """Zero terminal current at zero bias."""
    from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar
    solver = DriftDiffusion1D(uniform_bar())
    equilibrium = abs(solver.solve(0.0).current)
    reference = abs(solver.solve(0.05).current)
    ratio = equilibrium / reference if reference else float("inf")
    return _check(
        "invariant.dd1d.equilibrium", ratio <= atol_ratio,
        measured=ratio, expected=f"<= {atol_ratio:g}",
        detail=f"|I(0V)| = {equilibrium:.3e} A vs |I(50mV)| = "
               f"{reference:.3e} A")


def tcad_id_monotone_in_vgs(slack: float = 1e-12) -> CheckResult:
    """TCAD I_D(V_GS) non-decreasing above threshold, both V_DS."""
    from repro.geometry.transistor_layout import ChannelCount
    from repro.tcad.device import Polarity, design_for_variant
    device = design_for_variant(ChannelCount.TRADITIONAL,
                                Polarity.NMOS)
    vgs = np.linspace(0.3, 1.0, 15)
    worst = 0.0
    for vds in (0.05, 1.0):
        ids = np.array([device.ids_magnitude(float(v), vds)
                        for v in vgs])
        drops = np.diff(ids)
        worst = min(worst, float(np.min(drops))) if drops.size else worst
    return _check(
        "invariant.tcad.id_monotone_vgs", worst >= -slack,
        measured=worst, expected=f">= -{slack:g}",
        detail="largest I_D drop across rising V_GS grid "
               "(0.3..1.0 V, V_DS in {0.05, 1.0})")


def compact_id_monotone_in_vgs(slack: float = 1e-21) -> CheckResult:
    """Compact-model I_D(V_GS) non-decreasing (default parameters)."""
    from repro.compact.model import BsimSoi4Lite
    from repro.compact.parameters import default_parameters
    from repro.tcad.device import Polarity
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    vgs = np.linspace(0.0, 1.2, 61)
    worst = 0.0
    for vds in (0.05, 0.6, 1.0):
        ids = model.ids_magnitude(vgs, np.full_like(vgs, vds))
        worst = min(worst, float(np.min(np.diff(ids))))
    return _check(
        "invariant.compact.id_monotone_vgs", worst >= -slack,
        measured=worst, expected=f">= -{slack:g}",
        detail="largest I_D drop across rising V_GS grid")


def cv_bounded_by_oxide(margin: float = 1.0 + 1e-9) -> CheckResult:
    """Gate capacitance per area inside (0, C_ox]."""
    from repro.geometry.transistor_layout import ChannelCount
    from repro.tcad.device import Polarity, design_for_variant
    poisson = design_for_variant(ChannelCount.TRADITIONAL,
                                 Polarity.NMOS).engine.poisson
    cox = poisson.oxide_capacitance()
    ratios = []
    for vg in (0.0, 0.3, 0.6, 0.9, 1.2):
        cgg = poisson.gate_capacitance(vg)
        ratios.append(cgg / cox)
    ratios = np.array(ratios)
    passed = bool(np.all(ratios > 0.0) and
                  np.all(ratios <= margin))
    return _check(
        "invariant.tcad.cv_bounds", passed,
        measured=[float(r) for r in ratios],
        expected=f"0 < C_gg/C_ox <= {margin:g}",
        detail="series-limited gate capacitance ratio per bias")


def compact_charge_conservation(atol: float = 1e-24) -> CheckResult:
    """qg + qd + qs == 0 across a bias grid (compact model)."""
    from repro.compact.model import BsimSoi4Lite
    from repro.compact.parameters import default_parameters
    from repro.tcad.device import Polarity
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    worst = 0.0
    for vgs in (-0.3, 0.0, 0.4, 0.8, 1.2):
        for vds in (-0.5, 0.0, 0.5, 1.0):
            qg, qd, qs = model.charges(vgs, vds)
            worst = max(worst, abs(qg + qd + qs))
    return _check(
        "invariant.compact.charge_conservation", worst <= atol,
        measured=worst, expected=f"<= {atol:g}",
        detail="max |qg + qd + qs| over the bias grid")


#: The full invariant battery (all cheap; no engine involved).
INVARIANT_CHECKS: List[Callable[[], CheckResult]] = [
    dd1d_current_continuity,
    dd1d_equilibrium_current,
    tcad_id_monotone_in_vgs,
    compact_id_monotone_in_vgs,
    cv_bounded_by_oxide,
    compact_charge_conservation,
]


def all_invariant_checks() -> List[CheckResult]:
    """Run every invariant, timing each."""
    results = []
    for check in INVARIANT_CHECKS:
        start = time.perf_counter()
        result = check()
        result.wall_time_s = time.perf_counter() - start
        results.append(result)
    return results
