"""Command-line front end: ``python -m repro.verify``.

Examples
--------
Run the CI gate and write the machine-readable report::

    python -m repro.verify --suite fast --report verify_report.json

Regenerate every golden after a deliberate recalibration::

    python -m repro.verify --suite goldens --update-goldens

Widening a tolerance class additionally needs ``--allow-widen``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine import Engine, backend_for_workers
from repro.verify.goldens import GoldenStore
from repro.verify.suites import SUITES, run_suite


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.verify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Run the golden-regression / numerical-"
                    "verification suites.")
    parser.add_argument(
        "--suite", default="fast", choices=SUITES,
        help="which check bundle to run (default: fast)")
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write verify_report.json here")
    parser.add_argument(
        "--goldens", metavar="DIR", default=None,
        help="golden directory (default: committed tests/goldens, "
             "or $REPRO_GOLDEN_DIR)")
    parser.add_argument(
        "--update-goldens", action="store_true",
        help="regenerate goldens from fresh measurements instead of "
             "diffing")
    parser.add_argument(
        "--allow-widen", action="store_true",
        help="permit --update-goldens to widen a tolerance class")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine width for pipeline measurements (default: auto)")
    parser.add_argument(
        "--backend", default=None,
        help="execution backend for pipeline measurements: serial, "
             "pool, pool:N or workqueue (default REPRO_BACKEND)")
    parser.add_argument(
        "--parity-modes", metavar="MODES", default=None,
        help="comma-separated parity matrix modes to run (only "
             "meaningful with a suite that includes parity; e.g. "
             "'interrupted-resumed,concurrent-shared-cache' for the "
             "chaos scenarios)")
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="record an observe trace of the run into DIR")
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the final summary line")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    options = build_parser().parse_args(argv)
    if options.allow_widen and not options.update_goldens:
        print("--allow-widen only makes sense with --update-goldens",
              file=sys.stderr)
        return 2
    store = GoldenStore(root=options.goldens,
                        update=options.update_goldens,
                        allow_widen=options.allow_widen)
    backend = options.backend
    if backend is None and options.workers is not None:
        backend = backend_for_workers(options.workers)
    elif backend == "pool" and options.workers is not None:
        backend = f"pool:{options.workers}"
    engine = Engine(backend=backend) if backend is not None else None
    observe = None
    if options.trace:
        from repro.observe import Tracer
        observe = Tracer(out_dir=options.trace)
    parity_modes = None
    if options.parity_modes:
        parity_modes = [m.strip() for m in options.parity_modes.split(",")
                        if m.strip()]
    report = run_suite(options.suite, store=store, engine=engine,
                       observe=observe, parity_modes=parity_modes)
    if options.report:
        report.write(options.report)
    if options.quiet:
        counts = report.counts
        print(f"verify suite {options.suite!r}: "
              f"{'PASS' if report.passed else 'FAIL'} "
              f"({counts['pass']} passed, {counts['fail']} failed, "
              f"{counts['skip']} skipped)")
    else:
        print(report.render())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
