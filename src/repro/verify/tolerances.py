"""Tolerance classes for golden comparisons.

A golden quantity declares *how equal* a fresh measurement must be, by
naming one of a small, ordered family of tolerance classes.  The order
matters: regenerating a golden may keep or *tighten* a quantity's
class silently, but widening it (say ``tight`` -> ``calibrated``) is a
statement that the pipeline got less reproducible and needs the
explicit ``--allow-widen`` flag.

Classes
-------
``exact``
    Bit-for-bit equality.  For integers, enumerations and quantities
    the engine guarantees deterministic (e.g. task counts).
``tight``
    Relative error <= 1e-9.  Solver outputs of deterministic in-process
    arithmetic (Poisson/DD curves, compact-model evaluations, SPICE
    waveform samples).
``numeric``
    Relative error <= 1e-6.  Quantities funnelled through iterative
    optimisers (extraction fit errors, PPA numbers) where the last few
    bits are at the mercy of library versions.
``calibrated``
    Relative error <= 1e-3.  Quantities documented as tolerance-equal
    rather than identical — e.g. artifacts recomputed through a solver
    rescue ladder.
``loose``
    Relative error <= 5e-2.  Shape-level agreement only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError


@dataclass(frozen=True)
class Tolerance:
    """One named tolerance class.

    Attributes
    ----------
    name:
        The class name (key into :data:`TOLERANCE_CLASSES`).
    rtol:
        Maximum allowed relative error.
    atol:
        Absolute floor below which differences are ignored (guards
        quantities whose true value is 0).
    rank:
        Position in the strictness order (0 = strictest).
    """

    name: str
    rtol: float
    atol: float
    rank: int

    def accepts(self, expected: float, measured: float) -> bool:
        """True when ``measured`` is within tolerance of ``expected``."""
        if math.isnan(expected) or math.isnan(measured):
            return math.isnan(expected) and math.isnan(measured)
        if self.rtol == 0.0 and self.atol == 0.0:
            return expected == measured
        return abs(measured - expected) <= \
            self.atol + self.rtol * abs(expected)

    def relative_error(self, expected: float, measured: float) -> float:
        """|measured - expected| / max(|expected|, atol-floor)."""
        denom = max(abs(expected), self.atol, 1e-300)
        return abs(measured - expected) / denom

    def is_wider_than(self, other: "Tolerance") -> bool:
        """True when this class accepts strictly more drift."""
        return self.rank > other.rank


#: The ordered tolerance family, strictest first.
TOLERANCE_CLASSES: Dict[str, Tolerance] = {
    "exact": Tolerance("exact", rtol=0.0, atol=0.0, rank=0),
    "tight": Tolerance("tight", rtol=1e-9, atol=1e-30, rank=1),
    "numeric": Tolerance("numeric", rtol=1e-6, atol=1e-24, rank=2),
    "calibrated": Tolerance("calibrated", rtol=1e-3, atol=1e-18, rank=3),
    "loose": Tolerance("loose", rtol=5e-2, atol=1e-15, rank=4),
}


def tolerance_class(name: str) -> Tolerance:
    """Look a tolerance class up by name."""
    try:
        return TOLERANCE_CLASSES[name]
    except KeyError:
        raise ReproError(
            f"unknown tolerance class {name!r}; valid classes: "
            f"{', '.join(TOLERANCE_CLASSES)}") from None
