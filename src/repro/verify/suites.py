"""Verification suites: named bundles of checks with one runner.

Suites
------
``goldens``
    Diff every committed golden (solver + pipeline families).
``mms``
    Convergence-order / manufactured-solution battery.
``invariants``
    Conservation and monotonicity checks.
``gates``
    Paper gates over a reduced flow (library-average gates skip).
``parity``
    The reduced cross-mode parity matrix.
``fast``
    CI gate: goldens + fast MMS + invariants + gates over a reduced
    flow + the representative parity modes.
``all``
    Everything at full resolution, with the paper gates evaluated on
    the complete 14-cell x 4-variant flow (minutes of cold compute;
    warm engine caches make re-runs cheap).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.engine import Engine, default_engine
from repro.observe import maybe_activate
from repro.verify.goldens import GoldenStore
from repro.verify.invariants import all_invariant_checks
from repro.verify.mms import ConvergenceResult, all_mms_checks
from repro.verify.paper_gates import evaluate_gates
from repro.verify.parity import FAST_MODES, run_parity_matrix
from repro.verify.report import (
    CheckResult,
    STATUS_FAIL,
    STATUS_PASS,
    VerifyReport,
)
from repro.verify.snapshots import PIPELINE_GOLDENS, SOLVER_GOLDENS

#: Suite names accepted by the CLI and :func:`run_suite`.
SUITES = ("fast", "all", "goldens", "mms", "invariants", "gates",
          "parity")


def golden_checks(store: Optional[GoldenStore] = None,
                  engine: Optional[Engine] = None,
                  pipeline: bool = True) -> List[CheckResult]:
    """Diff (or, in update mode, regenerate) every registered golden."""
    store = store or GoldenStore()
    engine = engine or default_engine()
    results: List[CheckResult] = []
    for name, (builder, tol) in sorted(SOLVER_GOLDENS.items()):
        results.append(_golden_check(store, name, builder, tol))
    if pipeline:
        for name, (builder, tol) in sorted(PIPELINE_GOLDENS.items()):
            results.append(_golden_check(
                store, name, lambda b=builder: b(engine=engine), tol))
    return results


def _golden_check(store: GoldenStore, name: str,
                  builder: Callable[[], Dict[str, Any]],
                  tol: str) -> CheckResult:
    start = time.perf_counter()
    try:
        measured = builder()
        diff = store.check(name, measured, default_tolerance=tol,
                           description=f"verify golden {name}")
    except Exception as exc:
        return CheckResult(
            name=f"golden.{name}", status=STATUS_FAIL, tolerance=tol,
            detail=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - start)
    worst = max((q.max_relative_error for q in diff.quantities),
                default=0.0)
    return CheckResult(
        name=f"golden.{name}",
        status=STATUS_PASS if diff.passed else STATUS_FAIL,
        measured=worst, expected=f"within {tol!r} per quantity",
        tolerance=tol,
        detail=diff.render() if not diff.passed else
        f"{len(diff.quantities)} quantities within {tol!r} "
        f"(worst rel err {worst:.3e})",
        wall_time_s=time.perf_counter() - start)


def mms_checks(fast: bool = False) -> List[CheckResult]:
    """The convergence battery as check results."""
    out: List[CheckResult] = []
    start = time.perf_counter()
    for conv in all_mms_checks(fast=fast):
        now = time.perf_counter()
        out.append(_from_convergence(conv, now - start))
        start = now
    return out


def _from_convergence(conv: ConvergenceResult,
                      elapsed: float) -> CheckResult:
    lo, hi = conv.bounds
    return CheckResult(
        name=conv.name,
        status=STATUS_PASS if conv.passed else STATUS_FAIL,
        measured=conv.observed, expected=f"order in [{lo:g}, {hi:g}]",
        tolerance="convergence-order", detail=conv.render(),
        wall_time_s=elapsed)


def invariant_checks() -> List[CheckResult]:
    """The invariant battery (already timed internally)."""
    return all_invariant_checks()


def gate_checks(engine: Optional[Engine] = None,
                full: bool = False) -> List[CheckResult]:
    """Paper gates over a real flow.

    ``full`` runs the complete 14-cell x 4-variant library so the
    Figure 5 averages are defined; otherwise a reduced flow evaluates
    the flow-independent gates and skips the library averages.
    """
    from repro.flows.full_flow import run_full_flow
    engine = engine or default_engine()
    start = time.perf_counter()
    if full:
        flow = run_full_flow(engine=engine)
    else:
        from repro.cells.variants import DeviceVariant
        flow = run_full_flow(
            cells=["INV1X1"], variants=list(DeviceVariant),
            engine=engine)
    results = evaluate_gates(flow)
    elapsed = time.perf_counter() - start
    if results:
        results[0].wall_time_s = elapsed
    return results


def parity_checks(fast: bool = False,
                  modes: Optional[List[str]] = None) -> List[CheckResult]:
    """The cross-mode parity matrix.

    ``modes`` selects an explicit subset (overrides ``fast``) — how the
    CI chaos job runs just the durability scenarios
    (``interrupted-resumed``, ``concurrent-shared-cache``).
    """
    if modes is not None:
        return run_parity_matrix(modes=list(modes))
    return run_parity_matrix(modes=FAST_MODES if fast else None)


def run_suite(suite: str, store: Optional[GoldenStore] = None,
              engine: Optional[Engine] = None,
              observe=None,
              parity_modes: Optional[List[str]] = None) -> VerifyReport:
    """Run one named suite into a :class:`VerifyReport`."""
    if suite not in SUITES:
        from repro.errors import ReproError
        raise ReproError(
            f"unknown suite {suite!r}; expected one of "
            f"{', '.join(SUITES)}")
    report = VerifyReport(suite=suite)
    with maybe_activate(observe):
        if suite in ("goldens", "fast", "all"):
            report.extend(golden_checks(store=store, engine=engine))
        if suite in ("mms", "fast", "all"):
            report.extend(mms_checks(fast=(suite == "fast")))
        if suite in ("invariants", "fast", "all"):
            report.extend(invariant_checks())
        if suite in ("gates", "fast", "all"):
            report.extend(gate_checks(engine=engine,
                                      full=(suite == "all")))
        if suite in ("parity", "fast", "all"):
            report.extend(parity_checks(fast=(suite == "fast"),
                                        modes=parity_modes))
    if observe is not None and getattr(observe, "metrics", None):
        report.metrics = observe.metrics.snapshot()
    return report
