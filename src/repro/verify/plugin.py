"""Pytest integration for the verification subsystem.

Loaded from ``tests/conftest.py`` (``pytest_plugins``).  Provides:

* markers — ``golden`` (diffs against committed goldens), ``mms``
  (convergence-order estimation), ``parity`` (cross-mode matrix);
* options — ``--update-goldens`` regenerates goldens from fresh
  measurements instead of failing the diff, ``--allow-widen``
  additionally permits tolerance-class widening;
* fixtures — ``golden_store`` (honouring those options) and
  ``check_golden`` (one-call measure-and-assert).
"""

from __future__ import annotations

import pytest

MARKERS = (
    "golden: diffs measurements against committed golden files",
    "mms: manufactured-solution / convergence-order checks",
    "parity: cross-mode execution parity matrix",
)


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro.verify")
    group.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate golden files from fresh measurements "
             "instead of diffing against them")
    group.addoption(
        "--allow-widen", action="store_true", default=False,
        help="permit --update-goldens to widen a golden quantity's "
             "tolerance class")


def pytest_configure(config) -> None:
    for marker in MARKERS:
        config.addinivalue_line("markers", marker)
    if config.getoption("--allow-widen") and \
            not config.getoption("--update-goldens"):
        raise pytest.UsageError(
            "--allow-widen only makes sense with --update-goldens")


@pytest.fixture(scope="session")
def golden_store(request):
    """The session's :class:`~repro.verify.goldens.GoldenStore`."""
    from repro.verify.goldens import GoldenStore
    return GoldenStore(
        update=request.config.getoption("--update-goldens"),
        allow_widen=request.config.getoption("--allow-widen"))


@pytest.fixture(scope="session")
def check_golden(golden_store):
    """Measure-and-assert helper for golden tests.

    Usage::

        def test_dd1d_golden(check_golden):
            check_golden("dd1d_bar", dd1d_snapshot(), "tight")
    """
    def _check(name, measured, default_tolerance="tight",
               description=""):
        diff = golden_store.check(
            name, measured, default_tolerance=default_tolerance,
            description=description)
        assert diff.passed, "\n" + diff.render()
        return diff
    return _check
