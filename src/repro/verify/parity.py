"""Cross-mode parity matrix over the full pipeline.

The engine's central determinism promise is that execution *mode* never
changes the *numbers*: serial vs parallel, traced vs untraced, cold vs
warm cache, and fault-injected runs that recover through retries must
all produce bit-identical artifacts, and solver-rescue recoveries must
stay inside a documented tolerance class.

This module runs a reduced (but real) ``run_full_flow`` once per mode
and diffs every artifact — Table III extraction errors and per-cell PPA
numbers — against the serial-cold baseline.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.cells.variants import DeviceVariant
from repro.engine import Engine
from repro.geometry.transistor_layout import ChannelCount
from repro.resilience import (
    FaultInjector,
    RetryPolicy,
    clear_faults,
    install,
)
from repro.verify.report import CheckResult, STATUS_FAIL, STATUS_PASS
from repro.verify.tolerances import tolerance_class

#: Reduced flow the matrix runs per mode (kept small: the point is mode
#: coverage, not library coverage — the full library runs in suite
#: ``all`` anyway).
PARITY_CELLS = ("INV1X1",)
PARITY_VARIANTS = (DeviceVariant.TWO_D, DeviceVariant.MIV_1CH)
PARITY_EXTRACTION = (ChannelCount.TRADITIONAL, ChannelCount.ONE)


@dataclass(frozen=True)
class ParityCell:
    """One execution mode of the parity matrix.

    Attributes
    ----------
    name:
        Matrix-cell identifier (``parity.<mode>``).
    max_workers:
        Engine width (1 = serial path, >1 = process pool).
    backend:
        Explicit execution-backend spec (``"serial"``, ``"pool:N"``,
        ``"workqueue"``); overrides :attr:`max_workers` when set.
    warm_from:
        Name of the matrix cell whose disk cache this run reuses
        (None = cold: a fresh cache directory).
    traced:
        Run under an active recording tracer.
    faults:
        Fault-injection spec installed for the run (None = clean).
    retries:
        Task retries granted to the engine (for ``stage_exc`` faults).
    comparison:
        ``bitwise`` — artifacts must equal the baseline exactly;
        ``tolerance`` — equal within :attr:`tolerance` (documented
        rescue-path deviation).
    tolerance:
        Tolerance class for ``comparison == "tolerance"``.
    kernels:
        ``REPRO_SOLVER_KERNEL`` spec installed for the run (None =
        inherit the session default).
    sparse_threshold:
        ``REPRO_SPARSE_THRESHOLD`` override for the run (None =
        default); ``1`` forces the sparse MNA path onto every circuit
        of the flow, including the standard cells the default
        threshold keeps on the dense oracle.
    chaos:
        Durability scenario run through *real subprocesses* (see
        :mod:`repro.resilience.chaos`): ``"kill-resume"`` SIGKILLs a
        journalled CLI run at a task boundary and resumes it;
        ``"concurrent"`` runs two invocations against one shared cache
        (and additionally requires zero quarantined entries);
        ``"workqueue"`` runs two ``--backend workqueue`` invocations
        that cooperatively drain one task graph through filesystem
        leases (also requires zero quarantined entries).
        ``None`` = plain in-process mode.
    remote:
        Remote-cache-tier scenario: ``"flaky"`` runs a live
        ``repro.cachesrv`` behind a fault-injecting
        :class:`~repro.resilience.netchaos.ChaosProxy` (drop / delay /
        truncate / corrupt / 500-burst), seeds the remote store through
        the proxy, then replays from a cold local cache — the replay
        must still be bit-identical and must land at least one remote
        hit; ``"down"`` points ``REPRO_REMOTE_CACHE`` at a dead
        endpoint — the run must complete locally (no task failure)
        with the tier degraded (breaker open).  ``None`` = no remote
        tier (the variable is stripped for the run).
    """

    name: str
    description: str
    max_workers: int = 1
    backend: Optional[str] = None
    warm_from: Optional[str] = None
    traced: bool = False
    faults: Optional[str] = None
    retries: int = 0
    comparison: str = "bitwise"
    tolerance: str = "calibrated"
    kernels: Optional[str] = None
    sparse_threshold: Optional[int] = None
    chaos: Optional[str] = None
    remote: Optional[str] = None


#: The matrix: {serial, parallel} x {traced, untraced} x {cold, warm}
#: x {fault-injected with recovery}.  The baseline must come first.
PARITY_MATRIX: Tuple[ParityCell, ...] = (
    ParityCell(
        name="serial-cold",
        description="reference run: one worker, fresh cache"),
    ParityCell(
        name="parallel-cold",
        description="process-pool run, fresh cache", max_workers=2),
    ParityCell(
        name="serial-warm",
        description="serial replay from the serial-cold disk cache",
        warm_from="serial-cold"),
    ParityCell(
        name="parallel-warm",
        description="pool replay from the parallel-cold disk cache",
        max_workers=2, warm_from="parallel-cold"),
    ParityCell(
        name="traced-serial-cold",
        description="serial cold run under an active tracer",
        traced=True),
    ParityCell(
        name="traced-parallel-cold",
        description="pool cold run under an active tracer",
        max_workers=2, traced=True),
    ParityCell(
        name="faulted-retry",
        description="injected stage exceptions healed by task retries "
                    "(must stay bit-identical)",
        faults="stage_exc:cell_ppa:first=1", retries=2),
    ParityCell(
        name="faulted-rescue",
        description="injected transient non-convergence healed by the "
                    "solver rescue ladder (tolerance-equal)",
        faults="convergence:transient.newton:first=2",
        comparison="tolerance"),
    ParityCell(
        name="interrupted-resumed",
        description="CLI run SIGKILLed at a task boundary, then "
                    "resumed from its journal (must stay "
                    "bit-identical)",
        faults="proc_kill:*:after=3", chaos="kill-resume"),
    ParityCell(
        name="concurrent-shared-cache",
        description="two concurrent CLI invocations sharing one cache "
                    "directory (bit-identical, zero quarantined "
                    "entries)",
        chaos="concurrent"),
    ParityCell(
        name="backend-pool",
        description="explicit warm-worker pool backend (pool:2), "
                    "fresh cache",
        max_workers=2, backend="pool:2"),
    ParityCell(
        name="backend-warm",
        description="pool replay from the backend-pool disk cache "
                    "(persistent workers, all hits)",
        max_workers=2, backend="pool:2", warm_from="backend-pool"),
    ParityCell(
        name="backend-workqueue",
        description="two work-queue CLI invocations cooperatively "
                    "draining one graph through filesystem leases "
                    "(bit-identical, zero quarantined entries)",
        backend="workqueue", chaos="workqueue"),
    ParityCell(
        name="kernel-batched",
        description="batched dd1d kernel with the dense MNA oracle "
                    "(the flow's circuits stay on legacy arithmetic: "
                    "must be bit-identical)",
        kernels="batched,dense"),
    ParityCell(
        name="kernel-sparse",
        description="sparse MNA kernel forced onto every circuit "
                    "(threshold 1): SuperLU vs LAPACK arithmetic, "
                    "tolerance-equal",
        kernels="loop,sparse", sparse_threshold=1,
        comparison="tolerance", tolerance="numeric"),
    ParityCell(
        name="remote-flaky",
        description="remote cache behind a fault-injecting proxy "
                    "(drop/delay/truncate/corrupt/500): seed through "
                    "chaos, replay cold-local with >=1 remote hit "
                    "(must stay bit-identical)",
        remote="flaky"),
    ParityCell(
        name="remote-down",
        description="remote endpoint fully dead: run degrades to "
                    "local-only (breaker open, zero task failures, "
                    "must stay bit-identical)",
        remote="down"),
)

#: Modes of the fast suite (one representative per mechanism).
FAST_MODES = ("serial-cold", "parallel-cold", "serial-warm",
              "faulted-rescue")


def flow_artifacts(flow) -> Dict[str, float]:
    """Flatten a :class:`FullFlowResult` into comparable numbers."""
    out: Dict[str, float] = {"extraction.max_error":
                             flow.extraction.max_error()}
    for device in flow.extraction.devices:
        label = (f"{device.targets.variant.name}:"
                 f"{device.targets.polarity.value}")
        for region, error in sorted(device.errors.items()):
            out[f"extraction.{region}.{label}"] = error
    for cell in flow.ppa.cell_names:
        for variant, item in sorted(flow.ppa.results[cell].items(),
                                    key=lambda kv: kv[0].value):
            prefix = f"ppa.{cell}.{variant.value}"
            out[f"{prefix}.delay"] = item.delay
            out[f"{prefix}.power"] = item.power
            out[f"{prefix}.area"] = item.area
            out[f"{prefix}.substrate"] = item.substrate
    return out


def _compare(cell: ParityCell, baseline: Dict[str, float],
             candidate: Dict[str, float]) -> Tuple[bool, str]:
    """Judge one matrix cell's artifacts against the baseline."""
    if set(baseline) != set(candidate):
        missing = sorted(set(baseline) - set(candidate))
        extra = sorted(set(candidate) - set(baseline))
        return False, (f"artifact key mismatch: missing {missing[:4]}, "
                       f"extra {extra[:4]}")
    if cell.comparison == "bitwise":
        mismatched = [k for k in sorted(baseline)
                      if not (baseline[k] == candidate[k])]
        if mismatched:
            worst = mismatched[0]
            return False, (f"{len(mismatched)} artifacts differ "
                           f"bitwise, e.g. {worst}: "
                           f"{baseline[worst]!r} != {candidate[worst]!r}")
        return True, f"{len(baseline)} artifacts bit-identical"
    tol = tolerance_class(cell.tolerance)
    worst_key, worst_err = "", 0.0
    for key in sorted(baseline):
        err = tol.relative_error(baseline[key], candidate[key])
        if err > worst_err:
            worst_key, worst_err = key, err
    if not all(tol.accepts(baseline[k], candidate[k])
               for k in baseline):
        return False, (f"outside tolerance class {tol.name!r}: "
                       f"{worst_key} rel err {worst_err:.3e}")
    return True, (f"{len(baseline)} artifacts within {tol.name!r} "
                  f"(worst rel err {worst_err:.3e} at "
                  f"{worst_key or 'n/a'})")


def _run_chaos_mode(cell: ParityCell, cache_dir: Path,
                    flow_kwargs: Dict[str, Any]):
    """Execute one durability scenario through real subprocesses."""
    from repro.engine.cache import ArtifactCache
    from repro.errors import ReproError
    from repro.flows.durable import resume_run
    from repro.flows.full_flow import run_full_flow
    from repro.resilience import chaos

    argv_kwargs = dict(
        cells=flow_kwargs["cells"],
        variants=[v.value for v in flow_kwargs["variants"]],
        extraction_variants=[v.name
                             for v in flow_kwargs["extraction_variants"]])
    if cell.chaos == "kill-resume":
        run_id = f"parity-{cell.name}"
        env = chaos.repro_env(cache_dir, faults=cell.faults or "")
        outcome = chaos.run_flow(
            chaos.flow_argv(run_id=run_id, workers=1, **argv_kwargs), env)
        if not outcome.killed:
            raise ReproError(
                f"chaos run was not killed (exit {outcome.returncode}): "
                f"{outcome.stderr[-300:]}")
        # Resume in-process (no faults) — journalled graph, same keys.
        return resume_run(
            run_id,
            engine=Engine(backend="serial", cache_dir=cache_dir)).result
    if cell.chaos == "workqueue":
        env = chaos.repro_env(cache_dir)
        argvs = [chaos.flow_argv(run_id=f"parity-wq-{i}",
                                 backend="workqueue", **argv_kwargs)
                 for i in (1, 2)]
        outcomes = chaos.run_concurrent_flows(argvs, env)
        bad = [o for o in outcomes if o.returncode != 0]
        if bad:
            raise ReproError(
                f"{len(bad)} work-queue invocation(s) failed "
                f"(exit {bad[0].returncode}): {bad[0].stderr[-300:]}")
        quarantined = ArtifactCache(cache_dir=cache_dir).quarantined()
        if quarantined:
            raise ReproError(
                f"shared cache has {len(quarantined)} quarantined "
                f"entries after work-queue runs: {quarantined[:3]}")
        # Warm in-process replay from the cooperatively built cache.
        return run_full_flow(
            engine=Engine(backend="serial", cache_dir=cache_dir),
            **flow_kwargs)
    if cell.chaos == "concurrent":
        env = chaos.repro_env(cache_dir)
        argvs = [chaos.flow_argv(run_id=f"parity-conc-{i}", workers=1,
                                 **argv_kwargs) for i in (1, 2)]
        outcomes = chaos.run_concurrent_flows(argvs, env)
        bad = [o for o in outcomes if o.returncode != 0]
        if bad:
            raise ReproError(
                f"{len(bad)} concurrent invocation(s) failed "
                f"(exit {bad[0].returncode}): {bad[0].stderr[-300:]}")
        quarantined = ArtifactCache(cache_dir=cache_dir).quarantined()
        if quarantined:
            raise ReproError(
                f"shared cache has {len(quarantined)} quarantined "
                f"entries after concurrent runs: {quarantined[:3]}")
        # Warm in-process replay: every artefact must come from the
        # cache the two invocations co-populated.
        return run_full_flow(
            engine=Engine(backend="serial", cache_dir=cache_dir),
            **flow_kwargs)
    raise ReproError(f"unknown chaos scenario {cell.chaos!r}")


def _run_remote_mode(cell: ParityCell, cache_dir: Path,
                     flow_kwargs: Dict[str, Any]):
    """Execute one remote-cache-tier scenario (flaky proxy / dead
    endpoint) and enforce its side conditions."""
    from repro.engine import remote as remote_mod
    from repro.errors import ReproError
    from repro.flows.full_flow import run_full_flow

    def _with_env(overrides: Dict[str, str], fn):
        saved = {key: os.environ.get(key) for key in overrides}
        os.environ.update(overrides)
        try:
            return fn()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    if cell.remote == "down":
        # Reserved/discard port: every connect is refused instantly.
        overrides = {
            remote_mod.REMOTE_CACHE_ENV: "http://127.0.0.1:9",
            remote_mod.REMOTE_TIMEOUT_ENV: "0.2",
            remote_mod.REMOTE_RETRIES_ENV: "0",
            remote_mod.REMOTE_BREAKER_THRESHOLD_ENV: "2",
        }
        engine = _with_env(overrides, lambda: Engine(
            backend="serial", cache_dir=cache_dir))
        flow = run_full_flow(engine=engine, **flow_kwargs)
        tier = engine.cache.remote
        if tier is None:
            raise ReproError("remote-down mode did not attach a "
                             "remote tier")
        if not engine.cache.remote_degraded:
            raise ReproError(
                f"remote-down run never degraded: {tier.stats()}")
        return flow
    if cell.remote == "flaky":
        from repro.cachesrv import CacheServer
        from repro.resilience.netchaos import ChaosProxy, NetFaultPlan
        server = CacheServer(
            cache_dir / "remote-store").serve_in_thread()
        plan = NetFaultPlan(drop=0.08, delay=0.03, truncate=0.08,
                            corrupt=0.08, error500=0.08,
                            delay_s=1.0, seed=20260808)
        proxy = ChaosProxy(server.url, plan).serve_in_thread()
        overrides = {
            remote_mod.REMOTE_CACHE_ENV: proxy.url,
            remote_mod.REMOTE_TIMEOUT_ENV: "0.5",
            remote_mod.REMOTE_RETRIES_ENV: "3",
            remote_mod.REMOTE_BREAKER_RESET_ENV: "0.2",
        }
        try:
            # Seed the remote store through the chaos proxy...
            seed_engine = _with_env(overrides, lambda: Engine(
                backend="serial", cache_dir=cache_dir / "seed"))
            run_full_flow(engine=seed_engine, **flow_kwargs)
            # ...then replay from a cold local cache: artifacts must
            # come out identical whether a fetch survived the chaos or
            # fell through to a local recompute.
            replay_engine = _with_env(overrides, lambda: Engine(
                backend="serial", cache_dir=cache_dir / "replay"))
            flow = _with_env(overrides, lambda: run_full_flow(
                engine=replay_engine, **flow_kwargs))
        finally:
            proxy.close()
            server.close()
        tier = replay_engine.cache.remote
        if tier is None:
            raise ReproError("remote-flaky mode did not attach a "
                             "remote tier")
        if replay_engine.cache.hits_remote < 1:
            raise ReproError(
                f"remote-flaky replay landed no remote hit: "
                f"{tier.stats()}; proxy faults {proxy.faults}")
        return flow
    from repro.errors import ReproError as _ReproError
    raise _ReproError(f"unknown remote scenario {cell.remote!r}")


def _run_mode(cell: ParityCell, cache_dir: Path,
              flow_kwargs: Dict[str, Any]):
    """Execute the reduced flow under one mode's engine/fault setup."""
    from repro.engine.remote import REMOTE_CACHE_ENV
    from repro.flows.full_flow import run_full_flow
    from repro.observe import Tracer
    if cell.chaos is not None:
        return _run_chaos_mode(cell, cache_dir, flow_kwargs)
    if cell.remote is not None:
        return _run_remote_mode(cell, cache_dir, flow_kwargs)
    backend = cell.backend or ("serial" if cell.max_workers == 1
                               else f"pool:{cell.max_workers}")
    injector = (FaultInjector.parse(cell.faults)
                if cell.faults else None)
    observe = Tracer() if cell.traced else None
    install(injector) if injector else clear_faults()
    overrides = {
        # Local-only modes must stay local even when the session
        # exports a remote endpoint.
        REMOTE_CACHE_ENV: "",
    }
    if cell.kernels is not None:
        overrides[kernels.KERNEL_ENV] = cell.kernels
    if cell.sparse_threshold is not None:
        overrides[kernels.SPARSE_THRESHOLD_ENV] = str(
            cell.sparse_threshold)
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        engine = Engine(
            backend=backend, cache_dir=cache_dir,
            retry_policy=RetryPolicy(retries=cell.retries, backoff=0.0))
        return run_full_flow(engine=engine, observe=observe,
                             **flow_kwargs)
    finally:
        clear_faults()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def run_parity_matrix(
        cells: Sequence[str] = PARITY_CELLS,
        variants: Sequence[DeviceVariant] = PARITY_VARIANTS,
        extraction_variants: Sequence[ChannelCount] = PARITY_EXTRACTION,
        modes: Optional[Sequence[str]] = None,
        workdir: Optional[Path] = None) -> List[CheckResult]:
    """Run the matrix and diff every mode against serial-cold.

    ``modes`` selects a subset by name (the baseline always runs);
    ``workdir`` hosts the per-mode cache directories (a temporary
    directory by default).
    """
    wanted = set(modes) if modes is not None else \
        {c.name for c in PARITY_MATRIX}
    selected = [c for c in PARITY_MATRIX
                if c.name in wanted or c.name == "serial-cold"]
    unknown = wanted - {c.name for c in PARITY_MATRIX}
    if unknown:
        from repro.errors import ReproError
        raise ReproError(f"unknown parity modes: {sorted(unknown)}")
    # Warm modes need their cold donor in the run.
    names = {c.name for c in selected}
    selected += [c for c in PARITY_MATRIX
                 if c.name in {w.warm_from for w in selected
                               if w.warm_from} - names]
    selected.sort(key=lambda c: [m.name for m in PARITY_MATRIX]
                  .index(c.name))

    flow_kwargs = dict(cells=list(cells), variants=list(variants),
                       extraction_variants=list(extraction_variants))
    results: List[CheckResult] = []
    baseline: Optional[Dict[str, float]] = None
    with tempfile.TemporaryDirectory(
            prefix="repro-parity-") as scratch:
        base = Path(workdir) if workdir is not None else Path(scratch)
        cache_dirs: Dict[str, Path] = {}
        for cell in selected:
            cache_dir = (cache_dirs[cell.warm_from] if cell.warm_from
                         else base / f"cache-{cell.name}")
            cache_dirs[cell.name] = cache_dir
            start = time.perf_counter()
            try:
                flow = _run_mode(cell, cache_dir, flow_kwargs)
            except Exception as exc:
                results.append(CheckResult(
                    name=f"parity.{cell.name}", status=STATUS_FAIL,
                    detail=f"{cell.description}; run raised "
                           f"{type(exc).__name__}: {exc}",
                    wall_time_s=time.perf_counter() - start))
                continue
            elapsed = time.perf_counter() - start
            artifacts = flow_artifacts(flow)
            if baseline is None:
                baseline = artifacts
                results.append(CheckResult(
                    name=f"parity.{cell.name}", status=STATUS_PASS,
                    measured=len(artifacts), tolerance="baseline",
                    detail=cell.description, wall_time_s=elapsed))
                continue
            ok, note = _compare(cell, baseline, artifacts)
            results.append(CheckResult(
                name=f"parity.{cell.name}",
                status=STATUS_PASS if ok else STATUS_FAIL,
                measured=len(artifacts),
                tolerance=(cell.comparison if cell.comparison ==
                           "bitwise" else cell.tolerance),
                detail=f"{cell.description}; {note}",
                wall_time_s=elapsed))
    return results
