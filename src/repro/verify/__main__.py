"""``python -m repro.verify`` dispatch."""

import sys

from repro.verify.cli import main

sys.exit(main())
