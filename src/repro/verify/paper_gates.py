"""Machine-readable paper expectations ("paper gates").

Each :class:`PaperGate` binds one quantitative claim of the SOCC 2023
paper — a Table III error ceiling, a Figure 5 PPA-delta window, the
Section IV-3 substrate-area bound — to an extractor over real
``run_full_flow`` artifacts and an acceptance window.

The windows are *reproduction* windows: centred on the paper's number,
widened by the documented deviation of our from-scratch substrate (see
``EXPERIMENTS.md`` "Known deviations").  They are deliberately tight
enough that a silent physics regression — a percent-level drift in
mobility, threshold or parasitics — moves at least one gate out of its
window, while an intentional recalibration updates this table in the
same commit as the physics change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cells.library import CELL_NAMES
from repro.cells.variants import DeviceVariant
from repro.flows.full_flow import FullFlowResult
from repro.reporting.paper import FIG5_REFERENCE, TEXT_CLAIMS
from repro.verify.report import (
    CheckResult,
    STATUS_FAIL,
    STATUS_PASS,
    STATUS_SKIP,
)

#: Reproduction half-widths around the paper's Figure 5 averages, in
#: percentage points (documented in EXPERIMENTS.md "Known deviations":
#: delay lands within ~3 points of the paper, power within ~1.5,
#: area — a pure design-rule computation — within ~4).
FIG5_HALF_WIDTH = {"delay": 3.0, "power": 1.5, "area": 4.0}

#: Variant labels of the Figure 5 reference table.
_FIG5_VARIANTS = {
    "1-ch": DeviceVariant.MIV_1CH,
    "2-ch": DeviceVariant.MIV_2CH,
    "4-ch": DeviceVariant.MIV_4CH,
}


@dataclass(frozen=True)
class PaperGate:
    """One paper claim as an executable acceptance check.

    Attributes
    ----------
    name:
        Stable gate identifier (``gate.<family>.<claim>``).
    paper_value:
        The number as printed in the paper.
    window:
        Inclusive (lo, hi) acceptance window for our measurement.
    extract:
        Measurement extractor over a :class:`FullFlowResult`.
    requires_full_library:
        Figure 5 averages are defined over all 14 cells; gates that
        need them are *skipped* (not failed) on reduced flows.
    """

    name: str
    paper_value: float
    window: Tuple[float, float]
    extract: Callable[[FullFlowResult], float]
    requires_full_library: bool = False
    unit: str = "%"

    def evaluate(self, flow: FullFlowResult) -> CheckResult:
        """Measure the claim on a flow result and judge it."""
        if self.requires_full_library and \
                not _has_full_library(flow):
            return CheckResult(
                name=self.name, status=STATUS_SKIP,
                expected=self._window_text(),
                detail="library-average gate skipped on a reduced "
                       "flow (needs all 14 cells x 4 variants)")
        try:
            measured = self.extract(flow)
        except Exception as exc:  # artifact missing from this flow
            return CheckResult(
                name=self.name, status=STATUS_SKIP,
                expected=self._window_text(),
                detail=f"not measurable on this flow: {exc}")
        lo, hi = self.window
        ok = lo <= measured <= hi and math.isfinite(measured)
        return CheckResult(
            name=self.name,
            status=STATUS_PASS if ok else STATUS_FAIL,
            measured=measured, expected=self._window_text(),
            tolerance=f"window [{lo:g}, {hi:g}]",
            detail=f"paper: {self.paper_value:g}{self.unit}, "
                   f"measured: {measured:.2f}{self.unit}")

    def _window_text(self) -> str:
        lo, hi = self.window
        return (f"paper {self.paper_value:g}{self.unit} within "
                f"[{lo:g}, {hi:g}]")


def _has_full_library(flow: FullFlowResult) -> bool:
    try:
        cells = set(flow.ppa.cell_names)
    except Exception:
        return False
    if not set(CELL_NAMES) <= cells:
        return False
    for cell in CELL_NAMES:
        for variant in DeviceVariant:
            if variant not in flow.ppa.results.get(cell, {}):
                return False
    return True


def _table3_gates() -> List[PaperGate]:
    """Every Table III cell — and the worst cell — below the paper's
    10 % ceiling."""
    bound = TEXT_CLAIMS["extraction_error_bound_percent"]

    def max_error(flow: FullFlowResult) -> float:
        return flow.extraction.max_error()

    gates = [PaperGate(
        name="gate.table3.max_error",
        paper_value=bound, window=(0.0, bound),
        extract=max_error)]

    def region_error(region: str):
        def extract(flow: FullFlowResult) -> float:
            return max(dev.errors[region]
                       for dev in flow.extraction.devices)
        return extract

    for region in ("IDVG", "IDVD", "CV"):
        gates.append(PaperGate(
            name=f"gate.table3.{region.lower()}",
            paper_value=bound, window=(0.0, bound),
            extract=region_error(region)))
    return gates


def _fig5_gates() -> List[PaperGate]:
    """Library-average PPA deltas inside reproduction windows."""
    gates = []
    for metric, per_variant in FIG5_REFERENCE.items():
        half = FIG5_HALF_WIDTH[metric]
        for label, paper_value in per_variant.items():
            variant = _FIG5_VARIANTS[label]

            def extract(flow: FullFlowResult, v=variant, m=metric,
                        ) -> float:
                return flow.ppa.average_change_percent(v, m)

            gates.append(PaperGate(
                name=f"gate.fig5.{metric}.{label}",
                paper_value=paper_value,
                window=(paper_value - half, paper_value + half),
                extract=extract, requires_full_library=True))
    return gates


def _headline_gates() -> List[PaperGate]:
    """Sign/summary claims: 4-ch delay penalty, 2-ch PDP saving, the
    substrate-area bound."""

    def delay_4ch(flow: FullFlowResult) -> float:
        return flow.ppa.average_change_percent(DeviceVariant.MIV_4CH,
                                               "delay")

    def pdp_2ch(flow: FullFlowResult) -> float:
        return flow.ppa.average_change_percent(DeviceVariant.MIV_2CH,
                                               "pdp")

    def substrate_best(flow: FullFlowResult) -> float:
        return 100.0 * flow.areas.best_reduction(
            DeviceVariant.MIV_4CH, metric="top")

    return [
        PaperGate(
            name="gate.summary.delay_4ch_positive",
            paper_value=FIG5_REFERENCE["delay"]["4-ch"],
            window=(0.0, 6.0), extract=delay_4ch,
            requires_full_library=True),
        PaperGate(
            name="gate.summary.pdp_2ch_reduction",
            paper_value=-TEXT_CLAIMS["pdp_reduction_2ch_percent"],
            window=(-9.0, -1.0), extract=pdp_2ch,
            requires_full_library=True),
        PaperGate(
            name="gate.summary.substrate_area_bound",
            paper_value=TEXT_CLAIMS["substrate_area_reduction_percent"],
            window=(20.0, 35.0), extract=substrate_best),
    ]


def paper_gates() -> List[PaperGate]:
    """The complete paper-gate table."""
    return _table3_gates() + _fig5_gates() + _headline_gates()


def evaluate_gates(flow: FullFlowResult,
                   gates: Optional[List[PaperGate]] = None,
                   ) -> List[CheckResult]:
    """Judge every gate against one flow's artifacts."""
    return [gate.evaluate(flow) for gate in (gates or paper_gates())]
