"""Measured quantities behind each committed golden.

One function per golden file, each returning a flat ``{quantity name:
scalar or array}`` dict.  The bias grids are fixed here — they are part
of the golden's identity; changing them requires regenerating the
golden, which is the intended friction.

Families:

* solver goldens (``tight`` tolerance) — deterministic in-process
  arithmetic: the 1-D Poisson stack solve, the drift-diffusion bar, the
  compact model and an RC transient;
* pipeline goldens (``numeric`` tolerance) — quantities funnelled
  through iterative optimisers: Table III extraction errors and
  per-cell PPA numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.cells.variants import DeviceVariant
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant

#: Gate-bias grid of the Poisson / compact-model goldens [V].
VG_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Drain-bias grid of the compact-model golden [V].
VD_GRID = (0.05, 0.5, 1.0)

#: Contact-bias grid of the drift-diffusion golden [V].
DD_BIASES = (0.0, 0.01, 0.05, 0.1, 0.2)

#: Reduced cell/variant grid of the PPA golden.
PPA_CELLS = ("INV1X1", "NAND2X1")
PPA_VARIANTS = (DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
                DeviceVariant.MIV_2CH, DeviceVariant.MIV_4CH)


def poisson1d_snapshot() -> Dict[str, Any]:
    """Vertical FDSOI electrostatics of the traditional NMOS stack."""
    device = design_for_variant(ChannelCount.TRADITIONAL, Polarity.NMOS)
    poisson = device.engine.poisson
    out: Dict[str, Any] = {
        "oxide_capacitance": poisson.oxide_capacitance(),
    }
    surface, q_inv, q_gate = [], [], []
    for vg in VG_GRID:
        solution = poisson.solve(vg)
        surface.append(solution.surface_potential)
        q_inv.append(solution.q_inv)
        q_gate.append(solution.q_gate)
    out["surface_potential"] = np.array(surface)
    out["q_inv"] = np.array(q_inv)
    out["q_gate"] = np.array(q_gate)
    out["cgg_mid"] = poisson.gate_capacitance(0.6)
    return out


def dd1d_snapshot() -> Dict[str, Any]:
    """I-V of the paper's S/D-extension bar (Scharfetter-Gummel)."""
    from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar
    solver = DriftDiffusion1D(uniform_bar())
    # Goldens pin the legacy loop oracle: its "tight" tolerance class
    # (1e-9, and an equilibrium current at the 1e-19 noise floor) is
    # below the batched kernel's reordering noise.  Kernel equivalence
    # is owned by tests/test_solver_differential.py instead.
    solutions = solver.sweep(list(DD_BIASES), kernel="loop")
    return {
        "currents": np.array([s.current for s in solutions]),
        "resistance": solver.resistance(),
        "equilibrium_current": solutions[0].current,
        "psi_midpoint": solutions[-1].psi[solver.x.size // 2],
    }


def compact_model_snapshot() -> Dict[str, Any]:
    """Default-parameter BSIMSOI4-lite evaluations."""
    from repro.compact.model import BsimSoi4Lite
    from repro.compact.parameters import default_parameters
    model = BsimSoi4Lite(params=default_parameters(),
                         polarity=Polarity.NMOS)
    vg = np.array(VG_GRID)
    out: Dict[str, Any] = {
        "vth_lin": float(model.vth(0.05)),
        "vth_sat": float(model.vth(1.0)),
        "cgg": model.cgg(vg),
    }
    for vd in VD_GRID:
        out[f"ids@vds={vd:g}"] = model.ids_magnitude(vg, vd)
    qg, qd, qs = model.charges(1.0, 0.5)
    out["charges@1.0,0.5"] = np.array([qg, qd, qs])
    return out


def spice_rc_snapshot() -> Dict[str, Any]:
    """Trapezoidal transient of an RC low-pass driven by a pulse."""
    from repro.spice import Circuit, Resistor, pulse_source, transient
    from repro.spice.elements.capacitor import Capacitor
    circuit = Circuit()
    circuit.add(pulse_source("V1", "in", "0", v1=0.0, v2=1.0,
                             delay=1e-10, rise=2e-11, fall=2e-11,
                             width=4e-10))
    circuit.add(Resistor("R1", "in", "out", 1e3))
    circuit.add(Capacitor("C1", "out", "0", 1e-13))
    result = transient(circuit, t_stop=1e-9, dt=5e-11)
    wave = result.waveform("out")
    probes = np.array([1e-10, 2e-10, 3e-10, 5e-10, 7e-10, 1e-9])
    return {
        "n_samples": int(wave.t.size),
        "v_probes": np.array([float(wave.value(t)) for t in probes]),
        "v_final": float(wave.v[-1]),
        "v_max": float(np.max(wave.v)),
    }


def extraction_snapshot(engine=None,
                        variants: Optional[List[ChannelCount]] = None,
                        ) -> Dict[str, Any]:
    """Table III fit errors for every (device, polarity, region)."""
    from repro.flows.full_flow import run_extractions
    report = run_extractions(variants=variants, engine=engine)
    out: Dict[str, Any] = {"max_error": report.max_error()}
    for device in report.devices:
        key = f"{device.targets.variant.name}:{device.targets.polarity.value}"
        for region, error in sorted(device.errors.items()):
            out[f"error:{region}:{key}"] = error
    return out


def ppa_snapshot(engine=None, cells=PPA_CELLS,
                 variants=PPA_VARIANTS) -> Dict[str, Any]:
    """Per-cell PPA numbers of a reduced cells x variants grid."""
    from repro.engine import default_engine
    from repro.ppa.runner import PpaRunner
    runner = PpaRunner(engine=engine or default_engine())
    results = runner.sweep(cells=list(cells), variants=list(variants))
    out: Dict[str, Any] = {}
    for item in results:
        prefix = f"{item.cell_name}:{item.variant.value}"
        out[f"{prefix}:delay"] = item.delay
        out[f"{prefix}:power"] = item.power
        out[f"{prefix}:area"] = item.area
        out[f"{prefix}:substrate"] = item.substrate
    return out


#: Golden name -> (snapshot builder, default tolerance class).  The
#: pipeline goldens take the engine to run under; solver goldens are
#: engine-free.
SOLVER_GOLDENS = {
    "poisson1d_stack": (poisson1d_snapshot, "tight"),
    "dd1d_bar": (dd1d_snapshot, "tight"),
    "compact_model": (compact_model_snapshot, "tight"),
    "spice_rc": (spice_rc_snapshot, "tight"),
}

PIPELINE_GOLDENS = {
    "extraction_table3": (extraction_snapshot, "numeric"),
    "ppa_reduced": (ppa_snapshot, "numeric"),
}
