"""Versioned, tolerance-aware golden snapshot store.

A *golden* is a committed JSON artifact pinning a set of named scalar
or array quantities together with the tolerance class each one must
reproduce under (:mod:`repro.verify.tolerances`).  The diff engine
reports the per-quantity relative error against the declared class, so
a failure message says exactly which physical number drifted and by how
much.

Regeneration (``--update-goldens``) is deterministic — the same
measurements serialise to byte-identical files — and *refuses* to widen
a quantity's tolerance class unless ``--allow-widen`` is also given:
goldens may silently get tighter, never looser.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.verify.tolerances import Tolerance, tolerance_class

#: On-disk schema version of golden files.
GOLDEN_SCHEMA = 1

#: Environment override for the golden directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"


def default_golden_root() -> Path:
    """The committed golden directory (``tests/goldens`` of the repo).

    ``REPRO_GOLDEN_DIR`` overrides it (hermetic test stores, CI
    scratch regeneration).
    """
    env = os.environ.get(GOLDEN_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def _jsonable(value: Any) -> Any:
    """Reduce a measured quantity to the JSON form goldens store."""
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return _jsonable(value.item())
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    raise ReproError(
        f"golden quantities must be scalars or (nested) arrays, got "
        f"{type(value).__name__}")


def _flatten(value: Any) -> List[float]:
    """Flatten a stored value into comparable leaves."""
    if isinstance(value, list):
        out: List[float] = []
        for item in value:
            out.extend(_flatten(item))
        return out
    return [value]


@dataclass(frozen=True)
class QuantityDiff:
    """Comparison verdict of one golden quantity."""

    name: str
    tolerance: str
    max_relative_error: float
    passed: bool
    note: str = ""

    def render(self) -> str:
        """One diff line."""
        status = "ok" if self.passed else "FAIL"
        detail = self.note or \
            f"max rel err {self.max_relative_error:.3e}"
        return f"  [{status}] {self.name} ({self.tolerance}): {detail}"


@dataclass
class GoldenDiff:
    """Full diff of one golden against fresh measurements."""

    name: str
    quantities: List[QuantityDiff] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    unexpected: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every quantity matched and the key sets agree."""
        return not self.missing and not self.unexpected and \
            all(q.passed for q in self.quantities)

    @property
    def failures(self) -> List[QuantityDiff]:
        """The failing quantity diffs."""
        return [q for q in self.quantities if not q.passed]

    def render(self) -> str:
        """Human-readable multi-line diff report."""
        lines = [f"golden {self.name}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        lines += [q.render() for q in self.quantities]
        for key in self.missing:
            lines.append(f"  [FAIL] {key}: missing from measurement")
        for key in self.unexpected:
            lines.append(f"  [FAIL] {key}: not in golden "
                         f"(regenerate with --update-goldens)")
        return "\n".join(lines)


class GoldenStore:
    """Load, diff and (explicitly) regenerate golden files.

    Parameters
    ----------
    root:
        Directory of golden JSON files (default: the committed
        ``tests/goldens``).
    update:
        When True, :meth:`check` rewrites goldens from the measurement
        instead of diffing (the ``--update-goldens`` path).
    allow_widen:
        Permit :meth:`update` to widen a quantity's tolerance class.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 update: bool = False, allow_widen: bool = False):
        self.root = Path(root) if root is not None else \
            default_golden_root()
        self.update = update
        self.allow_widen = allow_widen

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def path(self, name: str) -> Path:
        """File path of one golden."""
        return self.root / f"{name}.json"

    def exists(self, name: str) -> bool:
        """True when the golden has been generated and committed."""
        return self.path(name).is_file()

    def names(self) -> List[str]:
        """Sorted names of every stored golden."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, name: str) -> Dict[str, Any]:
        """Load one golden document."""
        path = self.path(name)
        if not path.is_file():
            raise ReproError(
                f"no golden {name!r} under {self.root}; generate it "
                f"with --update-goldens")
        document = json.loads(path.read_text())
        if document.get("schema") != GOLDEN_SCHEMA:
            raise ReproError(
                f"golden {name!r} has schema "
                f"{document.get('schema')!r}, expected {GOLDEN_SCHEMA}")
        return document

    # ------------------------------------------------------------------
    # diffing
    # ------------------------------------------------------------------
    def diff(self, name: str, measured: Dict[str, Any]) -> GoldenDiff:
        """Diff fresh measurements against the stored golden."""
        document = self.load(name)
        stored = document["quantities"]
        default_tol = document.get("default_tolerance", "tight")
        diff = GoldenDiff(name=name)
        diff.missing = sorted(set(stored) - set(measured))
        diff.unexpected = sorted(set(measured) - set(stored))
        for key in sorted(set(stored) & set(measured)):
            entry = stored[key]
            tol = tolerance_class(entry.get("tolerance", default_tol))
            diff.quantities.append(
                _diff_quantity(key, entry["value"],
                               _jsonable(measured[key]), tol))
        return diff

    # ------------------------------------------------------------------
    # regeneration
    # ------------------------------------------------------------------
    def update_golden(self, name: str, measured: Dict[str, Any],
                      tolerances: Optional[Dict[str, str]] = None,
                      default_tolerance: str = "tight",
                      description: str = "") -> Path:
        """(Re)write one golden from fresh measurements.

        Tolerance-class *widening* relative to the committed file is
        refused unless the store was built with ``allow_widen=True``.
        Serialisation is deterministic: identical measurements produce
        byte-identical files.
        """
        tolerances = tolerances or {}
        tolerance_class(default_tolerance)  # validate early
        for cls in tolerances.values():
            tolerance_class(cls)

        if self.exists(name) and not self.allow_widen:
            self._refuse_widening(name, tolerances, default_tolerance)

        quantities: Dict[str, Any] = {}
        for key in sorted(measured):
            entry: Dict[str, Any] = {"value": _jsonable(measured[key])}
            if key in tolerances and \
                    tolerances[key] != default_tolerance:
                entry["tolerance"] = tolerances[key]
            quantities[key] = entry
        document = {
            "schema": GOLDEN_SCHEMA,
            "name": name,
            "description": description,
            "default_tolerance": default_tolerance,
            "quantities": quantities,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(name)
        path.write_text(json.dumps(document, sort_keys=True, indent=2)
                        + "\n")
        return path

    def _refuse_widening(self, name: str, tolerances: Dict[str, str],
                         default_tolerance: str) -> None:
        document = self.load(name)
        old_default = tolerance_class(
            document.get("default_tolerance", "tight"))
        for key, entry in document["quantities"].items():
            old = tolerance_class(entry.get("tolerance",
                                            old_default.name))
            new = tolerance_class(tolerances.get(key,
                                                 default_tolerance))
            if new.is_wider_than(old):
                raise ReproError(
                    f"refusing to widen golden {name!r} quantity "
                    f"{key!r} from tolerance class {old.name!r} to "
                    f"{new.name!r}; pass --allow-widen to accept the "
                    f"reproducibility loss")

    # ------------------------------------------------------------------
    # one-call front end (pytest plugin / suites)
    # ------------------------------------------------------------------
    def check(self, name: str, measured: Dict[str, Any],
              tolerances: Optional[Dict[str, str]] = None,
              default_tolerance: str = "tight",
              description: str = "") -> GoldenDiff:
        """Diff against the golden, or regenerate it in update mode.

        In update mode the returned diff is the trivially-passing diff
        of the measurement against the file just written.
        """
        if self.update or not self.exists(name):
            if not self.update:
                raise ReproError(
                    f"golden {name!r} missing under {self.root}; "
                    f"run with --update-goldens to generate it")
            self.update_golden(name, measured, tolerances,
                               default_tolerance, description)
        return self.diff(name, measured)


def _diff_quantity(name: str, expected: Any, measured: Any,
                   tol: Tolerance) -> QuantityDiff:
    """Compare one stored value with one measured value."""
    flat_expected = _flatten(expected)
    flat_measured = _flatten(measured)
    if len(flat_expected) != len(flat_measured):
        return QuantityDiff(
            name=name, tolerance=tol.name,
            max_relative_error=float("inf"), passed=False,
            note=(f"shape mismatch: golden has {len(flat_expected)} "
                  f"values, measured {len(flat_measured)}"))
    worst = 0.0
    ok = True
    for exp, got in zip(flat_expected, flat_measured):
        if isinstance(exp, (bool, str)) or exp is None or \
                isinstance(got, (bool, str)) or got is None:
            if exp != got:
                return QuantityDiff(
                    name=name, tolerance=tol.name,
                    max_relative_error=float("inf"), passed=False,
                    note=f"value mismatch: {exp!r} != {got!r}")
            continue
        if not tol.accepts(float(exp), float(got)):
            ok = False
        worst = max(worst, tol.relative_error(float(exp), float(got)))
    return QuantityDiff(name=name, tolerance=tol.name,
                        max_relative_error=worst, passed=ok)
