"""Verification run reporting (``verify_report.json``).

Every suite produces a flat list of :class:`CheckResult` records — one
per golden, MMS estimate, invariant, paper gate or parity cell — which
:class:`VerifyReport` aggregates, renders for the terminal and writes
as a machine-readable JSON document that CI uploads as an artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Check verdicts.
STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_SKIP = "skip"


@dataclass
class CheckResult:
    """Outcome of one verification check.

    Attributes
    ----------
    name:
        Stable check identifier, dotted by family
        (``golden.dd1d_bar``, ``mms.poisson2d.order``,
        ``gate.fig5.delay.2-ch``, ``parity.parallel-cold``).
    status:
        ``pass`` / ``fail`` / ``skip``.
    measured, expected:
        The compared quantities (JSON-compatible; ``None`` when the
        check is structural).
    tolerance:
        The tolerance class or window the check was judged against.
    detail:
        Free-text diagnostics (diff rendering, skip reason).
    wall_time_s:
        Time spent producing the measurement.
    """

    name: str
    status: str
    measured: Any = None
    expected: Any = None
    tolerance: str = ""
    detail: str = ""
    wall_time_s: float = 0.0

    @property
    def passed(self) -> bool:
        """True unless the check failed (skips don't fail a run)."""
        return self.status != STATUS_FAIL

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "status": self.status,
            "measured": self.measured,
            "expected": self.expected,
            "tolerance": self.tolerance,
            "detail": self.detail,
            "wall_time_s": self.wall_time_s,
        }


@dataclass
class VerifyReport:
    """Aggregate of one verification run."""

    suite: str
    checks: List[CheckResult] = field(default_factory=list)
    started_unix: float = field(default_factory=time.time)
    metrics: Optional[Dict[str, Any]] = None

    def add(self, check: CheckResult) -> CheckResult:
        """Record one check."""
        self.checks.append(check)
        return check

    def extend(self, checks: List[CheckResult]) -> None:
        """Record several checks."""
        self.checks.extend(checks)

    @property
    def passed(self) -> bool:
        """True when no check failed."""
        return all(c.passed for c in self.checks)

    @property
    def counts(self) -> Dict[str, int]:
        """Verdict histogram."""
        out = {STATUS_PASS: 0, STATUS_FAIL: 0, STATUS_SKIP: 0}
        for check in self.checks:
            out[check.status] = out.get(check.status, 0) + 1
        return out

    @property
    def failures(self) -> List[CheckResult]:
        """The failing checks."""
        return [c for c in self.checks if c.status == STATUS_FAIL]

    def to_dict(self) -> Dict[str, Any]:
        """The ``verify_report.json`` document."""
        counts = self.counts
        return {
            "schema": 1,
            "suite": self.suite,
            "passed": self.passed,
            "counts": counts,
            "total_wall_time_s": sum(c.wall_time_s
                                     for c in self.checks),
            "checks": [c.to_dict() for c in self.checks],
            "metrics": self.metrics,
        }

    def write(self, path) -> Path:
        """Write the JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    def render(self) -> str:
        """Terminal summary, one line per check."""
        lines = [f"verify suite {self.suite!r}"]
        for check in self.checks:
            marker = {STATUS_PASS: "ok  ", STATUS_FAIL: "FAIL",
                      STATUS_SKIP: "skip"}.get(check.status, "??? ")
            line = f"  [{marker}] {check.name}"
            if check.tolerance:
                line += f" ({check.tolerance})"
            if check.wall_time_s >= 0.05:
                line += f" [{check.wall_time_s:.1f}s]"
            lines.append(line)
            if check.status == STATUS_FAIL and check.detail:
                lines.extend("         " + d
                             for d in check.detail.splitlines()[:12])
        counts = self.counts
        lines.append(
            f"  {counts[STATUS_PASS]} passed, "
            f"{counts[STATUS_FAIL]} failed, "
            f"{counts[STATUS_SKIP]} skipped")
        return "\n".join(lines)
