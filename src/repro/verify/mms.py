"""Method-of-manufactured-solutions and convergence-order estimators.

Golden files pin *values*; this module pins *numerics*: each solver is
run against a problem with a known (manufactured or analytic) solution
on a ladder of grid/timestep resolutions, and the observed convergence
order — the log-ratio slope of the error between successive
refinements — must land inside the declared bounds.

A silent discretisation regression (a lost factor of two in a flux, a
boundary row stamped wrong, an integrator falling back to first order)
moves the observed order far outside its window even when the absolute
numbers still look plausible.

Checks
------
* ``poisson2d`` — manufactured ``sin x sin y`` solution with the
  matching volume charge; second-order finite differences.
* ``poisson1d`` — Richardson self-convergence of the gate-stack solve
  (no closed form exists for the nonlinear carrier terms).
* ``dd1d`` — an n+/n-/n+ bar current under grid refinement, plus the
  analytic low-bias conductance of the uniform bar.
* ``spice.transient`` — RC response to a voltage ramp against the
  closed-form solution; trapezoidal must be ~2nd order and backward
  Euler ~1st.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class ConvergenceResult:
    """Observed convergence behaviour of one solver check.

    Attributes
    ----------
    name:
        Check identifier.
    resolutions:
        Grid sizes / step counts, coarsest first.
    errors:
        Error against the exact (or reference) solution per resolution.
    observed:
        Estimated convergence order (from the finest pair).
    bounds:
        Inclusive (lo, hi) window the order must land in.
    """

    name: str
    resolutions: List[float]
    errors: List[float]
    observed: float
    bounds: Tuple[float, float]
    detail: str = ""
    pairwise: List[float] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when the observed order is inside the bounds."""
        lo, hi = self.bounds
        return lo <= self.observed <= hi

    def render(self) -> str:
        """One-line summary."""
        lo, hi = self.bounds
        return (f"{self.name}: observed order {self.observed:.2f} "
                f"(bounds [{lo:g}, {hi:g}]); errors "
                + " -> ".join(f"{e:.3e}" for e in self.errors))


def observed_order(errors: Sequence[float],
                   refinement: float = 2.0) -> List[float]:
    """Pairwise convergence orders from an error ladder.

    ``errors[i]`` is the error at resolution ``i``; each refinement
    multiplies the resolution by ``refinement``.  Exact-to-roundoff
    errors (0) yield ``inf`` for that pair.
    """
    orders: List[float] = []
    for coarse, fine in zip(errors, errors[1:]):
        if fine == 0.0:
            orders.append(float("inf"))
        elif coarse == 0.0:
            orders.append(0.0)
        else:
            orders.append(math.log(coarse / fine) /
                          math.log(refinement))
    return orders


def _result(name: str, resolutions: Sequence[float],
            errors: Sequence[float], bounds: Tuple[float, float],
            refinement: float = 2.0, detail: str = "",
            ) -> ConvergenceResult:
    pairwise = observed_order(errors, refinement)
    return ConvergenceResult(
        name=name, resolutions=list(resolutions), errors=list(errors),
        observed=pairwise[-1] if pairwise else float("nan"),
        bounds=bounds, detail=detail, pairwise=pairwise)


# ----------------------------------------------------------------------
# 2-D Poisson: true MMS
# ----------------------------------------------------------------------
def poisson2d_mms(sizes: Sequence[int] = (9, 17, 33),
                  ) -> ConvergenceResult:
    """Manufactured ``sin(pi x/W) sin(pi y/H)`` solution.

    With uniform permittivity the charge that manufactures it is
    ``rho = eps pi^2 (W^-2 + H^-2) psi``; all four edges are pinned to
    the exact (zero) boundary values.  The 5-point stencil must show
    second-order L-infinity convergence.
    """
    from repro.tcad.poisson2d import Grid2D, Poisson2D
    width = height = 1.0
    eps = 2.5
    factor = eps * math.pi ** 2 * (1.0 / width ** 2 +
                                   1.0 / height ** 2)
    errors = []
    for n in sizes:
        grid = Grid2D(width=width, height=height, nx=n, ny=n)
        solver = Poisson2D(grid)
        solver.eps[:, :] = eps
        xv, yv = np.meshgrid(grid.x, grid.y)
        exact = np.sin(math.pi * xv / width) * \
            np.sin(math.pi * yv / height)
        solver.rho[:, :] = factor * exact
        solver.add_electrode(0.0, 0.0, width, 0.0, 0.0)
        solver.add_electrode(0.0, height, width, height, 0.0)
        solver.add_electrode(0.0, 0.0, 0.0, height, 0.0)
        solver.add_electrode(width, 0.0, width, height, 0.0)
        psi = solver.solve()
        errors.append(float(np.max(np.abs(psi - exact))))
    return _result("mms.poisson2d", list(sizes), errors,
                   bounds=(1.8, 2.2),
                   detail="manufactured sin*sin solution")


# ----------------------------------------------------------------------
# 1-D Poisson: Richardson self-convergence
# ----------------------------------------------------------------------
def poisson1d_convergence(v_gate: float = 0.6,
                          factors: Sequence[int] = (1, 2, 4, 8),
                          ) -> ConvergenceResult:
    """Grid self-convergence of the nonlinear gate-stack solve.

    No closed form exists with Boltzmann carriers, so the estimator is
    Richardson's: successive differences of the surface potential under
    uniform mesh refinement must shrink at the finite-volume scheme's
    order.

    The scheme is interface-limited to first order: the oxide/film
    interface node's charge is integrated over its whole control volume
    (including the charge-free oxide half-cell), an O(h) charge
    misattribution.  The declared bounds pin that behaviour — observed
    ~0.95 today; a future interface-aware quadrature may legitimately
    raise it towards 2, at which point the bounds (and every golden)
    get regenerated deliberately.
    """
    from repro.tcad.device import Polarity, design_for_variant
    from repro.tcad.poisson1d import Poisson1D, StackSpec
    from repro.geometry.transistor_layout import ChannelCount

    base = design_for_variant(ChannelCount.TRADITIONAL,
                              Polarity.NMOS).engine.poisson.stack
    values = []
    for factor in factors:
        stack = StackSpec(
            t_ox=base.t_ox, t_si=base.t_si, t_box=base.t_box,
            flatband=base.flatband, net_doping=base.net_doping,
            temperature=base.temperature,
            n_cells_ox=base.n_cells_ox * factor,
            n_cells_si=base.n_cells_si * factor,
            n_cells_box=base.n_cells_box * factor)
        values.append(Poisson1D(stack).solve(v_gate).surface_potential)
    errors = [abs(a - b) for a, b in zip(values, values[1:])]
    return _result("mms.poisson1d", list(factors)[:-1], errors,
                   bounds=(0.7, 2.5),
                   detail=f"surface potential at V_G={v_gate} V, "
                          f"Richardson differences (interface-limited "
                          f"first order, see docstring)")


# ----------------------------------------------------------------------
# 1-D drift-diffusion
# ----------------------------------------------------------------------
def dd1d_convergence(nodes: Sequence[int] = (41, 81, 161, 321),
                     bias: float = 0.1) -> ConvergenceResult:
    """n+/n-/n+ bar current under grid refinement (Richardson).

    The doping step makes the field genuinely non-uniform, so the
    Scharfetter-Gummel discretisation's convergence order is actually
    exercised (a uniform bar is exact on any grid).
    """
    from repro.tcad.dd1d import Bar1D, DriftDiffusion1D
    length = 48e-9
    nd_hi, nd_lo = 1e25, 5e23

    def doping(x: float) -> float:
        return nd_hi if x < length / 3 or x > 2 * length / 3 else nd_lo

    currents = []
    for n in nodes:
        # 3k+1 nodes keep the junctions on grid points at every level.
        bar = Bar1D(length=length, area=192e-9 * 7e-9, doping=doping,
                    n_nodes=n, mobility=0.01)
        currents.append(DriftDiffusion1D(bar).solve(bias).current)
    errors = [abs(a - b) for a, b in zip(currents, currents[1:])]
    return _result("mms.dd1d", list(nodes)[:-1], errors,
                   bounds=(0.8, 2.6),
                   detail=f"n+/n-/n+ bar current at {bias} V")


def dd1d_analytic_resistance(tolerance: float = 2e-2,
                             ) -> ConvergenceResult:
    """Uniform-bar resistance against the exact q mu N A / L form."""
    from repro.constants import Q
    from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar
    bar = uniform_bar()
    nd = bar.doping(0.0)
    analytic = bar.length / (Q * bar.mobility * nd * bar.area)
    measured = DriftDiffusion1D(bar).resistance()
    error = abs(measured - analytic) / analytic
    # Encoded as a degenerate one-rung ladder: the "order" is the
    # relative error, bounded above by the tolerance.
    return ConvergenceResult(
        name="mms.dd1d_resistance", resolutions=[bar.n_nodes],
        errors=[error], observed=error, bounds=(0.0, tolerance),
        detail=f"analytic {analytic:.4g} Ohm vs measured "
               f"{measured:.4g} Ohm")


# ----------------------------------------------------------------------
# SPICE transient: ramp-driven RC against the closed form
# ----------------------------------------------------------------------
def transient_order(method: str = "trap",
                    dts: Sequence[float] = (4e-11, 2e-11, 1e-11),
                    ) -> ConvergenceResult:
    """Timestep convergence of the transient integrator.

    An RC low-pass driven by a linear ramp has the closed form
    ``v(t) = a (t - tau + tau exp(-t/tau))``; the error at ``t_stop``
    under timestep halving gives the observed integration order
    (trapezoidal ~2, backward Euler ~1).
    """
    from repro.spice import Circuit, Resistor, pwl_source, transient
    from repro.spice.elements.capacitor import Capacitor
    r, c = 1e3, 1e-13
    tau = r * c
    t_stop = 1e-9
    rate = 1.0 / t_stop
    exact = rate * (t_stop - tau + tau * math.exp(-t_stop / tau))

    errors = []
    for dt in dts:
        circuit = Circuit()
        circuit.add(pwl_source("V1", "in", "0",
                               [(0.0, 0.0), (t_stop, 1.0)]))
        circuit.add(Resistor("R1", "in", "out", r))
        circuit.add(Capacitor("C1", "out", "0", c))
        result = transient(circuit, t_stop=t_stop, dt=dt,
                           method=method)
        errors.append(abs(float(result.waveform("out").v[-1]) - exact))
    bounds = (1.7, 2.4) if method == "trap" else (0.8, 1.4)
    return _result(f"mms.transient.{method}", list(dts), errors,
                   bounds=bounds,
                   detail=f"RC ramp response at t={t_stop:g}s vs "
                          f"closed form")


def all_mms_checks(fast: bool = False) -> List[ConvergenceResult]:
    """The full MMS/convergence battery.

    ``fast`` trims the resolution ladders for the fast suite; the
    declared bounds are shared.
    """
    if fast:
        return [
            poisson2d_mms(sizes=(9, 17, 33)),
            poisson1d_convergence(factors=(1, 2, 4, 8)),
            dd1d_convergence(nodes=(41, 81, 161, 321)),
            dd1d_analytic_resistance(),
            transient_order("trap"),
            transient_order("be"),
        ]
    return [
        poisson2d_mms(sizes=(9, 17, 33, 65)),
        poisson1d_convergence(factors=(1, 2, 4, 8, 16)),
        dd1d_convergence(nodes=(41, 81, 161, 321, 641)),
        dd1d_analytic_resistance(),
        transient_order("trap", dts=(8e-11, 4e-11, 2e-11, 1e-11)),
        transient_order("be", dts=(8e-11, 4e-11, 2e-11, 1e-11)),
    ]
