"""Ring oscillators from the extracted models.

An N-stage (odd) inverter ring oscillates with period ~ 2 N t_p; its
frequency is the classic technology benchmark.  Because the paper's
proposal improves only the *top-layer n-type* device, the inverters are
asymmetric: the stronger/lower-V_th NMOS speeds the falling output edge
but also lowers the switching threshold, which under the ring's slow
self-generated slews *delays* the rising edge.  The ring therefore probes
a different operating regime than the sharply driven edges of the
Figure 5(a) cells — a caveat for anyone adopting MIV-transistors on
timing paths with weak drivers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.errors import SimulationError
from repro.spice.elements.capacitor import Capacitor
from repro.spice.elements.mosfet import Mosfet
from repro.spice.elements.vsource import VoltageSource, PwlSpec
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult, transient


@dataclass(frozen=True)
class RingOscillatorResult:
    """Measured oscillation of one ring."""

    variant: DeviceVariant
    n_stages: int
    frequency: float          # Hz
    stage_delay: float        # s (T / (2 N))
    result: TransientResult

    @property
    def period(self) -> float:
        """Oscillation period [s]."""
        return 1.0 / self.frequency


def build_ring_oscillator(variant: DeviceVariant, n_stages: int = 5,
                          vdd: float = 1.0,
                          stage_load: float = 1e-15) -> Circuit:
    """An ``n_stages``-inverter ring with a kick-start source.

    Each stage drives ``stage_load`` to ground (the paper's 1 fF cell
    load convention).  A brief PWL pulse on the first node breaks the
    metastable all-at-VDD/2 DC solution.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise SimulationError("ring needs an odd stage count >= 3")
    models = extracted_model_set(variant)

    circuit = Circuit(f"ro{n_stages}:{variant.value}")
    circuit.add(VoltageSource("VDD", "vdd", "0", vdd))
    for stage in range(n_stages):
        inp = f"n{stage}"
        out = f"n{(stage + 1) % n_stages}"
        circuit.add(Mosfet(f"MP{stage}", out, inp, "vdd", models.pmos))
        circuit.add(Mosfet(f"MN{stage}", out, inp, "0", models.nmos))
        circuit.add(Capacitor(f"CL{stage}", out, "0", stage_load))
    # Kick: a brief current injection into n0 breaks the metastable
    # all-at-threshold DC point without loading the ring afterwards.
    from repro.spice.elements.isource import CurrentSource
    circuit.add(CurrentSource("IKICK", "0", "n0", PwlSpec((
        (0.0, 0.0), (10e-12, 2e-4), (60e-12, 2e-4), (70e-12, 0.0)))))
    return circuit


def measure_ring_frequency(variant: DeviceVariant, n_stages: int = 5,
                           vdd: float = 1.0, t_stop: float = 1.2e-9,
                           dt: float = 1.0e-11) -> RingOscillatorResult:
    """Simulate the ring and extract frequency from output crossings."""
    circuit = build_ring_oscillator(variant, n_stages, vdd)
    result = transient(circuit, t_stop=t_stop, dt=dt,
                       record_nodes=["n0"])
    waveform = result.waveform("n0")
    # Discard the start-up third of the run, then average the periods
    # between consecutive rising crossings of mid-rail.
    settle = t_stop / 3.0
    crossings = [t for t in waveform.crossings(vdd / 2.0, "rise")
                 if t > settle]
    if len(crossings) < 3:
        raise SimulationError(
            f"ring did not settle into oscillation ({len(crossings)} "
            f"crossings after {settle:g}s)")
    periods = np.diff(crossings)
    period = float(np.mean(periods))
    if np.std(periods) > 0.1 * period:
        raise SimulationError("oscillation period is unstable")
    frequency = 1.0 / period
    return RingOscillatorResult(
        variant=variant,
        n_stages=n_stages,
        frequency=frequency,
        stage_delay=period / (2.0 * n_stages),
        result=result,
    )
