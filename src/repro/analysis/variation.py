"""Process-corner and Monte-Carlo robustness of the MIV-transistor.

The paper evaluates the nominal Table-I process only.  A natural question
for anyone adopting MIV-transistors is whether the 1-/2-channel drive
advantage (and the 4-channel penalty) survives process variation; these
helpers re-run the TCAD device comparison across corners of film
thickness, oxide thickness and gate length, and across Gaussian Monte-
Carlo samples.

Results are expressed as the *drive ratio* of each variant against the
traditional device evaluated on the SAME process sample, so global
process shifts cancel and the MIV-specific effect remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant

#: Variants compared in every study.
STUDY_VARIANTS = (ChannelCount.TRADITIONAL, ChannelCount.ONE,
                  ChannelCount.TWO, ChannelCount.FOUR)


@dataclass(frozen=True)
class ProcessCorner:
    """A named process corner: multiplicative deltas on Table-I values."""

    name: str
    t_si_scale: float = 1.0
    t_ox_scale: float = 1.0
    l_gate_scale: float = 1.0

    def apply(self, process: ProcessParameters) -> ProcessParameters:
        """The corner's process."""
        return process.with_updates(
            t_si=process.t_si * self.t_si_scale,
            t_ox=process.t_ox * self.t_ox_scale,
            l_gate=process.l_gate * self.l_gate_scale,
        )


#: +-5% film / oxide / gate-length corners plus the nominal point.
STANDARD_CORNERS: Sequence[ProcessCorner] = (
    ProcessCorner("nominal"),
    ProcessCorner("fast", t_si_scale=0.95, t_ox_scale=0.95,
                  l_gate_scale=0.95),
    ProcessCorner("slow", t_si_scale=1.05, t_ox_scale=1.05,
                  l_gate_scale=1.05),
    ProcessCorner("thin_film", t_si_scale=0.9),
    ProcessCorner("thick_ox", t_ox_scale=1.1),
    ProcessCorner("short_gate", l_gate_scale=0.92),
)


@dataclass
class CornerResult:
    """Drive ratios (vs traditional) for one process sample."""

    label: str
    ratios: Dict[ChannelCount, float] = field(default_factory=dict)

    @property
    def miv_advantage_holds(self) -> bool:
        """The paper's qualitative finding: 1-ch/2-ch at least as strong
        as traditional, 4-ch weaker."""
        return (self.ratios[ChannelCount.ONE] >= 1.0 and
                self.ratios[ChannelCount.TWO] >= 1.0 and
                self.ratios[ChannelCount.FOUR] <= 1.0)


def _drive(process: ProcessParameters, variant: ChannelCount,
           polarity: Polarity, vdd: float) -> float:
    device = design_for_variant(variant, polarity, process)
    return device.ids_magnitude(vdd, vdd)


def drive_ratios(process: ProcessParameters,
                 polarity: Polarity = Polarity.NMOS,
                 vdd: float = 1.0, label: str = "") -> CornerResult:
    """Drive of every variant relative to traditional on one process."""
    base = _drive(process, ChannelCount.TRADITIONAL, polarity, vdd)
    if base <= 0:
        raise SimulationError("baseline device does not conduct")
    result = CornerResult(label=label)
    for variant in STUDY_VARIANTS:
        result.ratios[variant] = _drive(process, variant, polarity,
                                        vdd) / base
    return result


def corner_drive_study(corners: Optional[Sequence[ProcessCorner]] = None,
                       process: Optional[ProcessParameters] = None,
                       polarity: Polarity = Polarity.NMOS,
                       ) -> List[CornerResult]:
    """Run the drive comparison on every corner."""
    corners = corners if corners is not None else STANDARD_CORNERS
    base = process or DEFAULT_PROCESS
    return [drive_ratios(corner.apply(base), polarity, label=corner.name)
            for corner in corners]


def monte_carlo_drive(n_samples: int = 20,
                      sigma: float = 0.02,
                      seed: int = 2023,
                      process: Optional[ProcessParameters] = None,
                      polarity: Polarity = Polarity.NMOS,
                      ) -> List[CornerResult]:
    """Gaussian Monte-Carlo on (t_si, t_ox, l_gate).

    ``sigma`` is the relative standard deviation per parameter; samples
    are truncated at 3 sigma to keep geometries physical.
    """
    if n_samples < 1:
        raise SimulationError("need at least one sample")
    if not 0 < sigma < 0.2:
        raise SimulationError("sigma should be a small relative spread")
    rng = np.random.default_rng(seed)
    base = process or DEFAULT_PROCESS
    results = []
    for index in range(n_samples):
        scales = 1.0 + np.clip(rng.normal(0.0, sigma, size=3),
                               -3 * sigma, 3 * sigma)
        sample = base.with_updates(
            t_si=base.t_si * scales[0],
            t_ox=base.t_ox * scales[1],
            l_gate=base.l_gate * scales[2],
        )
        results.append(drive_ratios(sample, polarity,
                                    label=f"mc{index:03d}"))
    return results


def advantage_yield(results: Sequence[CornerResult]) -> float:
    """Fraction of samples where the qualitative finding holds."""
    if not results:
        raise SimulationError("no results to summarise")
    holding = sum(1 for r in results if r.miv_advantage_holds)
    return holding / len(results)
