"""Extension studies beyond the paper's headline evaluation.

* :mod:`repro.analysis.variation` — process-corner and Monte-Carlo
  robustness of the MIV-transistor advantage (the paper evaluates the
  nominal process only);
* :mod:`repro.analysis.ring_oscillator` — ring-oscillator frequency per
  implementation, an independent check on the Figure 5(a) delay trend.
"""

from repro.analysis.variation import (
    CornerResult,
    ProcessCorner,
    STANDARD_CORNERS,
    corner_drive_study,
    monte_carlo_drive,
)
from repro.analysis.ring_oscillator import (
    RingOscillatorResult,
    build_ring_oscillator,
    measure_ring_frequency,
)

__all__ = [
    "ProcessCorner",
    "CornerResult",
    "STANDARD_CORNERS",
    "corner_drive_study",
    "monte_carlo_drive",
    "build_ring_oscillator",
    "measure_ring_frequency",
    "RingOscillatorResult",
]
