"""Planar geometric primitives used by layouts and the area model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import LayoutError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle, coordinates in metres.

    ``x`` runs along the transistor channel (gate length direction), ``y``
    along the channel width, matching the top views of Figure 2.
    """

    x0: float
    y0: float
    x1: float
    y1: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(
                f"rectangle {self.label!r} has negative extent: "
                f"({self.x0}, {self.y0}) .. ({self.x1}, {self.y1})")

    @property
    def width(self) -> float:
        """Extent along x [m]."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along y [m]."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area [m^2]."""
        return self.width * self.height

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by (dx, dy)."""
        return Rect(self.x0 + dx, self.y0 + dy,
                    self.x1 + dx, self.y1 + dy, self.label)

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side (keep-out zones)."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            raise LayoutError(
                f"cannot shrink rectangle {self.label!r} by {-margin}")
        return Rect(self.x0 - margin, self.y0 - margin,
                    self.x1 + margin, self.y1 + margin, self.label)

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles overlap with positive area."""
        return (self.x0 < other.x1 and other.x0 < self.x1 and
                self.y0 < other.y1 and other.y0 < self.y1)

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside this rectangle."""
        return (self.x0 <= other.x0 and other.x1 <= self.x1 and
                self.y0 <= other.y0 and other.y1 <= self.y1)


@dataclass(frozen=True)
class BoundingBox:
    """Running bounding box accumulator over rectangles."""

    x0: float = float("inf")
    y0: float = float("inf")
    x1: float = float("-inf")
    y1: float = float("-inf")

    def including(self, rect: Rect) -> "BoundingBox":
        """Return a bounding box that also covers ``rect``."""
        return BoundingBox(
            min(self.x0, rect.x0), min(self.y0, rect.y0),
            max(self.x1, rect.x1), max(self.y1, rect.y1))

    @property
    def is_empty(self) -> bool:
        """True when no rectangle has been included yet."""
        return self.x0 > self.x1

    def to_rect(self, label: str = "bbox") -> Rect:
        """Materialise as a :class:`Rect`; raises if empty."""
        if self.is_empty:
            raise LayoutError("bounding box is empty")
        return Rect(self.x0, self.y0, self.x1, self.y1, label)


def bounding_rect(rects: Iterable[Rect], label: str = "bbox") -> Rect:
    """Bounding rectangle of a non-empty collection of rectangles."""
    box: Optional[BoundingBox] = None
    for rect in rects:
        box = (box or BoundingBox()).including(rect)
    if box is None:
        raise LayoutError("cannot bound an empty collection of rectangles")
    return box.to_rect(label)
