"""Top-view device layouts of Figure 2.

Encodes the four device implementations the paper compares:

* **traditional** 2-D FDSOI transistor whose gate is reached through an
  external-contact MIV with the full M1-spacing keep-out zone;
* **1-channel MIV-transistor** — MIV merged with the gate at the end of a
  single 192 nm channel (S/D contacts still need M1 spacing to the MIV);
* **2-channel MIV-transistor** — two 96 nm fingers sharing a gate column,
  the MIV nested between the fingers (no extra spacing);
* **4-channel MIV-transistor** — four 48 nm channels on all sides of the
  MIV; S/D regions sit on either side so an extra routing track is needed
  to tie the sources and the drains together.

The paper scales the per-channel width 2x at each step so the equivalent
width stays 192 nm: 1 x 192 = 2 x 96 = 4 x 48.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LayoutError
from repro.geometry.miv import MivGeometry, MivRole
from repro.geometry.primitives import Rect, bounding_rect
from repro.geometry.process import ProcessParameters


class ChannelCount(enum.Enum):
    """Number of channels of a device implementation."""

    TRADITIONAL = 0  # single channel, external-contact MIV for the gate
    ONE = 1
    TWO = 2
    FOUR = 4

    @property
    def n_channels(self) -> int:
        """Number of parallel channels (traditional counts as one)."""
        return 1 if self is ChannelCount.TRADITIONAL else self.value

    @property
    def uses_miv_gate(self) -> bool:
        """True when the MIV itself is (part of) the gate."""
        return self is not ChannelCount.TRADITIONAL


@dataclass(frozen=True)
class DeviceLayout:
    """Geometric summary of one device implementation (Figure 2).

    All dimensions in metres.  ``footprint`` is the top-layer bounding box
    including the MIV and any mandatory spacing; ``extra_routing_tracks``
    counts additional M1 tracks the cell router must reserve.
    """

    variant: ChannelCount
    process: ProcessParameters
    n_channels: int
    channel_width: float
    footprint: Rect
    sd_regions: List[Rect]
    gate_region: Rect
    miv_rect: Rect
    extra_routing_tracks: int
    #: Number of channel edges adjacent to the MIV liner (side-gate action).
    miv_coupled_edges: int
    #: Number of etched channel sidewall edges (narrow-width scattering).
    sidewall_edges: int

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise LayoutError("device must have at least one channel")
        total = self.n_channels * self.channel_width
        expected = self.process.w_src
        if abs(total - expected) > 0.05 * expected:
            raise LayoutError(
                f"equivalent width mismatch: {self.n_channels} x "
                f"{self.channel_width} != {expected}")

    @property
    def total_width(self) -> float:
        """Equivalent electrical width [m] (paper: 192 nm for all)."""
        return self.n_channels * self.channel_width

    @property
    def area(self) -> float:
        """Top-layer footprint area [m^2]."""
        return self.footprint.area

    @property
    def height(self) -> float:
        """Footprint extent along the width (y) direction [m]."""
        return self.footprint.height

    @property
    def body_width(self) -> float:
        """Footprint extent along the channel (x) direction [m]."""
        return self.footprint.width


def _gate_column(process: ProcessParameters) -> float:
    """Width of one gate column: gate length plus both spacers [m]."""
    return process.l_gate + 2.0 * process.t_spacer


def _traditional_layout(process: ProcessParameters) -> DeviceLayout:
    """Single 192 nm channel; gate contacted by an external MIV with
    keep-out (Figure 1 'external contact')."""
    gate_col = _gate_column(process)
    w = process.w_src
    miv = MivGeometry(process, MivRole.EXTERNAL_CONTACT)
    x_body = 2.0 * process.l_src + gate_col

    source = Rect(0.0, 0.0, process.l_src, w, "S")
    gate = Rect(process.l_src, 0.0, process.l_src + gate_col, w, "G")
    drain = Rect(process.l_src + gate_col, 0.0, x_body, w, "D")
    # The gate-contact MIV (with keep-out) sits past the channel along y.
    miv_cx = process.l_src + gate_col / 2.0
    miv_cy = w + miv.footprint_side / 2.0
    miv_rect = miv.footprint_rect(miv_cx, miv_cy)
    footprint = bounding_rect([source, gate, drain, miv_rect], "traditional")
    return DeviceLayout(
        variant=ChannelCount.TRADITIONAL,
        process=process,
        n_channels=1,
        channel_width=w,
        footprint=footprint,
        sd_regions=[source, drain],
        gate_region=gate,
        miv_rect=miv_rect,
        extra_routing_tracks=0,
        miv_coupled_edges=0,
        sidewall_edges=2,
    )


def _one_channel_layout(process: ProcessParameters) -> DeviceLayout:
    """MIV merged with the gate at the end of one 192 nm channel.

    No spacing between MIV and gate, but the S/D metal contacts must keep
    the minimum M1 spacing (24 nm) from the MIV landing pad.
    """
    gate_col = _gate_column(process)
    w = process.w_src
    miv = MivGeometry(process, MivRole.GATE_TRANSISTOR)
    x_body = 2.0 * process.l_src + gate_col

    source = Rect(0.0, 0.0, process.l_src, w, "S")
    gate = Rect(process.l_src, 0.0, process.l_src + gate_col, w, "G")
    drain = Rect(process.l_src + gate_col, 0.0, x_body, w, "D")
    miv_cx = process.l_src + gate_col / 2.0
    miv_cy = w + miv.outer_side / 2.0
    miv_rect = miv.footprint_rect(miv_cx, miv_cy)
    # S/D contact-to-MIV spacing consumes one M1 space along y.
    spacing_strip = Rect(0.0, w + miv.outer_side,
                         x_body, w + miv.outer_side + process.m1_spacing,
                         "sd-miv-space")
    footprint = bounding_rect([source, gate, drain, miv_rect, spacing_strip],
                              "miv-1ch")
    return DeviceLayout(
        variant=ChannelCount.ONE,
        process=process,
        n_channels=1,
        channel_width=w,
        footprint=footprint,
        sd_regions=[source, drain],
        gate_region=gate,
        miv_rect=miv_rect,
        extra_routing_tracks=0,
        miv_coupled_edges=1,
        sidewall_edges=2,
    )


def _two_channel_layout(process: ProcessParameters) -> DeviceLayout:
    """Two 96 nm fingers sharing the gate column, MIV nested between them."""
    gate_col = _gate_column(process)
    w_finger = process.w_src / 2.0
    miv = MivGeometry(process, MivRole.GATE_TRANSISTOR)
    x_body = 2.0 * process.l_src + gate_col

    lower_y0 = 0.0
    lower_y1 = w_finger
    upper_y0 = w_finger + miv.outer_side
    upper_y1 = upper_y0 + w_finger

    regions = []
    for (y0, y1), suffix in (((lower_y0, lower_y1), "a"),
                             ((upper_y0, upper_y1), "b")):
        regions.append(Rect(0.0, y0, process.l_src, y1, f"S{suffix}"))
        regions.append(Rect(process.l_src + gate_col, y0, x_body, y1,
                            f"D{suffix}"))
    gate = Rect(process.l_src, lower_y0, process.l_src + gate_col, upper_y1,
                "G")
    miv_cx = process.l_src + gate_col / 2.0
    miv_cy = w_finger + miv.outer_side / 2.0
    miv_rect = miv.footprint_rect(miv_cx, miv_cy)
    footprint = bounding_rect(regions + [gate, miv_rect], "miv-2ch")
    return DeviceLayout(
        variant=ChannelCount.TWO,
        process=process,
        n_channels=2,
        channel_width=w_finger,
        footprint=footprint,
        sd_regions=regions,
        gate_region=gate,
        miv_rect=miv_rect,
        extra_routing_tracks=0,
        miv_coupled_edges=2,
        sidewall_edges=4,
    )


def _four_channel_layout(process: ProcessParameters) -> DeviceLayout:
    """Four 48 nm channels on all sides of the MIV; S/D on either side.

    The minimum active dimension is 48 nm (smallest via plus separations,
    Section III).  Because sources and drains end up on opposite sides, one
    extra M1 routing track is reserved to connect them.
    """
    gate_col = _gate_column(process)
    w_ch = process.w_src / 4.0
    if w_ch < process.l_src - 1e-15:
        raise LayoutError(
            f"4-channel active width {w_ch} below the 48 nm minimum")
    miv = MivGeometry(process, MivRole.GATE_TRANSISTOR)

    # Cross-shaped core: gate ring (one gate column wide) around the MIV,
    # S/D arms of length l_src on the west/east, channel pairs north/south.
    core = miv.outer_side + 2.0 * process.l_gate
    x_body = 2.0 * process.l_src + core + 2.0 * process.t_spacer
    y_body = 2.0 * w_ch + core

    west_src = Rect(0.0, core / 2.0 - w_ch, process.l_src,
                    core / 2.0 + w_ch, "Sw")
    east_drn = Rect(x_body - process.l_src, core / 2.0 - w_ch,
                    x_body, core / 2.0 + w_ch, "De")
    north = Rect(process.l_src, y_body - w_ch,
                 x_body - process.l_src, y_body, "Dn")
    south = Rect(process.l_src, 0.0, x_body - process.l_src, w_ch, "Ss")
    gate = Rect(process.l_src, w_ch, x_body - process.l_src,
                y_body - w_ch, "G")
    miv_rect = miv.footprint_rect(x_body / 2.0, y_body / 2.0)
    # Extra M1 track to join the split sources/drains.
    track = process.m1_width + process.m1_spacing
    routing = Rect(0.0, y_body, x_body, y_body + track, "route")
    footprint = bounding_rect(
        [west_src, east_drn, north, south, gate, miv_rect, routing],
        "miv-4ch")
    return DeviceLayout(
        variant=ChannelCount.FOUR,
        process=process,
        n_channels=4,
        channel_width=w_ch,
        footprint=footprint,
        sd_regions=[west_src, east_drn, north, south],
        gate_region=gate,
        miv_rect=miv_rect,
        extra_routing_tracks=1,
        miv_coupled_edges=4,
        sidewall_edges=8,
    )


_BUILDERS = {
    ChannelCount.TRADITIONAL: _traditional_layout,
    ChannelCount.ONE: _one_channel_layout,
    ChannelCount.TWO: _two_channel_layout,
    ChannelCount.FOUR: _four_channel_layout,
}


def layout_for_variant(variant: ChannelCount,
                       process: ProcessParameters) -> DeviceLayout:
    """Build the Figure-2 layout for one device implementation."""
    try:
        builder = _BUILDERS[variant]
    except KeyError:  # pragma: no cover - enum exhausts the dict
        raise LayoutError(f"unknown variant {variant!r}") from None
    return builder(process)
