"""Metal Inter-layer Via (MIV) geometry and roles.

An MIV connects the bottom tier to the top tier.  The paper distinguishes
(Figure 1):

* **internal contact** — the MIV lands on a top-tier source/drain region;
  no extra top-layer area is consumed.
* **external contact** — the MIV passes through the top tier to reach a
  gate; it consumes top-layer area including a minimum-separation keep-out.

The MIV-transistor proposal converts the external-contact overhead into a
device: the MIV itself, wrapped in a 1 nm oxide liner, gates the adjacent
silicon (a metal–insulator–semiconductor structure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.geometry.primitives import Rect
from repro.geometry.process import ProcessParameters
from repro.materials import COPPER, SILICON_DIOXIDE


class MivRole(enum.Enum):
    """How an MIV is used in a layout."""

    INTERNAL_CONTACT = "internal"
    EXTERNAL_CONTACT = "external"
    GATE_TRANSISTOR = "miv_transistor"


@dataclass(frozen=True)
class MivGeometry:
    """Geometry of one MIV in a given process.

    Attributes
    ----------
    process:
        The governing process parameters.
    role:
        Usage of this MIV.
    """

    process: ProcessParameters
    role: MivRole = MivRole.EXTERNAL_CONTACT

    @property
    def side(self) -> float:
        """MIV side length t_miv [m] (square cross-section, 25 nm)."""
        return self.process.t_miv

    @property
    def liner_thickness(self) -> float:
        """Oxide liner thickness isolating the MIV from silicon [m]."""
        return self.process.t_ox

    @property
    def outer_side(self) -> float:
        """MIV plus liner on both sides [m]."""
        return self.side + 2.0 * self.liner_thickness

    @property
    def keepout_margin(self) -> float:
        """Minimum separation to other top-layer features [m].

        External contacts must respect the M1 spacing; an MIV used as a
        transistor gate needs no keep-out because the surrounding silicon
        *is* the device.
        """
        if self.role is MivRole.GATE_TRANSISTOR:
            return 0.0
        return self.process.m1_spacing

    @property
    def footprint_side(self) -> float:
        """Top-layer footprint side including keep-out [m]."""
        return self.outer_side + 2.0 * self.keepout_margin

    @property
    def footprint_area(self) -> float:
        """Top-layer area consumed by this MIV [m^2]."""
        if self.role is MivRole.INTERNAL_CONTACT:
            # Lands on an S/D region that exists anyway.
            return 0.0
        return self.footprint_side ** 2

    def footprint_rect(self, cx: float, cy: float) -> Rect:
        """Footprint rectangle centred at (cx, cy)."""
        half = self.footprint_side / 2.0
        if half <= 0:
            raise LayoutError("MIV footprint is degenerate")
        return Rect(cx - half, cy - half, cx + half, cy + half,
                    label=f"miv:{self.role.value}")

    def resistance(self, span: float) -> float:
        """Vertical resistance [Ohm] of the MIV over ``span`` metres.

        The paper assumes 7 Ohm per MIV for cell simulation; this method
        exists to sanity-check that assumption from copper resistivity.
        """
        if span <= 0:
            raise LayoutError(f"MIV span must be positive, got {span}")
        area = self.side ** 2
        return COPPER.resistivity * span / area

    def liner_capacitance(self, span: float) -> float:
        """Capacitance [F] between MIV and surrounding silicon over ``span``.

        Treats the liner as a parallel plate wrapped around the four sides —
        the same first-order model the MIS gate of the MIV-transistor uses.
        """
        if span <= 0:
            raise LayoutError(f"MIV span must be positive, got {span}")
        perimeter = 4.0 * self.side
        return SILICON_DIOXIDE.permittivity * perimeter * span / self.liner_thickness
