"""Process and design parameters — Table I of the paper.

:class:`ProcessParameters` is the single source of truth consumed by the
TCAD device builder, the compact-model defaults (Table II shares TSI / TOX /
TBOX / L / W with Table I) and the layout rules.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict

from repro.errors import ReproError
from repro.units import nm, per_cm3


@dataclass(frozen=True)
class ProcessParameters:
    """FDSOI M3D process assumptions (all lengths in metres).

    Defaults reproduce Table I exactly.
    """

    #: Silicon film thickness t_Si (7 nm).
    t_si: float = nm(7)
    #: Height of source/drain region h_src (7 nm).
    h_src: float = nm(7)
    #: Gate-oxide / MIV liner thickness t_ox (1 nm).
    t_ox: float = nm(1)
    #: Source/drain doping n_src (1e19 cm^-3), stored in m^-3.
    n_src: float = per_cm3(1e19)
    #: Spacer thickness t_spacer (10 nm).
    t_spacer: float = nm(10)
    #: Buried oxide thickness t_BOX (100 nm).
    t_box: float = nm(100)
    #: MIV thickness (side) t_miv (25 nm).
    t_miv: float = nm(25)
    #: Length of source/drain region l_src (48 nm).
    l_src: float = nm(48)
    #: Equivalent transistor width w_src (192 nm).
    w_src: float = nm(192)
    #: Gate length L_G (24 nm).
    l_gate: float = nm(24)
    #: M1/M2 wire width (24 nm) per the 7 nm-PDK assumptions of [16].
    m1_width: float = nm(24)
    #: M1/M2 wire thickness (48 nm).
    m1_thickness: float = nm(48)
    #: Via contact size (24 nm).
    via_size: float = nm(24)
    #: Minimum M1 spacing, also the MIV keep-out margin (24 nm).
    m1_spacing: float = nm(24)
    #: Supply voltage used in all cell simulations [V].
    vdd: float = 1.0
    #: Nominal temperature [K] (TNOM = 25 C).
    temperature: float = 298.15

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value <= 0:
                raise ReproError(
                    f"process parameter {f.name} must be positive, got {value}")

    def with_updates(self, **updates: float) -> "ProcessParameters":
        """Return a copy with selected parameters replaced."""
        return replace(self, **updates)

    def as_table1(self) -> Dict[str, float]:
        """Return the Table I rows in the paper's units (nm / cm^-3)."""
        return {
            "t_Si [nm]": self.t_si / nm(1),
            "h_src [nm]": self.h_src / nm(1),
            "t_ox [nm]": self.t_ox / nm(1),
            "n_src [cm^-3]": self.n_src / 1e6,
            "t_spacer [nm]": self.t_spacer / nm(1),
            "t_BOX [nm]": self.t_box / nm(1),
            "t_miv [nm]": self.t_miv / nm(1),
            "l_src [nm]": self.l_src / nm(1),
            "w_src [nm]": self.w_src / nm(1),
            "L_G [nm]": self.l_gate / nm(1),
        }

    @property
    def gate_pitch(self) -> float:
        """Gate length plus one spacer on either side [m]."""
        return self.l_gate + 2.0 * self.t_spacer


#: The paper's nominal process (Table I).
DEFAULT_PROCESS = ProcessParameters()
