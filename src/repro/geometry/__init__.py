"""Process and device geometry for the FDSOI M3D process.

This package encodes Table I (process and design parameters), the layer
stack of Figure 1 and the device top-view layouts of Figure 2.
"""

from repro.geometry.primitives import BoundingBox, Rect
from repro.geometry.process import ProcessParameters, DEFAULT_PROCESS
from repro.geometry.layers import Layer, LayerRole, LayerStack, build_m3d_stack
from repro.geometry.miv import MivGeometry, MivRole
from repro.geometry.transistor_layout import (
    ChannelCount,
    DeviceLayout,
    layout_for_variant,
)

__all__ = [
    "Rect",
    "BoundingBox",
    "ProcessParameters",
    "DEFAULT_PROCESS",
    "Layer",
    "LayerRole",
    "LayerStack",
    "build_m3d_stack",
    "MivGeometry",
    "MivRole",
    "ChannelCount",
    "DeviceLayout",
    "layout_for_variant",
]
