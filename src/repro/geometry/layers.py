"""Vertical layer stack of the 2-layer M3D process (Figure 1).

The stack, from bottom to top: carrier substrate, bottom BOX, bottom
silicon film (p-type devices), bottom gate stack, ILD, top BOX-equivalent,
top silicon film (n-type devices), top gate stack and two interconnect
metals (M1, M2) in interconnect dielectric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError
from repro.geometry.process import ProcessParameters
from repro.materials import Material, SILICON, SILICON_DIOXIDE, COPPER
from repro.units import nm


class LayerRole(enum.Enum):
    """Functional role of a layer in the M3D stack."""

    SUBSTRATE = "substrate"
    BOX = "box"
    ACTIVE = "active"
    GATE_STACK = "gate_stack"
    ILD = "ild"
    METAL = "metal"
    DIELECTRIC = "dielectric"


@dataclass(frozen=True)
class Layer:
    """One layer of the vertical stack.

    Attributes
    ----------
    name:
        Unique layer name (e.g. ``"top_active"``).
    role:
        Functional role.
    material:
        Dominant material of the layer.
    thickness:
        Layer thickness [m].
    tier:
        0 for the bottom (p-type) tier, 1 for the top (n-type) tier.
    """

    name: str
    role: LayerRole
    material: Material
    thickness: float
    tier: int

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise ReproError(
                f"layer {self.name!r} thickness must be positive, "
                f"got {self.thickness}")
        if self.tier not in (0, 1):
            raise ReproError(f"layer {self.name!r} tier must be 0 or 1")


@dataclass(frozen=True)
class LayerStack:
    """An ordered (bottom-to-top) sequence of layers."""

    layers: Sequence[Layer]

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ReproError("layer names must be unique")

    @property
    def total_thickness(self) -> float:
        """Total stack thickness [m]."""
        return sum(layer.thickness for layer in self.layers)

    def find(self, name: str) -> Layer:
        """Return the layer with the given name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ReproError(f"no layer named {name!r}")

    def tier_layers(self, tier: int) -> List[Layer]:
        """All layers belonging to one tier, bottom-to-top."""
        return [layer for layer in self.layers if layer.tier == tier]

    def z_of(self, name: str) -> float:
        """Height of the bottom face of layer ``name`` above the stack base."""
        z = 0.0
        for layer in self.layers:
            if layer.name == name:
                return z
            z += layer.thickness
        raise ReproError(f"no layer named {name!r}")

    def miv_span(self) -> float:
        """Vertical distance an MIV must cross: from the bottom tier's metal
        landing to the top tier's active layer."""
        return self.z_of("top_active") - self.z_of("bottom_gate")


def build_m3d_stack(process: ProcessParameters) -> LayerStack:
    """Construct the Figure-1 stack from Table-I thicknesses.

    The gate stack thickness is the oxide liner plus an assumed 20 nm metal
    gate; the ILD separating the tiers is assumed 50 nm which is consistent
    with the < 0.1 um inter-tier distance the paper quotes for M3D.
    """
    gate_metal = nm(20)
    ild = nm(50)
    layers = (
        Layer("carrier", LayerRole.SUBSTRATE, SILICON, nm(500), 0),
        Layer("bottom_box", LayerRole.BOX, SILICON_DIOXIDE, process.t_box, 0),
        Layer("bottom_active", LayerRole.ACTIVE, SILICON, process.t_si, 0),
        Layer("bottom_gate_oxide", LayerRole.GATE_STACK, SILICON_DIOXIDE,
              process.t_ox, 0),
        Layer("bottom_gate", LayerRole.GATE_STACK, COPPER, gate_metal, 0),
        Layer("ild", LayerRole.ILD, SILICON_DIOXIDE, ild, 0),
        Layer("top_box", LayerRole.BOX, SILICON_DIOXIDE, process.t_box, 1),
        Layer("top_active", LayerRole.ACTIVE, SILICON, process.t_si, 1),
        Layer("top_gate_oxide", LayerRole.GATE_STACK, SILICON_DIOXIDE,
              process.t_ox, 1),
        Layer("top_gate", LayerRole.GATE_STACK, COPPER, gate_metal, 1),
        Layer("m1", LayerRole.METAL, COPPER, process.m1_thickness, 1),
        Layer("id1", LayerRole.DIELECTRIC, SILICON_DIOXIDE, nm(24), 1),
        Layer("m2", LayerRole.METAL, COPPER, process.m1_thickness, 1),
    )
    return LayerStack(layers)
