"""``python -m repro.serve`` — run the characterisation service.

Binds the asyncio HTTP front end of :mod:`repro.serve.app` and serves
until SIGTERM/SIGINT, then drains within ``REPRO_SHUTDOWN_GRACE``
seconds and exits 0.  Configuration errors (bad ``REPRO_SERVE_*``
values, no resolvable cache directory) fail fast with exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigError
from repro.observe import configure_logging
from repro.serve.app import run_app
from repro.serve.config import ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant standard-cell characterisation "
                    "service with admission control, per-request "
                    "deadlines and graceful degradation.")
    parser.add_argument("--host", default=None,
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default 8349; 0 = ephemeral)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root for tenant namespaces and "
                             "run journals (default REPRO_CACHE_DIR)")
    parser.add_argument("--queue", type=int, default=None, metavar="N",
                        help="bound on requests in the system before "
                             "shedding (default REPRO_SERVE_QUEUE)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker threads executing runs "
                             "(default REPRO_SERVE_WORKERS)")
    parser.add_argument("--tenant-rps", type=float, default=None,
                        metavar="R",
                        help="per-tenant sustained request rate "
                             "(default REPRO_SERVE_TENANT_RPS)")
    parser.add_argument("--tenant-burst", type=float, default=None,
                        metavar="B",
                        help="per-tenant burst capacity "
                             "(default REPRO_SERVE_TENANT_BURST)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="S",
                        help="implicit per-request deadline in seconds "
                             "(default REPRO_SERVE_DEADLINE; 0 = none)")
    parser.add_argument("--grace", type=float, default=None, metavar="S",
                        help="drain window after SIGTERM "
                             "(default REPRO_SHUTDOWN_GRACE)")
    parser.add_argument("--backend", default=None,
                        help="engine backend per request "
                             "(default serial)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging()
    try:
        config = ServeConfig.from_env(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            queue_limit=args.queue, workers=args.workers,
            tenant_rps=args.tenant_rps, tenant_burst=args.tenant_burst,
            default_deadline=args.deadline, grace=args.grace,
            backend=args.backend)
    except ConfigError as exc:
        print(f"repro.serve: {exc}", file=sys.stderr)
        return 2
    return run_app(config)


if __name__ == "__main__":  # pragma: no cover - exercised as a script
    sys.exit(main())
