"""Fault-tolerant multi-tenant characterisation service.

``python -m repro.serve`` turns the durable flow runner into a small
stdlib-only HTTP/JSON service: bounded-queue admission control with
measured ``Retry-After`` load shedding, per-tenant token-bucket quotas
and cache namespaces, per-request deadlines propagated into the
engine's cancellation token (504 answers carry a *resumable* run id),
in-process request coalescing on top of the cache's cross-process
single-flight, and a health ladder (``ok -> degraded -> draining``)
that drains gracefully on SIGTERM.
"""

from repro.serve.admission import (
    AdmissionController,
    ServiceTimeEstimator,
    TokenBucket,
)
from repro.serve.app import ServeApp, run_app
from repro.serve.config import ServeConfig
from repro.serve.deadlines import (
    DEADLINE_HEADER,
    deadline_token,
    parse_deadline,
)
from repro.serve.handlers import (
    CharacterizeRequest,
    FlowRunner,
    parse_body,
    parse_characterize,
)
from repro.serve.tenants import (
    DEFAULT_TENANT,
    TenantRegistry,
    validate_tenant_name,
)

__all__ = [
    "AdmissionController",
    "CharacterizeRequest",
    "DEADLINE_HEADER",
    "DEFAULT_TENANT",
    "FlowRunner",
    "ServeApp",
    "ServeConfig",
    "ServiceTimeEstimator",
    "TenantRegistry",
    "TokenBucket",
    "deadline_token",
    "parse_body",
    "parse_characterize",
    "parse_deadline",
    "run_app",
    "validate_tenant_name",
]
